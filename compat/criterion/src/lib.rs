//! Offline mini-benchmark harness with a criterion-compatible surface.
//!
//! Implements exactly the API the workspace's `benches/` targets use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`Throughput`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with none of the
//! statistical machinery or dependencies of the real crate. Each
//! benchmark is warmed up briefly, then sampled under a fixed time
//! budget; the median per-iteration time is printed to stdout and, when
//! `NVP_BENCH_JSON` names a file, appended to it as one JSON object per
//! line (`{"id": ..., "median_ns": ..., "elems_per_sec": ...}`).
//!
//! Filter arguments (`cargo bench -- <substring>`) select benchmark ids
//! by substring, like the real harness.

#![forbid(unsafe_code)]

use std::hint::black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Per-sample iteration budget: samples shorter than this are batched.
const MIN_SAMPLE: Duration = Duration::from_millis(1);
/// Per-benchmark measurement budget.
const MEASURE_BUDGET: Duration = Duration::from_millis(600);
/// Per-benchmark warm-up budget.
const WARMUP_BUDGET: Duration = Duration::from_millis(150);

/// Work-per-iteration declaration, used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Top-level benchmark context.
pub struct Criterion {
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo passes `--bench` (and harness flags) to the binary;
        // everything that is not a flag is a name filter.
        let filters = std::env::args().skip(1).filter(|a| !a.starts_with('-')).collect();
        Criterion { filters }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None, sample_size: 50 }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&self.filters, &id, None, 50, f);
        self
    }
}

/// A named group sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declares the work performed by one iteration of subsequent
    /// benchmarks in this group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for compatibility; the harness sizes samples by time
    /// budget, so this only caps the sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(10);
        self
    }

    /// Measures one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(&self.criterion.filters, &id, self.throughput, self.sample_size, f);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; call [`iter`](Bencher::iter) once.
pub struct Bencher {
    /// Median wall time of one iteration, filled by `iter`.
    median_ns: f64,
    sample_cap: usize,
}

impl Bencher {
    /// Times the closure: brief warm-up, then repeated samples under a
    /// fixed budget; records the median per-iteration time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up and batch sizing: grow the batch until one batch takes
        // at least MIN_SAMPLE.
        let mut batch: u64 = 1;
        let warm_start = Instant::now();
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= MIN_SAMPLE || warm_start.elapsed() >= WARMUP_BUDGET {
                break;
            }
            batch = (batch * 2).min(1 << 24);
        }
        // Measurement.
        let mut samples_ns: Vec<f64> = Vec::new();
        let start = Instant::now();
        while start.elapsed() < MEASURE_BUDGET && samples_ns.len() < self.sample_cap {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples_ns.push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples_ns[samples_ns.len() / 2];
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    filters: &[String],
    id: &str,
    throughput: Option<Throughput>,
    sample_cap: usize,
    mut f: F,
) {
    if !filters.is_empty() && !filters.iter().any(|pat| id.contains(pat.as_str())) {
        return;
    }
    let mut bencher = Bencher { median_ns: f64::NAN, sample_cap };
    f(&mut bencher);
    let median_ns = bencher.median_ns;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => (n as f64 * 1e9 / median_ns, "elem/s"),
        Throughput::Bytes(n) => (n as f64 * 1e9 / median_ns, "B/s"),
    });
    match rate {
        Some((r, unit)) => {
            println!("bench {id:<48} {median_ns:>14.1} ns/iter  {r:>14.0} {unit}");
        }
        None => println!("bench {id:<48} {median_ns:>14.1} ns/iter"),
    }
    if let Ok(path) = std::env::var("NVP_BENCH_JSON") {
        let eps = rate.map_or(0.0, |(r, _)| r);
        let line = format!(
            "{{\"id\":\"{id}\",\"median_ns\":{median_ns:.1},\"elems_per_sec\":{eps:.1}}}\n"
        );
        if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
            let _ = file.write_all(line.as_bytes());
        }
    }
}

/// Bundles benchmark functions into a runnable group, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups, like criterion's.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion { filters: Vec::new() };
        let mut group = c.benchmark_group("selftest");
        group.throughput(Throughput::Elements(100));
        group.sample_size(10);
        group.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }

    #[test]
    fn filters_skip_nonmatching() {
        // A benchmark whose closure panics must be skipped by filter.
        let mut c = Criterion { filters: vec!["only-this".into()] };
        c.bench_function("other", |_b| panic!("must not run"));
    }
}
