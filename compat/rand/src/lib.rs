//! Offline stand-in for the subset of the `rand` 0.9 API this workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::random`] for the primitive types.
//!
//! The implementation mirrors upstream `rand` 0.9 semantics: `StdRng` is
//! the ChaCha block cipher reduced to 12 rounds, seeded through the
//! PCG-XSH-RR expansion that `rand_core::SeedableRng::seed_from_u64`
//! documents, and `random::<f64>()` draws 53 bits into `[0, 1)`. The
//! point is a *deterministic, high-quality, dependency-free* generator
//! with the same call sites, so the simulation stays a pure function of
//! its seeds without any network access at build time.

#![forbid(unsafe_code)]

/// Low-level generator interface: raw 32/64-bit output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let b = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&b[..chunk.len()]);
        }
    }
}

/// A type that can be sampled uniformly by [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one uniform value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for i16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i16
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// 53 uniform bits scaled into `[0, 1)` — the upstream
    /// `StandardUniform` construction.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        const SCALE: f64 = 1.0 / ((1u64 << 53) as f64);
        (rng.next_u64() >> 11) as f64 * SCALE
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        const SCALE: f32 = 1.0 / ((1u32 << 24) as f32);
        (rng.next_u32() >> 8) as f32 * SCALE
    }
}

/// High-level sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value in `[low, high)` (`high > low`).
    fn random_range_f64(&mut self, low: f64, high: f64) -> f64 {
        low + (high - low) * self.random::<f64>()
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via the PCG-XSH-RR stream that
    /// upstream `rand_core` documents for `seed_from_u64`.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6_364_136_223_846_793_005;
        const INC: u64 = 11_634_580_027_462_260_723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let b = xorshifted.rotate_right(rot).to_le_bytes();
            chunk.copy_from_slice(&b[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    const ROUNDS: usize = 12;

    /// The workspace's standard deterministic generator: ChaCha reduced
    /// to 12 rounds (the same core as upstream `StdRng` in rand 0.9).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        /// ChaCha input state: constants, 256-bit key, 64-bit block
        /// counter, 64-bit stream id.
        state: [u32; 16],
        /// Current output block.
        buf: [u32; 16],
        /// Next unread word in `buf` (16 = empty).
        idx: usize,
    }

    #[inline(always)]
    fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    impl StdRng {
        fn refill(&mut self) {
            let mut w = self.state;
            for _ in 0..ROUNDS / 2 {
                // Column round.
                quarter_round(&mut w, 0, 4, 8, 12);
                quarter_round(&mut w, 1, 5, 9, 13);
                quarter_round(&mut w, 2, 6, 10, 14);
                quarter_round(&mut w, 3, 7, 11, 15);
                // Diagonal round.
                quarter_round(&mut w, 0, 5, 10, 15);
                quarter_round(&mut w, 1, 6, 11, 12);
                quarter_round(&mut w, 2, 7, 8, 13);
                quarter_round(&mut w, 3, 4, 9, 14);
            }
            for (o, s) in w.iter_mut().zip(self.state.iter()) {
                *o = o.wrapping_add(*s);
            }
            self.buf = w;
            self.idx = 0;
            // 64-bit block counter in words 12..14.
            let (lo, carry) = self.state[12].overflowing_add(1);
            self.state[12] = lo;
            if carry {
                self.state[13] = self.state[13].wrapping_add(1);
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.idx >= 16 {
                self.refill();
            }
            let w = self.buf[self.idx];
            self.idx += 1;
            w
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            // "expand 32-byte k"
            let mut state = [0u32; 16];
            state[0] = 0x6170_7865;
            state[1] = 0x3320_646e;
            state[2] = 0x7962_2d32;
            state[3] = 0x6b20_6574;
            for i in 0..8 {
                state[4 + i] = u32::from_le_bytes([
                    seed[4 * i],
                    seed[4 * i + 1],
                    seed[4 * i + 2],
                    seed[4 * i + 3],
                ]);
            }
            StdRng { state, buf: [0; 16], idx: 16 }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.random::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "uniform mean drifted: {mean}");
    }

    #[test]
    fn output_is_well_mixed() {
        // Adjacent seeds produce unrelated streams (seed expansion works).
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        let same = (0..64).filter(|_| a.random::<u32>() == b.random::<u32>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn counter_advances_across_blocks() {
        // More than 16 words forces a second ChaCha block; the stream
        // must not repeat the first block.
        let mut rng = StdRng::seed_from_u64(5);
        let first: Vec<u32> = (0..16).map(|_| rng.random::<u32>()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.random::<u32>()).collect();
        assert_ne!(first, second);
    }
}
