//! Offline no-op stand-in for `serde`.
//!
//! The workspace annotates model types with
//! `#[derive(Serialize, Deserialize)]` so they are ready for real
//! serialization once a registry is reachable, but nothing in-tree
//! actually serializes through serde (all artifact output is hand-rolled
//! CSV/Markdown/JSON). This crate keeps those annotations compiling with
//! zero dependencies: the traits are empty markers and the derive macros
//! (in `serde_derive`) expand to nothing.

#![forbid(unsafe_code)]

/// Marker for types that would be serializable under real serde.
pub trait Serialize {}

/// Marker for types that would be deserializable under real serde.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
