//! No-op derive macros for the offline `serde` stand-in: the annotations
//! stay in the source (documenting intent and keeping types ready for
//! real serde), but the derives expand to nothing.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// Expands to nothing; the `serde` stand-in's `Serialize` is a marker.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the `serde` stand-in's `Deserialize` is a marker.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
