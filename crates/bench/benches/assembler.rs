//! Micro-benchmarks for the toolchain substrate: assembly, encoding,
//! decoding, and trace synthesis.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nvp_energy::harvester;
use nvp_isa::asm::assemble;
use nvp_isa::Inst;
use std::hint::black_box;

fn big_source(lines: usize) -> String {
    let mut src = String::from(".equ BASE, 0x100\n");
    for i in 0..lines {
        src.push_str(&format!("l{i}:\n    addi r1, r1, {}\n    sw r1, {}(r0)\n", i % 100, i % 64));
    }
    src.push_str("    halt\n");
    src
}

fn bench_assembler(c: &mut Criterion) {
    let src = big_source(500);
    let mut group = c.benchmark_group("toolchain");
    group.throughput(Throughput::Elements(1001));
    group.bench_function("assemble_1k_insts", |b| b.iter(|| black_box(assemble(&src).unwrap())));

    let program = assemble(&src).unwrap();
    let words: Vec<u32> = program.code().to_vec();
    group.throughput(Throughput::Elements(words.len() as u64));
    group.bench_function("decode_1k_insts", |b| {
        b.iter(|| {
            for &w in &words {
                black_box(Inst::decode(w).unwrap());
            }
        })
    });
    group.bench_function("disassemble_1k_insts", |b| b.iter(|| black_box(program.disassemble())));
    group.finish();
}

fn bench_trace_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("traces");
    group.sample_size(20);
    group.bench_function("wrist_watch_10s", |b| {
        b.iter(|| black_box(harvester::wrist_watch(1, 10.0)))
    });
    group.bench_function("rf_wifi_10s", |b| b.iter(|| black_box(harvester::rf_wifi(1, 10.0))));
    group.finish();
}

criterion_group!(benches, bench_assembler, bench_trace_synthesis);
criterion_main!(benches);
