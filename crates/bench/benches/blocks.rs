//! Execution-tier benchmark (`cargo bench --bench blocks`).
//!
//! Compares all four execution tiers — `Machine::run` (per-instruction
//! dispatch), `Machine::run_blocks` (fused basic blocks),
//! `Machine::run_superblocks` (profile-directed block chains), and the
//! SoA `LaneMachine` (same-program lane groups) — on the tight ALU loop
//! and the Sobel kernel, and cross-checks that every tier retires the
//! same instruction count, identical architectural state, and
//! bit-identical energy while timing.
//!
//! Set `NVP_BENCH_SMOKE=1` to run a bounded iteration count with a
//! single repetition — CI uses this to keep the bench built and
//! runnable, and to assert the cross-tier digests without timing.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use nvp_isa::asm::assemble;
use nvp_sim::{CycleModel, EnergyModel, LaneMachine, Machine, MachineImage};
use nvp_workloads::{GrayImage, KernelKind};

/// Lane width used for the lane-tier throughput measurement.
const LANE_WIDTH: usize = 64;

fn smoke() -> bool {
    std::env::var_os("NVP_BENCH_SMOKE").is_some()
}

/// Best-of-`reps` throughput of `advance` on fresh machines,
/// instructions per second.
fn rate(
    mut fresh: impl FnMut() -> Machine,
    advance: impl Fn(&mut Machine, u64) -> u64,
    insts: u64,
    reps: usize,
) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..reps {
        let mut m = fresh();
        let t0 = Instant::now();
        let mut executed = 0;
        while executed < insts {
            executed += advance(&mut m, insts - executed);
            if m.halted() {
                break;
            }
        }
        black_box(&m);
        best = best.max(executed as f64 / t0.elapsed().as_secs_f64());
    }
    best
}

/// Best-of-`reps` *effective* throughput of a lane group running the
/// image to completion: total instructions retired across every lane,
/// divided by wall time.
fn lane_rate(image: &Arc<MachineImage>, width: usize, reps: usize) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..reps {
        let mut lm = LaneMachine::new(image, width);
        let t0 = Instant::now();
        while !lm.all_done() {
            lm.run(1_000_000);
        }
        black_box(&lm);
        let total: u64 = (0..width).map(|l| lm.lane_counters(l).instructions).sum();
        best = best.max(total as f64 / t0.elapsed().as_secs_f64());
    }
    best
}

/// Runs every tier to completion on small budgets and compares final
/// state — a correctness canary inside the bench binary.
fn crosscheck(program: &nvp_isa::Program, budget: u64) {
    let image = Arc::new(
        MachineImage::build(program, 8192, CycleModel::default(), EnergyModel::default())
            .expect("image builds"),
    );
    let mut by_step = Machine::from_image(&image);
    let mut by_block = Machine::from_image(&image);
    let mut by_super = Machine::from_image(&image);
    let mut by_lanes = LaneMachine::new(&image, 4);
    by_step.run(budget).expect("step run");
    by_block.run_blocks(budget).expect("block run");
    while by_super.counters().instructions < budget && !by_super.halted() {
        let remaining = budget - by_super.counters().instructions;
        let stats = by_super.run_superblocks(remaining).expect("superblock run");
        if stats.executed == 0 && !stats.checkpoint {
            break;
        }
    }
    while by_lanes.lane_counters(0).instructions < budget && !by_lanes.all_done() {
        by_lanes.run(budget - by_lanes.lane_counters(0).instructions);
    }
    for (name, other) in
        [("block", &by_block), ("superblock", &by_super), ("lane", &by_lanes.extract(0))]
    {
        assert_eq!(by_step.snapshot(), other.snapshot(), "{name}: architectural state diverged");
        assert_eq!(
            by_step.counters().instructions,
            other.counters().instructions,
            "{name}: retired counts diverged"
        );
        assert_eq!(
            by_step.counters().energy_j.to_bits(),
            other.counters().energy_j.to_bits(),
            "{name}: energy totals diverged"
        );
    }
}

fn main() {
    let (insts, reps) = if smoke() { (200_000, 1) } else { (4_000_000, 3) };

    let tight = assemble("start: addi r1, r1, 1\n xor r2, r2, r1\n bne r1, r0, start\n halt")
        .expect("tight loop assembles");
    let frame = GrayImage::synthetic(7, 32, 32);
    let sobel = KernelKind::Sobel.build(&frame).expect("sobel builds");
    let sobel_program = sobel.program().clone();

    crosscheck(&tight, 100_000);
    crosscheck(&sobel_program, 100_000);

    let step_run = |m: &mut Machine, n: u64| m.run(n).expect("program runs");
    let block_run = |m: &mut Machine, n: u64| m.run_blocks(n).expect("program runs").executed;
    let super_run = |m: &mut Machine, n: u64| m.run_superblocks(n).expect("program runs").executed;

    let tight_image = Arc::new(
        MachineImage::build(&tight, 64, CycleModel::default(), EnergyModel::default())
            .expect("image builds"),
    );
    let sobel_image = Arc::new(
        MachineImage::build(
            &sobel_program,
            sobel.min_dmem_words(),
            CycleModel::default(),
            EnergyModel::default(),
        )
        .expect("image builds"),
    );

    let tight_step = rate(|| Machine::from_image(&tight_image), step_run, insts, reps);
    let tight_block = rate(|| Machine::from_image(&tight_image), block_run, insts, reps);
    let tight_super = rate(|| Machine::from_image(&tight_image), super_run, insts, reps);
    let tight_lanes = lane_rate(&tight_image, LANE_WIDTH, reps);
    let sobel_step = rate(|| Machine::from_image(&sobel_image), step_run, insts, reps);
    let sobel_block = rate(|| Machine::from_image(&sobel_image), block_run, insts, reps);
    let sobel_super = rate(|| Machine::from_image(&sobel_image), super_run, insts, reps);

    println!("bench blocks/tight_loop_step_per_sec   {tight_step:>14.0}");
    println!("bench blocks/tight_loop_block_per_sec  {tight_block:>14.0}");
    println!("bench blocks/tight_loop_super_per_sec  {tight_super:>14.0}");
    println!("bench blocks/tight_loop_lane_per_sec   {tight_lanes:>14.0} ({LANE_WIDTH} lanes)");
    println!("bench blocks/tight_loop_speedup        {:>14.2} x", tight_block / tight_step);
    println!("bench blocks/tight_loop_lane_speedup   {:>14.2} x", tight_lanes / tight_block);
    println!("bench blocks/sobel_step_per_sec        {sobel_step:>14.0}");
    println!("bench blocks/sobel_block_per_sec       {sobel_block:>14.0}");
    println!("bench blocks/sobel_super_per_sec       {sobel_super:>14.0}");
    println!("bench blocks/sobel_speedup             {:>14.2} x", sobel_block / sobel_step);
    if smoke() {
        println!("bench blocks: smoke mode (bounded iterations, cross-tier digests asserted)");
    }
}
