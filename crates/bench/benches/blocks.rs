//! Block-engine benchmark (`cargo bench --bench blocks`).
//!
//! Compares `Machine::run` (per-instruction dispatch) against
//! `Machine::run_blocks` (fused basic-block execution) on the tight ALU
//! loop and the Sobel kernel, and cross-checks that both engines retire
//! the same instruction count and bit-identical energy while timing.
//!
//! Set `NVP_BENCH_SMOKE=1` to run a bounded iteration count with a
//! single repetition — CI uses this to keep the bench built and
//! runnable without asserting anything about timing.

use std::hint::black_box;
use std::time::Instant;

use nvp_isa::asm::assemble;
use nvp_sim::Machine;
use nvp_workloads::{GrayImage, KernelKind};

fn smoke() -> bool {
    std::env::var_os("NVP_BENCH_SMOKE").is_some()
}

/// Best-of-`reps` throughput of `advance` on fresh machines,
/// instructions per second.
fn rate(
    mut fresh: impl FnMut() -> Machine,
    advance: impl Fn(&mut Machine, u64) -> u64,
    insts: u64,
    reps: usize,
) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..reps {
        let mut m = fresh();
        let t0 = Instant::now();
        let mut executed = 0;
        while executed < insts {
            executed += advance(&mut m, insts - executed);
            if m.halted() {
                break;
            }
        }
        black_box(&m);
        best = best.max(executed as f64 / t0.elapsed().as_secs_f64());
    }
    best
}

/// Runs both engines to completion on small budgets and compares final
/// state — a correctness canary inside the bench binary.
fn crosscheck(program: &nvp_isa::Program, budget: u64) {
    let mut by_step = Machine::new(program).expect("loads");
    let mut by_block = Machine::new(program).expect("loads");
    by_step.run(budget).expect("step run");
    by_block.run_blocks(budget).expect("block run");
    assert_eq!(by_step.snapshot(), by_block.snapshot(), "architectural state diverged");
    assert_eq!(
        by_step.counters().instructions,
        by_block.counters().instructions,
        "retired counts diverged"
    );
    assert_eq!(
        by_step.counters().energy_j.to_bits(),
        by_block.counters().energy_j.to_bits(),
        "energy totals diverged"
    );
}

fn main() {
    let (insts, reps) = if smoke() { (200_000, 1) } else { (4_000_000, 3) };

    let tight = assemble("start: addi r1, r1, 1\n xor r2, r2, r1\n bne r1, r0, start\n halt")
        .expect("tight loop assembles");
    let frame = GrayImage::synthetic(7, 32, 32);
    let sobel = KernelKind::Sobel.build(&frame).expect("sobel builds");
    let sobel_program = sobel.program().clone();

    crosscheck(&tight, 100_000);
    crosscheck(&sobel_program, 100_000);

    let step_run = |m: &mut Machine, n: u64| m.run(n).expect("program runs");
    let block_run = |m: &mut Machine, n: u64| m.run_blocks(n).expect("program runs").executed;

    let tight_step = rate(|| Machine::new(&tight).expect("loads"), step_run, insts, reps);
    let tight_block = rate(|| Machine::new(&tight).expect("loads"), block_run, insts, reps);
    let sobel_step = rate(|| sobel.machine().expect("loads"), step_run, insts, reps);
    let sobel_block = rate(|| sobel.machine().expect("loads"), block_run, insts, reps);

    println!("bench blocks/tight_loop_step_per_sec   {tight_step:>14.0}");
    println!("bench blocks/tight_loop_block_per_sec  {tight_block:>14.0}");
    println!("bench blocks/tight_loop_speedup        {:>14.2} x", tight_block / tight_step);
    println!("bench blocks/sobel_step_per_sec        {sobel_step:>14.0}");
    println!("bench blocks/sobel_block_per_sec       {sobel_block:>14.0}");
    println!("bench blocks/sobel_speedup             {:>14.2} x", sobel_block / sobel_step);
    if smoke() {
        println!("bench blocks: smoke mode (bounded iterations, no timing assertions)");
    }
}
