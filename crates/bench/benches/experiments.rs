//! One Criterion benchmark per table/figure of the reconstructed
//! evaluation — running a bench target regenerates the corresponding
//! experiment end-to-end (under the `quick` configuration so the whole
//! suite stays tractable; use `cargo run -p nvp-experiments --bin repro`
//! for the full-size tables).

use criterion::{criterion_group, criterion_main, Criterion};
use nvp_experiments::{
    f10_policy_sweep, f11_clock_scaling, f1_power_profiles, f2_outage_stats, f3_forward_progress,
    f4_backup_overhead, f5_capacitor_sweep, f6_restore_sensitivity, f7_tech_sweep,
    f8_frame_latency, f9_retention_relaxation, t1_chip_gallery, t2_energy_distribution,
    t3_backup_strategies, ExpConfig,
};
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let cfg = ExpConfig::quick();
    // Simulation-heavy experiments get an even smaller per-iteration
    // configuration (one profile, 1 s traces) so Criterion's sampling
    // stays tractable; correctness-critical full runs live in the tests
    // and the `repro` binary.
    let mut tiny = ExpConfig::quick();
    tiny.trace_duration_s = 1.0;
    tiny.profile_seeds = vec![1];
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);

    group.bench_function("exp_t1_chip_gallery", |b| {
        b.iter(|| black_box(t1_chip_gallery::table(&cfg)))
    });
    group.bench_function("exp_f1_power_profiles", |b| {
        b.iter(|| black_box(f1_power_profiles::table(&cfg)))
    });
    group.bench_function("exp_f2_outage_stats", |b| {
        b.iter(|| black_box(f2_outage_stats::table(&cfg)))
    });
    group.bench_function("exp_f3_forward_progress", |b| {
        b.iter(|| black_box(f3_forward_progress::table(&tiny)))
    });
    group.bench_function("exp_f4_backup_overhead", |b| {
        b.iter(|| black_box(f4_backup_overhead::table(&tiny)))
    });
    group.bench_function("exp_f5_capacitor_sweep", |b| {
        b.iter(|| black_box(f5_capacitor_sweep::table(&tiny)))
    });
    group.bench_function("exp_f6_restore_sensitivity", |b| {
        b.iter(|| black_box(f6_restore_sensitivity::table(&tiny)))
    });
    group
        .bench_function("exp_f7_tech_sweep", |b| b.iter(|| black_box(f7_tech_sweep::table(&tiny))));
    group.bench_function("exp_t2_energy_distribution", |b| {
        b.iter(|| black_box(t2_energy_distribution::table(&cfg)))
    });
    group.bench_function("exp_f8_frame_latency", |b| {
        b.iter(|| black_box(f8_frame_latency::table(&tiny)))
    });
    group.bench_function("exp_t3_backup_strategies", |b| {
        b.iter(|| black_box(t3_backup_strategies::table(&tiny)))
    });
    group.bench_function("exp_f9_retention_relaxation", |b| {
        b.iter(|| black_box(f9_retention_relaxation::table(&tiny)))
    });
    group.bench_function("exp_f10_policy_sweep", |b| {
        b.iter(|| black_box(f10_policy_sweep::table(&tiny)))
    });
    group.bench_function("exp_f11_clock_scaling", |b| {
        b.iter(|| black_box(f11_clock_scaling::table(&tiny)))
    });
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
