//! Regression-tracked campaign-server benchmark
//! (`cargo bench --bench nvpd`).
//!
//! A plain `main`, like the runner bench: it stands up a real `nvpd`
//! server on an ephemeral loopback port and measures end-to-end job
//! throughput through the real client — connect, Submit frame, server
//! run, Result frame, decode — then writes `BENCH_nvpd.json` at the
//! repository root (override with `NVP_BENCH_NVPD_JSON`).
//!
//! Measured quantities (schema `nvp-bench-nvpd/2`):
//!
//! * `cold_jobs_per_sec` — duplicate `f3` campaign jobs submitted
//!   back-to-back with the simulation cache reset before each, so every
//!   job recomputes its simulations. Dominated by simulation work.
//! * `warm_jobs_per_sec` — the same jobs against the resident cache
//!   warmed by the first submission: every later job is pure dedup plus
//!   wire overhead, which is the number that makes a *resident* server
//!   worth running over one-shot `repro` invocations.
//! * `wire_round_trip_s` — best-of-reps single-job latency for a
//!   trivially small campaign (`t1`, a static table) on a warm cache:
//!   an upper bound on protocol + framing + scheduling overhead.
//! * `journal.*` — the same cold jobs against a *journalled* server
//!   (`--state-dir` semantics: write-ahead journal plus
//!   content-addressed result store). `cold_overhead_frac` is the
//!   durability tax on a cold job — the budget says ≤10% — and
//!   `replay_round_trip_s` is the latency of answering an identical
//!   resubmission from the durable result store without re-simulation.
//!
//! Wall-clock reads are confined to this crate (`crates/bench` is the
//! nvp-lint wall-clock exemption; measuring time is its job).

use std::fs;
use std::path::PathBuf;
use std::thread;
use std::time::Instant;

use nvp_experiments::{client, reset_sim_cache, CampaignRequest, ExpConfig};
use nvpd::{Server, ServerConfig};

const COLD_REPS: usize = 3;
const WARM_REPS: usize = 10;

fn main() {
    // One server for the whole bench: the resident process whose warm
    // cache the warm measurements are about. Every submission below is
    // accounted for in max_jobs so the server drains and joins cleanly.
    let total_jobs = 1 + COLD_REPS + WARM_REPS + 1 + WARM_REPS;
    let server = Server::bind("127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().expect("bound address").to_string();
    let cfg = ServerConfig { max_jobs: Some(total_jobs as u64), ..ServerConfig::default() };
    let server_thread = thread::spawn(move || server.run(&cfg).expect("server run"));

    let job = CampaignRequest::only(ExpConfig::quick(), &["f3"]);
    let tiny = CampaignRequest::only(ExpConfig::quick(), &["t1"]);

    // Warm-up: fills the process-wide frame/kernel/trace memo caches so
    // cold repetitions measure simulation work, not one-time setup.
    reset_sim_cache();
    client::submit(&addr, &job).expect("warm-up job");

    // Cold: each job recomputes (cache reset between submissions).
    let mut cold_best_s = f64::INFINITY;
    for _ in 0..COLD_REPS {
        reset_sim_cache();
        let t0 = Instant::now();
        let outcome = client::submit(&addr, &job).expect("cold job");
        cold_best_s = cold_best_s.min(t0.elapsed().as_secs_f64());
        assert!(outcome.result.cache.misses > 0, "cold job must simulate");
    }

    // Warm: the resident cache serves every simulation; jobs are pure
    // dedup + wire overhead. (The last cold rep left the cache hot.)
    let t0 = Instant::now();
    for _ in 0..WARM_REPS {
        let outcome = client::submit(&addr, &job).expect("warm job");
        assert_eq!(outcome.result.cache.misses, 0, "warm job must not simulate");
    }
    let warm_total_s = t0.elapsed().as_secs_f64();

    // Wire round-trip floor: a near-empty campaign on a warm cache.
    client::submit(&addr, &tiny).expect("tiny warm-up");
    let mut rt_best_s = f64::INFINITY;
    for _ in 0..WARM_REPS {
        let t0 = Instant::now();
        client::submit(&addr, &tiny).expect("tiny job");
        rt_best_s = rt_best_s.min(t0.elapsed().as_secs_f64());
    }

    let stats = server_thread.join().expect("server thread");
    assert_eq!(stats.completed, total_jobs as u64, "every job answered");
    reset_sim_cache();

    // Journalled server: the same cold work with the write-ahead
    // journal and result store in the path. Each cold rep uses a
    // distinct seed — identical requests would (by design) be replayed
    // from the result store instead of simulated.
    let state_dir = std::env::temp_dir().join(format!("nvpd_bench_state_{}", std::process::id()));
    let _ = fs::remove_dir_all(&state_dir);
    let journal_jobs = 1 + COLD_REPS + 1 + WARM_REPS;
    let server = Server::bind("127.0.0.1:0").expect("bind loopback");
    let jaddr = server.local_addr().expect("bound address").to_string();
    let jcfg = ServerConfig {
        max_jobs: Some(journal_jobs as u64),
        state_dir: Some(state_dir.clone()),
        ..ServerConfig::default()
    };
    let journal_thread = thread::spawn(move || server.run(&jcfg).expect("journalled server run"));

    let seeded = |seed: u64| {
        let mut req = CampaignRequest::only(ExpConfig::quick(), &["f3"]);
        req.seed = Some(seed);
        req
    };
    reset_sim_cache();
    client::submit(&jaddr, &seeded(100)).expect("journal warm-up job");
    let mut journal_cold_best_s = f64::INFINITY;
    for rep in 0..COLD_REPS {
        reset_sim_cache();
        let req = seeded(101 + rep as u64);
        let t0 = Instant::now();
        let outcome = client::submit(&jaddr, &req).expect("journalled cold job");
        journal_cold_best_s = journal_cold_best_s.min(t0.elapsed().as_secs_f64());
        assert!(outcome.result.cache.misses > 0, "journalled cold job must simulate");
        assert!(!outcome.replayed, "distinct seeds must not replay");
    }

    // Replay: an identical resubmission is answered straight from the
    // durable result store — the idempotent-retry fast path.
    let replay_req = seeded(101);
    client::submit(&jaddr, &replay_req).expect("replay warm-up");
    let mut replay_best_s = f64::INFINITY;
    for _ in 0..WARM_REPS {
        let t0 = Instant::now();
        let outcome = client::submit(&jaddr, &replay_req).expect("replayed job");
        replay_best_s = replay_best_s.min(t0.elapsed().as_secs_f64());
        assert!(outcome.replayed, "identical resubmission must replay");
    }

    let jstats = journal_thread.join().expect("journalled server thread");
    assert_eq!(jstats.completed, journal_jobs as u64, "every journalled job answered");
    assert_eq!(jstats.quarantined, 0, "a clean bench run quarantines nothing");
    let _ = fs::remove_dir_all(&state_dir);
    reset_sim_cache();

    let journal_overhead = journal_cold_best_s / cold_best_s - 1.0;

    let cold_jobs_per_sec = 1.0 / cold_best_s;
    let warm_jobs_per_sec = WARM_REPS as f64 / warm_total_s;
    let warm_speedup = cold_best_s / (warm_total_s / WARM_REPS as f64);

    println!(
        "bench nvpd/cold_job_s          {cold_best_s:>12.4} s (best of {COLD_REPS}, f3 quick)"
    );
    println!("bench nvpd/cold_jobs_per_sec   {cold_jobs_per_sec:>12.2}");
    println!("bench nvpd/warm_jobs_per_sec   {warm_jobs_per_sec:>12.2} ({WARM_REPS} deduped jobs)");
    println!("bench nvpd/warm_speedup        {warm_speedup:>12.2} x");
    println!("bench nvpd/wire_round_trip_s   {rt_best_s:>12.6} s (best of {WARM_REPS}, t1 quick)");
    println!(
        "bench nvpd/journal_cold_job_s  {journal_cold_best_s:>12.4} s ({:+.1}% vs plain cold)",
        journal_overhead * 100.0
    );
    println!(
        "bench nvpd/replay_round_trip_s {replay_best_s:>12.6} s (identical resubmission, \
         served from the result store)"
    );
    if journal_overhead > 0.10 {
        eprintln!(
            "bench nvpd: WARNING — journal overhead {:.1}% exceeds the 10% cold-job budget",
            journal_overhead * 100.0
        );
    }

    let out = std::env::var("NVP_BENCH_NVPD_JSON").map_or_else(
        |_| PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_nvpd.json")),
        PathBuf::from,
    );
    let comment = "recorded by `cargo bench -p nvp-bench --bench nvpd`; one resident server on \
                   loopback, jobs submitted through the real client; cold resets the simulation \
                   cache per job, warm reuses the resident cache (pure dedup + wire overhead); \
                   wire_round_trip_s is a warm t1-only job, an upper bound on protocol cost; \
                   journal.* repeats the cold jobs against a --state-dir server (write-ahead \
                   journal + result store), cold_overhead_frac is the durability tax (budget \
                   0.10), replay_round_trip_s answers an identical resubmission from the \
                   durable result store";
    let json = format!(
        "{{\n  \"schema\": \"nvp-bench-nvpd/2\",\n  \"comment\": \"{comment}\",\n  \
         \"cold\": {{\n    \"job_s\": {cold_best_s:.4},\n    \
         \"jobs_per_sec\": {cold_jobs_per_sec:.2},\n    \"reps\": {COLD_REPS}\n  }},\n  \
         \"warm\": {{\n    \"jobs_per_sec\": {warm_jobs_per_sec:.2},\n    \
         \"speedup_vs_cold\": {warm_speedup:.2},\n    \"reps\": {WARM_REPS}\n  }},\n  \
         \"wire_round_trip_s\": {rt_best_s:.6},\n  \
         \"journal\": {{\n    \"cold_job_s\": {journal_cold_best_s:.4},\n    \
         \"cold_overhead_frac\": {journal_overhead:.4},\n    \
         \"replay_round_trip_s\": {replay_best_s:.6},\n    \"reps\": {COLD_REPS}\n  }}\n}}\n"
    );
    fs::write(&out, json).expect("write BENCH_nvpd.json");
    println!("wrote {}", out.display());
}
