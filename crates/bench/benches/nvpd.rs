//! Regression-tracked campaign-server benchmark
//! (`cargo bench --bench nvpd`).
//!
//! A plain `main`, like the runner bench: it stands up a real `nvpd`
//! server on an ephemeral loopback port and measures end-to-end job
//! throughput through the real client — connect, Submit frame, server
//! run, Result frame, decode — then writes `BENCH_nvpd.json` at the
//! repository root (override with `NVP_BENCH_NVPD_JSON`).
//!
//! Measured quantities (schema `nvp-bench-nvpd/1`):
//!
//! * `cold_jobs_per_sec` — duplicate `f3` campaign jobs submitted
//!   back-to-back with the simulation cache reset before each, so every
//!   job recomputes its simulations. Dominated by simulation work.
//! * `warm_jobs_per_sec` — the same jobs against the resident cache
//!   warmed by the first submission: every later job is pure dedup plus
//!   wire overhead, which is the number that makes a *resident* server
//!   worth running over one-shot `repro` invocations.
//! * `wire_round_trip_s` — best-of-reps single-job latency for a
//!   trivially small campaign (`t1`, a static table) on a warm cache:
//!   an upper bound on protocol + framing + scheduling overhead.
//!
//! Wall-clock reads are confined to this crate (`crates/bench` is the
//! nvp-lint wall-clock exemption; measuring time is its job).

use std::fs;
use std::path::PathBuf;
use std::thread;
use std::time::Instant;

use nvp_experiments::{client, reset_sim_cache, CampaignRequest, ExpConfig};
use nvpd::{Server, ServerConfig};

const COLD_REPS: usize = 3;
const WARM_REPS: usize = 10;

fn main() {
    // One server for the whole bench: the resident process whose warm
    // cache the warm measurements are about. Every submission below is
    // accounted for in max_jobs so the server drains and joins cleanly.
    let total_jobs = 1 + COLD_REPS + WARM_REPS + 1 + WARM_REPS;
    let server = Server::bind("127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().expect("bound address").to_string();
    let cfg = ServerConfig { max_jobs: Some(total_jobs as u64), ..ServerConfig::default() };
    let server_thread = thread::spawn(move || server.run(&cfg).expect("server run"));

    let job = CampaignRequest::only(ExpConfig::quick(), &["f3"]);
    let tiny = CampaignRequest::only(ExpConfig::quick(), &["t1"]);

    // Warm-up: fills the process-wide frame/kernel/trace memo caches so
    // cold repetitions measure simulation work, not one-time setup.
    reset_sim_cache();
    client::submit(&addr, &job).expect("warm-up job");

    // Cold: each job recomputes (cache reset between submissions).
    let mut cold_best_s = f64::INFINITY;
    for _ in 0..COLD_REPS {
        reset_sim_cache();
        let t0 = Instant::now();
        let outcome = client::submit(&addr, &job).expect("cold job");
        cold_best_s = cold_best_s.min(t0.elapsed().as_secs_f64());
        assert!(outcome.result.cache.misses > 0, "cold job must simulate");
    }

    // Warm: the resident cache serves every simulation; jobs are pure
    // dedup + wire overhead. (The last cold rep left the cache hot.)
    let t0 = Instant::now();
    for _ in 0..WARM_REPS {
        let outcome = client::submit(&addr, &job).expect("warm job");
        assert_eq!(outcome.result.cache.misses, 0, "warm job must not simulate");
    }
    let warm_total_s = t0.elapsed().as_secs_f64();

    // Wire round-trip floor: a near-empty campaign on a warm cache.
    client::submit(&addr, &tiny).expect("tiny warm-up");
    let mut rt_best_s = f64::INFINITY;
    for _ in 0..WARM_REPS {
        let t0 = Instant::now();
        client::submit(&addr, &tiny).expect("tiny job");
        rt_best_s = rt_best_s.min(t0.elapsed().as_secs_f64());
    }

    let stats = server_thread.join().expect("server thread");
    assert_eq!(stats.completed, total_jobs as u64, "every job answered");
    reset_sim_cache();

    let cold_jobs_per_sec = 1.0 / cold_best_s;
    let warm_jobs_per_sec = WARM_REPS as f64 / warm_total_s;
    let warm_speedup = cold_best_s / (warm_total_s / WARM_REPS as f64);

    println!(
        "bench nvpd/cold_job_s          {cold_best_s:>12.4} s (best of {COLD_REPS}, f3 quick)"
    );
    println!("bench nvpd/cold_jobs_per_sec   {cold_jobs_per_sec:>12.2}");
    println!("bench nvpd/warm_jobs_per_sec   {warm_jobs_per_sec:>12.2} ({WARM_REPS} deduped jobs)");
    println!("bench nvpd/warm_speedup        {warm_speedup:>12.2} x");
    println!("bench nvpd/wire_round_trip_s   {rt_best_s:>12.6} s (best of {WARM_REPS}, t1 quick)");

    let out = std::env::var("NVP_BENCH_NVPD_JSON").map_or_else(
        |_| PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_nvpd.json")),
        PathBuf::from,
    );
    let comment = "recorded by `cargo bench -p nvp-bench --bench nvpd`; one resident server on \
                   loopback, jobs submitted through the real client; cold resets the simulation \
                   cache per job, warm reuses the resident cache (pure dedup + wire overhead); \
                   wire_round_trip_s is a warm t1-only job, an upper bound on protocol cost";
    let json = format!(
        "{{\n  \"schema\": \"nvp-bench-nvpd/1\",\n  \"comment\": \"{comment}\",\n  \
         \"cold\": {{\n    \"job_s\": {cold_best_s:.4},\n    \
         \"jobs_per_sec\": {cold_jobs_per_sec:.2},\n    \"reps\": {COLD_REPS}\n  }},\n  \
         \"warm\": {{\n    \"jobs_per_sec\": {warm_jobs_per_sec:.2},\n    \
         \"speedup_vs_cold\": {warm_speedup:.2},\n    \"reps\": {WARM_REPS}\n  }},\n  \
         \"wire_round_trip_s\": {rt_best_s:.6}\n}}\n"
    );
    fs::write(&out, json).expect("write BENCH_nvpd.json");
    println!("wrote {}", out.display());
}
