//! Regression-tracked runner benchmark (`cargo bench --bench runner`).
//!
//! Not a Criterion target: a plain `main` that measures the end-to-end
//! evaluation runner and the simulator hot path, then writes the
//! machine-readable snapshot `BENCH_runner.json` at the repository root
//! (override the location with `NVP_BENCH_RUNNER_JSON`). The checked-in
//! copy is the baseline; rerun after perf-sensitive changes and compare.
//!
//! Measured quantities:
//!
//! * `run_all_quick.parallel_s` / `sequential_s` — best-of-3 wall time
//!   of `run_all(ExpConfig::quick())` on the scoped thread pool vs. the
//!   sequential reference forced to one worker via
//!   `set_thread_override` (the thread count used is recorded next to
//!   each figure). A warm-up run first fills the process-wide
//!   frame/kernel/trace memo caches, and the simulation cache is reset
//!   before every repetition, so both timings measure real simulation
//!   work, not first-touch input synthesis or cache hits.
//! * `sim_cache.cold_s` / `warm_s` — one `run_all` against an empty
//!   simulation cache vs. a fully populated one, plus the unique/hit
//!   counts, quantifying the cross-experiment deduplication win.
//! * `simulator.tight_loop_steps_per_sec` — `Machine::step` throughput
//!   on a branchy ALU loop (the predecode fast path).
//! * `simulator.block_steps_per_sec` — `Machine::run_blocks` throughput
//!   on the same loop (the fused basic-block engine).
//! * `simulator.sobel_steps_per_sec` — `Machine::step` on the Sobel
//!   kernel image (loads/stores/multiplies included).

use std::fs;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

use nvp_experiments::{
    registry, reset_sim_cache, run_all, run_all_sequential, set_thread_override, thread_count,
    ExpConfig, RunArtifacts,
};
use nvp_isa::asm::assemble;
use nvp_sim::Machine;
use nvp_workloads::{GrayImage, KernelKind};

const REPS: usize = 3;

fn unique_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("{tag}_{}_{n}", std::process::id()))
}

/// Best-of-`REPS` wall time of one `run_all` variant, seconds. With
/// `cold_cache`, the simulation cache is cleared before every
/// repetition so each one re-simulates from scratch.
fn time_runner(
    f: impl Fn(&ExpConfig, &std::path::Path) -> std::io::Result<RunArtifacts>,
    cold_cache: bool,
) -> f64 {
    let cfg = ExpConfig::quick();
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let dir = unique_dir("nvp_bench_runner");
        if cold_cache {
            reset_sim_cache();
        }
        let t0 = Instant::now();
        black_box(f(&cfg, &dir).expect("run_all succeeds"));
        best = best.min(t0.elapsed().as_secs_f64());
        let _ = fs::remove_dir_all(&dir);
    }
    best
}

/// Best-of-`REPS` throughput of `advance` on fresh machines, running
/// `insts` instructions per repetition (instructions per second).
fn steps_per_sec(
    mut fresh: impl FnMut() -> Machine,
    advance: impl Fn(&mut Machine, u64) -> u64,
    insts: u64,
) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..REPS {
        let mut m = fresh();
        let t0 = Instant::now();
        let mut executed = 0;
        while executed < insts {
            executed += advance(&mut m, insts - executed);
            if m.halted() {
                break;
            }
        }
        let rate = executed as f64 / t0.elapsed().as_secs_f64();
        best = best.max(rate);
    }
    best
}

fn main() {
    let cfg = ExpConfig::quick();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let parallel_threads = thread_count(registry().len());

    // Warm the memo caches so parallel and sequential timings are
    // measured against identical (all-hot) inputs; the simulation
    // cache itself is reset per repetition below.
    {
        let dir = unique_dir("nvp_bench_runner_warmup");
        run_all(&cfg, &dir).expect("warm-up run succeeds");
        let _ = fs::remove_dir_all(&dir);
    }

    let parallel_s = time_runner(run_all, true);
    set_thread_override(Some(1));
    let sequential_s = time_runner(run_all_sequential, true);
    set_thread_override(None);
    let speedup = sequential_s / parallel_s;

    // Cache effectiveness: one run against an empty simulation cache,
    // then one against the fully populated cache it leaves behind.
    let (cache_cold_s, cache_warm_s, unique_sims, warm_hits) = {
        reset_sim_cache();
        let dir = unique_dir("nvp_bench_cache");
        let t0 = Instant::now();
        let cold = run_all(&cfg, &dir).expect("cold run succeeds");
        let cold_s = t0.elapsed().as_secs_f64();
        let _ = fs::remove_dir_all(&dir);
        let dir = unique_dir("nvp_bench_cache");
        let t0 = Instant::now();
        let warm = run_all(&cfg, &dir).expect("warm run succeeds");
        let warm_s = t0.elapsed().as_secs_f64();
        let _ = fs::remove_dir_all(&dir);
        (cold_s, warm_s, cold.cache.misses, warm.cache.hits)
    };
    let cache_speedup = cache_cold_s / cache_warm_s;

    let tight = assemble("start: addi r1, r1, 1\n xor r2, r2, r1\n bne r1, r0, start\n halt")
        .expect("tight loop assembles");
    let step_run = |m: &mut Machine, n: u64| m.run(n).expect("program runs");
    let block_run = |m: &mut Machine, n: u64| m.run_blocks(n).expect("program runs").executed;
    let tight_rate = steps_per_sec(|| Machine::new(&tight).expect("loads"), step_run, 2_000_000);
    let block_rate = steps_per_sec(|| Machine::new(&tight).expect("loads"), block_run, 2_000_000);

    let frame = GrayImage::synthetic(7, 32, 32);
    let sobel = KernelKind::Sobel.build(&frame).expect("sobel builds");
    let sobel_rate = steps_per_sec(|| sobel.machine().expect("loads"), step_run, 2_000_000);

    println!("bench runner/run_all_quick_parallel      {parallel_s:>12.4} s (best of {REPS}, {parallel_threads} thread(s))");
    println!("bench runner/run_all_quick_sequential    {sequential_s:>12.4} s (best of {REPS}, 1 thread)");
    println!("bench runner/speedup                     {speedup:>12.2} x on {cores} core(s)");
    println!("bench runner/sim_cache_cold              {cache_cold_s:>12.4} s ({unique_sims} unique sims)");
    println!("bench runner/sim_cache_warm              {cache_warm_s:>12.4} s ({warm_hits} hits)");
    println!("bench runner/sim_cache_speedup           {cache_speedup:>12.2} x");
    println!("bench runner/tight_loop_steps_per_sec    {tight_rate:>12.0}");
    println!("bench runner/block_steps_per_sec         {block_rate:>12.0}");
    println!("bench runner/sobel_steps_per_sec         {sobel_rate:>12.0}");

    let out = std::env::var("NVP_BENCH_RUNNER_JSON").map_or_else(
        |_| PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runner.json")),
        PathBuf::from,
    );
    let comment = "recorded by `cargo bench -p nvp-bench --bench runner`; wall times are \
                   best-of-3 with the simulation cache reset per repetition; *_threads is the \
                   worker count used for that measurement";
    let json = format!(
        "{{\n  \"schema\": \"nvp-bench-runner/2\",\n  \"comment\": \"{comment}\",\n  \
         \"host_cores\": {cores},\n  \
         \"run_all_quick\": {{\n    \"parallel_s\": {parallel_s:.4},\n    \
         \"parallel_threads\": {parallel_threads},\n    \
         \"sequential_s\": {sequential_s:.4},\n    \"sequential_threads\": 1,\n    \
         \"speedup\": {speedup:.3}\n  }},\n  \
         \"sim_cache\": {{\n    \"cold_s\": {cache_cold_s:.4},\n    \
         \"warm_s\": {cache_warm_s:.4},\n    \"speedup\": {cache_speedup:.3},\n    \
         \"unique_sims\": {unique_sims},\n    \"warm_hits\": {warm_hits}\n  }},\n  \
         \"simulator\": {{\n    \"tight_loop_steps_per_sec\": {tight_rate:.0},\n    \
         \"block_steps_per_sec\": {block_rate:.0},\n    \
         \"sobel_steps_per_sec\": {sobel_rate:.0}\n  }}\n}}\n"
    );
    fs::write(&out, json).expect("write BENCH_runner.json");
    println!("wrote {}", out.display());
}
