//! Regression-tracked runner benchmark (`cargo bench --bench runner`).
//!
//! Not a Criterion target: a plain `main` that measures the end-to-end
//! evaluation runner and the simulator hot path, then writes the
//! machine-readable snapshot `BENCH_runner.json` at the repository root
//! (override the location with `NVP_BENCH_RUNNER_JSON`). The checked-in
//! copy is the baseline; rerun after perf-sensitive changes and compare.
//!
//! Measured quantities:
//!
//! * `run_all_quick.parallel_s` / `sequential_s` — best-of-3 wall time
//!   of `run_all(ExpConfig::quick())` on the scoped thread pool vs. the
//!   sequential reference with `NVP_THREADS=1`. A warm-up run first
//!   fills the process-wide frame/kernel/trace memo caches so both
//!   timings measure the runner, not first-touch input synthesis.
//! * `simulator.tight_loop_steps_per_sec` — `Machine::step` throughput
//!   on a branchy ALU loop (the predecode fast path).
//! * `simulator.sobel_steps_per_sec` — the same for the Sobel kernel
//!   image (loads/stores/multiplies included).

use std::fs;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

use nvp_experiments::{run_all, run_all_sequential, ExpConfig};
use nvp_isa::asm::assemble;
use nvp_sim::Machine;
use nvp_workloads::{GrayImage, KernelKind};

const REPS: usize = 3;

fn unique_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("{tag}_{}_{n}", std::process::id()))
}

/// Best-of-`REPS` wall time of one `run_all` variant, seconds.
fn time_runner(
    f: impl Fn(&ExpConfig, &std::path::Path) -> std::io::Result<nvp_experiments::RunArtifacts>,
) -> f64 {
    let cfg = ExpConfig::quick();
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let dir = unique_dir("nvp_bench_runner");
        let t0 = Instant::now();
        black_box(f(&cfg, &dir).expect("run_all succeeds"));
        best = best.min(t0.elapsed().as_secs_f64());
        let _ = fs::remove_dir_all(&dir);
    }
    best
}

/// Best-of-`REPS` `Machine::step` throughput for `machine`, running
/// `insts` instructions per repetition (instructions per second).
fn steps_per_sec(mut fresh: impl FnMut() -> Machine, insts: u64) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..REPS {
        let mut m = fresh();
        let t0 = Instant::now();
        let mut executed = 0;
        while executed < insts {
            executed += m.run(insts - executed).expect("program runs");
            if m.halted() {
                break;
            }
        }
        let rate = executed as f64 / t0.elapsed().as_secs_f64();
        best = best.max(rate);
    }
    best
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Warm the memo caches so parallel and sequential timings are
    // measured against identical (all-hot) inputs.
    {
        let dir = unique_dir("nvp_bench_runner_warmup");
        run_all(&ExpConfig::quick(), &dir).expect("warm-up run succeeds");
        let _ = fs::remove_dir_all(&dir);
    }

    let parallel_s = time_runner(run_all);
    std::env::set_var("NVP_THREADS", "1");
    let sequential_s = time_runner(run_all_sequential);
    std::env::remove_var("NVP_THREADS");
    let speedup = sequential_s / parallel_s;

    let tight = assemble("start: addi r1, r1, 1\n xor r2, r2, r1\n bne r1, r0, start\n halt")
        .expect("tight loop assembles");
    let tight_rate = steps_per_sec(|| Machine::new(&tight).expect("loads"), 2_000_000);

    let frame = GrayImage::synthetic(7, 32, 32);
    let sobel = KernelKind::Sobel.build(&frame).expect("sobel builds");
    let sobel_rate = steps_per_sec(|| sobel.machine().expect("loads"), 2_000_000);

    println!("bench runner/run_all_quick_parallel      {parallel_s:>12.4} s (best of {REPS})");
    println!("bench runner/run_all_quick_sequential    {sequential_s:>12.4} s (best of {REPS})");
    println!("bench runner/speedup                     {speedup:>12.2} x on {cores} core(s)");
    println!("bench runner/tight_loop_steps_per_sec    {tight_rate:>12.0}");
    println!("bench runner/sobel_steps_per_sec         {sobel_rate:>12.0}");

    let out = std::env::var("NVP_BENCH_RUNNER_JSON").map_or_else(
        |_| PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runner.json")),
        PathBuf::from,
    );
    let json = format!(
        "{{\n  \"schema\": \"nvp-bench-runner/1\",\n  \"host_cores\": {cores},\n  \
         \"run_all_quick\": {{\n    \"parallel_s\": {parallel_s:.4},\n    \
         \"sequential_s\": {sequential_s:.4},\n    \"speedup\": {speedup:.3}\n  }},\n  \
         \"simulator\": {{\n    \"tight_loop_steps_per_sec\": {tight_rate:.0},\n    \
         \"sobel_steps_per_sec\": {sobel_rate:.0}\n  }}\n}}\n"
    );
    fs::write(&out, json).expect("write BENCH_runner.json");
    println!("wrote {}", out.display());
}
