//! Regression-tracked runner benchmark (`cargo bench --bench runner`).
//!
//! Not a Criterion target: a plain `main` that measures the end-to-end
//! evaluation runner and the simulator hot path, then writes the
//! machine-readable snapshot `BENCH_runner.json` at the repository root
//! (override the location with `NVP_BENCH_RUNNER_JSON`). The checked-in
//! copy is the baseline; rerun after perf-sensitive changes and compare.
//!
//! Measured quantities (schema `nvp-bench-runner/4`):
//!
//! * `run_all_quick.parallel_s` / `sequential_s` — best-of-3 wall time
//!   of `run_all(ExpConfig::quick())` on the work-stealing scheduler
//!   vs. the sequential reference forced to one worker via
//!   `set_thread_override`. The parallel and sequential repetitions
//!   are **interleaved** (par, seq, par, seq, …) so slow drift on a
//!   shared host biases both sides equally instead of whichever ran
//!   second. `parallel_4t_s` repeats the parallel side pinned to four
//!   workers; on a single-core host that mostly measures scheduler
//!   overhead, which is the honest number to track there.
//! * `scheduler` — tasks submitted, steals, and helper threads spawned
//!   during one 4-worker `run_all`, from `sched_stats()`.
//! * `sim_cache` — in-memory dedup: one `run_all` against an empty
//!   simulation cache vs. a fully populated one.
//! * `sim_cache_disk` — the persistent store: a cold run that writes
//!   the record log, then a simulated fresh process (index cleared,
//!   directory re-opened) whose run is served entirely from disk.
//! * `f12_campaign` — best-of-3 cold wall time of the F12 Monte-Carlo
//!   fault campaign alone (`run_only(["f12"])`, cache reset per rep),
//!   the workload the lane-group dispatch and shared program image
//!   target, with the lane-group counters from one run.
//! * `simulator.*_steps_per_sec` — `Machine::step` / `run_blocks` /
//!   `run_superblocks` / `LaneMachine` throughput on a branchy ALU
//!   loop and the Sobel kernel (lane throughput is effective: total
//!   instructions across all lanes per second).
//!
//! A warm-up run first fills the process-wide frame/kernel/trace memo
//! caches, and the simulation cache is reset before every timed
//! repetition unless the measurement is explicitly about cache warmth,
//! so wall times measure real simulation work.

use std::fs;
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use nvp_experiments::{
    registry, reset_sim_cache, run_all, run_all_sequential, run_only, sched_stats, set_cache_dir,
    set_thread_override, thread_count, ExpConfig,
};
use nvp_isa::asm::assemble;
use nvp_sim::{CycleModel, EnergyModel, LaneMachine, Machine, MachineImage};
use nvp_workloads::{GrayImage, KernelKind};

const REPS: usize = 3;

/// Lane width for the lane-tier throughput measurement.
const LANE_WIDTH: usize = 64;

fn unique_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("{tag}_{}_{n}", std::process::id()))
}

/// One cold-cache `run_all` (or variant), returning its wall time.
fn time_one(f: impl Fn(&ExpConfig, &std::path::Path) -> std::io::Result<()>) -> f64 {
    let cfg = ExpConfig::quick();
    let dir = unique_dir("nvp_bench_runner");
    reset_sim_cache();
    let t0 = Instant::now();
    f(&cfg, &dir).expect("run succeeds");
    let dt = t0.elapsed().as_secs_f64();
    let _ = fs::remove_dir_all(&dir);
    dt
}

/// Best-of-`REPS` throughput of `advance` on fresh machines, running
/// `insts` instructions per repetition (instructions per second).
fn steps_per_sec(
    mut fresh: impl FnMut() -> Machine,
    advance: impl Fn(&mut Machine, u64) -> u64,
    insts: u64,
) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..REPS {
        let mut m = fresh();
        let t0 = Instant::now();
        let mut executed = 0;
        while executed < insts {
            executed += advance(&mut m, insts - executed);
            if m.halted() {
                break;
            }
        }
        let rate = executed as f64 / t0.elapsed().as_secs_f64();
        best = best.max(rate);
    }
    best
}

#[allow(clippy::too_many_lines)]
fn main() {
    let cfg = ExpConfig::quick();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let parallel_threads = thread_count(registry().len() + cfg.profile_seeds.len());

    // Warm the memo caches so every timed variant sees identical
    // (all-hot) inputs; the simulation cache is reset per repetition.
    {
        let dir = unique_dir("nvp_bench_runner_warmup");
        run_all(&cfg, &dir).expect("warm-up run succeeds");
        let _ = fs::remove_dir_all(&dir);
    }

    // Interleaved best-of-REPS: par, seq, par-4t in each round, so host
    // drift cannot systematically favor one side.
    let run_par = |c: &ExpConfig, d: &std::path::Path| run_all(c, d).map(|a| drop(black_box(a)));
    let run_seq =
        |c: &ExpConfig, d: &std::path::Path| run_all_sequential(c, d).map(|a| drop(black_box(a)));
    let mut parallel_s = f64::INFINITY;
    let mut sequential_s = f64::INFINITY;
    let mut parallel_4t_s = f64::INFINITY;
    for _ in 0..REPS {
        set_thread_override(None);
        parallel_s = parallel_s.min(time_one(run_par));
        set_thread_override(Some(1));
        sequential_s = sequential_s.min(time_one(run_seq));
        set_thread_override(Some(4));
        parallel_4t_s = parallel_4t_s.min(time_one(run_par));
    }
    set_thread_override(None);
    let speedup = sequential_s / parallel_s;
    let speedup_4t = sequential_s / parallel_4t_s;

    // Scheduler counters for one 4-worker campaign.
    let (sched_tasks, sched_steals, sched_helpers) = {
        set_thread_override(Some(4));
        let before = sched_stats();
        let dir = unique_dir("nvp_bench_sched");
        reset_sim_cache();
        run_all(&cfg, &dir).expect("run succeeds");
        let _ = fs::remove_dir_all(&dir);
        set_thread_override(None);
        let d = sched_stats().since(before);
        (d.tasks, d.steals, d.helpers)
    };

    // In-memory cache effectiveness: empty vs. fully populated.
    let (cache_cold_s, cache_warm_s, unique_sims, warm_hits) = {
        reset_sim_cache();
        let dir = unique_dir("nvp_bench_cache");
        let t0 = Instant::now();
        let cold = run_all(&cfg, &dir).expect("cold run succeeds");
        let cold_s = t0.elapsed().as_secs_f64();
        let _ = fs::remove_dir_all(&dir);
        let dir = unique_dir("nvp_bench_cache");
        let t0 = Instant::now();
        let warm = run_all(&cfg, &dir).expect("warm run succeeds");
        let warm_s = t0.elapsed().as_secs_f64();
        let _ = fs::remove_dir_all(&dir);
        (cold_s, warm_s, cold.cache.misses, warm.cache.hits)
    };
    let cache_speedup = cache_cold_s / cache_warm_s;

    // Persistent store: cold run writing the log, then a simulated
    // fresh process (index cleared, directory re-opened) served
    // entirely from disk.
    let (disk_cold_s, disk_warm_s, disk_persisted, disk_reloaded, disk_hits) = {
        let cache_dir = unique_dir("nvp_bench_disk_cache");
        set_cache_dir(Some(&cache_dir)).expect("open bench cache dir");
        reset_sim_cache();
        let dir = unique_dir("nvp_bench_disk");
        let t0 = Instant::now();
        let cold = run_all(&cfg, &dir).expect("cold persist run succeeds");
        let cold_s = t0.elapsed().as_secs_f64();
        let _ = fs::remove_dir_all(&dir);
        reset_sim_cache();
        let reloaded = set_cache_dir(Some(&cache_dir)).expect("reload bench cache dir");
        let dir = unique_dir("nvp_bench_disk");
        let t0 = Instant::now();
        let warm = run_all(&cfg, &dir).expect("warm disk run succeeds");
        let warm_s = t0.elapsed().as_secs_f64();
        let _ = fs::remove_dir_all(&dir);
        set_cache_dir(None).expect("disable bench cache dir");
        let _ = fs::remove_dir_all(&cache_dir);
        (cold_s, warm_s, cold.cache.persisted, reloaded, warm.cache.disk_hits)
    };
    let disk_speedup = disk_cold_s / disk_warm_s;

    // F12 campaign alone, cold, best-of-REPS: the Monte-Carlo fault
    // sweep is what the lane-group dispatch and shared image target.
    let run_f12 =
        |c: &ExpConfig, d: &std::path::Path| run_only(c, d, &["f12"]).map(|a| drop(black_box(a)));
    let mut f12_cold_s = f64::INFINITY;
    for _ in 0..REPS {
        f12_cold_s = f12_cold_s.min(time_one(run_f12));
    }
    let (f12_lane_groups, f12_lane_group_items) = {
        reset_sim_cache();
        let dir = unique_dir("nvp_bench_f12");
        let artifacts = run_only(&cfg, &dir, &["f12"]).expect("f12 run succeeds");
        let _ = fs::remove_dir_all(&dir);
        (artifacts.exec.lane_groups, artifacts.exec.lane_group_items)
    };

    let tight = assemble("start: addi r1, r1, 1\n xor r2, r2, r1\n bne r1, r0, start\n halt")
        .expect("tight loop assembles");
    let step_run = |m: &mut Machine, n: u64| m.run(n).expect("program runs");
    let block_run = |m: &mut Machine, n: u64| m.run_blocks(n).expect("program runs").executed;
    let super_run = |m: &mut Machine, n: u64| m.run_superblocks(n).expect("program runs").executed;
    let tight_image = Arc::new(
        MachineImage::build(&tight, 64, CycleModel::default(), EnergyModel::default())
            .expect("tight image builds"),
    );
    let tight_rate = steps_per_sec(|| Machine::new(&tight).expect("loads"), step_run, 2_000_000);
    let block_rate = steps_per_sec(|| Machine::new(&tight).expect("loads"), block_run, 2_000_000);
    let super_rate = steps_per_sec(|| Machine::from_image(&tight_image), super_run, 2_000_000);
    let lane_rate = {
        let mut best = 0.0f64;
        for _ in 0..REPS {
            let mut lm = LaneMachine::new(&tight_image, LANE_WIDTH);
            let t0 = Instant::now();
            while !lm.all_done() {
                lm.run(1_000_000);
            }
            black_box(&lm);
            let total: u64 = (0..LANE_WIDTH).map(|l| lm.lane_counters(l).instructions).sum();
            best = best.max(total as f64 / t0.elapsed().as_secs_f64());
        }
        best
    };

    let frame = GrayImage::synthetic(7, 32, 32);
    let sobel = KernelKind::Sobel.build(&frame).expect("sobel builds");
    let sobel_rate = steps_per_sec(|| sobel.machine().expect("loads"), step_run, 2_000_000);

    println!("bench runner/run_all_quick_parallel      {parallel_s:>12.4} s (best of {REPS}, {parallel_threads} thread(s))");
    println!("bench runner/run_all_quick_parallel_4t   {parallel_4t_s:>12.4} s (best of {REPS}, 4 threads)");
    println!("bench runner/run_all_quick_sequential    {sequential_s:>12.4} s (best of {REPS}, 1 thread)");
    println!("bench runner/speedup                     {speedup:>12.2} x on {cores} core(s)");
    println!("bench runner/speedup_4t                  {speedup_4t:>12.2} x on {cores} core(s)");
    println!("bench runner/sched_tasks                 {sched_tasks:>12}");
    println!("bench runner/sched_steals                {sched_steals:>12}");
    println!("bench runner/sched_helpers               {sched_helpers:>12}");
    println!("bench runner/sim_cache_cold              {cache_cold_s:>12.4} s ({unique_sims} unique sims)");
    println!("bench runner/sim_cache_warm              {cache_warm_s:>12.4} s ({warm_hits} hits)");
    println!("bench runner/sim_cache_speedup           {cache_speedup:>12.2} x");
    println!("bench runner/sim_cache_disk_cold         {disk_cold_s:>12.4} s ({disk_persisted} records persisted)");
    println!("bench runner/sim_cache_disk_warm         {disk_warm_s:>12.4} s ({disk_reloaded} reloaded, {disk_hits} disk hits)");
    println!("bench runner/sim_cache_disk_speedup      {disk_speedup:>12.2} x");
    println!("bench runner/f12_campaign_cold           {f12_cold_s:>12.4} s (best of {REPS}, {f12_lane_groups} lane groups / {f12_lane_group_items} trials)");
    println!("bench runner/tight_loop_steps_per_sec    {tight_rate:>12.0}");
    println!("bench runner/block_steps_per_sec         {block_rate:>12.0}");
    println!("bench runner/superblock_steps_per_sec    {super_rate:>12.0}");
    println!("bench runner/lane_steps_per_sec          {lane_rate:>12.0} ({LANE_WIDTH} lanes)");
    println!("bench runner/sobel_steps_per_sec         {sobel_rate:>12.0}");

    let out = std::env::var("NVP_BENCH_RUNNER_JSON").map_or_else(
        |_| PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runner.json")),
        PathBuf::from,
    );
    let comment = "recorded by `cargo bench -p nvp-bench --bench runner`; wall times are \
                   best-of-3 with parallel/sequential repetitions interleaved and the \
                   simulation cache reset per repetition; *_threads is the worker count used \
                   for that measurement; sim_cache_disk times a cold persistent-store write \
                   and a fresh-process reload served entirely from disk; f12_campaign is the \
                   cold Monte-Carlo fault sweep alone; lane_steps_per_sec is effective \
                   (instructions across all lanes per second)";
    let json = format!(
        "{{\n  \"schema\": \"nvp-bench-runner/4\",\n  \"comment\": \"{comment}\",\n  \
         \"host_cores\": {cores},\n  \
         \"run_all_quick\": {{\n    \"parallel_s\": {parallel_s:.4},\n    \
         \"parallel_threads\": {parallel_threads},\n    \
         \"parallel_4t_s\": {parallel_4t_s:.4},\n    \
         \"sequential_s\": {sequential_s:.4},\n    \"sequential_threads\": 1,\n    \
         \"speedup\": {speedup:.3},\n    \"speedup_4t\": {speedup_4t:.3}\n  }},\n  \
         \"scheduler\": {{\n    \"threads\": 4,\n    \"tasks\": {sched_tasks},\n    \
         \"steals\": {sched_steals},\n    \"helpers\": {sched_helpers}\n  }},\n  \
         \"sim_cache\": {{\n    \"cold_s\": {cache_cold_s:.4},\n    \
         \"warm_s\": {cache_warm_s:.4},\n    \"speedup\": {cache_speedup:.3},\n    \
         \"unique_sims\": {unique_sims},\n    \"warm_hits\": {warm_hits}\n  }},\n  \
         \"sim_cache_disk\": {{\n    \"cold_persist_s\": {disk_cold_s:.4},\n    \
         \"warm_reload_s\": {disk_warm_s:.4},\n    \"speedup\": {disk_speedup:.3},\n    \
         \"persisted\": {disk_persisted},\n    \"reloaded\": {disk_reloaded},\n    \
         \"disk_hits\": {disk_hits}\n  }},\n  \
         \"f12_campaign\": {{\n    \"cold_s\": {f12_cold_s:.4},\n    \
         \"lane_groups\": {f12_lane_groups},\n    \
         \"lane_group_items\": {f12_lane_group_items}\n  }},\n  \
         \"simulator\": {{\n    \"tight_loop_steps_per_sec\": {tight_rate:.0},\n    \
         \"block_steps_per_sec\": {block_rate:.0},\n    \
         \"superblock_steps_per_sec\": {super_rate:.0},\n    \
         \"lane_steps_per_sec\": {lane_rate:.0},\n    \
         \"lane_width\": {LANE_WIDTH},\n    \
         \"sobel_steps_per_sec\": {sobel_rate:.0}\n  }}\n}}\n"
    );
    fs::write(&out, json).expect("write BENCH_runner.json");
    println!("wrote {}", out.display());
}
