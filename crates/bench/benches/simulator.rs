//! Micro-benchmarks for the execution substrates: raw NV16 instruction
//! throughput, the system-level intermittent loop, kernel execution, and
//! the per-operation cost of the three backup styles (the T3 ablation at
//! the model level).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nvp_core::{BackupModel, BackupPolicy, IntermittentSystem, SystemConfig};
use nvp_device::NvmTechnology;
use nvp_energy::{harvester, PowerTrace};
use nvp_isa::asm::assemble;
use nvp_sim::Machine;
use nvp_workloads::{GrayImage, KernelKind};
use std::hint::black_box;

fn bench_machine_throughput(c: &mut Criterion) {
    let program = assemble("start: addi r1, r1, 1\n xor r2, r2, r1\n j start").unwrap();
    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("machine_100k_insts", |b| {
        b.iter(|| {
            let mut m = Machine::new(&program).unwrap();
            m.run(100_000).unwrap();
            black_box(m.counters().cycles)
        })
    });
    // Same measurement on a real workload image: Sobel exercises the
    // load/store/multiply decode paths the tight loop never touches.
    let frame = GrayImage::synthetic(7, 32, 32);
    let sobel = KernelKind::Sobel.build(&frame).unwrap();
    group.bench_function("machine_100k_insts_sobel", |b| {
        b.iter(|| {
            let mut m = sobel.machine().unwrap();
            m.run(100_000).unwrap();
            black_box(m.counters().cycles)
        })
    });
    group.finish();
}

fn bench_system_loop(c: &mut Criterion) {
    let program = assemble("start: addi r1, r1, 1\n sw r1, 0(r0)\n j start").unwrap();
    let trace = harvester::wrist_watch(1, 1.0);
    let backup = BackupModel::distributed(NvmTechnology::Feram, 2048);
    let mut group = c.benchmark_group("system");
    group.sample_size(20);
    group.bench_function("nvp_1s_wearable_trace", |b| {
        b.iter(|| {
            let mut sys = IntermittentSystem::new(
                &program,
                SystemConfig::default(),
                backup,
                BackupPolicy::demand(),
            )
            .unwrap();
            black_box(sys.run(&trace).unwrap())
        })
    });
    let strong = PowerTrace::constant(1e-4, 2e-3, 0.2);
    group.bench_function("nvp_200ms_continuous", |b| {
        b.iter(|| {
            let mut sys = IntermittentSystem::new(
                &program,
                SystemConfig::default(),
                backup,
                BackupPolicy::demand(),
            )
            .unwrap();
            black_box(sys.run(&strong).unwrap())
        })
    });
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let frame = GrayImage::synthetic(7, 16, 16);
    let mut group = c.benchmark_group("kernels");
    group.sample_size(20);
    for kind in [KernelKind::Sobel, KernelKind::Median, KernelKind::Fft16, KernelKind::Dct8] {
        let inst = kind.build(&frame).unwrap();
        group.bench_function(format!("{kind}_16x16_to_completion"), |b| {
            b.iter(|| black_box(inst.run_to_completion().unwrap()))
        });
    }
    group.finish();
}

fn bench_backup_styles(c: &mut Criterion) {
    // Ablation: per-operation model construction + one simulated second
    // for each backup style.
    let program = assemble("start: addi r1, r1, 1\n sw r1, 0(r0)\n j start").unwrap();
    let trace = harvester::wrist_watch(2, 0.5);
    let mut group = c.benchmark_group("backup_styles");
    group.sample_size(15);
    let styles: [(&str, BackupModel); 3] = [
        ("distributed", BackupModel::distributed(NvmTechnology::Feram, 2048)),
        ("centralized", BackupModel::centralized(NvmTechnology::Feram, 2048)),
        ("software", BackupModel::software(NvmTechnology::Feram, 2048, 2048, 1e6)),
    ];
    for (name, model) in styles {
        group.bench_function(format!("ablation_{name}"), |b| {
            b.iter(|| {
                let mut sys = IntermittentSystem::new(
                    &program,
                    SystemConfig::default(),
                    model,
                    BackupPolicy::demand(),
                )
                .unwrap();
                black_box(sys.run(&trace).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_machine_throughput,
    bench_system_loop,
    bench_kernels,
    bench_backup_styles
);
criterion_main!(benches);
