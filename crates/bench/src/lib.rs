//! Benchmark-only crate: see `benches/` for the Criterion targets that
//! regenerate every table and figure of the reconstructed evaluation
//! (`benches/experiments.rs`) and the micro-benchmarks for the simulator
//! and assembler substrates.

#![forbid(unsafe_code)]
