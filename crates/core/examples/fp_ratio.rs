//! Quick calibration check: NVP vs wait-compute forward progress on the
//! five wearable traces (published band: 2.2x-5x).

use nvp_core::{
    measure_task, BackupModel, BackupPolicy, IntermittentSystem, SystemConfig, WaitComputeConfig,
    WaitComputeSystem,
};
use nvp_device::NvmTechnology;
use nvp_energy::harvester;
use nvp_isa::asm::assemble;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Frame-scale task: ~40k instructions.
    let program = assemble("li r2, 20000\nloop: addi r1, r1, 1\nbne r1, r2, loop\nhalt")?;
    let cost = measure_task(&program, &SystemConfig::default(), 10_000_000)?;
    println!(
        "task: {} instr, {:.1} ms, {:.2} uJ",
        cost.instructions,
        cost.time_s(1e6) * 1e3,
        cost.energy_j * 1e6
    );
    for seed in 1..=5 {
        let trace = harvester::wrist_watch(seed, 10.0);
        let backup = BackupModel::distributed(NvmTechnology::Feram, 2048);
        let mut nvp = IntermittentSystem::new(
            &program,
            SystemConfig::default(),
            backup,
            BackupPolicy::demand(),
        )?;
        let nr = nvp.run(&trace)?;
        let mut wait =
            WaitComputeSystem::new(&program, WaitComputeConfig::default().sized_for(&cost, 1.3))?;
        let wr = wait.run(&trace)?;
        println!(
            "seed {seed}: avg {:5.1} uW | NVP fp {:8} (on {:4.1}%, bk/min {:6.0}, share {:4.1}%) | wait fp {:8} (tasks {:3}, rb {:2}) | ratio {:.2}",
            trace.average_w() * 1e6,
            nr.forward_progress(),
            nr.on_fraction() * 100.0,
            nr.backups_per_minute(),
            nr.backup_energy_share() * 100.0,
            wr.forward_progress(),
            wr.tasks_completed,
            wr.rollbacks,
            nr.forward_progress() as f64 / wr.forward_progress().max(1) as f64
        );
    }
    Ok(())
}
