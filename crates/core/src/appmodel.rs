//! System energy distribution across application classes (table T2).
//!
//! The survey's motivation rests on a measured observation: for
//! sense-and-transmit workloads the radio dominates, but once IoT nodes
//! post-process locally (pattern matching, image kernels), *computation*
//! consumes the majority of system energy — which is what makes the NVP's
//! compute efficiency under unstable power matter. The published shares
//! (NVP at 0.209 mW / 1 MHz, radio at 89.1 mW / 250 kbps) are:
//! temperature sensing 2.4 %, UV metering 16.8 %, pattern matching
//! 59.5 %, image processing up to 95 %.

use serde::{Deserialize, Serialize};

/// Published radio power (89.1 mW active).
pub const RADIO_POWER_W: f64 = 89.1e-3;
/// Published radio data rate (250 kbps).
pub const RADIO_RATE_BPS: f64 = 250e3;
/// Published NVP core power at 1 MHz (0.209 mW).
pub const CORE_POWER_W: f64 = 0.209e-3;
/// Core clock for the share model, Hz.
pub const CORE_CLOCK_HZ: f64 = 1e6;

/// An IoT application's per-result workload profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// Display name.
    pub name: String,
    /// CPU cycles spent producing one result.
    pub compute_cycles_per_result: f64,
    /// Bytes transmitted per result.
    pub radio_bytes_per_result: f64,
    /// Sensor energy per result, joules.
    pub sense_energy_per_result_j: f64,
}

/// Energy shares of one result, each in `[0, 1]`, summing to 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyShares {
    /// Computation share.
    pub compute: f64,
    /// Radio share.
    pub radio: f64,
    /// Sensing share.
    pub sense: f64,
}

impl AppProfile {
    /// Computation energy per result, joules.
    #[must_use]
    pub fn compute_energy_j(&self) -> f64 {
        self.compute_cycles_per_result * CORE_POWER_W / CORE_CLOCK_HZ
    }

    /// Radio energy per result, joules.
    #[must_use]
    pub fn radio_energy_j(&self) -> f64 {
        RADIO_POWER_W * (self.radio_bytes_per_result * 8.0 / RADIO_RATE_BPS)
    }

    /// Energy distribution of one result.
    #[must_use]
    pub fn shares(&self) -> EnergyShares {
        let c = self.compute_energy_j();
        let r = self.radio_energy_j();
        let s = self.sense_energy_per_result_j;
        let total = c + r + s;
        EnergyShares { compute: c / total, radio: r / total, sense: s / total }
    }

    /// Temperature-sensing WSN node (published compute share: 2.4 %).
    #[must_use]
    pub fn temperature_sensing() -> Self {
        AppProfile {
            name: "temperature sensing".to_owned(),
            compute_cycles_per_result: 1_350.0,
            radio_bytes_per_result: 4.0,
            sense_energy_per_result_j: 0.3e-6,
        }
    }

    /// UV-exposure metering (published compute share: 16.8 %).
    #[must_use]
    pub fn uv_metering() -> Self {
        AppProfile {
            name: "UV exposure metering".to_owned(),
            compute_cycles_per_result: 22_500.0,
            radio_bytes_per_result: 8.0,
            sense_energy_per_result_j: 0.6e-6,
        }
    }

    /// Pattern matching over sensed records (published: 59.5 %).
    #[must_use]
    pub fn pattern_matching() -> Self {
        AppProfile {
            name: "pattern matching".to_owned(),
            compute_cycles_per_result: 330_000.0,
            radio_bytes_per_result: 16.0,
            sense_energy_per_result_j: 1.0e-6,
        }
    }

    /// Image processing with local feature extraction (published: ~95 %).
    #[must_use]
    pub fn image_processing() -> Self {
        AppProfile {
            name: "image processing".to_owned(),
            compute_cycles_per_result: 17_000_000.0,
            radio_bytes_per_result: 64.0,
            sense_energy_per_result_j: 5.0e-6,
        }
    }

    /// All four application classes in reporting order.
    #[must_use]
    pub fn standard_suite() -> Vec<AppProfile> {
        vec![
            Self::temperature_sensing(),
            Self::uv_metering(),
            Self::pattern_matching(),
            Self::image_processing(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_share(profile: &AppProfile, expected: f64, tol: f64) {
        let s = profile.shares();
        assert!(
            (s.compute - expected).abs() < tol,
            "{}: expected compute share {expected}, got {}",
            profile.name,
            s.compute
        );
        assert!((s.compute + s.radio + s.sense - 1.0).abs() < 1e-12);
    }

    #[test]
    fn published_shares_reproduced() {
        assert_share(&AppProfile::temperature_sensing(), 0.024, 0.008);
        assert_share(&AppProfile::uv_metering(), 0.168, 0.03);
        assert_share(&AppProfile::pattern_matching(), 0.595, 0.05);
        assert_share(&AppProfile::image_processing(), 0.95, 0.03);
    }

    #[test]
    fn ordering_is_monotone() {
        let suite = AppProfile::standard_suite();
        let shares: Vec<f64> = suite.iter().map(|p| p.shares().compute).collect();
        for w in shares.windows(2) {
            assert!(w[0] < w[1], "compute share must grow with workload: {shares:?}");
        }
    }

    #[test]
    fn radio_energy_matches_rate_math() {
        let p = AppProfile::temperature_sensing();
        // 4 bytes at 250 kbps on an 89.1 mW radio = 11.4 µJ.
        assert!((p.radio_energy_j() - 89.1e-3 * 32.0 / 250e3).abs() < 1e-12);
    }
}
