//! Backup/restore cost models for the three checkpointing styles.

use nvp_device::sttram::SttModel;
use nvp_device::{ChipProfile, NvffBank, NvmTechnology, RetentionShaper};
use nvp_energy::units::{Joules, Seconds};
use serde::{Deserialize, Serialize};

/// How processor state is preserved across power failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackupStyle {
    /// Hardware-managed, distributed nonvolatile flip-flops written in
    /// parallel (the NVP approach).
    Distributed,
    /// Hardware-managed copy of state into a central NVM array, word by
    /// word (DMA-style).
    Centralized,
    /// Software checkpointing: the CPU itself copies live state to NVM
    /// (Hibernus/Mementos-class, e.g. on an FRAM MCU).
    Software,
}

impl BackupStyle {
    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BackupStyle::Distributed => "distributed",
            BackupStyle::Centralized => "centralized",
            BackupStyle::Software => "software",
        }
    }
}

impl std::fmt::Display for BackupStyle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Lump-sum cost of one backup and one restore operation.
///
/// The fixed overheads cover what the array model cannot see: the voltage
/// detector, backup controller sequencing, clock management, and analog
/// settling. They are calibrated so a wearable-trace NVP spends 20–33 %
/// of income energy on backup+restore at the published 1400–1700
/// backups/minute rate (experiment F4).
///
/// # Example
///
/// ```
/// use nvp_core::BackupModel;
/// use nvp_device::NvmTechnology;
///
/// let nvp = BackupModel::distributed(NvmTechnology::Feram, 2048);
/// let sw = BackupModel::software(NvmTechnology::Feram, 2048, 1024, 1e6);
/// assert!(sw.backup_time > 10.0 * nvp.backup_time,
///         "software checkpointing is orders of magnitude slower");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackupModel {
    /// Which style produced this model.
    pub style: BackupStyle,
    /// Technology backing the checkpoint storage.
    pub tech: NvmTechnology,
    /// State bits covered by a checkpoint.
    pub state_bits: u64,
    /// Energy per backup operation.
    pub backup_energy: Joules,
    /// Wall-clock time per backup operation.
    pub backup_time: Seconds,
    /// Energy per restore operation.
    pub restore_energy: Joules,
    /// Wall-clock time per restore operation.
    pub restore_time: Seconds,
}

/// Fixed controller/analog overhead per hardware backup.
pub const HW_BACKUP_OVERHEAD: Joules = Joules::new(150e-9);
/// Fixed controller/analog overhead per hardware restore.
pub const HW_RESTORE_OVERHEAD: Joules = Joules::new(80e-9);
/// Fixed sequencing overhead per hardware backup/restore.
pub const HW_SEQ_OVERHEAD: Seconds = Seconds::new(1e-6);

impl BackupModel {
    /// Distributed NV flip-flop backup (the NVP approach): every state
    /// bit has a shadow cell; the array writes in a few parallel groups.
    #[must_use]
    pub fn distributed(tech: NvmTechnology, state_bits: u64) -> Self {
        let bank = NvffBank::new(tech, state_bits);
        BackupModel {
            style: BackupStyle::Distributed,
            tech,
            state_bits,
            backup_energy: bank.backup_energy() + HW_BACKUP_OVERHEAD,
            backup_time: bank.backup_time() + HW_SEQ_OVERHEAD,
            restore_energy: bank.restore_energy() + HW_RESTORE_OVERHEAD,
            restore_time: bank.restore_time() + HW_SEQ_OVERHEAD,
        }
    }

    /// Centralized hardware copy: state streams into an NVM array one
    /// 16-bit word per array write cycle.
    #[must_use]
    pub fn centralized(tech: NvmTechnology, state_bits: u64) -> Self {
        let p = tech.params();
        let words = state_bits.div_ceil(16);
        BackupModel {
            style: BackupStyle::Centralized,
            tech,
            state_bits,
            backup_energy: p.write_energy(state_bits) * 2.0 // array + mux/bus
                + HW_BACKUP_OVERHEAD,
            backup_time: words as f64 * p.write_latency() + HW_SEQ_OVERHEAD,
            restore_energy: p.read_energy(state_bits) * 2.0 + HW_RESTORE_OVERHEAD,
            restore_time: words as f64 * p.read_latency() + HW_SEQ_OVERHEAD,
        }
    }

    /// Software checkpointing on a `clock_hz` MCU: the CPU copies
    /// `state_bits` of registers/SFRs plus `ram_words` of live RAM into
    /// NVM, spending CPU cycles *and* NVM write energy.
    #[must_use]
    pub fn software(tech: NvmTechnology, state_bits: u64, ram_words: u64, clock_hz: f64) -> Self {
        let p = tech.params();
        let total_words = state_bits.div_ceil(16) + ram_words;
        let total_bits = total_words * 16;
        // ~4 cycles per copied word (load, store, pointer bump, loop).
        let cpu_cycles = total_words * 4;
        let cpu_energy = Joules::new(cpu_cycles as f64 * 209e-12); // 0.209 mW @ 1 MHz core
        let cpu_time = Seconds::new(cpu_cycles as f64 / clock_hz);
        BackupModel {
            style: BackupStyle::Software,
            tech,
            state_bits: total_bits,
            backup_energy: cpu_energy + p.write_energy(total_bits),
            backup_time: cpu_time + total_words as f64 * p.write_latency(),
            restore_energy: cpu_energy + p.read_energy(total_bits),
            restore_time: cpu_time + total_words as f64 * p.read_latency(),
        }
    }

    /// Builds a model from a published chip operating point.
    #[must_use]
    pub fn from_chip(chip: &ChipProfile) -> Self {
        BackupModel {
            style: if chip.hardware_managed {
                BackupStyle::Distributed
            } else {
                BackupStyle::Software
            },
            tech: chip.tech,
            state_bits: chip.state_bits,
            backup_energy: Joules::new(chip.backup_energy_j),
            backup_time: Seconds::new(chip.backup_time_s),
            restore_energy: Joules::new(chip.restore_energy_j),
            restore_time: Seconds::new(chip.restore_time_s),
        }
    }

    /// Applies a retention-relaxation policy: backup (write) energy is
    /// scaled by the policy's savings factor under the given STT model;
    /// restore cost is unchanged.
    ///
    /// Only the array component scales — the fixed controller overhead
    /// does not shrink with relaxed retention.
    #[must_use]
    pub fn with_relaxation(mut self, shaper: &RetentionShaper, model: &SttModel) -> Self {
        let scale = shaper.write_energy_scale(model);
        let array = (self.backup_energy - HW_BACKUP_OVERHEAD).max(Joules::ZERO);
        self.backup_energy = array * scale + HW_BACKUP_OVERHEAD;
        self
    }

    /// Returns a copy with backup and restore energy/time scaled by
    /// `factor` (for sensitivity sweeps).
    #[must_use]
    pub fn scaled(mut self, factor: f64) -> Self {
        self.backup_energy = self.backup_energy * factor;
        self.backup_time = self.backup_time * factor;
        self.restore_energy = self.restore_energy * factor;
        self.restore_time = self.restore_time * factor;
        self
    }

    /// Returns a copy with the restore time replaced (wake-up-latency
    /// sensitivity study F6).
    #[must_use]
    pub fn with_restore_time(mut self, restore_time: Seconds) -> Self {
        self.restore_time = restore_time;
        self
    }

    /// Combined energy of one backup + one restore pair.
    #[must_use]
    pub fn round_trip_energy(&self) -> Joules {
        self.backup_energy + self.restore_energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvp_device::RelaxPolicy;

    #[test]
    fn distributed_is_fastest() {
        let d = BackupModel::distributed(NvmTechnology::Feram, 2048);
        let c = BackupModel::centralized(NvmTechnology::Feram, 2048);
        let s = BackupModel::software(NvmTechnology::Feram, 2048, 1024, 1e6);
        assert!(d.backup_time < c.backup_time);
        assert!(c.backup_time < s.backup_time);
        assert!(d.backup_energy < s.backup_energy);
    }

    #[test]
    fn software_checkpoint_is_milliseconds() {
        let s = BackupModel::software(NvmTechnology::Feram, 2048, 1024, 1e6);
        assert!(s.backup_time > Seconds::new(1e-3), "{}", s.backup_time);
        assert!(s.backup_time < Seconds::new(0.1));
    }

    #[test]
    fn round_trip_energy_in_calibrated_band() {
        // The F4 calibration target: a backup+restore pair lands in the
        // high-nanojoule range so 1400-1700 backups/min consume 20-33 %
        // of a ~25 µW income.
        let d = BackupModel::distributed(NvmTechnology::Feram, 2048);
        let rt = d.round_trip_energy();
        assert!(rt > Joules::new(150e-9) && rt < Joules::new(500e-9), "{rt}");
    }

    #[test]
    fn relaxation_reduces_backup_only() {
        let base = BackupModel::distributed(NvmTechnology::SttMram, 2048);
        let shaper = RetentionShaper::new(RelaxPolicy::Log, 8, 0.01, 86_400.0);
        let relaxed = base.with_relaxation(&shaper, &SttModel::default());
        assert!(relaxed.backup_energy < base.backup_energy);
        assert!(relaxed.backup_energy >= HW_BACKUP_OVERHEAD);
        assert_eq!(relaxed.restore_energy, base.restore_energy);
        assert_eq!(relaxed.backup_time, base.backup_time);
    }

    #[test]
    fn from_chip_preserves_headline_numbers() {
        let chips = nvp_device::published_chips();
        for chip in &chips {
            let m = BackupModel::from_chip(chip);
            assert_eq!(m.backup_time.get(), chip.backup_time_s, "{}", chip.name);
            assert_eq!(m.restore_time.get(), chip.restore_time_s, "{}", chip.name);
        }
    }

    #[test]
    fn scaling_helpers() {
        let base = BackupModel::distributed(NvmTechnology::Reram, 1024);
        let double = base.scaled(2.0);
        assert!((double.backup_energy / base.backup_energy - 2.0).abs() < 1e-12);
        let slow = base.with_restore_time(Seconds::new(46e-6));
        assert_eq!(slow.restore_time, Seconds::new(46e-6));
        assert_eq!(slow.backup_time, base.backup_time);
    }
}
