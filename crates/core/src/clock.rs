//! Clock-scaling policies: exploiting power spikes that fixed-frequency
//! NVPs waste.
//!
//! Harvested power arrives as spikes many times the core's draw; with a
//! small storage buffer, whatever the core cannot consume in time spills
//! once the capacitor fills. The second pillar of the NVP literature
//! (after cheap backup) is therefore *matching the microarchitecture to
//! the income* — here modelled as frequency scaling: energy per
//! instruction is held constant (fixed supply voltage), so a faster clock
//! converts the same joules into the same instructions, just **soon
//! enough to make room for the next spike**.

use serde::{Deserialize, Serialize};

/// How the core clock is chosen each trace tick.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum ClockPolicy {
    /// Run at the configured base clock always.
    #[default]
    Fixed,
    /// Scale among `levels` power-of-two multiples of the base clock
    /// (level 0 = base, level n = base·2ⁿ), choosing the highest level
    /// whose active power fits `margin ×` the instantaneous income —
    /// and forcing the top level when the buffer is nearly full (use the
    /// energy before it spills).
    Adaptive {
        /// Number of doubling steps above the base clock (1–4).
        levels: u8,
        /// Income multiplier a level must fit within (e.g. 0.9).
        margin: f64,
    },
}

impl ClockPolicy {
    /// The default adaptive setting used by the F11 experiment: up to
    /// 8× the base clock, sized to 90 % of instantaneous income.
    #[must_use]
    pub fn adaptive() -> Self {
        ClockPolicy::Adaptive { levels: 3, margin: 0.9 }
    }

    /// Highest clock multiplier this policy can select.
    #[must_use]
    pub fn max_multiplier(&self) -> u32 {
        match *self {
            ClockPolicy::Fixed => 1,
            ClockPolicy::Adaptive { levels, .. } => 1 << levels.min(4),
        }
    }

    /// Chooses the clock for the next tick.
    ///
    /// * `base_hz` — the platform's base clock,
    /// * `active_power_at_base_w` — core draw at the base clock,
    /// * `income_w` — converted input power over the last tick,
    /// * `fill_fraction` — storage fill level (0–1).
    #[must_use]
    pub fn select_hz(
        &self,
        base_hz: f64,
        active_power_at_base_w: f64,
        income_w: f64,
        fill_fraction: f64,
    ) -> f64 {
        match *self {
            ClockPolicy::Fixed => base_hz,
            ClockPolicy::Adaptive { levels, margin } => {
                let levels = levels.min(4);
                if fill_fraction > 0.8 {
                    // The buffer is about to spill: burn energy as fast
                    // as the fabric allows.
                    return base_hz * f64::from(1u32 << levels);
                }
                let mut best = base_hz;
                for level in 1..=levels {
                    let mult = f64::from(1u32 << level);
                    if active_power_at_base_w * mult <= margin * income_w {
                        best = base_hz * mult;
                    }
                }
                best
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: f64 = 1e6;
    const P: f64 = 0.21e-3;

    #[test]
    fn fixed_never_moves() {
        let p = ClockPolicy::Fixed;
        assert_eq!(p.select_hz(BASE, P, 10.0, 1.0), BASE);
        assert_eq!(p.max_multiplier(), 1);
    }

    #[test]
    fn adaptive_tracks_income() {
        let p = ClockPolicy::adaptive();
        // Weak income: stay at base.
        assert_eq!(p.select_hz(BASE, P, 20e-6, 0.2), BASE);
        // Income supports 2x but not 4x.
        let hz = p.select_hz(BASE, P, 0.5e-3, 0.2);
        assert_eq!(hz, 2.0 * BASE);
        // Strong spike: go to the top level.
        let hz = p.select_hz(BASE, P, 2.0e-3, 0.2);
        assert_eq!(hz, 8.0 * BASE);
    }

    #[test]
    fn near_full_buffer_forces_top_speed() {
        let p = ClockPolicy::adaptive();
        assert_eq!(p.select_hz(BASE, P, 0.0, 0.85), 8.0 * BASE);
    }

    #[test]
    fn levels_clamped() {
        let p = ClockPolicy::Adaptive { levels: 7, margin: 1.0 };
        assert_eq!(p.max_multiplier(), 16);
        assert_eq!(p.select_hz(BASE, P, 1.0, 0.0), 16.0 * BASE);
    }
}
