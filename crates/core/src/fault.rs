//! Deterministic fault injection for the backup/restore safety path.
//!
//! The platform loop in [`crate::IntermittentSystem`] normally treats
//! backup and restore as infallible; real NVM checkpointing is not
//! (torn writes when the supply collapses mid-backup, retention decay
//! while powered off, peripheral restore failures). A [`FaultPlan`]
//! switches those failure modes on with seeded, reproducible sampling:
//! every run is a pure function of the plan, the trace, and the
//! configuration, so Monte-Carlo campaigns (experiment F12) stay
//! bit-identical across reruns and thread counts.
//!
//! The plan is `Debug`-rendered into the simulation-cache key by the
//! experiment layer, exactly like [`crate::SystemConfig`] and
//! [`crate::BackupModel`], so cached faulted runs never alias fault-free
//! ones.
//!
//! With every rate at zero and no retention profile the plan is
//! [`disabled`](FaultPlan::enabled): the platform draws **no** random
//! numbers and takes the exact legacy code paths, keeping fault-free
//! artifacts byte-identical (pinned by the golden-digest suite).

use nvp_device::BitRetention;
use serde::{Deserialize, Serialize};

/// Seeded fault-injection configuration for an intermittent platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the platform's fault-sampling RNG. Two platforms with
    /// the same plan, program, and trace behave identically.
    pub seed: u64,
    /// Probability that a backup write tears (loses power mid-write,
    /// leaving a partial image whose CRC commit record never lands).
    pub tear_prob: f64,
    /// Probability that a restore fails outright (wake-up logic reads
    /// garbage before checkpoint verification even starts).
    pub restore_fail_prob: f64,
    /// Per-bit retention profile applied to stored checkpoint words over
    /// each off-time interval; `None` models ideal decade-class
    /// retention (no decay).
    pub retention: Option<BitRetention>,
    /// How many times a torn backup (or failed restore) is retried
    /// before the platform gives up and degrades gracefully.
    pub max_retries: u32,
    /// Energy-threshold backoff per backup retry: attempt *k* requires
    /// `backup_energy × backoff^k` in storage before it is attempted,
    /// so a browning-out supply stops burning energy on doomed writes.
    pub retry_backoff: f64,
}

impl FaultPlan {
    /// The fault-free plan: all rates zero, no retention decay. With
    /// this plan the platform is bit-identical to one built without any
    /// plan at all.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            tear_prob: 0.0,
            restore_fail_prob: 0.0,
            retention: None,
            max_retries: 2,
            retry_backoff: 1.5,
        }
    }

    /// A plan with the given seed and tear / restore-failure rates,
    /// default retry bounds, and no retention decay.
    #[must_use]
    pub fn with_rates(seed: u64, tear_prob: f64, restore_fail_prob: f64) -> Self {
        FaultPlan { seed, tear_prob, restore_fail_prob, ..FaultPlan::none() }
    }

    /// Returns a copy with a retention-decay profile for stored
    /// checkpoint words.
    #[must_use]
    pub fn with_retention(mut self, retention: BitRetention) -> Self {
        self.retention = Some(retention);
        self
    }

    /// `true` when any fault mechanism can fire. A disabled plan draws
    /// no random numbers and adds no events, keeping runs bit-identical
    /// to the fault-free platform.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.tear_prob > 0.0 || self.restore_fail_prob > 0.0 || self.retention.is_some()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvp_device::{RelaxPolicy, RetentionShaper};

    #[test]
    fn none_is_disabled() {
        assert!(!FaultPlan::none().enabled());
        assert!(!FaultPlan::default().enabled());
    }

    #[test]
    fn any_mechanism_enables() {
        assert!(FaultPlan::with_rates(1, 0.1, 0.0).enabled());
        assert!(FaultPlan::with_rates(1, 0.0, 0.1).enabled());
        let ret = RetentionShaper::new(RelaxPolicy::Linear, 16, 0.01, 3600.0).bit_retention();
        assert!(FaultPlan::none().with_retention(ret).enabled());
    }

    #[test]
    fn debug_rendering_distinguishes_plans() {
        // The simcache keys on the Debug rendering: distinct plans must
        // render distinctly.
        let a = format!("{:?}", FaultPlan::with_rates(1, 0.1, 0.05));
        let b = format!("{:?}", FaultPlan::with_rates(2, 0.1, 0.05));
        let c = format!("{:?}", FaultPlan::with_rates(1, 0.2, 0.05));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
