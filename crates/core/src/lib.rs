//! # nvp-core — nonvolatile processor architecture & system simulation
//!
//! The primary subject of the reproduced survey: what a nonvolatile
//! processor *is* architecturally, and how it converts an unstable
//! harvested power supply into persistent forward progress.
//!
//! * [`BackupModel`] — lump-sum cost models for the three checkpointing
//!   styles (distributed NV flip-flops, centralized copy, software
//!   checkpointing), built on the `nvp-device` technology menu,
//! * [`BackupPolicy`] / [`Thresholds`] — when to back up and when it is
//!   safe to start,
//! * [`Platform`] / [`drive`] — the shared engine: one trace loop banks
//!   income through the `nvp-energy` [`EnergyFrontEnd`] and ticks any
//!   platform, with a [`SimObserver`] event seam (power-on, backup,
//!   restore, rollback, brown-out, task commit),
//! * [`IntermittentSystem`] — the system-level NVP platform: a 0.1 ms
//!   energy loop driving the instruction-level `nvp-sim` machine through
//!   off/restore/active/backup phases,
//! * [`FaultPlan`] — seeded fault injection for the safety path itself
//!   (torn backups, retention bit-flips, restore failures), recovered
//!   through CRC-verified A/B checkpoints, bounded retry with threshold
//!   backoff, and graceful degradation (experiment F12),
//! * [`WaitComputeSystem`] — the conventional charge-then-compute
//!   baseline the NVP is compared against (same engine, different
//!   front-end options and phase logic),
//! * [`RunReport`] — forward progress, backup counts, rollbacks, and the
//!   full energy breakdown,
//! * [`AppProfile`] — the system energy-distribution model motivating
//!   local computation (table T2).
//!
//! ## Example: NVP vs. wait-compute on a wearable trace
//!
//! ```
//! use nvp_core::{
//!     measure_task, BackupModel, BackupPolicy, IntermittentSystem,
//!     SystemConfig, WaitComputeConfig, WaitComputeSystem,
//! };
//! use nvp_device::NvmTechnology;
//! use nvp_energy::harvester;
//! use nvp_isa::asm::assemble;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A frame-scale task: ~40k instructions per completion.
//! let program = assemble(
//!     "li r2, 20000\nloop: addi r1, r1, 1\nbne r1, r2, loop\nhalt",
//! )?;
//! let trace = harvester::wrist_watch(1, 5.0);
//!
//! let backup = BackupModel::distributed(NvmTechnology::Feram, 2048);
//! let mut nvp = IntermittentSystem::new(
//!     &program, SystemConfig::default(), backup, BackupPolicy::demand())?;
//! let nvp_report = nvp.run(&trace)?;
//!
//! let cost = measure_task(&program, &SystemConfig::default(), 1_000_000)?;
//! let mut wait = WaitComputeSystem::new(
//!     &program, WaitComputeConfig::default().sized_for(&cost, 1.3))?;
//! let wait_report = wait.run(&trace)?;
//!
//! // On turbulent wearable power the NVP makes more persistent progress.
//! assert!(nvp_report.forward_progress() >= wait_report.forward_progress());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod appmodel;
mod backup;
mod clock;
mod fault;
mod platform;
mod policy;
mod system;
mod wait;

pub use appmodel::{
    AppProfile, EnergyShares, CORE_CLOCK_HZ, CORE_POWER_W, RADIO_POWER_W, RADIO_RATE_BPS,
};
pub use backup::{
    BackupModel, BackupStyle, HW_BACKUP_OVERHEAD, HW_RESTORE_OVERHEAD, HW_SEQ_OVERHEAD,
};
pub use clock::ClockPolicy;
pub use fault::FaultPlan;
pub use nvp_energy::{EnergyFrontEnd, FrontEndConfig, TickIncome};
pub use platform::{
    drive, drive_observed, NullObserver, Platform, SimEvent, SimObserver, TickOutcome,
};
pub use policy::{BackupPolicy, Thresholds};
pub use system::{
    measure_task, EnergyBreakdown, IntermittentSystem, RunReport, SystemConfig, TaskCost,
};
pub use wait::{WaitComputeConfig, WaitComputeSystem};
