//! The shared platform engine: one trace loop for every platform.
//!
//! Every simulated platform — the hardware NVP, the software-checkpoint
//! variants, the wait-then-compute baseline — consumes the same power
//! traces through the same [`EnergyFrontEnd`] income path and is stepped
//! by the same [`drive`] loop. A platform only implements
//! [`Platform::tick`]: how it spends the tick (and the energy already
//! banked into its storage) on phases, instructions, and checkpoints.
//!
//! The engine also carries a [`SimObserver`] event seam: discrete
//! platform events (power-on, backup, restore, rollback, brown-out,
//! task commit) are reported to an observer, with the no-op
//! [`NullObserver`] used when nobody is listening.

use nvp_energy::units::{Seconds, Watts};
use nvp_energy::{EnergyFrontEnd, PowerTrace, TickIncome};
use nvp_sim::{Machine, SimError};

use crate::RunReport;

/// A discrete platform event, reported to a [`SimObserver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimEvent {
    /// Stored energy crossed the start threshold: the platform wakes.
    PowerOn,
    /// A checkpoint was successfully paid for and started.
    Backup,
    /// Saved state restoration was successfully paid for and started.
    Restore,
    /// Volatile state was lost and execution rolled back.
    Rollback,
    /// Storage was exhausted mid-operation (precedes a rollback).
    BrownOut,
    /// A complete program execution (frame) became durable.
    TaskCommit,
    /// A backup write tore mid-flight: the checkpoint image is partial
    /// and its commit record never landed (fault injection).
    BackupTorn,
    /// A restore failed or a checkpoint failed CRC verification; the
    /// platform falls back to an older image or a cold start.
    RestoreCorrupt,
    /// A torn backup is being retried under the threshold-backoff
    /// policy.
    RetryBackup,
    /// The bounded retry budget ran out: the platform degrades
    /// gracefully (forced power-down / cold start) instead of wedging.
    SafeModeEntered,
}

/// Receives discrete platform events as the engine simulates.
///
/// The default implementation ignores every event, so observing costs
/// nothing unless a method is overridden — events are rare (backup-rate
/// scale, not instruction scale), so even an active observer is off the
/// simulation hot path.
pub trait SimObserver {
    /// Called when `event` occurs at simulated time `t_s` (seconds since
    /// the start of the run).
    fn on_event(&mut self, t_s: f64, event: SimEvent) {
        let _ = (t_s, event);
    }
}

/// The observer used when no observer is supplied: ignores everything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl SimObserver for NullObserver {}

/// What a platform did with one trace tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickOutcome {
    /// Spent at least part of the tick executing instructions.
    Ran,
    /// Spent the whole tick off/charging/sleeping.
    Idle,
    /// The program has finished and the platform will not run again.
    Done,
}

/// An intermittently powered platform that the shared [`drive`] loop can
/// step over a power trace.
///
/// Implementations own an [`EnergyFrontEnd`] (the storage their tick
/// logic draws from) and a [`RunReport`] (the bookkeeping the loop and
/// the tick logic both write). The loop banks each tick's harvested
/// income through the front end *before* calling [`tick`](Self::tick),
/// so platform logic never touches the income path — that physics lives
/// in exactly one place.
pub trait Platform {
    /// Read access to the power-provisioning front end.
    fn front_end(&self) -> &EnergyFrontEnd;

    /// Mutable access to the power-provisioning front end.
    fn front_end_mut(&mut self) -> &mut EnergyFrontEnd;

    /// Advances platform state by one tick of `dt_s` seconds. The tick's
    /// `income` has already been banked into storage; implementations
    /// spend it on restore/compute/backup/sleep and report events to
    /// `obs`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the workload itself faults — power
    /// failures are *not* errors.
    fn tick(
        &mut self,
        income: TickIncome,
        dt_s: f64,
        obs: &mut dyn SimObserver,
    ) -> Result<TickOutcome, SimError>;

    /// The accumulated report so far.
    fn report(&self) -> &RunReport;

    /// Mutable report access (the drive loop's shared bookkeeping).
    fn report_mut(&mut self) -> &mut RunReport;

    /// The instruction-level machine (for output/quality inspection).
    fn machine(&self) -> &Machine;

    /// Instructions executed since the last durable commit.
    fn uncommitted(&self) -> u64;
}

/// Simulates `platform` over `trace` with no observer, accumulating into
/// (and returning a copy of) the platform's report.
///
/// # Errors
///
/// Returns [`SimError`] if the workload faults.
pub fn drive<P: Platform + ?Sized>(
    trace: &PowerTrace,
    platform: &mut P,
) -> Result<RunReport, SimError> {
    drive_observed(trace, platform, &mut NullObserver)
}

/// [`drive`] with a [`SimObserver`] receiving platform events.
///
/// This is *the* trace loop: one tick of income through the front end,
/// then one platform tick, for every sample. Can be called repeatedly
/// with successive trace windows; the report accumulates.
///
/// # Errors
///
/// Returns [`SimError`] if the workload faults.
pub fn drive_observed<P: Platform + ?Sized>(
    trace: &PowerTrace,
    platform: &mut P,
    obs: &mut dyn SimObserver,
) -> Result<RunReport, SimError> {
    let dt = trace.dt_s();
    for i in 0..trace.len() {
        let income = platform.front_end_mut().tick(Watts::new(trace.power_at(i)), Seconds::new(dt));
        let energy = &mut platform.report_mut().energy;
        energy.harvested += income.harvested;
        energy.converted += income.converted;
        platform.tick(income, dt, obs)?;
        platform.report_mut().duration_s += dt;
    }
    let uncommitted = platform.uncommitted();
    let stored = platform.front_end().storage().energy();
    let wasted = platform.front_end().storage().wasted();
    let report = platform.report_mut();
    report.uncommitted_at_end = uncommitted;
    report.energy.stored_at_end = stored;
    report.energy.storage_wasted = wasted;
    Ok(*report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        measure_task, BackupModel, BackupPolicy, IntermittentSystem, SystemConfig,
        WaitComputeConfig, WaitComputeSystem,
    };
    use nvp_device::NvmTechnology;
    use nvp_energy::harvester;
    use nvp_isa::asm::assemble;
    use std::collections::BTreeMap;

    /// Counts every event it sees; the map iterates in a deterministic
    /// (declaration) order so summaries are stable.
    #[derive(Default)]
    struct Counter {
        counts: BTreeMap<SimEvent, u64>,
        last_t: f64,
    }

    impl SimObserver for Counter {
        fn on_event(&mut self, t_s: f64, event: SimEvent) {
            assert!(t_s >= self.last_t, "event times must be monotone");
            self.last_t = t_s;
            *self.counts.entry(event).or_insert(0) += 1;
        }
    }

    impl Counter {
        fn get(&self, e: SimEvent) -> u64 {
            self.counts.get(&e).copied().unwrap_or(0)
        }
    }

    #[test]
    fn observer_counts_match_nvp_report() {
        let program = assemble("start: addi r1, r1, 1\n sw r1, 0(r0)\n j start").unwrap();
        let mut sys = IntermittentSystem::new(
            &program,
            SystemConfig::default(),
            BackupModel::distributed(NvmTechnology::Feram, 2048),
            BackupPolicy::demand(),
        )
        .unwrap();
        let trace = harvester::wrist_watch(2, 3.0);
        let mut obs = Counter::default();
        let r = sys.run_observed(&trace, &mut obs).unwrap();
        assert!(r.backups > 0 && r.restores > 0);
        assert_eq!(obs.get(SimEvent::Backup), r.backups);
        assert_eq!(obs.get(SimEvent::Restore), r.restores);
        assert_eq!(obs.get(SimEvent::PowerOn), r.restores);
        assert_eq!(obs.get(SimEvent::Rollback), r.rollbacks);
        assert_eq!(obs.get(SimEvent::TaskCommit), r.tasks_completed);
    }

    #[test]
    fn observer_counts_match_wait_report() {
        let program =
            assemble("li r2, 2000\nloop: addi r1, r1, 1\nbne r1, r2, loop\nsw r1, 0(r0)\nhalt")
                .unwrap();
        let cost = measure_task(&program, &SystemConfig::default(), 10_000_000).unwrap();
        let mut cfg = WaitComputeConfig::default().sized_for(&cost, 1.3);
        cfg.start_energy_j *= 0.3; // force mid-task brown-outs
        let mut sys = WaitComputeSystem::new(&program, cfg).unwrap();
        let trace = nvp_energy::PowerTrace::from_segments(
            1e-4,
            &[(60e-6, 2.0), (0.0, 1.0), (60e-6, 2.0), (0.0, 1.0), (60e-6, 2.0)],
        );
        let mut obs = Counter::default();
        let r = sys.run_observed(&trace, &mut obs).unwrap();
        assert!(r.rollbacks > 0);
        assert_eq!(obs.get(SimEvent::Rollback), r.rollbacks);
        assert_eq!(obs.get(SimEvent::BrownOut), r.rollbacks);
        assert_eq!(obs.get(SimEvent::TaskCommit), r.tasks_completed);
        assert_eq!(obs.get(SimEvent::Backup), 0, "wait-compute never checkpoints");
        assert_eq!(obs.get(SimEvent::Restore), 0);
    }

    #[test]
    fn observed_run_is_byte_identical_to_unobserved() {
        let program = assemble("start: addi r1, r1, 1\n j start").unwrap();
        let trace = harvester::wrist_watch(7, 2.0);
        let build = || {
            IntermittentSystem::new(
                &program,
                SystemConfig::default(),
                BackupModel::distributed(NvmTechnology::Feram, 2048),
                BackupPolicy::demand(),
            )
            .unwrap()
        };
        let plain = build().run(&trace).unwrap();
        let mut obs = Counter::default();
        let observed = build().run_observed(&trace, &mut obs).unwrap();
        assert_eq!(plain, observed);
        assert_eq!(plain.energy.compute.get().to_bits(), observed.energy.compute.get().to_bits());
    }

    #[test]
    fn drive_is_generic_over_platforms() {
        // The same generic loop drives both platform types.
        fn committed(p: &mut impl Platform, trace: &nvp_energy::PowerTrace) -> u64 {
            drive(trace, p).unwrap().committed
        }
        let program =
            assemble("li r2, 50\nloop: addi r1, r1, 1\nbne r1, r2, loop\nsw r1, 0(r0)\nhalt")
                .unwrap();
        let trace = nvp_energy::PowerTrace::constant(1e-4, 2e-3, 0.2);
        let mut nvp = IntermittentSystem::new(
            &program,
            SystemConfig::default(),
            BackupModel::distributed(NvmTechnology::Feram, 2048),
            BackupPolicy::demand(),
        )
        .unwrap();
        let cost = measure_task(&program, &SystemConfig::default(), 1_000_000).unwrap();
        let wait_cfg = WaitComputeConfig::default().sized_for(&cost, 1.3);
        let mut wait = WaitComputeSystem::new(&program, wait_cfg).unwrap();
        // Both make progress under strong constant power via the one loop.
        assert!(committed(&mut nvp, &trace) > 0);
        assert!(committed(&mut wait, &trace) > 0);
    }
}
