//! Backup-trigger policies and operating thresholds.

use nvp_energy::units::Joules;
use serde::{Deserialize, Serialize};

use crate::BackupModel;

/// When the platform decides to perform a backup.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BackupPolicy {
    /// Demand backup (hardware NVPs): back up when stored energy falls to
    /// `margin ×` the backup cost. `margin` > 1 reserves headroom; values
    /// near 1 are greedy and risk losing the checkpoint.
    OnDemand {
        /// Reserve multiplier over the backup energy (≥ 0).
        margin: f64,
    },
    /// Periodic checkpointing (Mementos-class): back up every
    /// `interval_s` of active execution, regardless of energy.
    Periodic {
        /// Active-time between checkpoints, seconds.
        interval_s: f64,
    },
    /// Both: periodic checkpoints *and* a demand backup at the energy
    /// floor (Hibernus++-class).
    Hybrid {
        /// Active-time between checkpoints, seconds.
        interval_s: f64,
        /// Reserve multiplier over the backup energy.
        margin: f64,
    },
}

impl BackupPolicy {
    /// The default hardware-NVP policy: demand backup with 1.5× reserve.
    #[must_use]
    pub fn demand() -> Self {
        BackupPolicy::OnDemand { margin: 1.5 }
    }

    /// Energy floor at which a demand backup triggers
    /// ([`Joules::ZERO`] for purely periodic policies).
    #[must_use]
    pub fn reserve(&self, backup: &BackupModel) -> Joules {
        match *self {
            BackupPolicy::OnDemand { margin } | BackupPolicy::Hybrid { margin, .. } => {
                margin * backup.backup_energy
            }
            BackupPolicy::Periodic { .. } => Joules::ZERO,
        }
    }

    /// Periodic interval, if any.
    #[must_use]
    pub fn interval_s(&self) -> Option<f64> {
        match *self {
            BackupPolicy::Periodic { interval_s } | BackupPolicy::Hybrid { interval_s, .. } => {
                Some(interval_s)
            }
            BackupPolicy::OnDemand { .. } => None,
        }
    }
}

/// Operating thresholds derived from a backup model and policy.
///
/// * the platform leaves the off state once stored energy reaches
///   `start` (enough to restore, do useful work, and still afford the
///   next backup),
/// * a demand backup triggers when energy falls to `backup_reserve`.
///
/// # Example
///
/// ```
/// use nvp_core::{BackupModel, BackupPolicy, Thresholds};
/// use nvp_device::NvmTechnology;
/// use nvp_energy::units::Joules;
///
/// let model = BackupModel::distributed(NvmTechnology::Feram, 2048);
/// let th = Thresholds::derive(&model, &BackupPolicy::demand(), Joules::new(500e-9));
/// assert!(th.start > th.backup_reserve);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Thresholds {
    /// Stored energy required to begin (or resume) execution.
    pub start: Joules,
    /// Stored-energy floor that triggers a demand backup.
    pub backup_reserve: Joules,
}

impl Thresholds {
    /// Derives thresholds: the reserve comes from the policy, and the
    /// start level adds the restore cost plus `work_headroom` of
    /// useful-work budget so the platform does not thrash on/off.
    #[must_use]
    pub fn derive(backup: &BackupModel, policy: &BackupPolicy, work_headroom: Joules) -> Self {
        let reserve = policy.reserve(backup).max(backup.backup_energy);
        Thresholds {
            start: reserve + backup.restore_energy + work_headroom,
            backup_reserve: reserve,
        }
    }

    /// Returns a copy with the start threshold raised to at least `min`.
    #[must_use]
    pub fn with_min_start(mut self, min: Joules) -> Self {
        self.start = self.start.max(min);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvp_device::NvmTechnology;

    fn model() -> BackupModel {
        BackupModel::distributed(NvmTechnology::Feram, 2048)
    }

    #[test]
    fn demand_reserve_scales_with_margin() {
        let m = model();
        let tight = BackupPolicy::OnDemand { margin: 1.0 };
        let safe = BackupPolicy::OnDemand { margin: 2.0 };
        assert!(safe.reserve(&m) > tight.reserve(&m));
        assert!((tight.reserve(&m) - m.backup_energy).abs() < Joules::new(1e-15));
    }

    #[test]
    fn periodic_has_no_energy_floor() {
        let m = model();
        assert_eq!(BackupPolicy::Periodic { interval_s: 0.01 }.reserve(&m), Joules::ZERO);
        assert_eq!(BackupPolicy::Periodic { interval_s: 0.01 }.interval_s(), Some(0.01));
        assert_eq!(BackupPolicy::demand().interval_s(), None);
    }

    #[test]
    fn thresholds_ordering() {
        let m = model();
        let th = Thresholds::derive(&m, &BackupPolicy::demand(), Joules::new(1e-6));
        assert!(th.start > th.backup_reserve + m.restore_energy * 0.99);
        assert!(th.backup_reserve >= m.backup_energy);
    }

    #[test]
    fn reserve_never_below_backup_cost() {
        let m = model();
        // A sub-unity margin must still reserve at least one backup.
        let th = Thresholds::derive(&m, &BackupPolicy::OnDemand { margin: 0.1 }, Joules::ZERO);
        assert!(th.backup_reserve >= m.backup_energy);
    }

    #[test]
    fn min_start_clamp() {
        let m = model();
        let th = Thresholds::derive(&m, &BackupPolicy::demand(), Joules::ZERO)
            .with_min_start(Joules::new(1.0));
        assert_eq!(th.start, Joules::new(1.0));
    }
}
