//! Backup-trigger policies and operating thresholds.

use serde::{Deserialize, Serialize};

use crate::BackupModel;

/// When the platform decides to perform a backup.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BackupPolicy {
    /// Demand backup (hardware NVPs): back up when stored energy falls to
    /// `margin ×` the backup cost. `margin` > 1 reserves headroom; values
    /// near 1 are greedy and risk losing the checkpoint.
    OnDemand {
        /// Reserve multiplier over the backup energy (≥ 0).
        margin: f64,
    },
    /// Periodic checkpointing (Mementos-class): back up every
    /// `interval_s` of active execution, regardless of energy.
    Periodic {
        /// Active-time between checkpoints, seconds.
        interval_s: f64,
    },
    /// Both: periodic checkpoints *and* a demand backup at the energy
    /// floor (Hibernus++-class).
    Hybrid {
        /// Active-time between checkpoints, seconds.
        interval_s: f64,
        /// Reserve multiplier over the backup energy.
        margin: f64,
    },
}

impl BackupPolicy {
    /// The default hardware-NVP policy: demand backup with 1.5× reserve.
    #[must_use]
    pub fn demand() -> Self {
        BackupPolicy::OnDemand { margin: 1.5 }
    }

    /// Energy floor at which a demand backup triggers, joules
    /// (0 for purely periodic policies).
    #[must_use]
    pub fn reserve_j(&self, backup: &BackupModel) -> f64 {
        match *self {
            BackupPolicy::OnDemand { margin } | BackupPolicy::Hybrid { margin, .. } => {
                margin * backup.backup_energy_j
            }
            BackupPolicy::Periodic { .. } => 0.0,
        }
    }

    /// Periodic interval, if any.
    #[must_use]
    pub fn interval_s(&self) -> Option<f64> {
        match *self {
            BackupPolicy::Periodic { interval_s } | BackupPolicy::Hybrid { interval_s, .. } => {
                Some(interval_s)
            }
            BackupPolicy::OnDemand { .. } => None,
        }
    }
}

/// Operating thresholds derived from a backup model and policy.
///
/// * the platform leaves the off state once stored energy reaches
///   `start_j` (enough to restore, do useful work, and still afford the
///   next backup),
/// * a demand backup triggers when energy falls to `backup_reserve_j`.
///
/// # Example
///
/// ```
/// use nvp_core::{BackupModel, BackupPolicy, Thresholds};
/// use nvp_device::NvmTechnology;
///
/// let model = BackupModel::distributed(NvmTechnology::Feram, 2048);
/// let th = Thresholds::derive(&model, &BackupPolicy::demand(), 500e-9);
/// assert!(th.start_j > th.backup_reserve_j);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Thresholds {
    /// Stored energy required to begin (or resume) execution, joules.
    pub start_j: f64,
    /// Stored-energy floor that triggers a demand backup, joules.
    pub backup_reserve_j: f64,
}

impl Thresholds {
    /// Derives thresholds: the reserve comes from the policy, and the
    /// start level adds the restore cost plus `work_headroom_j` of
    /// useful-work budget so the platform does not thrash on/off.
    #[must_use]
    pub fn derive(backup: &BackupModel, policy: &BackupPolicy, work_headroom_j: f64) -> Self {
        let reserve = policy.reserve_j(backup).max(backup.backup_energy_j);
        Thresholds {
            start_j: reserve + backup.restore_energy_j + work_headroom_j,
            backup_reserve_j: reserve,
        }
    }

    /// Returns a copy with the start threshold raised to at least `min_j`.
    #[must_use]
    pub fn with_min_start(mut self, min_j: f64) -> Self {
        self.start_j = self.start_j.max(min_j);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvp_device::NvmTechnology;

    fn model() -> BackupModel {
        BackupModel::distributed(NvmTechnology::Feram, 2048)
    }

    #[test]
    fn demand_reserve_scales_with_margin() {
        let m = model();
        let tight = BackupPolicy::OnDemand { margin: 1.0 };
        let safe = BackupPolicy::OnDemand { margin: 2.0 };
        assert!(safe.reserve_j(&m) > tight.reserve_j(&m));
        assert!((tight.reserve_j(&m) - m.backup_energy_j).abs() < 1e-15);
    }

    #[test]
    fn periodic_has_no_energy_floor() {
        let m = model();
        assert_eq!(BackupPolicy::Periodic { interval_s: 0.01 }.reserve_j(&m), 0.0);
        assert_eq!(BackupPolicy::Periodic { interval_s: 0.01 }.interval_s(), Some(0.01));
        assert_eq!(BackupPolicy::demand().interval_s(), None);
    }

    #[test]
    fn thresholds_ordering() {
        let m = model();
        let th = Thresholds::derive(&m, &BackupPolicy::demand(), 1e-6);
        assert!(th.start_j > th.backup_reserve_j + m.restore_energy_j * 0.99);
        assert!(th.backup_reserve_j >= m.backup_energy_j);
    }

    #[test]
    fn reserve_never_below_backup_cost() {
        let m = model();
        // A sub-unity margin must still reserve at least one backup.
        let th = Thresholds::derive(&m, &BackupPolicy::OnDemand { margin: 0.1 }, 0.0);
        assert!(th.backup_reserve_j >= m.backup_energy_j);
    }

    #[test]
    fn min_start_clamp() {
        let m = model();
        let th = Thresholds::derive(&m, &BackupPolicy::demand(), 0.0).with_min_start(1.0);
        assert_eq!(th.start_j, 1.0);
    }
}
