//! The system-level intermittent-execution simulator.
//!
//! Mirrors the two-level structure of the published NVP frameworks: a
//! system-level energy loop (0.1 ms trace ticks: harvesting, conversion,
//! capacitor, thresholds) drives the instruction-level machine, deciding
//! when the core runs, backs up, restores, or sleeps.

use nvp_energy::units::{Farads, Joules, Seconds, Volts, Watts};
use nvp_energy::{EnergyFrontEnd, FrontEndConfig, PowerTrace, Rectifier, TickIncome};
use nvp_isa::Program;
use std::sync::Arc;

use nvp_sim::{
    torn_prefix_words, ArchState, Checkpoint, CycleModel, EnergyModel, Machine, MachineImage,
    SimError, CHECKPOINT_WORDS, DEFAULT_DMEM_WORDS,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::platform::{drive, drive_observed, Platform, SimEvent, SimObserver, TickOutcome};
use crate::{BackupModel, BackupPolicy, ClockPolicy, FaultPlan, Thresholds};

/// Static platform configuration shared by the intermittent platforms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Core clock, Hz.
    pub clock_hz: f64,
    /// Storage capacitance, farads (on-chip scale for NVPs).
    pub capacitance_f: f64,
    /// Capacitor rated voltage, volts.
    pub cap_voltage_v: f64,
    /// Capacitor self-discharge time constant, seconds.
    pub cap_leak_tau_s: f64,
    /// Front-end conversion model.
    pub rectifier: Rectifier,
    /// Chip sleep/standby power while off, watts.
    pub sleep_power_w: f64,
    /// Useful-work budget added to the start threshold so the platform
    /// does not thrash on/off, joules.
    pub work_headroom_j: f64,
    /// Installed data memory, 16-bit words.
    pub dmem_words: usize,
    /// `true` if main data memory is nonvolatile (survives power loss).
    pub dmem_nonvolatile: bool,
    /// Restart the program when it halts (continuous frame processing).
    pub restart_on_halt: bool,
    /// Per-instruction cycle model.
    pub cycle_model: CycleModel,
    /// Per-instruction energy model.
    pub energy_model: EnergyModel,
    /// Clock-scaling policy (fixed base clock by default).
    pub clock_policy: ClockPolicy,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            clock_hz: 1e6,
            capacitance_f: 2.2e-6,
            cap_voltage_v: 3.3,
            cap_leak_tau_s: 3600.0,
            rectifier: Rectifier::default(),
            sleep_power_w: 50e-9,
            work_headroom_j: 0.6e-6,
            dmem_words: DEFAULT_DMEM_WORDS,
            dmem_nonvolatile: true,
            restart_on_halt: true,
            cycle_model: CycleModel::default(),
            energy_model: EnergyModel::default(),
            clock_policy: ClockPolicy::Fixed,
        }
    }
}

impl SystemConfig {
    /// Returns a copy with a different storage capacitance.
    #[must_use]
    pub fn with_capacitance(mut self, farads: f64) -> Self {
        self.capacitance_f = farads;
        self
    }

    /// Returns a copy with volatile data memory (conventional MCU).
    #[must_use]
    pub fn with_volatile_dmem(mut self) -> Self {
        self.dmem_nonvolatile = false;
        self
    }

    /// Returns a copy with a different clock-scaling policy.
    #[must_use]
    pub fn with_clock_policy(mut self, policy: ClockPolicy) -> Self {
        self.clock_policy = policy;
        self
    }
}

/// Where the platform's energy went over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Raw harvested energy offered by the trace.
    pub harvested: Joules,
    /// Energy delivered past the rectifier into storage.
    pub converted: Joules,
    /// Energy spent executing instructions.
    pub compute: Joules,
    /// Energy spent on backup operations.
    pub backup: Joules,
    /// Energy spent on restore operations.
    pub restore: Joules,
    /// Energy spent sleeping (standby draw while off).
    pub sleep: Joules,
    /// Energy lost in the output regulator between storage and load
    /// (only platforms that feed the core through a regulator, i.e. the
    /// wait-compute baseline, incur this).
    pub regulator: Joules,
    /// Energy still held in storage when the run ended (snapshot).
    pub stored_at_end: Joules,
    /// Energy lost to capacitor leakage and overcharge spill (snapshot
    /// of the storage device's cumulative waste).
    pub storage_wasted: Joules,
}

/// The outcome of simulating a platform over a power trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Simulated wall-clock duration, seconds.
    pub duration_s: f64,
    /// Time spent actively executing instructions, seconds.
    pub on_time_s: f64,
    /// Instructions *persistently committed* — the forward-progress metric.
    pub committed: u64,
    /// Instructions executed (committed + lost + still uncommitted).
    pub executed: u64,
    /// Instructions executed but lost to rollbacks.
    pub lost: u64,
    /// Instructions executed since the last checkpoint when the run ended.
    pub uncommitted_at_end: u64,
    /// Successful backup operations.
    pub backups: u64,
    /// Successful restore operations.
    pub restores: u64,
    /// Power-failure rollbacks (volatile state lost).
    pub rollbacks: u64,
    /// Complete program executions (frames finished).
    pub tasks_completed: u64,
    /// Backup writes that tore mid-flight, leaving a partial checkpoint
    /// (fault injection; always 0 with a disabled [`FaultPlan`]).
    pub backups_torn: u64,
    /// Backup retries attempted under the bounded threshold-backoff
    /// policy after a torn write.
    pub backup_retries: u64,
    /// Restores that failed outright or found a checkpoint failing CRC
    /// verification.
    pub restores_corrupt: u64,
    /// Times the bounded retry budget ran out and the platform degraded
    /// gracefully (forced power-down or cold start).
    pub safe_mode_entries: u64,
    /// Committed instructions later invalidated by checkpoint corruption
    /// or a cold start — the platform must re-execute to regain them.
    pub committed_lost: u64,
    /// Energy accounting.
    pub energy: EnergyBreakdown,
}

impl RunReport {
    /// Forward progress: persistently committed instructions (the
    /// literature's conservative metric — work becomes forward progress
    /// only once a checkpoint or task completion makes it durable).
    ///
    /// Note one artifact of finite observation windows: a platform whose
    /// supply never dips to the backup threshold never commits, so its
    /// `forward_progress` is 0 even though nothing was lost — see
    /// [`surviving_work`](Self::surviving_work) for the complementary
    /// view.
    #[must_use]
    pub fn forward_progress(&self) -> u64 {
        self.committed
    }

    /// Work that has not been lost by the end of the run: committed
    /// instructions plus those still pending since the last checkpoint.
    /// Monotone in harvested energy, unlike the commit-gated metric.
    #[must_use]
    pub fn surviving_work(&self) -> u64 {
        self.committed + self.uncommitted_at_end
    }

    /// Fraction of the run spent actively executing.
    #[must_use]
    pub fn on_fraction(&self) -> f64 {
        if self.duration_s > 0.0 {
            self.on_time_s / self.duration_s
        } else {
            0.0
        }
    }

    /// Backups per minute of wall-clock time.
    #[must_use]
    pub fn backups_per_minute(&self) -> f64 {
        if self.duration_s > 0.0 {
            self.backups as f64 * 60.0 / self.duration_s
        } else {
            0.0
        }
    }

    /// Forward progress net of later invalidation: committed work minus
    /// the commits a corrupt checkpoint or cold start forced the
    /// platform to redo. Equals [`forward_progress`](Self::forward_progress)
    /// whenever the fault layer is disabled.
    #[must_use]
    pub fn committed_surviving(&self) -> u64 {
        self.committed.saturating_sub(self.committed_lost)
    }

    /// Share of converted income energy spent on backup + restore.
    #[must_use]
    pub fn backup_energy_share(&self) -> f64 {
        if self.energy.converted > Joules::ZERO {
            (self.energy.backup + self.energy.restore) / self.energy.converted
        } else {
            0.0
        }
    }
}

/// Unconstrained cost of one complete program execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskCost {
    /// Instructions to completion.
    pub instructions: u64,
    /// Cycles to completion.
    pub cycles: u64,
    /// Core energy to completion, joules.
    pub energy_j: f64,
}

impl TaskCost {
    /// Wall-clock time of one uninterrupted execution at `clock_hz`.
    #[must_use]
    pub fn time_s(&self, clock_hz: f64) -> f64 {
        self.cycles as f64 / clock_hz
    }
}

/// Measures a program's unconstrained task cost (continuous power).
///
/// # Errors
///
/// Returns [`SimError`] if the program faults, or a synthetic
/// [`SimError::PcOutOfRange`] if it exceeds `max_insts` without halting.
pub fn measure_task(
    program: &Program,
    config: &SystemConfig,
    max_insts: u64,
) -> Result<TaskCost, SimError> {
    let mut machine =
        Machine::with_config(program, config.dmem_words, config.cycle_model, config.energy_model)?;
    let executed = machine.run(max_insts)?;
    if !machine.halted() {
        return Err(SimError::PcOutOfRange { pc: machine.pc() });
    }
    let c = machine.counters();
    let _ = executed;
    Ok(TaskCost { instructions: c.instructions, cycles: c.cycles, energy_j: c.energy_j })
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Off,
    Restoring {
        left_s: f64,
    },
    Active,
    BackingUp {
        left_s: f64,
        resume: bool,
    },
    /// Program halted and `restart_on_halt` is false.
    Done,
}

/// One durable checkpoint slot: the sealed (or torn) image, the
/// committed-instruction count it represents, and a monotone sequence
/// number so restore can prefer the newest image.
#[derive(Debug, Clone, Copy)]
struct Slot {
    ckpt: Checkpoint,
    committed_at: u64,
    seq: u64,
}

/// An intermittently powered platform with checkpointing.
///
/// One struct models all three checkpointing styles — what differs is the
/// [`BackupModel`] (distributed / centralized / software), the
/// [`BackupPolicy`], and whether data memory is volatile:
///
/// * hardware NVP: `BackupModel::distributed` + `BackupPolicy::demand()`
///   + nonvolatile data memory,
/// * software checkpointing (Hibernus/Mementos-class):
///   `BackupModel::software` + `Hybrid`/`Periodic` policy.
///
/// # Example
///
/// ```
/// use nvp_core::{BackupModel, BackupPolicy, IntermittentSystem, SystemConfig};
/// use nvp_device::NvmTechnology;
/// use nvp_energy::harvester;
/// use nvp_isa::asm::assemble;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = assemble("start: addi r1, r1, 1\n j start")?;
/// let backup = BackupModel::distributed(NvmTechnology::Feram, 2048);
/// let mut sys = IntermittentSystem::new(
///     &program, SystemConfig::default(), backup, BackupPolicy::demand())?;
/// let report = sys.run(&harvester::wrist_watch(1, 2.0))?;
/// assert!(report.forward_progress() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IntermittentSystem {
    config: SystemConfig,
    backup: BackupModel,
    policy: BackupPolicy,
    thresholds: Thresholds,
    /// Shared immutable program image (decoded code + block plans);
    /// campaigns running many trials of one program share a single image.
    image: Arc<MachineImage>,
    machine: Machine,
    fe: EnergyFrontEnd,
    phase: Phase,
    /// Two-slot checkpoint store (A/B images, as in Freezer-class backup
    /// controllers): a torn write can only ruin the slot being written,
    /// so the previous image stays restorable.
    slots: [Option<Slot>; 2],
    write_idx: usize,
    next_seq: u64,
    /// Snapshot taken at backup start, sealed when the write completes.
    pending: Option<ArchState>,
    fault: FaultPlan,
    rng: StdRng,
    backup_attempts: u32,
    restore_attempts: u32,
    /// Time spent powered off since the last power-on (retention decay).
    off_since_s: f64,
    /// Committed count at the last task completion or cold start; the
    /// baseline for `committed_lost` accounting when every checkpoint is
    /// abandoned.
    durable_anchor: u64,
    uncommitted: u64,
    since_ckpt_s: f64,
    time_debt_s: f64,
    current_clock_hz: f64,
    report: RunReport,
}

impl IntermittentSystem {
    /// Creates a platform around a program.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the program image fails to load.
    pub fn new(
        program: &Program,
        config: SystemConfig,
        backup: BackupModel,
        policy: BackupPolicy,
    ) -> Result<Self, SimError> {
        Self::with_faults(program, config, backup, policy, FaultPlan::none())
    }

    /// [`new`](Self::new) with a seeded [`FaultPlan`] injecting torn
    /// backups, retention bit-flips, and restore failures. With a
    /// disabled plan ([`FaultPlan::none`]) the platform draws no random
    /// numbers and is bit-identical to one built with [`new`](Self::new).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the program image fails to load.
    pub fn with_faults(
        program: &Program,
        config: SystemConfig,
        backup: BackupModel,
        policy: BackupPolicy,
        fault: FaultPlan,
    ) -> Result<Self, SimError> {
        let image = Arc::new(MachineImage::build(
            program,
            config.dmem_words,
            config.cycle_model,
            config.energy_model,
        )?);
        Ok(Self::with_faults_on_image(&image, config, backup, policy, fault))
    }

    /// [`with_faults`](Self::with_faults) over a prebuilt shared
    /// [`MachineImage`]. Campaigns dispatching many trials of one
    /// program build the image (decode + block partition) once and share
    /// it across every platform instead of redoing that work per trial.
    ///
    /// The image must have been built with the same `dmem_words`,
    /// `cycle_model`, and `energy_model` as `config`, or the reported
    /// costs will not match the configuration.
    #[must_use]
    pub fn with_faults_on_image(
        image: &Arc<MachineImage>,
        config: SystemConfig,
        backup: BackupModel,
        policy: BackupPolicy,
        fault: FaultPlan,
    ) -> Self {
        let machine = Machine::from_image(image);
        let thresholds = Thresholds::derive(&backup, &policy, Joules::new(config.work_headroom_j));
        // An NVP's buffer sits directly at the rectifier output: no
        // trickle penalty, no charger input clipping.
        let fe = EnergyFrontEnd::new(FrontEndConfig::direct(
            config.rectifier,
            Farads::new(config.capacitance_f),
            Volts::new(config.cap_voltage_v),
            Seconds::new(config.cap_leak_tau_s),
        ));
        let rng = StdRng::seed_from_u64(fault.seed);
        IntermittentSystem {
            config,
            backup,
            policy,
            thresholds,
            image: Arc::clone(image),
            machine,
            fe,
            phase: Phase::Off,
            slots: [None, None],
            write_idx: 0,
            next_seq: 0,
            pending: None,
            fault,
            rng,
            backup_attempts: 0,
            restore_attempts: 0,
            off_since_s: 0.0,
            durable_anchor: 0,
            uncommitted: 0,
            since_ckpt_s: 0.0,
            time_debt_s: 0.0,
            current_clock_hz: config.clock_hz,
            report: RunReport::default(),
        }
    }

    /// The shared program image this platform executes.
    #[must_use]
    pub fn image(&self) -> &Arc<MachineImage> {
        &self.image
    }

    /// The fault-injection plan in effect.
    #[must_use]
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault
    }

    /// Overrides the derived thresholds (policy studies).
    pub fn set_thresholds(&mut self, thresholds: Thresholds) {
        self.thresholds = thresholds;
    }

    /// The thresholds in effect.
    #[must_use]
    pub fn thresholds(&self) -> Thresholds {
        self.thresholds
    }

    /// Read access to the machine (for output/quality inspection).
    #[must_use]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Latches a sensor value on input `port` for subsequent `in`
    /// instructions — the one piece of machine state a test harness or
    /// sensor model may poke while the platform runs.
    pub fn set_input(&mut self, port: u8, value: u16) {
        self.machine.set_input(port, value);
    }

    /// The accumulated report so far.
    #[must_use]
    pub fn report(&self) -> &RunReport {
        &self.report
    }

    /// Simulates the platform over a trace, accumulating into the report.
    ///
    /// Can be called repeatedly with successive trace windows. This is
    /// the shared engine loop: see [`drive`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the workload itself faults (wild PC or
    /// memory access) — power failures are *not* errors.
    pub fn run(&mut self, trace: &PowerTrace) -> Result<RunReport, SimError> {
        drive(trace, self)
    }

    /// [`run`](Self::run) with a [`SimObserver`] receiving platform
    /// events (power-on, backup, restore, rollback, brown-out, commit).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the workload itself faults.
    pub fn run_observed(
        &mut self,
        trace: &PowerTrace,
        obs: &mut dyn SimObserver,
    ) -> Result<RunReport, SimError> {
        drive_observed(trace, self, obs)
    }

    /// Advances the phase machine by one tick of `dt` seconds.
    fn advance(&mut self, dt: f64, obs: &mut dyn SimObserver) -> Result<(), SimError> {
        let mut budget = dt - self.time_debt_s;
        self.time_debt_s = 0.0;
        while budget > 1e-12 {
            match self.phase {
                Phase::Off => {
                    if self.fe.storage().energy() >= self.thresholds.start {
                        if self.fe.storage_mut().draw(self.backup.restore_energy) {
                            if self.fault.retention.is_some() {
                                self.decay_checkpoints();
                            }
                            self.off_since_s = 0.0;
                            self.report.energy.restore += self.backup.restore_energy;
                            self.report.restores += 1;
                            obs.on_event(self.report.duration_s, SimEvent::PowerOn);
                            obs.on_event(self.report.duration_s, SimEvent::Restore);
                            self.phase =
                                Phase::Restoring { left_s: self.backup.restore_time.get() };
                        } else {
                            // The start threshold should cover restore;
                            // sleep instead.
                            self.off_since_s += budget;
                            self.sleep(budget);
                            budget = 0.0;
                        }
                    } else {
                        self.off_since_s += budget;
                        self.sleep(budget);
                        budget = 0.0;
                    }
                }
                Phase::Restoring { left_s } => {
                    let t = left_s.min(budget);
                    budget -= t;
                    let left = left_s - t;
                    if left <= 1e-12 {
                        if self.fault.restore_fail_prob > 0.0
                            && self.rng.random::<f64>() < self.fault.restore_fail_prob
                        {
                            // The wake-up restore itself failed (bad
                            // read, peripheral timeout) before any
                            // verification ran.
                            self.report.restores_corrupt += 1;
                            obs.on_event(self.report.duration_s, SimEvent::RestoreCorrupt);
                            self.restore_attempts += 1;
                            if self.restore_attempts > self.fault.max_retries {
                                // Retry budget exhausted: degrade to a
                                // cold start rather than wedge.
                                self.enter_safe_mode(obs);
                                self.restore_attempts = 0;
                                self.abandon_checkpoints();
                                self.since_ckpt_s = 0.0;
                                self.phase = Phase::Active;
                            } else {
                                // Power back down; the next threshold
                                // crossing pays for another attempt.
                                self.phase = Phase::Off;
                            }
                        } else {
                            self.restore_attempts = 0;
                            self.restore_from_best(obs);
                            self.since_ckpt_s = 0.0;
                            self.phase = Phase::Active;
                        }
                    } else {
                        self.phase = Phase::Restoring { left_s: left };
                    }
                }
                Phase::Active => {
                    budget = self.run_active(budget, obs)?;
                }
                Phase::BackingUp { left_s, resume } => {
                    let t = left_s.min(budget);
                    budget -= t;
                    let left = left_s - t;
                    if left <= 1e-12 {
                        let torn = self.fault.tear_prob > 0.0
                            && self.rng.random::<f64>() < self.fault.tear_prob;
                        if torn {
                            self.torn_backup(resume, obs);
                        } else {
                            // The image and its CRC commit record are
                            // durable: commit everything.
                            self.report.committed += self.uncommitted;
                            self.uncommitted = 0;
                            self.seal_backup();
                            self.since_ckpt_s = 0.0;
                            self.backup_attempts = 0;
                            self.phase = if resume { Phase::Active } else { Phase::Off };
                        }
                    } else {
                        self.phase = Phase::BackingUp { left_s: left, resume };
                    }
                }
                Phase::Done => {
                    self.sleep(budget);
                    budget = 0.0;
                }
            }
        }
        // Remember sub-instruction overshoot so long instructions stay
        // accurate across ticks.
        if budget < 0.0 {
            self.time_debt_s = -budget;
        }
        Ok(())
    }

    /// Executes instructions until the budget is spent or a platform
    /// event (backup trigger, halt, brown-out) changes phase. Returns the
    /// remaining (possibly slightly negative) budget.
    ///
    /// Instructions run in batches: using the machine's worst-case
    /// per-step cost, a block size is chosen such that no energy floor,
    /// periodic-checkpoint deadline, or brown-out can be crossed inside
    /// the block, so the threshold checks only need to run per block.
    /// When the remaining slack admits fewer than two instructions, the
    /// loop falls back to the exact single-step path.
    fn run_active(&mut self, mut budget: f64, obs: &mut dyn SimObserver) -> Result<f64, SimError> {
        let clock = self.current_clock_hz;
        let max_step_s = f64::from(self.machine.max_step_cycles()) / clock;
        let max_step_j = self.machine.max_step_energy_j();
        while budget > 1e-12 {
            // Demand backup when energy reaches the reserve floor.
            if self.thresholds.backup_reserve > Joules::ZERO
                && self.fe.storage().energy() <= self.thresholds.backup_reserve
            {
                self.begin_backup(false, obs);
                return Ok(budget);
            }
            // Periodic checkpoint.
            if let Some(interval) = self.policy.interval_s() {
                if self.since_ckpt_s >= interval {
                    self.begin_backup(true, obs);
                    return Ok(budget);
                }
            }
            if self.machine.halted() {
                self.finish_task(obs)?;
                if self.phase == Phase::Done {
                    return Ok(budget);
                }
                continue;
            }
            // Largest block that cannot cross any threshold mid-block,
            // assuming every instruction costs the image's worst case.
            let mut block = safe_count(budget, max_step_s);
            let floor = self.thresholds.backup_reserve.max(Joules::ZERO);
            block = block.min(safe_count((self.fe.storage().energy() - floor).get(), max_step_j));
            if let Some(interval) = self.policy.interval_s() {
                block = block.min(safe_count(interval - self.since_ckpt_s, max_step_s));
            }
            if block >= 2 {
                let stats = self.machine.run_superblocks(block)?;
                let t = stats.cycles as f64 / clock;
                budget -= t;
                self.report.on_time_s += t;
                self.since_ckpt_s += t;
                self.report.executed += stats.executed;
                self.uncommitted += stats.executed;
                self.report.energy.compute += Joules::new(stats.energy_j);
                if !self.fe.storage_mut().draw_j(stats.energy_j) {
                    // Unreachable under the block bound, but kept so the
                    // brown-out path cannot be silently skipped.
                    self.fe.storage_mut().deplete();
                    obs.on_event(self.report.duration_s, SimEvent::BrownOut);
                    self.rollback(obs)?;
                    return Ok(budget);
                }
                if stats.checkpoint {
                    self.begin_backup(true, obs);
                    return Ok(budget);
                }
                continue;
            }
            let step = self.machine.step()?;
            let t = f64::from(step.cycles) / clock;
            budget -= t;
            self.report.on_time_s += t;
            self.since_ckpt_s += t;
            self.report.executed += 1;
            self.uncommitted += 1;
            self.report.energy.compute += Joules::new(step.energy_j);
            if !self.fe.storage_mut().draw_j(step.energy_j) {
                // Brown-out mid-instruction: volatile state is gone.
                self.fe.storage_mut().deplete();
                obs.on_event(self.report.duration_s, SimEvent::BrownOut);
                self.rollback(obs)?;
                return Ok(budget);
            }
            if step.checkpoint {
                // Program-requested checkpoint (`ckpt` instruction).
                self.begin_backup(true, obs);
                return Ok(budget);
            }
        }
        Ok(budget)
    }

    /// Starts a backup; `resume` controls whether execution continues
    /// afterwards (periodic checkpoints) or the platform powers down
    /// (demand backups at the energy floor).
    fn begin_backup(&mut self, resume: bool, obs: &mut dyn SimObserver) {
        if self.fe.storage_mut().draw(self.backup.backup_energy) {
            self.report.energy.backup += self.backup.backup_energy;
            self.report.backups += 1;
            obs.on_event(self.report.duration_s, SimEvent::Backup);
            self.pending = Some(self.machine.snapshot());
            self.backup_attempts = 0;
            self.phase = Phase::BackingUp { left_s: self.backup.backup_time.get(), resume };
        } else {
            // Not enough energy left to checkpoint — the greedy-policy
            // failure mode: everything since the last checkpoint is lost.
            self.fe.storage_mut().deplete();
            obs.on_event(self.report.duration_s, SimEvent::BrownOut);
            if let Err(e) = self.rollback(obs) {
                // rollback only errs on reload, which new() validated.
                debug_assert!(false, "rollback failed: {e}");
            }
        }
    }

    /// Handles a program halt: the frame's results are durable, so the
    /// work commits; then either restart for the next frame or stop.
    fn finish_task(&mut self, obs: &mut dyn SimObserver) -> Result<(), SimError> {
        self.report.tasks_completed += 1;
        self.report.committed += self.uncommitted;
        self.uncommitted = 0;
        // The frame's checkpoints reference a finished execution.
        self.slots = [None, None];
        self.write_idx = 0;
        self.pending = None;
        self.durable_anchor = self.report.committed;
        obs.on_event(self.report.duration_s, SimEvent::TaskCommit);
        if self.config.restart_on_halt {
            self.machine.reset_volatile();
        } else {
            self.phase = Phase::Done;
        }
        Ok(())
    }

    /// Loses all volatile state after a brown-out.
    fn rollback(&mut self, obs: &mut dyn SimObserver) -> Result<(), SimError> {
        self.report.rollbacks += 1;
        self.report.lost += self.uncommitted;
        self.uncommitted = 0;
        obs.on_event(self.report.duration_s, SimEvent::Rollback);
        if self.config.dmem_nonvolatile {
            self.machine.reset_volatile();
        } else {
            // Volatile SRAM: rebuild the machine, losing data memory too,
            // and invalidate the checkpoints (they reference lost data).
            // The superblock profile is execution metadata, not machine
            // state, so the rebuilt machine adopts it rather than
            // re-warming from scratch after every brown-out.
            let mut fresh = Machine::from_image(&self.image);
            fresh.adopt_profile_from(&mut self.machine);
            self.machine = fresh;
            self.slots = [None, None];
            self.write_idx = 0;
        }
        self.pending = None;
        self.phase = Phase::Off;
        Ok(())
    }

    /// Seals the pending snapshot into the write slot with a matching
    /// CRC and rotates the A/B slots. Called when a backup window
    /// completes untorn; `committed_at` records the post-commit count
    /// so fallback restores can account re-execution precisely.
    fn seal_backup(&mut self) {
        let state = self.pending.take().unwrap_or_else(|| self.machine.snapshot());
        let seq = self.next_seq;
        self.next_seq += 1;
        self.slots[self.write_idx] =
            Some(Slot { ckpt: Checkpoint::seal(&state), committed_at: self.report.committed, seq });
        self.write_idx ^= 1;
    }

    /// A backup write tore: store the partial image (CRC never lands),
    /// then either retry under the threshold-backoff policy or give up
    /// and power down (safe mode). The write slot is *not* rotated, so
    /// the previous image survives and a retry overwrites the garbage.
    fn torn_backup(&mut self, resume: bool, obs: &mut dyn SimObserver) {
        self.report.backups_torn += 1;
        obs.on_event(self.report.duration_s, SimEvent::BackupTorn);
        let state = self.pending.unwrap_or_else(|| self.machine.snapshot());
        let written = torn_prefix_words(CHECKPOINT_WORDS, self.rng.random::<f64>());
        let prev = self.slots[self.write_idx].map(|s| s.ckpt);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.slots[self.write_idx] = Some(Slot {
            ckpt: Checkpoint::torn(&state, prev.as_ref(), written),
            committed_at: self.report.committed + self.uncommitted,
            seq,
        });
        self.backup_attempts += 1;
        // Attempt k is only worth paying for with backoff^k × the backup
        // energy in storage — a collapsing supply stops burning energy
        // on writes that will tear again.
        let attempt_threshold = self.backup.backup_energy
            * self.fault.retry_backoff.powi(self.backup_attempts.min(64) as i32);
        if self.backup_attempts <= self.fault.max_retries
            && self.fe.storage().energy() >= attempt_threshold
            && self.fe.storage_mut().draw(self.backup.backup_energy)
        {
            self.report.energy.backup += self.backup.backup_energy;
            self.report.backups += 1;
            self.report.backup_retries += 1;
            obs.on_event(self.report.duration_s, SimEvent::RetryBackup);
            self.phase = Phase::BackingUp { left_s: self.backup.backup_time.get(), resume };
        } else {
            // Retry budget (or energy) exhausted: degrade gracefully.
            // Power down with the work since the last checkpoint lost;
            // the torn image fails CRC on the next restore and the
            // platform falls back to the previous valid slot.
            self.enter_safe_mode(obs);
            self.report.lost += self.uncommitted;
            self.uncommitted = 0;
            self.backup_attempts = 0;
            self.pending = None;
            self.phase = Phase::Off;
        }
    }

    /// Applies retention decay to every stored checkpoint word for the
    /// off-time accumulated since power-down. Any real flip breaks the
    /// image's CRC, which the restore path then detects.
    fn decay_checkpoints(&mut self) {
        let Some(retention) = self.fault.retention.clone() else { return };
        if self.off_since_s <= 0.0 {
            return;
        }
        for slot in self.slots.iter_mut().flatten() {
            for w in slot.ckpt.words_mut() {
                let (decayed, _flips) = retention.degrade(*w, self.off_since_s, &mut self.rng);
                *w = decayed;
            }
        }
    }

    /// Restores from the newest checkpoint that passes CRC verification,
    /// discarding corrupt images; falls back to a cold start (safe mode)
    /// when nothing verifies. The fault-free path — newest slot valid,
    /// or no slots at all — is byte-identical to the legacy behavior.
    fn restore_from_best(&mut self, obs: &mut dyn SimObserver) {
        let mut order: [Option<usize>; 2] = [None, None];
        for idx in 0..2 {
            if self.slots[idx].is_some() {
                if order[0].is_none() {
                    order[0] = Some(idx);
                } else {
                    order[1] = Some(idx);
                }
            }
        }
        if let (Some(a), Some(b)) = (order[0], order[1]) {
            if self.slots[a].map(|s| s.seq) < self.slots[b].map(|s| s.seq) {
                order.swap(0, 1);
            }
        }
        let mut dropped_newer = false;
        for idx in order.into_iter().flatten() {
            let slot = self.slots[idx].expect("order only lists occupied slots");
            if slot.ckpt.verify() {
                self.machine.restore(&slot.ckpt.state());
                if dropped_newer {
                    // Commits recorded after this older image must be
                    // re-executed to reach the same point again.
                    self.report.committed_lost +=
                        self.report.committed.saturating_sub(slot.committed_at);
                    // Overwrite the discarded slot next, not this one.
                    self.write_idx = idx ^ 1;
                }
                return;
            }
            self.report.restores_corrupt += 1;
            obs.on_event(self.report.duration_s, SimEvent::RestoreCorrupt);
            self.slots[idx] = None;
            dropped_newer = true;
        }
        if dropped_newer {
            // Every stored image failed verification.
            self.enter_safe_mode(obs);
            self.abandon_checkpoints();
        } else {
            // First boot (or post-rollback on volatile memory): nothing
            // saved yet, start from the entry point.
            self.machine.reset_volatile();
        }
    }

    /// Cold start after corruption: every checkpoint is untrusted, so
    /// the platform restarts the frame and the commits since the last
    /// durable anchor are charged to `committed_lost`.
    fn abandon_checkpoints(&mut self) {
        self.slots = [None, None];
        self.write_idx = 0;
        self.pending = None;
        self.report.committed_lost += self.report.committed.saturating_sub(self.durable_anchor);
        self.durable_anchor = self.report.committed;
        self.machine.reset_volatile();
    }

    fn enter_safe_mode(&mut self, obs: &mut dyn SimObserver) {
        self.report.safe_mode_entries += 1;
        obs.on_event(self.report.duration_s, SimEvent::SafeModeEntered);
    }

    /// Rough active core power at the base clock: average energy per
    /// cycle times frequency (used only for clock-policy decisions).
    fn active_power_estimate_w(&self) -> f64 {
        (self.config.energy_model.base_per_cycle_j + 20e-12) * self.config.clock_hz
    }

    /// The clock the platform is currently running at.
    #[must_use]
    pub fn current_clock_hz(&self) -> f64 {
        self.current_clock_hz
    }

    fn sleep(&mut self, duration_s: f64) {
        let draw = Watts::new(self.config.sleep_power_w) * Seconds::new(duration_s);
        let got = self.fe.storage_mut().draw_up_to(draw);
        self.report.energy.sleep += got;
    }
}

impl Platform for IntermittentSystem {
    fn front_end(&self) -> &EnergyFrontEnd {
        &self.fe
    }

    fn front_end_mut(&mut self) -> &mut EnergyFrontEnd {
        &mut self.fe
    }

    fn tick(
        &mut self,
        income: TickIncome,
        dt_s: f64,
        obs: &mut dyn SimObserver,
    ) -> Result<TickOutcome, SimError> {
        self.current_clock_hz = self.config.clock_policy.select_hz(
            self.config.clock_hz,
            self.active_power_estimate_w(),
            (income.converted / Seconds::new(dt_s)).get(),
            self.fe.storage().fill_fraction(),
        );
        let on_before = self.report.on_time_s;
        self.advance(dt_s, obs)?;
        Ok(if self.phase == Phase::Done {
            TickOutcome::Done
        } else if self.report.on_time_s > on_before {
            TickOutcome::Ran
        } else {
            TickOutcome::Idle
        })
    }

    fn report(&self) -> &RunReport {
        &self.report
    }

    fn report_mut(&mut self) -> &mut RunReport {
        &mut self.report
    }

    fn machine(&self) -> &Machine {
        &self.machine
    }

    fn uncommitted(&self) -> u64 {
        self.uncommitted
    }
}

/// How many worst-case steps of size `per_step` fit in `slack` without
/// crossing it. Non-finite or non-positive slack admits none.
fn safe_count(slack: f64, per_step: f64) -> u64 {
    if per_step <= 0.0 || slack <= 0.0 {
        return 0;
    }
    // `as` saturates: an unbounded ratio clamps to u64::MAX.
    (slack / per_step) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvp_device::NvmTechnology;
    use nvp_energy::harvester;
    use nvp_isa::asm::assemble;

    fn counter_program() -> Program {
        assemble("start:\n addi r1, r1, 1\n sw r1, 0(r0)\n j start").unwrap()
    }

    fn nvp(program: &Program) -> IntermittentSystem {
        IntermittentSystem::new(
            program,
            SystemConfig::default(),
            BackupModel::distributed(NvmTechnology::Feram, 2048),
            BackupPolicy::demand(),
        )
        .unwrap()
    }

    #[test]
    fn strong_power_runs_continuously() {
        let program = counter_program();
        let mut sys = nvp(&program);
        let trace = PowerTrace::constant(1e-4, 2e-3, 1.0); // 2 mW ≫ core draw
        let r = sys.run(&trace).unwrap();
        assert_eq!(r.rollbacks, 0);
        assert!(r.on_fraction() > 0.9, "on fraction {}", r.on_fraction());
        // ~1 MHz, mostly 1-2 cycle instructions over 1 s.
        assert!(r.executed > 300_000, "{}", r.executed);
        assert!(r.backups <= 1);
    }

    #[test]
    fn zero_power_does_nothing() {
        let program = counter_program();
        let mut sys = nvp(&program);
        let r = sys.run(&PowerTrace::constant(1e-4, 0.0, 0.5)).unwrap();
        assert_eq!(r.executed, 0);
        assert_eq!(r.backups, 0);
        assert_eq!(r.on_time_s, 0.0);
    }

    #[test]
    fn interrupted_power_backs_up_and_resumes() {
        let program = counter_program();
        let mut sys = nvp(&program);
        // Strong bursts with gaps long enough to force power-down: the
        // buffer holds ~12 µJ and a 0.3 s gap at ~0.2 mW needs ~60 µJ.
        let trace = PowerTrace::from_segments(
            1e-4,
            &[(1e-3, 0.05), (0.0, 0.3), (1e-3, 0.05), (0.0, 0.3), (1e-3, 0.05)],
        );
        let r = sys.run(&trace).unwrap();
        assert!(r.backups >= 2, "backups {}", r.backups);
        assert!(r.restores >= 2, "restores {}", r.restores);
        assert_eq!(r.rollbacks, 0, "demand policy must not lose state");
        assert!(r.committed > 0);
        // The counter value in NVM survives all outages: it equals the
        // committed+uncommitted increments observed by the program.
        let counter = sys.machine().read_word(0).unwrap();
        assert!(counter > 0);
    }

    #[test]
    fn forward_progress_monotone_with_power() {
        let program = counter_program();
        let mut weak = nvp(&program);
        let mut strong = nvp(&program);
        let weak_r = weak.run(&harvester::wrist_watch(1, 2.0)).unwrap();
        let strong_r = strong.run(&harvester::wrist_watch(1, 2.0).scaled(4.0)).unwrap();
        assert!(strong_r.forward_progress() > weak_r.forward_progress());
    }

    #[test]
    fn wearable_trace_yields_published_backup_rate_band() {
        let program = counter_program();
        let mut sys = nvp(&program);
        let r = sys.run(&harvester::wrist_watch(2, 10.0)).unwrap();
        let per_min = r.backups_per_minute();
        assert!(
            (500.0..4000.0).contains(&per_min),
            "published band is 1400-1700/min; model gives {per_min}"
        );
        let share = r.backup_energy_share();
        assert!(
            (0.05..0.55).contains(&share),
            "published band is 20-33 % of income; model gives {share}"
        );
    }

    #[test]
    fn greedy_policy_risks_rollbacks() {
        let program = counter_program();
        let mut greedy = IntermittentSystem::new(
            &program,
            SystemConfig::default(),
            BackupModel::distributed(NvmTechnology::Feram, 2048),
            BackupPolicy::Periodic { interval_s: 0.5 }, // no demand floor
        )
        .unwrap();
        let trace = harvester::wrist_watch(3, 5.0);
        let r = greedy.run(&trace).unwrap();
        assert!(r.rollbacks > 0, "periodic-only checkpointing must lose work on this trace");
        assert!(r.lost > 0);
    }

    #[test]
    fn periodic_checkpoints_resume_execution() {
        let program = counter_program();
        let mut sys = IntermittentSystem::new(
            &program,
            SystemConfig::default(),
            BackupModel::distributed(NvmTechnology::Feram, 2048),
            BackupPolicy::Hybrid { interval_s: 0.01, margin: 1.5 },
        )
        .unwrap();
        let r = sys.run(&PowerTrace::constant(1e-4, 2e-3, 0.5)).unwrap();
        // 0.5 s / 10 ms → ~50 periodic checkpoints, still mostly on.
        assert!(r.backups >= 30, "{}", r.backups);
        assert!(r.on_fraction() > 0.8);
        assert_eq!(r.rollbacks, 0);
    }

    #[test]
    fn halting_program_counts_tasks() {
        let program =
            assemble("li r2, 50\nloop: addi r1, r1, 1\n bne r1, r2, loop\n sw r1, 0(r0)\n halt")
                .unwrap();
        let mut sys = nvp(&program);
        let r = sys.run(&PowerTrace::constant(1e-4, 2e-3, 0.2)).unwrap();
        assert!(r.tasks_completed > 100, "{}", r.tasks_completed);
        assert_eq!(r.rollbacks, 0);
        assert_eq!(sys.machine().read_word(0), Some(50));
    }

    #[test]
    fn done_phase_when_restart_disabled() {
        let program = assemble("li r1, 3\nsw r1, 0(r0)\nhalt").unwrap();
        let cfg = SystemConfig { restart_on_halt: false, ..SystemConfig::default() };
        let mut sys = IntermittentSystem::new(
            &program,
            cfg,
            BackupModel::distributed(NvmTechnology::Feram, 2048),
            BackupPolicy::demand(),
        )
        .unwrap();
        let r = sys.run(&PowerTrace::constant(1e-4, 2e-3, 0.1)).unwrap();
        assert_eq!(r.tasks_completed, 1);
        assert_eq!(sys.machine().read_word(0), Some(3));
        // All work committed, nothing pending.
        assert_eq!(r.committed, r.executed);
    }

    #[test]
    fn energy_breakdown_is_consistent() {
        let program = counter_program();
        let mut sys = nvp(&program);
        let r = sys.run(&harvester::wrist_watch(4, 3.0)).unwrap();
        let e = r.energy;
        assert!(e.harvested >= e.converted);
        let spent = e.compute + e.backup + e.restore + e.sleep;
        // Spending cannot exceed what was converted (cap may hold some).
        assert!(
            spent <= e.converted + Joules::new(1e-9),
            "spent {spent} vs converted {}",
            e.converted
        );
    }

    #[test]
    fn runs_accumulate_across_calls() {
        let program = counter_program();
        let mut sys = nvp(&program);
        let t = PowerTrace::constant(1e-4, 1e-3, 0.1);
        let r1 = sys.run(&t).unwrap();
        let r2 = sys.run(&t).unwrap();
        assert!(r2.executed > r1.executed);
        assert!((r2.duration_s - 0.2).abs() < 1e-9);
    }

    #[test]
    fn measure_task_cost() {
        let program = assemble("li r2, 10\nloop: addi r1, r1, 1\nbne r1, r2, loop\nhalt").unwrap();
        let cost = measure_task(&program, &SystemConfig::default(), 1_000_000).unwrap();
        assert_eq!(cost.instructions, 22);
        assert!(cost.energy_j > 0.0);
        assert!(cost.time_s(1e6) > 0.0);
    }

    #[test]
    fn measure_task_detects_nontermination() {
        let program = counter_program();
        assert!(measure_task(&program, &SystemConfig::default(), 10_000).is_err());
    }

    #[test]
    fn deterministic_runs() {
        let program = counter_program();
        let trace = harvester::wrist_watch(5, 2.0);
        let mut a = nvp(&program);
        let mut b = nvp(&program);
        let ra = a.run(&trace).unwrap();
        let rb = b.run(&trace).unwrap();
        assert_eq!(ra, rb);
    }

    fn faulted(program: &Program, plan: FaultPlan) -> IntermittentSystem {
        IntermittentSystem::with_faults(
            program,
            SystemConfig::default(),
            BackupModel::distributed(NvmTechnology::Feram, 2048),
            BackupPolicy::demand(),
            plan,
        )
        .unwrap()
    }

    /// An outage-heavy trace that forces many backup/restore cycles.
    fn choppy_trace() -> PowerTrace {
        PowerTrace::from_segments(
            1e-4,
            &[
                (1e-3, 0.05),
                (0.0, 0.3),
                (1e-3, 0.05),
                (0.0, 0.3),
                (1e-3, 0.05),
                (0.0, 0.3),
                (1e-3, 0.05),
            ],
        )
    }

    #[test]
    fn disabled_fault_plan_is_bitwise_noop() {
        let program = counter_program();
        let trace = harvester::wrist_watch(6, 3.0);
        let plain = nvp(&program).run(&trace).unwrap();
        let with_none = faulted(&program, FaultPlan::none()).run(&trace).unwrap();
        assert_eq!(plain, with_none);
        assert_eq!(plain.energy.compute.get().to_bits(), with_none.energy.compute.get().to_bits());
        assert_eq!(plain.backups_torn, 0);
        assert_eq!(plain.restores_corrupt, 0);
        assert_eq!(plain.committed_lost, 0);
        assert_eq!(plain.committed_surviving(), plain.forward_progress());
    }

    fn faulted_hybrid(program: &Program, plan: FaultPlan) -> IntermittentSystem {
        IntermittentSystem::with_faults(
            program,
            SystemConfig::default(),
            BackupModel::distributed(NvmTechnology::Feram, 2048),
            BackupPolicy::Hybrid { interval_s: 0.01, margin: 1.5 },
            plan,
        )
        .unwrap()
    }

    #[test]
    fn torn_backups_are_injected_and_recovered() {
        let program = counter_program();
        // Periodic checkpoints under strong power: storage is full when
        // a write tears, so the threshold-backoff retry path engages.
        let mut sys = faulted_hybrid(&program, FaultPlan::with_rates(11, 0.4, 0.0));
        let r = sys.run(&PowerTrace::constant(1e-4, 2e-3, 1.0)).unwrap();
        assert!(r.backups_torn > 0, "tear rate 0.4 must tear something: {r:?}");
        assert!(r.backup_retries > 0, "torn backups must be retried: {r:?}");
        assert!(r.committed > 0, "the platform must still make progress");
    }

    #[test]
    fn demand_tears_without_energy_degrade_instead_of_retrying() {
        let program = counter_program();
        // Demand backups fire at the energy floor: a tear there cannot
        // meet the backed-off retry threshold, so the platform powers
        // down in safe mode rather than burning its last joules.
        let mut sys = faulted(&program, FaultPlan::with_rates(11, 0.6, 0.0));
        let r = sys.run(&choppy_trace()).unwrap();
        assert!(r.backups_torn > 0, "{r:?}");
        assert!(r.safe_mode_entries > 0, "{r:?}");
        assert!(r.committed > 0, "fallback to the previous valid image keeps progress");
    }

    #[test]
    fn restore_failures_fall_back_and_still_progress() {
        let program = counter_program();
        let mut sys = faulted(&program, FaultPlan::with_rates(12, 0.0, 0.5));
        let r = sys.run(&choppy_trace()).unwrap();
        assert!(r.restores_corrupt > 0, "restore-fail rate 0.5 must fire: {r:?}");
        assert!(r.committed > 0, "bounded retries must not wedge the platform");
    }

    #[test]
    fn retention_decay_breaks_checkpoint_crc() {
        use nvp_device::{RelaxPolicy, RetentionShaper};
        let program = counter_program();
        // Millisecond-class retention against 0.3 s outages: stored
        // images decay while the platform is off and fail verification.
        let retention = RetentionShaper::new(RelaxPolicy::Linear, 16, 1e-3, 10e-3).bit_retention();
        let plan = FaultPlan { seed: 13, ..FaultPlan::none() }.with_retention(retention);
        let mut sys = faulted(&program, plan);
        let r = sys.run(&choppy_trace()).unwrap();
        assert!(r.restores_corrupt > 0, "decayed checkpoints must fail CRC: {r:?}");
        assert!(r.committed > 0);
    }

    #[test]
    fn faulted_runs_are_deterministic_per_seed() {
        let program = counter_program();
        let plan = FaultPlan::with_rates(21, 0.4, 0.2);
        let ra = faulted(&program, plan.clone()).run(&choppy_trace()).unwrap();
        let rb = faulted(&program, plan).run(&choppy_trace()).unwrap();
        assert_eq!(ra, rb);
        let rc =
            faulted(&program, FaultPlan::with_rates(22, 0.4, 0.2)).run(&choppy_trace()).unwrap();
        assert_ne!(ra, rc, "different fault seeds should diverge on this trace");
    }

    #[test]
    fn safe_mode_bounds_retry_storms() {
        let program = counter_program();
        // Certain tears: every backup tears, retries always tear again,
        // so the retry budget must run out and safe mode must engage
        // instead of looping forever.
        let plan = FaultPlan::with_rates(31, 1.0, 0.0);
        let mut sys = faulted(&program, plan);
        let r = sys.run(&choppy_trace()).unwrap();
        assert!(r.safe_mode_entries > 0, "{r:?}");
        assert_eq!(r.committed, 0, "no backup ever completes, nothing commits: {r:?}");
        assert!(r.backup_retries <= r.backups_torn * 2);
    }

    #[test]
    fn fault_event_counts_match_report() {
        use std::collections::BTreeMap;
        #[derive(Default)]
        struct Counter(BTreeMap<SimEvent, u64>);
        impl SimObserver for Counter {
            fn on_event(&mut self, _t_s: f64, event: SimEvent) {
                *self.0.entry(event).or_insert(0) += 1;
            }
        }
        let program = counter_program();
        let plan = FaultPlan::with_rates(41, 0.5, 0.3);
        let mut sys = faulted_hybrid(&program, plan);
        let mut obs = Counter::default();
        let trace = PowerTrace::from_segments(
            1e-4,
            &[(2e-3, 0.3), (0.0, 0.3), (2e-3, 0.3), (0.0, 0.3), (2e-3, 0.3)],
        );
        let r = sys.run_observed(&trace, &mut obs).unwrap();
        let get = |e| obs.0.get(&e).copied().unwrap_or(0);
        assert_eq!(get(SimEvent::BackupTorn), r.backups_torn);
        assert_eq!(get(SimEvent::RetryBackup), r.backup_retries);
        assert_eq!(get(SimEvent::RestoreCorrupt), r.restores_corrupt);
        assert_eq!(get(SimEvent::SafeModeEntered), r.safe_mode_entries);
        assert!(r.backups_torn > 0 && r.restores_corrupt > 0, "{r:?}");
    }
}
