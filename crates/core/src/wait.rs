//! The conventional "wait-then-compute" baseline platform.
//!
//! A volatile MCU behind a large energy-storage device (ESD): the system
//! charges until the ESD holds enough energy for a *complete* work unit,
//! then executes it in one shot. Strong completion guarantees, but the
//! classic drawbacks the NVP literature documents: double conversion
//! losses through the big capacitor, capacitor leakage during the long
//! charge, and total loss of progress if the estimate was wrong or the
//! outage outlasts the stored charge.

use nvp_energy::units::{Farads, Joules, Seconds, Volts, Watts};
use nvp_energy::{EnergyFrontEnd, FrontEndConfig, PowerTrace, Rectifier, TickIncome};
use nvp_isa::Program;
use nvp_sim::{CycleModel, EnergyModel, Machine, SimError, DEFAULT_DMEM_WORDS};
use serde::{Deserialize, Serialize};

use crate::platform::{drive, drive_observed, Platform, SimEvent, SimObserver, TickOutcome};
use crate::{RunReport, TaskCost};

/// Configuration for the wait-then-compute platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaitComputeConfig {
    /// Core clock, Hz.
    pub clock_hz: f64,
    /// ESD capacitance, farads (supercapacitor scale).
    pub capacitance_f: f64,
    /// ESD rated voltage, volts.
    pub cap_voltage_v: f64,
    /// ESD self-discharge time constant, seconds (supercaps leak far
    /// faster than on-chip capacitors relative to their charge times).
    pub cap_leak_tau_s: f64,
    /// Front-end conversion model.
    pub rectifier: Rectifier,
    /// Standby draw of the voltage supervisor while charging, watts.
    pub sleep_power_w: f64,
    /// Stored energy required before execution begins, joules.
    pub start_energy_j: f64,
    /// Efficiency of regulating energy *out* of the ESD to the load —
    /// the second half of the double-conversion tax NVPs avoid.
    pub discharge_efficiency: f64,
    /// Converted input power below which the ESD charges poorly
    /// (supercapacitor minimum-charging-current effect, e.g. ~20 µA for
    /// the GZ115), watts.
    pub min_charge_power_w: f64,
    /// Fraction of sub-minimum trickle power actually banked.
    pub trickle_efficiency: f64,
    /// Charger input power limit, watts: harvested spikes above this
    /// clip when banking into the ESD (BQ25504-class chargers limit
    /// input current to ~100 µA). The NVP's small ceramic buffer sits
    /// directly at the rectifier output and has no such limit.
    pub max_charge_power_w: f64,
    /// Installed data memory, 16-bit words (volatile SRAM).
    pub dmem_words: usize,
    /// Per-instruction cycle model.
    pub cycle_model: CycleModel,
    /// Per-instruction energy model.
    pub energy_model: EnergyModel,
}

impl Default for WaitComputeConfig {
    fn default() -> Self {
        WaitComputeConfig {
            clock_hz: 1e6,
            capacitance_f: 100e-6,
            cap_voltage_v: 3.3,
            // 100 µF leaking ~2 µA at 3.3 V → τ ≈ 200 s.
            cap_leak_tau_s: 200.0,
            rectifier: Rectifier::default(),
            sleep_power_w: 300e-9,
            start_energy_j: 100e-6,
            discharge_efficiency: 0.75,
            min_charge_power_w: 50e-6,
            trickle_efficiency: 0.15,
            max_charge_power_w: 150e-6,
            dmem_words: DEFAULT_DMEM_WORDS,
            cycle_model: CycleModel::default(),
            energy_model: EnergyModel::default(),
        }
    }
}

impl WaitComputeConfig {
    /// Sizes the start threshold (and, if needed, the ESD) for a measured
    /// task cost with a safety `margin` (e.g. 1.3 = 30 % headroom).
    ///
    /// # Example
    ///
    /// ```
    /// use nvp_core::{measure_task, SystemConfig, WaitComputeConfig};
    /// use nvp_isa::asm::assemble;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let p = assemble("li r2, 100\nx: addi r1, r1, 1\nbne r1, r2, x\nhalt")?;
    /// let cost = measure_task(&p, &SystemConfig::default(), 1_000_000)?;
    /// let cfg = WaitComputeConfig::default().sized_for(&cost, 1.3);
    /// assert!(cfg.start_energy_j >= cost.energy_j * 1.3);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn sized_for(mut self, task: &TaskCost, margin: f64) -> Self {
        self.start_energy_j = task.energy_j * margin / self.discharge_efficiency;
        let needed_capacity = self.start_energy_j * 1.25;
        let capacity = 0.5 * self.capacitance_f * self.cap_voltage_v * self.cap_voltage_v;
        if capacity < needed_capacity {
            self.capacitance_f = 2.0 * needed_capacity / (self.cap_voltage_v * self.cap_voltage_v);
        }
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum WaitPhase {
    Charging,
    Running,
}

/// The wait-then-compute platform simulator.
///
/// Forward progress commits only when a task completes: a brown-out
/// mid-task loses the volatile SRAM and every instruction since the task
/// began.
#[derive(Debug, Clone)]
pub struct WaitComputeSystem {
    config: WaitComputeConfig,
    program: Program,
    machine: Machine,
    fe: EnergyFrontEnd,
    phase: WaitPhase,
    task_progress: u64,
    time_debt_s: f64,
    report: RunReport,
}

impl WaitComputeSystem {
    /// Creates the platform around a program.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the program image fails to load.
    pub fn new(program: &Program, config: WaitComputeConfig) -> Result<Self, SimError> {
        let machine = Machine::with_config(
            program,
            config.dmem_words,
            config.cycle_model,
            config.energy_model,
        )?;
        // A supercapacitor ESD behind a charger IC: the trickle and clip
        // quirks are front-end *options*, not a forked income loop.
        let fe = EnergyFrontEnd::new(FrontEndConfig {
            rectifier: config.rectifier,
            capacitance: Farads::new(config.capacitance_f),
            cap_voltage: Volts::new(config.cap_voltage_v),
            cap_leak_tau: Seconds::new(config.cap_leak_tau_s),
            min_charge_power: Watts::new(config.min_charge_power_w),
            trickle_efficiency: config.trickle_efficiency,
            max_charge_power: Watts::new(config.max_charge_power_w),
        });
        Ok(WaitComputeSystem {
            config,
            program: program.clone(),
            machine,
            fe,
            phase: WaitPhase::Charging,
            task_progress: 0,
            time_debt_s: 0.0,
            report: RunReport::default(),
        })
    }

    /// Read access to the machine (for output inspection).
    #[must_use]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The accumulated report so far.
    #[must_use]
    pub fn report(&self) -> &RunReport {
        &self.report
    }

    /// Simulates over a trace, accumulating into the report. This is
    /// the shared engine loop: see [`drive`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] only for genuine workload faults.
    pub fn run(&mut self, trace: &PowerTrace) -> Result<RunReport, SimError> {
        drive(trace, self)
    }

    /// [`run`](Self::run) with a [`SimObserver`] receiving platform
    /// events (power-on, rollback, brown-out, task commit).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] only for genuine workload faults.
    pub fn run_observed(
        &mut self,
        trace: &PowerTrace,
        obs: &mut dyn SimObserver,
    ) -> Result<RunReport, SimError> {
        drive_observed(trace, self, obs)
    }

    /// Advances the phase machine by one tick of `dt` seconds.
    fn advance(&mut self, dt: f64, obs: &mut dyn SimObserver) -> Result<(), SimError> {
        let mut budget = dt - self.time_debt_s;
        self.time_debt_s = 0.0;
        while budget > 1e-12 {
            match self.phase {
                WaitPhase::Charging => {
                    if self.fe.storage().energy() >= Joules::new(self.config.start_energy_j) {
                        obs.on_event(self.report.duration_s, SimEvent::PowerOn);
                        self.phase = WaitPhase::Running;
                    } else {
                        let draw = Watts::new(self.config.sleep_power_w) * Seconds::new(budget);
                        self.report.energy.sleep += self.fe.storage_mut().draw_up_to(draw);
                        budget = 0.0;
                    }
                }
                WaitPhase::Running => {
                    budget = self.run_task(budget, obs)?;
                }
            }
        }
        if budget < 0.0 {
            self.time_debt_s = -budget;
        }
        Ok(())
    }

    fn run_task(&mut self, mut budget: f64, obs: &mut dyn SimObserver) -> Result<f64, SimError> {
        while budget > 1e-12 {
            if self.machine.halted() {
                // Task done: commit, reload for the next frame.
                self.report.tasks_completed += 1;
                self.report.committed += self.task_progress;
                self.task_progress = 0;
                obs.on_event(self.report.duration_s, SimEvent::TaskCommit);
                self.reload()?;
                if self.fe.storage().energy() < Joules::new(self.config.start_energy_j) {
                    self.phase = WaitPhase::Charging;
                    return Ok(budget);
                }
                continue;
            }
            let step = self.machine.step()?;
            let t = f64::from(step.cycles) / self.config.clock_hz;
            budget -= t;
            self.report.on_time_s += t;
            self.report.executed += 1;
            self.task_progress += 1;
            self.report.energy.compute += Joules::new(step.energy_j);
            // The load is fed through a regulator: the ESD gives up more
            // than the core consumes.
            let drawn = Joules::new(step.energy_j) / self.config.discharge_efficiency;
            self.report.energy.regulator += drawn - Joules::new(step.energy_j);
            if !self.fe.storage_mut().draw(drawn) {
                // Mid-task brown-out: the whole attempt is lost.
                self.fe.storage_mut().deplete();
                self.report.rollbacks += 1;
                self.report.lost += self.task_progress;
                self.task_progress = 0;
                obs.on_event(self.report.duration_s, SimEvent::BrownOut);
                obs.on_event(self.report.duration_s, SimEvent::Rollback);
                self.reload()?;
                self.phase = WaitPhase::Charging;
                return Ok(budget);
            }
        }
        Ok(budget)
    }

    /// Reinitializes the volatile machine (registers, PC, SRAM).
    fn reload(&mut self) -> Result<(), SimError> {
        self.machine = Machine::with_config(
            &self.program,
            self.config.dmem_words,
            self.config.cycle_model,
            self.config.energy_model,
        )?;
        Ok(())
    }
}

impl Platform for WaitComputeSystem {
    fn front_end(&self) -> &EnergyFrontEnd {
        &self.fe
    }

    fn front_end_mut(&mut self) -> &mut EnergyFrontEnd {
        &mut self.fe
    }

    fn tick(
        &mut self,
        _income: TickIncome,
        dt_s: f64,
        obs: &mut dyn SimObserver,
    ) -> Result<TickOutcome, SimError> {
        let on_before = self.report.on_time_s;
        self.advance(dt_s, obs)?;
        Ok(if self.report.on_time_s > on_before { TickOutcome::Ran } else { TickOutcome::Idle })
    }

    fn report(&self) -> &RunReport {
        &self.report
    }

    fn report_mut(&mut self) -> &mut RunReport {
        &mut self.report
    }

    fn machine(&self) -> &Machine {
        &self.machine
    }

    fn uncommitted(&self) -> u64 {
        self.task_progress
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{measure_task, SystemConfig};
    use nvp_energy::harvester;
    use nvp_isa::asm::assemble;

    fn frame_program() -> Program {
        // A "frame": 2000 loop iterations, then halt.
        assemble("li r2, 2000\nloop: addi r1, r1, 1\nbne r1, r2, loop\nsw r1, 0(r0)\nhalt").unwrap()
    }

    fn sized_config(program: &Program) -> WaitComputeConfig {
        let cost = measure_task(program, &SystemConfig::default(), 10_000_000).unwrap();
        WaitComputeConfig::default().sized_for(&cost, 1.3)
    }

    #[test]
    fn completes_tasks_under_strong_power() {
        let program = frame_program();
        let mut sys = WaitComputeSystem::new(&program, sized_config(&program)).unwrap();
        let r = sys.run(&PowerTrace::constant(1e-4, 2e-3, 2.0)).unwrap();
        assert!(r.tasks_completed > 10, "{}", r.tasks_completed);
        assert_eq!(r.rollbacks, 0);
        assert_eq!(r.committed, r.tasks_completed * 4003);
    }

    #[test]
    fn weak_power_spends_most_time_charging() {
        let program = frame_program();
        let mut sys = WaitComputeSystem::new(&program, sized_config(&program)).unwrap();
        let r = sys.run(&harvester::wrist_watch(1, 10.0)).unwrap();
        assert!(r.on_fraction() < 0.3, "{}", r.on_fraction());
    }

    #[test]
    fn commits_only_whole_tasks() {
        let program = frame_program();
        let mut sys = WaitComputeSystem::new(&program, sized_config(&program)).unwrap();
        let r = sys.run(&harvester::wrist_watch(2, 10.0)).unwrap();
        assert_eq!(r.committed % 4003, 0, "partial tasks must not commit");
        assert_eq!(r.backups, 0);
        assert_eq!(r.restores, 0);
    }

    #[test]
    fn undersized_threshold_causes_lost_work() {
        let program = frame_program();
        let mut cfg = sized_config(&program);
        cfg.start_energy_j *= 0.3; // bad estimate: start far too early
        let mut sys = WaitComputeSystem::new(&program, cfg).unwrap();
        // Short feeble bursts: it starts, then browns out mid-task.
        let trace = PowerTrace::from_segments(
            1e-4,
            &[(60e-6, 2.0), (0.0, 1.0), (60e-6, 2.0), (0.0, 1.0), (60e-6, 2.0)],
        );
        let r = sys.run(&trace).unwrap();
        assert!(r.rollbacks > 0, "expected mid-task brown-outs");
        assert!(r.lost > 0);
    }

    #[test]
    fn deterministic() {
        let program = frame_program();
        let trace = harvester::wrist_watch(3, 3.0);
        let mut a = WaitComputeSystem::new(&program, sized_config(&program)).unwrap();
        let mut b = WaitComputeSystem::new(&program, sized_config(&program)).unwrap();
        assert_eq!(a.run(&trace).unwrap(), b.run(&trace).unwrap());
    }
}
