//! Gallery of published NVP silicon operating points.
//!
//! These are the chips the DATE'17 survey draws its "why is it trending"
//! narrative from. Operating points are **approximate reconstructions**
//! from the cited publications (headline numbers where published,
//! order-of-magnitude estimates elsewhere); they feed comparison table T1
//! and the restore-latency sensitivity study F6.

use serde::{Deserialize, Serialize};

use crate::NvmTechnology;

/// One published NVP (or NVP-precursor) silicon operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipProfile {
    /// Short display name.
    pub name: String,
    /// Backup/restore memory technology.
    pub tech: NvmTechnology,
    /// Nominal clock frequency, Hz.
    pub clock_hz: f64,
    /// Volatile state covered by backup, bits.
    pub state_bits: u64,
    /// Full-state backup (sleep) time, seconds.
    pub backup_time_s: f64,
    /// Full-state restore (wake-up) time, seconds.
    pub restore_time_s: f64,
    /// Energy per full-state backup, joules.
    pub backup_energy_j: f64,
    /// Energy per full-state restore, joules.
    pub restore_energy_j: f64,
    /// Publication the headline numbers come from.
    pub reference: String,
    /// Backup management style: `true` = hardware-managed (transparent),
    /// `false` = software-assisted checkpointing.
    pub hardware_managed: bool,
}

impl ChipProfile {
    /// Instructions lost to one backup+restore pair at the chip's clock
    /// (the dead time expressed in instruction slots).
    #[must_use]
    pub fn dead_slots_per_cycle(&self) -> f64 {
        (self.backup_time_s + self.restore_time_s) * self.clock_hz
    }
}

/// Returns the published-chip gallery, oldest first.
///
/// # Example
///
/// ```
/// let chips = nvp_device::published_chips();
/// assert!(chips.len() >= 5);
/// // The ISSCC'16 ReRAM NVP restores ~6x faster than the ESSCIRC'12 part.
/// let reram = chips.iter().find(|c| c.name.contains("ReRAM")).unwrap();
/// let feff = chips.iter().find(|c| c.name.contains("ESSCIRC")).unwrap();
/// assert!(feff.restore_time_s / reram.restore_time_s > 4.0);
/// ```
#[must_use]
pub fn published_chips() -> Vec<ChipProfile> {
    vec![
        ChipProfile {
            name: "FeRAM MCU 82 µA/MHz (ISSCC'11)".to_owned(),
            tech: NvmTechnology::Feram,
            clock_hz: 8.0e6,
            state_bits: 2_048,
            backup_time_s: 10e-6,
            restore_time_s: 5e-6,
            backup_energy_j: 30e-9,
            restore_energy_j: 15e-9,
            reference: "Zwerg et al., ISSCC 2011".to_owned(),
            hardware_managed: false,
        },
        ChipProfile {
            name: "FeFF NVP, 3 µs wake-up (ESSCIRC'12)".to_owned(),
            tech: NvmTechnology::Feram,
            clock_hz: 25.0e6,
            state_bits: 1_500,
            backup_time_s: 5e-6,
            restore_time_s: 3e-6,
            backup_energy_j: 8e-9,
            restore_energy_j: 4e-9,
            reference: "Wang et al., ESSCIRC 2012".to_owned(),
            hardware_managed: true,
        },
        ChipProfile {
            name: "FRAM MCU SoC, <400 ns wake-up (JSSC'14)".to_owned(),
            tech: NvmTechnology::Feram,
            clock_hz: 8.0e6,
            state_bits: 2_537,
            backup_time_s: 2.2e-6,
            restore_time_s: 0.4e-6,
            backup_energy_j: 6e-9,
            restore_energy_j: 2e-9,
            reference: "Khanna et al., JSSC 2014".to_owned(),
            hardware_managed: true,
        },
        ChipProfile {
            name: "ReRAM NVP, 6× restore reduction (ISSCC'16)".to_owned(),
            tech: NvmTechnology::Reram,
            clock_hz: 20.0e6,
            state_bits: 2_048,
            backup_time_s: 3e-6,
            restore_time_s: 0.5e-6,
            backup_energy_j: 12e-9,
            restore_energy_j: 1.5e-9,
            reference: "Liu et al., ISSCC 2016".to_owned(),
            hardware_managed: true,
        },
        ChipProfile {
            name: "MRAM MSP430-class NVP (JETC'16)".to_owned(),
            tech: NvmTechnology::SttMram,
            clock_hz: 16.0e6,
            state_bits: 2_304,
            backup_time_s: 4e-6,
            restore_time_s: 2e-6,
            backup_energy_j: 14e-9,
            restore_energy_j: 3e-9,
            reference: "Senni et al., JETC 2016".to_owned(),
            hardware_managed: true,
        },
        ChipProfile {
            name: "Ferroelectric NVP, 46 µs system wake-up (TCAS-I'17)".to_owned(),
            tech: NvmTechnology::Feram,
            clock_hz: 24.0e6,
            state_bits: 3_200,
            backup_time_s: 14e-6,
            restore_time_s: 46e-6,
            backup_energy_j: 25e-9,
            restore_energy_j: 35e-9,
            reference: "Su et al., TCAS-I 2017".to_owned(),
            hardware_managed: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gallery_is_chronological_and_nonempty() {
        let chips = published_chips();
        assert!(chips.len() >= 6);
        for c in &chips {
            assert!(c.clock_hz > 0.0 && c.state_bits > 0, "{}", c.name);
            assert!(c.backup_time_s > 0.0 && c.restore_time_s > 0.0, "{}", c.name);
            assert!(c.backup_energy_j > 0.0 && c.restore_energy_j > 0.0, "{}", c.name);
            assert!(!c.reference.is_empty());
        }
    }

    #[test]
    fn headline_wakeups_preserved() {
        let chips = published_chips();
        let jssc = chips.iter().find(|c| c.name.contains("JSSC")).unwrap();
        assert!(jssc.restore_time_s <= 400e-9);
        let tcas = chips.iter().find(|c| c.name.contains("TCAS-I")).unwrap();
        assert!((tcas.restore_time_s - 46e-6).abs() < 1e-9);
        assert!((tcas.backup_time_s - 14e-6).abs() < 1e-9);
        let esscirc = chips.iter().find(|c| c.name.contains("ESSCIRC")).unwrap();
        assert!((esscirc.restore_time_s - 3e-6).abs() < 1e-9);
    }

    #[test]
    fn dead_slots_reflect_clock() {
        let chips = published_chips();
        for c in &chips {
            let slots = c.dead_slots_per_cycle();
            assert!(slots > 0.0 && slots < 10_000.0, "{}: {slots}", c.name);
        }
    }
}
