//! Write-endurance accounting for backup-heavy duty cycles.
//!
//! A wearable-harvester NVP performs on the order of 1400–1700 backups per
//! minute. Whether a technology survives a decade of that duty is a
//! first-order selection criterion (it is why backup-heavy designs prefer
//! STT-MRAM/FeRAM over ReRAM), so the framework tracks it explicitly.

use serde::{Deserialize, Serialize};

use crate::NvmParams;

/// Seconds per (Julian) year.
pub const SECONDS_PER_YEAR: f64 = 3.156e7;

/// Tracks cumulative writes against a technology's endurance budget.
///
/// # Example
///
/// ```
/// use nvp_device::{EnduranceMeter, NvmTechnology};
///
/// let mut meter = EnduranceMeter::new(NvmTechnology::Reram.params());
/// meter.record_backups(1_000_000);
/// assert!(meter.remaining_fraction() < 1.0);
/// // ReRAM at ~25 backups/s wears out in years, not decades.
/// let life = meter.lifetime_years(25.0);
/// assert!(life < 1000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnduranceMeter {
    params: NvmParams,
    writes: f64,
}

impl EnduranceMeter {
    /// Creates a meter for the given device parameters.
    #[must_use]
    pub fn new(params: NvmParams) -> Self {
        EnduranceMeter { params, writes: 0.0 }
    }

    /// Records `n` full-bank backup operations (each cell written once).
    pub fn record_backups(&mut self, n: u64) {
        self.writes += n as f64;
    }

    /// Total backups recorded so far.
    #[must_use]
    pub fn writes(&self) -> f64 {
        self.writes
    }

    /// Fraction of the endurance budget remaining, clamped to `[0, 1]`.
    #[must_use]
    pub fn remaining_fraction(&self) -> f64 {
        (1.0 - self.writes / self.params.endurance_cycles).clamp(0.0, 1.0)
    }

    /// `true` once the recorded writes exceed the endurance budget.
    #[must_use]
    pub fn worn_out(&self) -> bool {
        self.writes >= self.params.endurance_cycles
    }

    /// Projected lifetime in years at a sustained backup rate.
    #[must_use]
    pub fn lifetime_years(&self, backups_per_second: f64) -> f64 {
        if backups_per_second <= 0.0 {
            return f64::INFINITY;
        }
        self.params.endurance_cycles / backups_per_second / SECONDS_PER_YEAR
    }

    /// `true` if the device survives `target_years` at the given rate.
    #[must_use]
    pub fn survives(&self, backups_per_second: f64, target_years: f64) -> bool {
        self.lifetime_years(backups_per_second) >= target_years
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NvmTechnology;

    /// Published backup rates: 1400–1700/minute ≈ 23–28/s.
    const WEARABLE_RATE: f64 = 25.0;

    #[test]
    fn stt_mram_survives_a_decade_at_wearable_rates() {
        let meter = EnduranceMeter::new(NvmTechnology::SttMram.params());
        assert!(meter.survives(WEARABLE_RATE, 10.0));
        let feram = EnduranceMeter::new(NvmTechnology::Feram.params());
        assert!(feram.survives(WEARABLE_RATE, 10.0));
    }

    #[test]
    fn reram_and_pcm_do_not() {
        for tech in [NvmTechnology::Reram, NvmTechnology::Pcm] {
            let meter = EnduranceMeter::new(tech.params());
            assert!(
                !meter.survives(WEARABLE_RATE, 10.0),
                "{tech} unexpectedly survives a decade of backup duty"
            );
        }
    }

    #[test]
    fn recording_depletes_budget() {
        let mut meter = EnduranceMeter::new(NvmTechnology::Reram.params());
        assert_eq!(meter.remaining_fraction(), 1.0);
        meter.record_backups(50_000_000);
        let rem = meter.remaining_fraction();
        assert!(rem < 1.0 && rem > 0.0);
        meter.record_backups(100_000_000);
        assert!(meter.worn_out());
        assert_eq!(meter.remaining_fraction(), 0.0);
    }

    #[test]
    fn zero_rate_lives_forever() {
        let meter = EnduranceMeter::new(NvmTechnology::Pcm.params());
        assert!(meter.lifetime_years(0.0).is_infinite());
    }
}
