//! # nvp-device — nonvolatile memory device models
//!
//! Device-level substrate for the NVP evaluation framework: the menu of
//! nonvolatile memory technologies a nonvolatile processor can be built
//! from, and the knobs that matter at the architecture level:
//!
//! * [`NvmTechnology`] / [`NvmParams`] — per-technology write/read energy,
//!   latency, retention, and endurance (FeRAM, ReRAM, STT-MRAM, PCM),
//! * [`sttram`] — an analytic STT-RAM model relating write current, write
//!   pulse width, and retention time (the trade-off that makes *adaptive
//!   retention* profitable: most harvesting outages last milliseconds, so
//!   a decade of retention is wasted write energy),
//! * [`RelaxPolicy`] — shaped per-bit retention-relaxation policies
//!   (linear / log / parabola from MSB to LSB) and retention-failure
//!   sampling for restored words,
//! * [`NvffBank`] — distributed nonvolatile flip-flop banks with backup /
//!   restore cost models,
//! * [`ChipProfile`] — a gallery of published NVP silicon operating points
//!   used by the T1 comparison table,
//! * [`EnduranceMeter`] — lifetime estimates under sustained backup rates.
//!
//! All energies are joules, times are seconds; values are behavioural-model
//! outputs calibrated to published silicon (see `DESIGN.md`), not silicon
//! claims.
//!
//! ## Example
//!
//! ```
//! use nvp_device::{NvmTechnology, NvffBank};
//!
//! let bank = NvffBank::new(NvmTechnology::Feram, 512);
//! assert!(bank.backup_energy_j() > 0.0);
//! assert!(bank.backup_time_s() < 1e-5, "distributed backup is microseconds");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chip;
mod endurance;
mod nvff;
mod retention;
pub mod sttram;
mod tech;

pub use chip::{published_chips, ChipProfile};
pub use endurance::EnduranceMeter;
pub use nvff::NvffBank;
pub use retention::{BitRetention, RelaxPolicy, RetentionShaper};
pub use tech::{NvmParams, NvmTechnology};
