//! Distributed nonvolatile flip-flop banks.
//!
//! Hardware-managed NVPs pair every pipeline/architectural flip-flop with
//! a nonvolatile shadow cell so the entire machine state can be backed up
//! *in situ*, in parallel, in microseconds. The bank model charges
//! per-bit array energy (from [`NvmParams`]) times a peripheral overhead
//! factor, and serializes the parallel write into a few current-limited
//! groups (writing thousands of NVM bits truly simultaneously would exceed
//! the on-chip capacitor's peak current).

use nvp_energy::units::{Joules, Seconds};
use serde::{Deserialize, Serialize};

use crate::{NvmParams, NvmTechnology};

/// A bank of nonvolatile shadow flip-flops covering `bits` state bits.
///
/// # Example
///
/// ```
/// use nvp_device::{NvffBank, NvmTechnology};
///
/// let bank = NvffBank::new(NvmTechnology::SttMram, 288);
/// // Backup of a ~300-bit state costs nanojoules and microseconds.
/// assert!(bank.backup_energy_j() < 1e-8);
/// assert!(bank.backup_time_s() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NvffBank {
    params: NvmParams,
    bits: u64,
    /// Multiplier covering write drivers, sense amps, and clock tree.
    overhead_factor: f64,
    /// Parallel writes are issued in this many current-limited groups.
    write_groups: u32,
}

impl NvffBank {
    /// Default peripheral-overhead multiplier.
    pub const DEFAULT_OVERHEAD: f64 = 2.0;
    /// Default number of current-limited write groups.
    pub const DEFAULT_WRITE_GROUPS: u32 = 4;

    /// Creates a bank over `bits` state bits using the technology's
    /// default parameters.
    #[must_use]
    pub fn new(tech: NvmTechnology, bits: u64) -> Self {
        Self::with_params(tech.params(), bits)
    }

    /// Creates a bank with explicit device parameters.
    #[must_use]
    pub fn with_params(params: NvmParams, bits: u64) -> Self {
        NvffBank {
            params,
            bits,
            overhead_factor: Self::DEFAULT_OVERHEAD,
            write_groups: Self::DEFAULT_WRITE_GROUPS,
        }
    }

    /// Returns a copy with a different peripheral-overhead factor.
    #[must_use]
    pub fn with_overhead(mut self, factor: f64) -> Self {
        self.overhead_factor = factor;
        self
    }

    /// Returns a copy with a different write-group count.
    ///
    /// # Panics
    ///
    /// Panics if `groups == 0`.
    #[must_use]
    pub fn with_write_groups(mut self, groups: u32) -> Self {
        assert!(groups > 0, "write groups must be positive");
        self.write_groups = groups;
        self
    }

    /// Number of covered state bits.
    #[must_use]
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// The device parameters in use.
    #[must_use]
    pub fn params(&self) -> &NvmParams {
        &self.params
    }

    /// Energy to back up the full bank once, in joules.
    #[must_use]
    pub fn backup_energy_j(&self) -> f64 {
        self.params.write_energy_j(self.bits) * self.overhead_factor
    }

    /// Time to back up the full bank once, in seconds.
    #[must_use]
    pub fn backup_time_s(&self) -> f64 {
        self.params.write_latency_s * f64::from(self.write_groups)
    }

    /// Energy to restore the full bank once, in joules.
    #[must_use]
    pub fn restore_energy_j(&self) -> f64 {
        self.params.read_energy_j(self.bits) * self.overhead_factor
    }

    /// Time to restore the full bank once, in seconds.
    ///
    /// Reads are low-current, so restore completes in a single group.
    #[must_use]
    pub fn restore_time_s(&self) -> f64 {
        self.params.read_latency_s
    }

    /// Returns a copy whose write energy is scaled by `factor`
    /// (retention-relaxed backup; see [`crate::RetentionShaper`]).
    #[must_use]
    pub fn with_write_energy_scaled(mut self, factor: f64) -> Self {
        self.params = self.params.with_write_energy_scaled(factor);
        self
    }

    /// Typed variant of [`backup_energy_j`](Self::backup_energy_j).
    #[must_use]
    pub fn backup_energy(&self) -> Joules {
        Joules::new(self.backup_energy_j())
    }

    /// Typed variant of [`backup_time_s`](Self::backup_time_s).
    #[must_use]
    pub fn backup_time(&self) -> Seconds {
        Seconds::new(self.backup_time_s())
    }

    /// Typed variant of [`restore_energy_j`](Self::restore_energy_j).
    #[must_use]
    pub fn restore_energy(&self) -> Joules {
        Joules::new(self.restore_energy_j())
    }

    /// Typed variant of [`restore_time_s`](Self::restore_time_s).
    #[must_use]
    pub fn restore_time(&self) -> Seconds {
        Seconds::new(self.restore_time_s())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_scales_with_bits() {
        let small = NvffBank::new(NvmTechnology::Feram, 100);
        let large = NvffBank::new(NvmTechnology::Feram, 1000);
        assert!((large.backup_energy_j() / small.backup_energy_j() - 10.0).abs() < 1e-9);
        assert_eq!(
            small.backup_time_s(),
            large.backup_time_s(),
            "parallel write time is size-independent"
        );
    }

    #[test]
    fn restore_cheaper_than_backup() {
        for tech in NvmTechnology::ALL {
            let bank = NvffBank::new(tech, 512);
            assert!(bank.restore_energy_j() <= bank.backup_energy_j(), "{tech}");
            assert!(bank.restore_time_s() <= bank.backup_time_s(), "{tech}");
        }
    }

    #[test]
    fn overhead_and_groups_apply() {
        let base = NvffBank::new(NvmTechnology::Reram, 256);
        let heavy = base.with_overhead(4.0);
        assert!((heavy.backup_energy_j() / base.backup_energy_j() - 2.0).abs() < 1e-9);
        let serial = base.with_write_groups(8);
        assert!((serial.backup_time_s() / base.backup_time_s() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn relaxed_energy_scaled() {
        let base = NvffBank::new(NvmTechnology::SttMram, 512);
        let relaxed = base.with_write_energy_scaled(0.25);
        assert!((relaxed.backup_energy_j() / base.backup_energy_j() - 0.25).abs() < 1e-9);
        assert_eq!(relaxed.restore_time_s(), base.restore_time_s());
    }

    #[test]
    #[should_panic(expected = "write groups must be positive")]
    fn zero_groups_rejected() {
        let _ = NvffBank::new(NvmTechnology::Feram, 1).with_write_groups(0);
    }
}
