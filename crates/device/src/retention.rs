//! Shaped retention relaxation and retention-failure sampling.
//!
//! Most power outages on wearable harvesters last milliseconds, yet
//! conventional NVPs back up with decade-class retention. *Retention
//! relaxation* writes lower-significance bits with shorter retention (and
//! therefore less energy — see [`crate::sttram`]), accepting a small,
//! significance-weighted probability of bit decay if the outage outlasts
//! a bit's retention. This is the "adaptive retention" direction the
//! DATE'17 survey highlights (ISSCC'16 ReRAM NVP) and is evaluated as
//! experiment F9.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::sttram::SttModel;

/// How retention is shaped from the most- to least-significant bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RelaxPolicy {
    /// No relaxation: every bit keeps `max_retention_s` (the baseline).
    Uniform,
    /// Thermal stability Δ falls linearly from MSB to LSB — the
    /// middle-of-the-road shape suited to most kernels.
    Linear,
    /// Δ falls fastest near the MSB (square-root shape) — the most
    /// aggressive energy saver, suited to noise-tolerant kernels.
    Log,
    /// Δ stays near the maximum for upper bits and only drops for the
    /// lowest bits (quadratic shape) — the most conservative policy.
    Parabola,
}

impl RelaxPolicy {
    /// All policies in reporting order.
    pub const ALL: [RelaxPolicy; 4] =
        [RelaxPolicy::Uniform, RelaxPolicy::Linear, RelaxPolicy::Log, RelaxPolicy::Parabola];

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RelaxPolicy::Uniform => "uniform",
            RelaxPolicy::Linear => "linear",
            RelaxPolicy::Log => "log",
            RelaxPolicy::Parabola => "parabola",
        }
    }
}

impl std::fmt::Display for RelaxPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-bit retention times for a `bits`-wide stored field.
///
/// Index 0 is the **most significant** bit of the field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BitRetention {
    per_bit_s: Vec<f64>,
}

impl BitRetention {
    /// Retention times, MSB first.
    #[must_use]
    pub fn per_bit_s(&self) -> &[f64] {
        &self.per_bit_s
    }

    /// Field width in bits.
    #[must_use]
    pub fn bits(&self) -> usize {
        self.per_bit_s.len()
    }

    /// Samples retention decay of a stored field after an outage of
    /// `outage_s` seconds.
    ///
    /// Each bit whose retention is shorter than geometric safety decays
    /// with probability `0.5·(1 − exp(−t/τ))` (an exponential-loss model:
    /// a fully decayed cell reads back a coin flip). Returns the possibly
    /// corrupted field and the number of flipped bits. Only the low
    /// [`bits`](Self::bits) bits of `field` participate.
    pub fn degrade<R: Rng + ?Sized>(&self, field: u16, outage_s: f64, rng: &mut R) -> (u16, u32) {
        let mut out = field;
        let mut flips = 0;
        let width = self.bits();
        for (i, &tau) in self.per_bit_s.iter().enumerate() {
            let p_flip = 0.5 * (1.0 - (-outage_s / tau).exp());
            if p_flip > 0.0 && rng.random::<f64>() < p_flip {
                let bit_pos = (width - 1 - i) as u16;
                out ^= 1 << bit_pos;
                flips += 1;
            }
        }
        (out, flips)
    }

    /// Counts how many bit positions have retention shorter than the
    /// outage (i.e. are *at risk*), without sampling.
    #[must_use]
    pub fn at_risk_bits(&self, outage_s: f64) -> u32 {
        self.per_bit_s.iter().filter(|&&tau| tau < outage_s).count() as u32
    }
}

/// Builds per-bit retention profiles and their write-energy implications.
///
/// # Example
///
/// ```
/// use nvp_device::{RelaxPolicy, RetentionShaper};
/// use nvp_device::sttram::SttModel;
///
/// let shaper = RetentionShaper::new(RelaxPolicy::Log, 8, 0.01, 86_400.0);
/// let profile = shaper.bit_retention();
/// assert_eq!(profile.bits(), 8);
/// // MSB keeps the full day; LSB is relaxed to 10 ms.
/// assert!(profile.per_bit_s()[0] > profile.per_bit_s()[7]);
/// let scale = shaper.write_energy_scale(&SttModel::default());
/// assert!(scale < 1.0, "relaxation must save energy");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetentionShaper {
    policy: RelaxPolicy,
    bits: usize,
    min_retention_s: f64,
    max_retention_s: f64,
}

impl RetentionShaper {
    /// Creates a shaper for a `bits`-wide field with LSB retention
    /// `min_retention_s` and MSB retention `max_retention_s`.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`, or retentions are non-positive, or
    /// `min_retention_s > max_retention_s`.
    #[must_use]
    pub fn new(
        policy: RelaxPolicy,
        bits: usize,
        min_retention_s: f64,
        max_retention_s: f64,
    ) -> Self {
        assert!(bits > 0, "bits must be positive");
        assert!(min_retention_s > 0.0 && max_retention_s > 0.0, "retention must be positive");
        assert!(min_retention_s <= max_retention_s, "min retention exceeds max");
        RetentionShaper { policy, bits, min_retention_s, max_retention_s }
    }

    /// The shaping policy.
    #[must_use]
    pub fn policy(&self) -> RelaxPolicy {
        self.policy
    }

    /// Per-bit retention profile, MSB first.
    #[must_use]
    pub fn bit_retention(&self) -> BitRetention {
        let b = self.bits;
        let (min, max) = (self.min_retention_s, self.max_retention_s);
        let per_bit_s = (0..b)
            .map(|i| {
                if b == 1 {
                    return max;
                }
                // Normalized significance: 0.0 at MSB, 1.0 at LSB. Shapes
                // are defined in thermal-stability (log-time) space because
                // write energy tracks Δ = ln(retention/τ₀), not retention
                // itself: w(x) is the fraction of the Δ range given up.
                let x = i as f64 / (b - 1) as f64;
                let w = match self.policy {
                    RelaxPolicy::Uniform => 0.0,
                    RelaxPolicy::Linear => x,
                    RelaxPolicy::Log => x.sqrt(),
                    RelaxPolicy::Parabola => x * x,
                };
                max * (min / max).powf(w)
            })
            .collect();
        BitRetention { per_bit_s }
    }

    /// Average write-energy scale factor relative to uniform
    /// max-retention backup, under the given STT-RAM model.
    ///
    /// Always ≤ 1; [`RelaxPolicy::Log`] saves the most, `Parabola` the
    /// least (among the relaxing policies).
    #[must_use]
    pub fn write_energy_scale(&self, model: &SttModel) -> f64 {
        let uniform = model.optimal_write(self.max_retention_s).energy_j * self.bits as f64;
        let shaped: f64 = self
            .bit_retention()
            .per_bit_s()
            .iter()
            .map(|&tau| model.optimal_write(tau).energy_j)
            .sum();
        shaped / uniform
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const DAY: f64 = 86_400.0;

    fn shaper(policy: RelaxPolicy) -> RetentionShaper {
        RetentionShaper::new(policy, 8, 0.01, DAY)
    }

    #[test]
    fn uniform_keeps_max_everywhere() {
        let r = shaper(RelaxPolicy::Uniform).bit_retention();
        assert!(r.per_bit_s().iter().all(|&t| (t - DAY).abs() < 1e-9));
    }

    #[test]
    fn profiles_are_monotone_decreasing() {
        for policy in [RelaxPolicy::Linear, RelaxPolicy::Log, RelaxPolicy::Parabola] {
            let r = shaper(policy).bit_retention();
            for w in r.per_bit_s().windows(2) {
                assert!(w[0] >= w[1], "{policy}: {:?}", r.per_bit_s());
            }
            assert!((r.per_bit_s()[0] - DAY).abs() < 1.0, "{policy} MSB keeps max");
            assert!((r.per_bit_s()[7] - 0.01).abs() < 1e-6, "{policy} LSB reaches min");
        }
    }

    #[test]
    fn energy_ordering_log_saves_most() {
        let m = SttModel::default();
        let uniform = shaper(RelaxPolicy::Uniform).write_energy_scale(&m);
        let linear = shaper(RelaxPolicy::Linear).write_energy_scale(&m);
        let log = shaper(RelaxPolicy::Log).write_energy_scale(&m);
        let parabola = shaper(RelaxPolicy::Parabola).write_energy_scale(&m);
        assert!((uniform - 1.0).abs() < 1e-12);
        assert!(log < linear, "log ({log}) should save more than linear ({linear})");
        assert!(linear < parabola, "linear ({linear}) should save more than parabola ({parabola})");
        assert!(parabola < 1.0);
    }

    #[test]
    fn short_outage_rarely_corrupts() {
        let r = shaper(RelaxPolicy::Linear).bit_retention();
        let mut rng = StdRng::seed_from_u64(7);
        let mut flips = 0;
        for _ in 0..1000 {
            let (_, f) = r.degrade(0xAB, 1e-4, &mut rng); // 0.1 ms outage
            flips += f;
        }
        // All retentions ≥ 10 ms, outage 0.1 ms → flip prob ≤ 0.5 %/bit.
        assert!(flips < 100, "flips {flips}");
    }

    #[test]
    fn long_outage_corrupts_low_bits_first() {
        let r = shaper(RelaxPolicy::Parabola).bit_retention();
        let mut rng = StdRng::seed_from_u64(42);
        let mut low_flips = 0u32;
        let mut high_flips = 0u32;
        for _ in 0..2000 {
            let (out, _) = r.degrade(0x00, 60.0, &mut rng); // 1 minute outage
            low_flips += u32::from(out & 0x0F != 0);
            high_flips += u32::from(out & 0xF0 != 0);
        }
        assert!(low_flips > 4 * high_flips.max(1), "low {low_flips} vs high {high_flips}");
    }

    #[test]
    fn at_risk_counts() {
        let r = shaper(RelaxPolicy::Linear).bit_retention();
        assert_eq!(r.at_risk_bits(0.001), 0, "nothing below min retention");
        assert_eq!(r.at_risk_bits(2.0 * DAY), 8, "everything below a 2-day outage");
        let mid = r.at_risk_bits(DAY / 2.0);
        assert!(mid > 0 && mid < 8);
    }

    #[test]
    fn degrade_is_deterministic_per_seed() {
        let r = shaper(RelaxPolicy::Log).bit_retention();
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for word in [0u16, 0xFF, 0xA5] {
            assert_eq!(r.degrade(word, 5.0, &mut a), r.degrade(word, 5.0, &mut b));
        }
    }

    #[test]
    #[should_panic(expected = "min retention exceeds max")]
    fn rejects_inverted_range() {
        let _ = RetentionShaper::new(RelaxPolicy::Linear, 8, 10.0, 1.0);
    }

    #[test]
    fn zero_duration_outage_never_flips_and_draws_nothing() {
        let r = shaper(RelaxPolicy::Linear).bit_retention();
        let mut rng = StdRng::seed_from_u64(9);
        for word in [0u16, 0xFF, 0xA5, 0x5A] {
            assert_eq!(r.degrade(word, 0.0, &mut rng), (word, 0));
        }
        // A zero-duration outage must consume no randomness: an RNG that
        // went through degrade(·, 0.0) stays in lockstep with a fresh one
        // (the fault layer's disabled-is-a-no-op guarantee rests on this).
        let mut fresh = StdRng::seed_from_u64(9);
        assert_eq!(rng.random::<f64>().to_bits(), fresh.random::<f64>().to_bits());
    }

    #[test]
    fn outage_beyond_all_retention_flips_every_at_risk_bit_eventually() {
        // A week-long outage dwarfs even the MSB's one-day retention:
        // every bit is at risk and each flips with probability ~0.5.
        let r = shaper(RelaxPolicy::Linear).bit_retention();
        let week = 7.0 * DAY;
        assert_eq!(r.at_risk_bits(week), 8);
        let mut rng = StdRng::seed_from_u64(17);
        let mut seen_flipped = 0u16;
        let mut total_flips = 0u32;
        for _ in 0..200 {
            let (out, flips) = r.degrade(0x00, week, &mut rng);
            assert!(flips <= 8, "cannot flip more bits than the field has");
            assert_eq!(out.count_ones(), flips, "flips must match the returned field");
            seen_flipped |= out;
            total_flips += flips;
        }
        assert_eq!(seen_flipped, 0xFF, "every at-risk bit position must flip eventually");
        // 200 trials × 8 bits × p≈0.5 ⇒ ~800 flips; far from 0 or 1600.
        assert!((400..1200).contains(&total_flips), "flips {total_flips}");
    }

    #[test]
    fn degrade_edge_durations_are_deterministic_per_seed() {
        for policy in RelaxPolicy::ALL {
            let r = shaper(policy).bit_retention();
            for outage in [0.0, 1e-9, 0.01, DAY, 10.0 * DAY] {
                let mut a = StdRng::seed_from_u64(123);
                let mut b = StdRng::seed_from_u64(123);
                for word in [0u16, 0xFFFF, 0xBEEF] {
                    assert_eq!(
                        r.degrade(word, outage, &mut a),
                        r.degrade(word, outage, &mut b),
                        "{policy} outage {outage}"
                    );
                }
            }
        }
    }
}
