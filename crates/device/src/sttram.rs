//! Analytic STT-RAM write-current / pulse-width / retention model.
//!
//! STT-MRAM retention is set by the thermal stability factor
//! Δ = E_b / kT of the free layer: retention ≈ τ₀·exp(Δ) with τ₀ ≈ 1 ns.
//! Cells engineered for a decade of retention therefore demand much higher
//! write current than cells that only need to ride through a
//! milliseconds-long power outage. This module captures that trade-off with
//! the standard two-regime switching model:
//!
//! * **thermally-assisted regime** (long pulses): required current falls
//!   as `I = I_c0(Δ) · (1 − ln(t_p/τ₀)/Δ)`,
//! * **precessional regime** (nanosecond pulses): an additional `C/t_p`
//!   term dominates.
//!
//! with `I_c0(Δ) = k·Δ` (critical current scales with the energy barrier).
//! Write energy is `I²·R·t_p` for cell resistance `R`.
//!
//! Calibration: at the default parameters, relaxing retention from 1 day
//! to 10 ms saves ≈75–78 % of write energy at the energy-optimal pulse
//! width, matching the published figure (77 %) for retention-relaxed
//! STT-RAM (Smullen HPCA'11 / Swaminathan ASP-DAC'12 class models).
//!
//! # Example
//!
//! ```
//! use nvp_device::sttram::SttModel;
//!
//! let m = SttModel::default();
//! let day = m.optimal_write(86_400.0);
//! let ten_ms = m.optimal_write(0.01);
//! let saving = 1.0 - ten_ms.energy_j / day.energy_j;
//! assert!(saving > 0.6 && saving < 0.9);
//! ```

use serde::{Deserialize, Serialize};

/// Attempt period τ₀ for thermal switching, in seconds.
pub const TAU0_S: f64 = 1e-9;

/// Thermal stability factor Δ required for the given retention time.
///
/// Δ = ln(t_ret / τ₀); clamps tiny retentions to Δ ≥ 1.
///
/// # Example
///
/// ```
/// let delta = nvp_device::sttram::thermal_stability(86_400.0);
/// assert!(delta > 31.0 && delta < 34.0);
/// ```
#[must_use]
pub fn thermal_stability(retention_s: f64) -> f64 {
    (retention_s / TAU0_S).ln().max(1.0)
}

/// An energy-optimal write operating point for a target retention.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WritePoint {
    /// Target retention time, seconds.
    pub retention_s: f64,
    /// Chosen write pulse width, seconds.
    pub pulse_s: f64,
    /// Required write current, amperes.
    pub current_a: f64,
    /// Write energy per bit, joules.
    pub energy_j: f64,
}

/// Parametric STT-RAM switching model.
///
/// Field defaults are calibrated so a 1-day-retention cell writes at
/// ≈2.5 pJ/bit with a ~150 µA / 10 ns pulse, and the 1 day → 10 ms
/// relaxation saves ≈77 % of write energy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SttModel {
    /// Critical-current coefficient `k` in A per unit Δ.
    pub k_ic_a: f64,
    /// Precessional-regime coefficient `C` in A·s.
    pub c_prec_a_s: f64,
    /// Effective cell resistance in Ω.
    pub r_cell_ohm: f64,
}

impl Default for SttModel {
    fn default() -> Self {
        SttModel { k_ic_a: 5.0e-6, c_prec_a_s: 2.0e-14, r_cell_ohm: 4.5e4 }
    }
}

impl SttModel {
    /// Critical current `I_c0` for a cell with stability Δ.
    #[must_use]
    pub fn critical_current_a(&self, delta: f64) -> f64 {
        self.k_ic_a * delta
    }

    /// Write current needed to switch within `pulse_s` for a cell that
    /// must retain data for `retention_s`.
    ///
    /// The thermal term is floored at 5 % of `I_c0` so pathological inputs
    /// (pulse approaching the retention time itself) stay physical.
    #[must_use]
    pub fn write_current_a(&self, retention_s: f64, pulse_s: f64) -> f64 {
        let delta = thermal_stability(retention_s);
        let ic0 = self.critical_current_a(delta);
        let thermal = ic0 * (1.0 - (pulse_s / TAU0_S).ln() / delta).max(0.05);
        let precessional = self.c_prec_a_s / pulse_s;
        thermal + precessional
    }

    /// Write energy per bit for the given retention and pulse width.
    #[must_use]
    pub fn write_energy_j(&self, retention_s: f64, pulse_s: f64) -> f64 {
        let i = self.write_current_a(retention_s, pulse_s);
        i * i * self.r_cell_ohm * pulse_s
    }

    /// Finds the energy-optimal write point over pulse widths in
    /// 0.5–20 ns (the range published write-circuit designs can program).
    #[must_use]
    pub fn optimal_write(&self, retention_s: f64) -> WritePoint {
        let mut best = WritePoint {
            retention_s,
            pulse_s: 0.5e-9,
            current_a: self.write_current_a(retention_s, 0.5e-9),
            energy_j: self.write_energy_j(retention_s, 0.5e-9),
        };
        let steps = 400;
        let (lo, hi) = (0.5e-9_f64, 20e-9_f64);
        for k in 1..=steps {
            let pulse = lo * (hi / lo).powf(f64::from(k) / f64::from(steps));
            let energy = self.write_energy_j(retention_s, pulse);
            if energy < best.energy_j {
                best = WritePoint {
                    retention_s,
                    pulse_s: pulse,
                    current_a: self.write_current_a(retention_s, pulse),
                    energy_j: energy,
                };
            }
        }
        best
    }

    /// Fraction of write energy saved by relaxing retention from
    /// `from_retention_s` down to `to_retention_s` (both at their
    /// energy-optimal pulse widths).
    ///
    /// # Example
    ///
    /// ```
    /// let m = nvp_device::sttram::SttModel::default();
    /// let saving = m.retention_energy_saving(86_400.0, 0.01);
    /// assert!(saving > 0.6, "published figure is ~0.77, got {saving}");
    /// ```
    #[must_use]
    pub fn retention_energy_saving(&self, from_retention_s: f64, to_retention_s: f64) -> f64 {
        let from = self.optimal_write(from_retention_s).energy_j;
        let to = self.optimal_write(to_retention_s).energy_j;
        1.0 - to / from
    }

    /// Write-current series over pulse widths for a fixed retention —
    /// regenerates one curve of the classic current-vs-pulse figure.
    ///
    /// Returns `(pulse_s, current_a)` pairs for `n` log-spaced pulses in
    /// 0.5–10 ns.
    #[must_use]
    pub fn current_vs_pulse(&self, retention_s: f64, n: usize) -> Vec<(f64, f64)> {
        let (lo, hi) = (0.5e-9_f64, 10e-9_f64);
        (0..n)
            .map(|k| {
                let pulse = lo * (hi / lo).powf(k as f64 / (n.max(2) - 1) as f64);
                (pulse, self.write_current_a(retention_s, pulse))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DAY: f64 = 86_400.0;

    #[test]
    fn stability_increases_with_retention() {
        assert!(thermal_stability(1.0) < thermal_stability(60.0));
        assert!(thermal_stability(60.0) < thermal_stability(DAY));
        // 10 years ≈ Δ 40.
        let ten_years = thermal_stability(3.15e8);
        assert!(ten_years > 38.0 && ten_years < 42.0, "{ten_years}");
    }

    #[test]
    fn current_decreases_with_pulse_width() {
        let m = SttModel::default();
        let fast = m.write_current_a(DAY, 1e-9);
        let slow = m.write_current_a(DAY, 10e-9);
        assert!(fast > slow);
    }

    #[test]
    fn current_increases_with_retention() {
        let m = SttModel::default();
        for &pulse in &[1e-9, 2e-9, 5e-9, 10e-9] {
            let lo = m.write_current_a(0.01, pulse);
            let hi = m.write_current_a(DAY, pulse);
            assert!(hi > lo, "pulse {pulse}");
        }
    }

    #[test]
    fn currents_in_published_microampere_range() {
        // The classic figure spans roughly 50–250 µA.
        let m = SttModel::default();
        for &ret in &[0.01, 1.0, 60.0, DAY] {
            for (_, i) in m.current_vs_pulse(ret, 20) {
                assert!(i > 10e-6 && i < 400e-6, "retention {ret}: {i}");
            }
        }
    }

    #[test]
    fn day_to_10ms_saving_near_published_77_percent() {
        let m = SttModel::default();
        let saving = m.retention_energy_saving(DAY, 0.01);
        assert!((0.6..0.9).contains(&saving), "expected ≈0.77 saving, got {saving}");
    }

    #[test]
    fn optimal_pulse_in_search_range() {
        let m = SttModel::default();
        for &ret in &[0.01, 1.0, DAY] {
            let p = m.optimal_write(ret);
            assert!(p.pulse_s >= 0.5e-9 && p.pulse_s <= 20e-9);
            assert!(p.energy_j > 0.0);
        }
    }

    #[test]
    fn one_day_write_energy_matches_default_params() {
        // Keep the analytic model consistent with the NvmParams default
        // (2.5 pJ/bit for decade-class STT-MRAM is the same order).
        let m = SttModel::default();
        let e = m.optimal_write(DAY).energy_j;
        assert!(e > 0.5e-12 && e < 5e-12, "{e}");
    }

    #[test]
    fn energy_monotone_in_retention_at_optimum() {
        let m = SttModel::default();
        let rets = [1e-3, 1e-2, 1.0, 60.0, 3600.0, DAY];
        let energies: Vec<f64> = rets.iter().map(|&r| m.optimal_write(r).energy_j).collect();
        for w in energies.windows(2) {
            assert!(w[0] <= w[1] * 1.0001, "optimal energy must not decrease: {energies:?}");
        }
    }
}
