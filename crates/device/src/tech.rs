//! Nonvolatile memory technology menu.

use std::fmt;

use nvp_energy::units::{Joules, Seconds};
use serde::{Deserialize, Serialize};

/// The nonvolatile memory technologies NVP silicon has been built from.
///
/// Each maps to a default [`NvmParams`] operating point representative of
/// the published chips the DATE'17 survey covers: FeRAM-based MCUs/NVPs
/// (Zwerg ISSCC'11, Khanna JSSC'14, Wang ESSCIRC'12, Su TCAS-I'17),
/// ReRAM-based NVPs (Liu ISSCC'16), MRAM-based NVPs (Senni JETC'16), and
/// PCM as a forward-looking candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NvmTechnology {
    /// Ferroelectric RAM: fast, low-energy writes; destructive reads;
    /// effectively unlimited endurance for backup duty.
    Feram,
    /// Resistive RAM: compact crossbar arrays; moderate write energy;
    /// limited endurance.
    Reram,
    /// Spin-transfer-torque MRAM: tunable retention (see
    /// [`crate::sttram`]), very high endurance.
    SttMram,
    /// Phase-change memory: high write energy and latency, included as a
    /// forward-looking comparison point.
    Pcm,
}

impl NvmTechnology {
    /// All technologies, in reporting order.
    pub const ALL: [NvmTechnology; 4] =
        [NvmTechnology::Feram, NvmTechnology::Reram, NvmTechnology::SttMram, NvmTechnology::Pcm];

    /// Returns the default device operating point for this technology.
    ///
    /// # Example
    ///
    /// ```
    /// use nvp_device::NvmTechnology;
    ///
    /// let p = NvmTechnology::Feram.params();
    /// assert!(p.write_energy_per_bit_j < 1e-11);
    /// ```
    #[must_use]
    pub fn params(self) -> NvmParams {
        match self {
            NvmTechnology::Feram => NvmParams {
                tech: self,
                write_energy_per_bit_j: 1.5e-12,
                read_energy_per_bit_j: 1.2e-12, // destructive read + write-back
                write_latency_s: 50e-9,
                read_latency_s: 50e-9,
                retention_s: 3.15e8, // 10 years
                endurance_cycles: 1e14,
                standby_leakage_w_per_bit: 0.0,
            },
            NvmTechnology::Reram => NvmParams {
                tech: self,
                write_energy_per_bit_j: 4.0e-12,
                read_energy_per_bit_j: 0.4e-12,
                write_latency_s: 100e-9,
                read_latency_s: 20e-9,
                retention_s: 3.15e8,
                endurance_cycles: 1e8,
                standby_leakage_w_per_bit: 0.0,
            },
            NvmTechnology::SttMram => NvmParams {
                tech: self,
                write_energy_per_bit_j: 2.5e-12,
                read_energy_per_bit_j: 0.3e-12,
                write_latency_s: 10e-9,
                read_latency_s: 5e-9,
                retention_s: 3.15e8,
                endurance_cycles: 1e15,
                standby_leakage_w_per_bit: 0.0,
            },
            NvmTechnology::Pcm => NvmParams {
                tech: self,
                write_energy_per_bit_j: 15.0e-12,
                read_energy_per_bit_j: 1.0e-12,
                write_latency_s: 150e-9,
                read_latency_s: 50e-9,
                retention_s: 3.15e8,
                endurance_cycles: 1e8,
                standby_leakage_w_per_bit: 0.0,
            },
        }
    }

    /// Short display name (e.g. `"STT-MRAM"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            NvmTechnology::Feram => "FeRAM",
            NvmTechnology::Reram => "ReRAM",
            NvmTechnology::SttMram => "STT-MRAM",
            NvmTechnology::Pcm => "PCM",
        }
    }
}

impl fmt::Display for NvmTechnology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete NVM operating point.
///
/// All fields are public so architecture studies can sweep them; use
/// [`NvmTechnology::params`] for calibrated defaults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NvmParams {
    /// The underlying technology.
    pub tech: NvmTechnology,
    /// Energy to write one bit, in joules.
    pub write_energy_per_bit_j: f64,
    /// Energy to read one bit, in joules.
    pub read_energy_per_bit_j: f64,
    /// Write pulse latency, in seconds (per parallel write operation).
    pub write_latency_s: f64,
    /// Read latency, in seconds.
    pub read_latency_s: f64,
    /// Nominal retention time at the default write energy, in seconds.
    pub retention_s: f64,
    /// Write endurance in cycles.
    pub endurance_cycles: f64,
    /// Standby leakage per bit, in watts (≈0 for true NVM).
    pub standby_leakage_w_per_bit: f64,
}

impl NvmParams {
    /// Energy to write `bits` bits, in joules.
    #[must_use]
    pub fn write_energy_j(&self, bits: u64) -> f64 {
        self.write_energy_per_bit_j * bits as f64
    }

    /// Energy to read `bits` bits, in joules.
    #[must_use]
    pub fn read_energy_j(&self, bits: u64) -> f64 {
        self.read_energy_per_bit_j * bits as f64
    }

    /// Typed variant of [`write_energy_j`](Self::write_energy_j).
    #[must_use]
    pub fn write_energy(&self, bits: u64) -> Joules {
        Joules::new(self.write_energy_j(bits))
    }

    /// Typed variant of [`read_energy_j`](Self::read_energy_j).
    #[must_use]
    pub fn read_energy(&self, bits: u64) -> Joules {
        Joules::new(self.read_energy_j(bits))
    }

    /// Write pulse latency as a typed duration.
    #[must_use]
    pub fn write_latency(&self) -> Seconds {
        Seconds::new(self.write_latency_s)
    }

    /// Read latency as a typed duration.
    #[must_use]
    pub fn read_latency(&self) -> Seconds {
        Seconds::new(self.read_latency_s)
    }

    /// Returns a copy with write energy scaled by `factor` (used by
    /// retention-relaxed backup modes; see [`crate::RelaxPolicy`]).
    #[must_use]
    pub fn with_write_energy_scaled(mut self, factor: f64) -> Self {
        self.write_energy_per_bit_j *= factor;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_techs_have_positive_params() {
        for tech in NvmTechnology::ALL {
            let p = tech.params();
            assert!(p.write_energy_per_bit_j > 0.0, "{tech}");
            assert!(p.read_energy_per_bit_j > 0.0, "{tech}");
            assert!(p.write_latency_s > 0.0, "{tech}");
            assert!(p.read_latency_s > 0.0, "{tech}");
            assert!(p.endurance_cycles > 0.0, "{tech}");
        }
    }

    #[test]
    fn relative_ordering_matches_literature() {
        let feram = NvmTechnology::Feram.params();
        let reram = NvmTechnology::Reram.params();
        let stt = NvmTechnology::SttMram.params();
        let pcm = NvmTechnology::Pcm.params();
        // FeRAM has the cheapest writes; PCM the dearest.
        assert!(feram.write_energy_per_bit_j < reram.write_energy_per_bit_j);
        assert!(reram.write_energy_per_bit_j < pcm.write_energy_per_bit_j);
        // STT-MRAM endurance dominates ReRAM/PCM by many decades.
        assert!(stt.endurance_cycles > 1e6 * reram.endurance_cycles.min(pcm.endurance_cycles));
        // Reads are cheaper than writes everywhere.
        for tech in NvmTechnology::ALL {
            let p = tech.params();
            assert!(p.read_energy_per_bit_j <= p.write_energy_per_bit_j, "{tech}");
        }
    }

    #[test]
    fn bulk_energy_scales_linearly() {
        let p = NvmTechnology::SttMram.params();
        assert!((p.write_energy_j(1000) - 1000.0 * p.write_energy_per_bit_j).abs() < 1e-18);
        let half = p.with_write_energy_scaled(0.5);
        assert!((half.write_energy_j(2) - p.write_energy_j(1)).abs() < 1e-18);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = NvmTechnology::ALL.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4);
    }
}
