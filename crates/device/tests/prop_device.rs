//! Property tests for the device models: the physical monotonicities the
//! architecture layer relies on must hold across the whole parameter
//! space, not just the calibrated points.

use nvp_device::sttram::{thermal_stability, SttModel};
use nvp_device::{EnduranceMeter, NvffBank, NvmTechnology, RelaxPolicy, RetentionShaper};
use proptest::prelude::*;

fn any_retention() -> impl Strategy<Value = f64> {
    // 1 ms .. 10 years, log-uniform.
    (0.0f64..7.5).prop_map(|e| 1e-3 * 10f64.powf(e))
}

fn any_policy() -> impl Strategy<Value = RelaxPolicy> {
    prop_oneof![
        Just(RelaxPolicy::Uniform),
        Just(RelaxPolicy::Linear),
        Just(RelaxPolicy::Log),
        Just(RelaxPolicy::Parabola),
    ]
}

proptest! {
    /// Longer retention ⇒ larger stability factor ⇒ higher write current
    /// at any pulse width ⇒ higher optimal write energy.
    #[test]
    fn sttram_monotone_in_retention(a in any_retention(), b in any_retention(),
                                    pulse in 0.5e-9f64..20e-9) {
        let m = SttModel::default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(thermal_stability(lo) <= thermal_stability(hi));
        prop_assert!(m.write_current_a(lo, pulse) <= m.write_current_a(hi, pulse) + 1e-15);
        prop_assert!(m.optimal_write(lo).energy_j <= m.optimal_write(hi).energy_j * (1.0 + 1e-9));
    }

    /// Relaxing retention always saves energy (saving in [0, 1)).
    #[test]
    fn relaxation_saving_bounded(a in any_retention(), b in any_retention()) {
        let m = SttModel::default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let saving = m.retention_energy_saving(hi, lo);
        prop_assert!((0.0..1.0).contains(&saving) || saving.abs() < 1e-9,
            "saving {saving} for {hi} -> {lo}");
    }

    /// Shaped profiles are monotone MSB→LSB, bounded by [min, max], and
    /// their energy scale is in (0, 1].
    #[test]
    fn shaper_profiles_well_formed(policy in any_policy(),
                                   bits in 1usize..17,
                                   lo in any_retention(),
                                   hi in any_retention()) {
        let (min_r, max_r) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let shaper = RetentionShaper::new(policy, bits, min_r, max_r);
        let profile = shaper.bit_retention();
        prop_assert_eq!(profile.bits(), bits);
        for w in profile.per_bit_s().windows(2) {
            prop_assert!(w[0] >= w[1] * (1.0 - 1e-12), "profile must be non-increasing");
        }
        for &t in profile.per_bit_s() {
            prop_assert!(t >= min_r * (1.0 - 1e-9) && t <= max_r * (1.0 + 1e-9));
        }
        let scale = shaper.write_energy_scale(&SttModel::default());
        prop_assert!(scale > 0.0 && scale <= 1.0 + 1e-9, "scale {scale}");
    }

    /// Degradation risk ordering: the aggressive (log) shape never has
    /// fewer at-risk bits than the conservative (parabola) shape.
    #[test]
    fn risk_ordering(outage in 1e-3f64..1e5) {
        let log = RetentionShaper::new(RelaxPolicy::Log, 8, 0.01, 86_400.0).bit_retention();
        let parabola =
            RetentionShaper::new(RelaxPolicy::Parabola, 8, 0.01, 86_400.0).bit_retention();
        prop_assert!(log.at_risk_bits(outage) >= parabola.at_risk_bits(outage));
    }

    /// Bank costs scale linearly in bits for every technology.
    #[test]
    fn bank_linearity(bits in 1u64..100_000, k in 2u64..8) {
        for tech in NvmTechnology::ALL {
            let one = NvffBank::new(tech, bits);
            let many = NvffBank::new(tech, bits * k);
            let ratio = many.backup_energy_j() / one.backup_energy_j();
            prop_assert!((ratio - k as f64).abs() < 1e-9, "{tech}: {ratio}");
            prop_assert!((many.backup_time_s() - one.backup_time_s()).abs() < 1e-15,
                "parallel write time is size-independent");
        }
    }

    /// Endurance: lifetime halves when the backup rate doubles, and the
    /// meter depletes monotonically.
    #[test]
    fn endurance_scaling(rate in 0.1f64..1e3, n in 1u64..1_000_000) {
        let params = NvmTechnology::Reram.params();
        let meter = EnduranceMeter::new(params);
        let l1 = meter.lifetime_years(rate);
        let l2 = meter.lifetime_years(rate * 2.0);
        prop_assert!((l1 / l2 - 2.0).abs() < 1e-9);
        let mut m = EnduranceMeter::new(params);
        let before = m.remaining_fraction();
        m.record_backups(n);
        prop_assert!(m.remaining_fraction() <= before);
    }
}
