//! Property tests for the device models: the physical monotonicities the
//! architecture layer relies on must hold across the whole parameter
//! space, not just the calibrated points. Deterministically seeded
//! random sweeps replace the original proptest strategies.

use nvp_device::sttram::{thermal_stability, SttModel};
use nvp_device::{EnduranceMeter, NvffBank, NvmTechnology, RelaxPolicy, RetentionShaper};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// 1 ms .. 10 years, log-uniform.
fn any_retention(rng: &mut StdRng) -> f64 {
    1e-3 * 10f64.powf(rng.random::<f64>() * 7.5)
}

fn any_policy(rng: &mut StdRng) -> RelaxPolicy {
    match rng.random::<u32>() % 4 {
        0 => RelaxPolicy::Uniform,
        1 => RelaxPolicy::Linear,
        2 => RelaxPolicy::Log,
        _ => RelaxPolicy::Parabola,
    }
}

/// Longer retention ⇒ larger stability factor ⇒ higher write current at
/// any pulse width ⇒ higher optimal write energy.
#[test]
fn sttram_monotone_in_retention() {
    let mut rng = StdRng::seed_from_u64(0xd01_001);
    for _ in 0..500 {
        let a = any_retention(&mut rng);
        let b = any_retention(&mut rng);
        let pulse = 0.5e-9 + rng.random::<f64>() * (20e-9 - 0.5e-9);
        let m = SttModel::default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(thermal_stability(lo) <= thermal_stability(hi));
        assert!(m.write_current_a(lo, pulse) <= m.write_current_a(hi, pulse) + 1e-15);
        assert!(m.optimal_write(lo).energy_j <= m.optimal_write(hi).energy_j * (1.0 + 1e-9));
    }
}

/// Relaxing retention always saves energy (saving in [0, 1)).
#[test]
fn relaxation_saving_bounded() {
    let mut rng = StdRng::seed_from_u64(0xd01_002);
    for _ in 0..500 {
        let a = any_retention(&mut rng);
        let b = any_retention(&mut rng);
        let m = SttModel::default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let saving = m.retention_energy_saving(hi, lo);
        assert!(
            (0.0..1.0).contains(&saving) || saving.abs() < 1e-9,
            "saving {saving} for {hi} -> {lo}"
        );
    }
}

/// Shaped profiles are monotone MSB→LSB, bounded by [min, max], and
/// their energy scale is in (0, 1].
#[test]
fn shaper_profiles_well_formed() {
    let mut rng = StdRng::seed_from_u64(0xd01_003);
    for _ in 0..400 {
        let policy = any_policy(&mut rng);
        let bits = 1 + rng.random::<u32>() as usize % 16;
        let lo = any_retention(&mut rng);
        let hi = any_retention(&mut rng);
        let (min_r, max_r) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let shaper = RetentionShaper::new(policy, bits, min_r, max_r);
        let profile = shaper.bit_retention();
        assert_eq!(profile.bits(), bits);
        for w in profile.per_bit_s().windows(2) {
            assert!(w[0] >= w[1] * (1.0 - 1e-12), "profile must be non-increasing");
        }
        for &t in profile.per_bit_s() {
            assert!(t >= min_r * (1.0 - 1e-9) && t <= max_r * (1.0 + 1e-9));
        }
        let scale = shaper.write_energy_scale(&SttModel::default());
        assert!(scale > 0.0 && scale <= 1.0 + 1e-9, "scale {scale}");
    }
}

/// Degradation risk ordering: the aggressive (log) shape never has fewer
/// at-risk bits than the conservative (parabola) shape.
#[test]
fn risk_ordering() {
    let mut rng = StdRng::seed_from_u64(0xd01_004);
    for _ in 0..500 {
        let outage = 1e-3 * 10f64.powf(rng.random::<f64>() * 8.0);
        let log = RetentionShaper::new(RelaxPolicy::Log, 8, 0.01, 86_400.0).bit_retention();
        let parabola =
            RetentionShaper::new(RelaxPolicy::Parabola, 8, 0.01, 86_400.0).bit_retention();
        assert!(log.at_risk_bits(outage) >= parabola.at_risk_bits(outage));
    }
}

/// Bank costs scale linearly in bits for every technology.
#[test]
fn bank_linearity() {
    let mut rng = StdRng::seed_from_u64(0xd01_005);
    for _ in 0..300 {
        let bits = 1 + rng.random::<u64>() % 99_999;
        let k = 2 + rng.random::<u64>() % 6;
        for tech in NvmTechnology::ALL {
            let one = NvffBank::new(tech, bits);
            let many = NvffBank::new(tech, bits * k);
            let ratio = many.backup_energy_j() / one.backup_energy_j();
            assert!((ratio - k as f64).abs() < 1e-9, "{tech}: {ratio}");
            assert!(
                (many.backup_time_s() - one.backup_time_s()).abs() < 1e-15,
                "parallel write time is size-independent"
            );
        }
    }
}

/// Endurance: lifetime halves when the backup rate doubles, and the
/// meter depletes monotonically.
#[test]
fn endurance_scaling() {
    let mut rng = StdRng::seed_from_u64(0xd01_006);
    for _ in 0..500 {
        let rate = 0.1 + rng.random::<f64>() * (1e3 - 0.1);
        let n = 1 + rng.random::<u64>() % 999_999;
        let params = NvmTechnology::Reram.params();
        let meter = EnduranceMeter::new(params);
        let l1 = meter.lifetime_years(rate);
        let l2 = meter.lifetime_years(rate * 2.0);
        assert!((l1 / l2 - 2.0).abs() < 1e-9);
        let mut m = EnduranceMeter::new(params);
        let before = m.remaining_fraction();
        m.record_backups(n);
        assert!(m.remaining_fraction() <= before);
    }
}
