//! Power-provisioning front end: rectifier and storage capacitor.

use serde::{Deserialize, Serialize};

/// AC-DC rectifier / power-conditioning efficiency model.
///
/// Conversion efficiency collapses at very low input power (diode drops
/// and controller overhead dominate), peaks in the hundreds-of-µW band a
/// wrist harvester actually delivers, and sags slightly at high power.
/// This is the loss mechanism that penalizes "charge a big capacitor
/// first" schemes: energy moved into and out of storage pays the
/// conversion tax twice.
///
/// # Example
///
/// ```
/// use nvp_energy::Rectifier;
///
/// let r = Rectifier::default();
/// assert!(r.efficiency(1e-6) < 0.5, "tiny inputs convert poorly");
/// assert!(r.efficiency(300e-6) > 0.7, "mid-band is efficient");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rectifier {
    /// Peak conversion efficiency (0–1).
    pub peak_efficiency: f64,
    /// Input power at which efficiency reaches half its peak, watts.
    pub knee_w: f64,
    /// Fractional efficiency droop per decade above the knee.
    pub high_power_droop: f64,
}

impl Default for Rectifier {
    fn default() -> Self {
        Rectifier { peak_efficiency: 0.82, knee_w: 8e-6, high_power_droop: 0.02 }
    }
}

impl Rectifier {
    /// Conversion efficiency at the given input power (0–1).
    #[must_use]
    pub fn efficiency(&self, input_w: f64) -> f64 {
        if input_w <= 0.0 {
            return 0.0;
        }
        // Saturating rise past the knee…
        let rise = input_w / (input_w + self.knee_w);
        // …with a gentle droop at high power.
        let decades_above = (input_w / (self.knee_w * 10.0)).max(1.0).log10();
        let droop = 1.0 - self.high_power_droop * decades_above;
        (self.peak_efficiency * rise * droop).clamp(0.0, 1.0)
    }

    /// Output (DC) power delivered for a given harvested input power.
    #[must_use]
    pub fn output_w(&self, input_w: f64) -> f64 {
        input_w * self.efficiency(input_w)
    }
}

/// An energy-storage capacitor tracked in the energy domain.
///
/// Capacity is `½·C·V²` at the rated voltage; leakage is exponential
/// self-discharge with time constant `leak_tau_s` (≈ `R_leak·C`). Small
/// on-chip backup capacitors have τ of hours; large supercapacitor ESDs
/// have τ of minutes-to-hours *and* waste charge every cycle — the core
/// energy trade-off between NVP and wait-then-compute platforms.
///
/// # Example
///
/// ```
/// use nvp_energy::Capacitor;
///
/// let mut cap = Capacitor::new(100e-9, 3.3, 3600.0); // 100 nF on-chip
/// let max = cap.max_energy_j();
/// cap.charge_j(2.0 * max); // overcharge clamps at capacity
/// assert!((cap.energy_j() - max).abs() < 1e-15);
/// assert!(cap.draw_j(max * 0.5));
/// assert!(!cap.draw_j(max), "cannot draw more than stored");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Capacitor {
    capacitance_f: f64,
    rated_voltage_v: f64,
    leak_tau_s: f64,
    energy_j: f64,
    wasted_j: f64,
}

impl Capacitor {
    /// Creates an empty capacitor.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive.
    #[must_use]
    pub fn new(capacitance_f: f64, rated_voltage_v: f64, leak_tau_s: f64) -> Self {
        assert!(capacitance_f > 0.0, "capacitance must be positive");
        assert!(rated_voltage_v > 0.0, "voltage must be positive");
        assert!(leak_tau_s > 0.0, "leakage time constant must be positive");
        Capacitor { capacitance_f, rated_voltage_v, leak_tau_s, energy_j: 0.0, wasted_j: 0.0 }
    }

    /// Capacitance in farads.
    #[must_use]
    pub fn capacitance_f(&self) -> f64 {
        self.capacitance_f
    }

    /// Maximum storable energy, `½CV²`, joules.
    #[must_use]
    pub fn max_energy_j(&self) -> f64 {
        0.5 * self.capacitance_f * self.rated_voltage_v * self.rated_voltage_v
    }

    /// Currently stored energy, joules.
    #[must_use]
    pub fn energy_j(&self) -> f64 {
        self.energy_j
    }

    /// Present terminal voltage implied by the stored energy.
    #[must_use]
    pub fn voltage_v(&self) -> f64 {
        (2.0 * self.energy_j / self.capacitance_f).sqrt()
    }

    /// Energy lost so far to leakage and overcharge spill, joules.
    #[must_use]
    pub fn wasted_j(&self) -> f64 {
        self.wasted_j
    }

    /// Adds harvested energy; overflow beyond capacity is spilled (and
    /// accounted as waste). Returns the energy actually stored.
    pub fn charge_j(&mut self, joules: f64) -> f64 {
        debug_assert!(joules >= 0.0);
        let room = self.max_energy_j() - self.energy_j;
        let stored = joules.min(room);
        self.energy_j += stored;
        self.wasted_j += joules - stored;
        stored
    }

    /// Draws `joules` if available; returns `false` (and leaves the store
    /// untouched) if there is not enough energy.
    #[must_use = "a failed draw means a power emergency"]
    pub fn draw_j(&mut self, joules: f64) -> bool {
        if joules <= self.energy_j {
            self.energy_j -= joules;
            true
        } else {
            false
        }
    }

    /// Draws up to `joules`, returning what was actually obtained
    /// (brown-out semantics).
    pub fn draw_up_to_j(&mut self, joules: f64) -> f64 {
        let got = joules.min(self.energy_j);
        self.energy_j -= got;
        got
    }

    /// Applies self-discharge over `dt_s` seconds.
    pub fn leak(&mut self, dt_s: f64) {
        let kept = (-dt_s / self.leak_tau_s).exp();
        let lost = self.energy_j * (1.0 - kept);
        self.energy_j -= lost;
        self.wasted_j += lost;
    }

    /// Empties the capacitor (deep discharge during a long outage).
    pub fn deplete(&mut self) {
        self.energy_j = 0.0;
    }

    /// Fraction of capacity currently filled (0–1).
    #[must_use]
    pub fn fill_fraction(&self) -> f64 {
        self.energy_j / self.max_energy_j()
    }
}

/// Configuration of the complete power-provisioning chain between the
/// harvester and the platform's energy storage.
///
/// Every platform shares the same physics — rectifier conversion, an
/// optional minimum-charge trickle penalty, an optional charger input
/// clip, then capacitor charge and leakage. What differs between an NVP
/// (small ceramic buffer directly at the rectifier output) and a
/// wait-then-compute baseline (supercapacitor behind a charger IC) is
/// only the *options*: the NVP disables the trickle and clip effects,
/// the supercap platform enables them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrontEndConfig {
    /// AC-DC conversion model.
    pub rectifier: Rectifier,
    /// Storage capacitance, farads.
    pub capacitance_f: f64,
    /// Storage rated voltage, volts.
    pub cap_voltage_v: f64,
    /// Storage self-discharge time constant, seconds.
    pub cap_leak_tau_s: f64,
    /// Converted input power below which the storage device accepts only
    /// a trickle (supercapacitor minimum-charging-current effect), watts.
    /// `0.0` disables the effect.
    pub min_charge_power_w: f64,
    /// Fraction of sub-minimum trickle power actually banked.
    pub trickle_efficiency: f64,
    /// Charger input power limit, watts: converted power above this is
    /// clipped when banking into storage. [`f64::INFINITY`] disables the
    /// effect (a buffer directly at the rectifier output has no limit).
    pub max_charge_power_w: f64,
}

impl FrontEndConfig {
    /// A front end with storage directly at the rectifier output — no
    /// trickle penalty, no charger clipping (the NVP configuration).
    #[must_use]
    pub fn direct(
        rectifier: Rectifier,
        capacitance_f: f64,
        cap_voltage_v: f64,
        cap_leak_tau_s: f64,
    ) -> Self {
        FrontEndConfig {
            rectifier,
            capacitance_f,
            cap_voltage_v,
            cap_leak_tau_s,
            min_charge_power_w: 0.0,
            trickle_efficiency: 1.0,
            max_charge_power_w: f64::INFINITY,
        }
    }
}

/// The energy delivered during one front-end tick.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TickIncome {
    /// Raw harvested energy offered by the trace this tick, joules.
    pub harvested_j: f64,
    /// Energy delivered past the rectifier (after trickle/clip effects)
    /// into storage this tick, joules.
    pub converted_j: f64,
}

/// The per-tick income path shared by every simulated platform:
/// rectifier output → trickle/clip effects → capacitor charge → leakage.
///
/// Extracting this chain into one type is what keeps the NVP-versus-
/// baseline comparison fair: both platforms bank income through exactly
/// the same code, differing only in their [`FrontEndConfig`] options.
///
/// # Example
///
/// ```
/// use nvp_energy::{EnergyFrontEnd, FrontEndConfig, Rectifier};
///
/// let mut fe = EnergyFrontEnd::new(FrontEndConfig::direct(
///     Rectifier::default(), 2.2e-6, 3.3, 3600.0));
/// let income = fe.tick(300e-6, 1e-4); // 300 µW for 0.1 ms
/// assert!(income.converted_j > 0.0);
/// assert!(income.converted_j < income.harvested_j, "conversion is lossy");
/// assert!(fe.storage().energy_j() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyFrontEnd {
    config: FrontEndConfig,
    cap: Capacitor,
}

impl EnergyFrontEnd {
    /// Creates a front end with an empty storage capacitor.
    ///
    /// # Panics
    ///
    /// Panics if the capacitor parameters are non-positive.
    #[must_use]
    pub fn new(config: FrontEndConfig) -> Self {
        let cap = Capacitor::new(config.capacitance_f, config.cap_voltage_v, config.cap_leak_tau_s);
        EnergyFrontEnd { config, cap }
    }

    /// Banks one tick of harvested input power: applies the rectifier
    /// curve, the trickle and clip options, charges the capacitor, and
    /// applies leakage. Returns the tick's energy income.
    pub fn tick(&mut self, input_w: f64, dt_s: f64) -> TickIncome {
        let mut out_w = self.config.rectifier.output_w(input_w);
        if out_w < self.config.min_charge_power_w {
            // Below the storage device's minimum charging current the
            // bank barely accepts charge.
            out_w *= self.config.trickle_efficiency;
        }
        // Spikes above the charger's input limit are clipped.
        out_w = out_w.min(self.config.max_charge_power_w);
        let converted_j = out_w * dt_s;
        self.cap.charge_j(converted_j);
        self.cap.leak(dt_s);
        TickIncome { harvested_j: input_w * dt_s, converted_j }
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &FrontEndConfig {
        &self.config
    }

    /// Read access to the storage capacitor.
    #[must_use]
    pub fn storage(&self) -> &Capacitor {
        &self.cap
    }

    /// Mutable access to the storage capacitor (platforms draw their
    /// compute/backup/sleep energy directly from storage).
    pub fn storage_mut(&mut self) -> &mut Capacitor {
        &mut self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectifier_curve_shape() {
        let r = Rectifier::default();
        assert_eq!(r.efficiency(0.0), 0.0);
        let e_small = r.efficiency(2e-6);
        let e_mid = r.efficiency(200e-6);
        assert!(e_small < e_mid, "{e_small} vs {e_mid}");
        assert!(e_mid <= r.peak_efficiency);
        // Monotone non-increasing far above the knee is allowed but mild.
        let e_high = r.efficiency(2e-3);
        assert!(e_high > 0.6 * r.peak_efficiency);
        // Output power is monotone in input power across the range.
        let mut prev = 0.0;
        for i in 1..100 {
            let p = 1e-6 * f64::from(i) * f64::from(i);
            let out = r.output_w(p);
            assert!(out >= prev, "output power must be monotone");
            prev = out;
        }
    }

    #[test]
    fn capacitor_energy_conservation() {
        let mut cap = Capacitor::new(10e-6, 3.3, 100.0);
        let stored = cap.charge_j(10e-6);
        assert!((stored - 10e-6).abs() < 1e-18);
        assert!(cap.draw_j(4e-6));
        assert!((cap.energy_j() - 6e-6).abs() < 1e-15);
        assert!(!cap.draw_j(7e-6), "insufficient draw must fail");
        assert!((cap.energy_j() - 6e-6).abs() < 1e-15, "failed draw must not change state");
        let got = cap.draw_up_to_j(100.0);
        assert!((got - 6e-6).abs() < 1e-15);
        assert_eq!(cap.energy_j(), 0.0);
    }

    #[test]
    fn overcharge_spills_to_waste() {
        let mut cap = Capacitor::new(1e-9, 1.0, 100.0);
        let max = cap.max_energy_j();
        cap.charge_j(10.0 * max);
        assert!((cap.energy_j() - max).abs() < 1e-18);
        assert!((cap.wasted_j() - 9.0 * max).abs() < 1e-15);
        assert!((cap.fill_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn leakage_is_exponential() {
        let mut cap = Capacitor::new(100e-6, 3.3, 10.0);
        cap.charge_j(cap.max_energy_j());
        let e0 = cap.energy_j();
        cap.leak(10.0); // one time constant
        assert!((cap.energy_j() / e0 - (-1.0_f64).exp()).abs() < 1e-9);
        assert!(cap.wasted_j() > 0.0);
    }

    #[test]
    fn voltage_tracks_energy() {
        let mut cap = Capacitor::new(1e-6, 2.0, 100.0);
        cap.charge_j(cap.max_energy_j());
        assert!((cap.voltage_v() - 2.0).abs() < 1e-9);
        let _ = cap.draw_j(cap.energy_j() * 0.75);
        assert!((cap.voltage_v() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "capacitance must be positive")]
    fn zero_capacitance_rejected() {
        let _ = Capacitor::new(0.0, 3.3, 1.0);
    }

    /// The `direct` configuration must reproduce the raw rectifier →
    /// charge → leak path bit-for-bit: it is the NVP income path.
    #[test]
    fn direct_front_end_matches_raw_path() {
        let r = Rectifier::default();
        let mut fe = EnergyFrontEnd::new(FrontEndConfig::direct(r, 2.2e-6, 3.3, 3600.0));
        let mut cap = Capacitor::new(2.2e-6, 3.3, 3600.0);
        let dt = 1e-4;
        for i in 0..2000 {
            let p = 2e-3 * (f64::from(i) / 2000.0);
            let income = fe.tick(p, dt);
            let converted = r.output_w(p) * dt;
            cap.charge_j(converted);
            cap.leak(dt);
            assert_eq!(income.converted_j.to_bits(), converted.to_bits());
            assert_eq!(income.harvested_j.to_bits(), (p * dt).to_bits());
            assert_eq!(fe.storage().energy_j().to_bits(), cap.energy_j().to_bits());
            assert_eq!(fe.storage().wasted_j().to_bits(), cap.wasted_j().to_bits());
        }
    }

    #[test]
    fn trickle_penalizes_weak_input() {
        let r = Rectifier::default();
        let mut cfg = FrontEndConfig::direct(r, 100e-6, 3.3, 200.0);
        cfg.min_charge_power_w = 50e-6;
        cfg.trickle_efficiency = 0.15;
        let mut trickled = EnergyFrontEnd::new(cfg);
        let mut direct = EnergyFrontEnd::new(FrontEndConfig::direct(r, 100e-6, 3.3, 200.0));
        // 30 µW input converts to well under 50 µW: the trickle applies.
        let a = trickled.tick(30e-6, 1e-4);
        let b = direct.tick(30e-6, 1e-4);
        assert!((a.converted_j - b.converted_j * 0.15).abs() < 1e-18);
        assert_eq!(a.harvested_j, b.harvested_j);
    }

    #[test]
    fn clip_limits_strong_input() {
        let r = Rectifier::default();
        let mut cfg = FrontEndConfig::direct(r, 100e-6, 3.3, 200.0);
        cfg.max_charge_power_w = 150e-6;
        let mut fe = EnergyFrontEnd::new(cfg);
        // 2 mW input converts far above the 150 µW clip.
        let income = fe.tick(2e-3, 1e-4);
        assert!((income.converted_j - 150e-6 * 1e-4).abs() < 1e-18);
        assert!(income.harvested_j > income.converted_j);
    }
}
