//! Power-provisioning front end: rectifier and storage capacitor.
//!
//! All stored/flowing quantities are carried by the dimensional
//! newtypes in [`crate::units`]; the `_j`/`_f`/`_v` suffixed methods
//! are thin untyped accessors kept for formatting and tests.

use serde::{Deserialize, Serialize};

use crate::units::{Farads, Joules, Seconds, Volts, Watts};

/// AC-DC rectifier / power-conditioning efficiency model.
///
/// Conversion efficiency collapses at very low input power (diode drops
/// and controller overhead dominate), peaks in the hundreds-of-µW band a
/// wrist harvester actually delivers, and sags slightly at high power.
/// This is the loss mechanism that penalizes "charge a big capacitor
/// first" schemes: energy moved into and out of storage pays the
/// conversion tax twice.
///
/// # Example
///
/// ```
/// use nvp_energy::Rectifier;
///
/// let r = Rectifier::default();
/// assert!(r.efficiency(1e-6) < 0.5, "tiny inputs convert poorly");
/// assert!(r.efficiency(300e-6) > 0.7, "mid-band is efficient");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rectifier {
    /// Peak conversion efficiency (0–1).
    pub peak_efficiency: f64,
    /// Input power at which efficiency reaches half its peak, watts.
    pub knee_w: f64,
    /// Fractional efficiency droop per decade above the knee.
    pub high_power_droop: f64,
}

impl Default for Rectifier {
    fn default() -> Self {
        Rectifier { peak_efficiency: 0.82, knee_w: 8e-6, high_power_droop: 0.02 }
    }
}

impl Rectifier {
    /// Conversion efficiency at the given input power (0–1).
    #[must_use]
    pub fn efficiency(&self, input_w: f64) -> f64 {
        if input_w <= 0.0 {
            return 0.0;
        }
        // Saturating rise past the knee…
        let rise = input_w / (input_w + self.knee_w);
        // …with a gentle droop at high power.
        let decades_above = (input_w / (self.knee_w * 10.0)).max(1.0).log10();
        let droop = 1.0 - self.high_power_droop * decades_above;
        (self.peak_efficiency * rise * droop).clamp(0.0, 1.0)
    }

    /// Output (DC) power delivered for a given harvested input power.
    #[must_use]
    pub fn output_w(&self, input_w: f64) -> f64 {
        input_w * self.efficiency(input_w)
    }

    /// Typed variant of [`output_w`](Self::output_w).
    #[must_use]
    pub fn output(&self, input: Watts) -> Watts {
        Watts::new(self.output_w(input.get()))
    }
}

/// An energy-storage capacitor tracked in the energy domain.
///
/// Capacity is `½·C·V²` at the rated voltage; leakage is exponential
/// self-discharge with time constant `leak_tau` (≈ `R_leak·C`). Small
/// on-chip backup capacitors have τ of hours; large supercapacitor ESDs
/// have τ of minutes-to-hours *and* waste charge every cycle — the core
/// energy trade-off between NVP and wait-then-compute platforms.
///
/// # Example
///
/// ```
/// use nvp_energy::units::{Joules, Seconds};
/// use nvp_energy::Capacitor;
///
/// let mut cap = Capacitor::new(100e-9, 3.3, 3600.0); // 100 nF on-chip
/// let max: Joules = cap.max_energy();
/// cap.charge(2.0 * max); // overcharge clamps at capacity
/// assert!((cap.max_energy() - cap.energy()).get().abs() < 1e-15);
/// assert!(cap.draw(max * 0.5));
/// assert!(!cap.draw(max), "cannot draw more than stored");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Capacitor {
    capacitance: Farads,
    rated_voltage: Volts,
    leak_tau: Seconds,
    energy: Joules,
    wasted: Joules,
}

impl Capacitor {
    /// Creates an empty capacitor from raw SI magnitudes.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive.
    #[must_use]
    pub fn new(capacitance_f: f64, rated_voltage_v: f64, leak_tau_s: f64) -> Self {
        Self::from_units(
            Farads::new(capacitance_f),
            Volts::new(rated_voltage_v),
            Seconds::new(leak_tau_s),
        )
    }

    /// Creates an empty capacitor from typed quantities.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive.
    #[must_use]
    pub fn from_units(capacitance: Farads, rated_voltage: Volts, leak_tau: Seconds) -> Self {
        assert!(capacitance > Farads::ZERO, "capacitance must be positive");
        assert!(rated_voltage > Volts::ZERO, "voltage must be positive");
        assert!(leak_tau > Seconds::ZERO, "leakage time constant must be positive");
        Capacitor {
            capacitance,
            rated_voltage,
            leak_tau,
            energy: Joules::ZERO,
            wasted: Joules::ZERO,
        }
    }

    /// Capacitance.
    #[must_use]
    pub fn capacitance(&self) -> Farads {
        self.capacitance
    }

    /// Capacitance in farads (untyped accessor).
    #[must_use]
    pub fn capacitance_f(&self) -> f64 {
        self.capacitance.get()
    }

    /// Maximum storable energy, `½CV²`.
    #[must_use]
    pub fn max_energy(&self) -> Joules {
        self.capacitance.energy_at(self.rated_voltage)
    }

    /// Maximum storable energy in joules (untyped accessor).
    #[must_use]
    pub fn max_energy_j(&self) -> f64 {
        self.max_energy().get()
    }

    /// Currently stored energy.
    #[must_use]
    pub fn energy(&self) -> Joules {
        self.energy
    }

    /// Currently stored energy in joules (untyped accessor).
    #[must_use]
    pub fn energy_j(&self) -> f64 {
        self.energy.get()
    }

    /// Present terminal voltage implied by the stored energy.
    #[must_use]
    pub fn voltage(&self) -> Volts {
        self.energy.voltage_across(self.capacitance)
    }

    /// Present terminal voltage in volts (untyped accessor).
    #[must_use]
    pub fn voltage_v(&self) -> f64 {
        self.voltage().get()
    }

    /// Energy lost so far to leakage and overcharge spill.
    #[must_use]
    pub fn wasted(&self) -> Joules {
        self.wasted
    }

    /// Energy lost so far in joules (untyped accessor).
    #[must_use]
    pub fn wasted_j(&self) -> f64 {
        self.wasted.get()
    }

    /// Adds harvested energy; overflow beyond capacity is spilled (and
    /// accounted as waste). Returns the energy actually stored.
    pub fn charge(&mut self, amount: Joules) -> Joules {
        debug_assert!(amount >= Joules::ZERO);
        let room = self.max_energy() - self.energy;
        let stored = amount.min(room);
        self.energy += stored;
        self.wasted += amount - stored;
        stored
    }

    /// Untyped variant of [`charge`](Self::charge).
    pub fn charge_j(&mut self, joules: f64) -> f64 {
        self.charge(Joules::new(joules)).get()
    }

    /// Draws `amount` if available; returns `false` (and leaves the
    /// store untouched) if there is not enough energy.
    #[must_use = "a failed draw means a power emergency"]
    pub fn draw(&mut self, amount: Joules) -> bool {
        match self.energy.checked_sub(amount) {
            Some(left) => {
                self.energy = left;
                true
            }
            None => false,
        }
    }

    /// Untyped variant of [`draw`](Self::draw).
    #[must_use = "a failed draw means a power emergency"]
    pub fn draw_j(&mut self, joules: f64) -> bool {
        self.draw(Joules::new(joules))
    }

    /// Draws up to `amount`, returning what was actually obtained
    /// (brown-out semantics).
    pub fn draw_up_to(&mut self, amount: Joules) -> Joules {
        let got = amount.min(self.energy);
        self.energy -= got;
        got
    }

    /// Untyped variant of [`draw_up_to`](Self::draw_up_to).
    pub fn draw_up_to_j(&mut self, joules: f64) -> f64 {
        self.draw_up_to(Joules::new(joules)).get()
    }

    /// Applies self-discharge over a duration.
    pub fn leak(&mut self, dt: Seconds) {
        let kept = (-(dt / self.leak_tau)).exp();
        let lost = self.energy * (1.0 - kept);
        self.energy -= lost;
        self.wasted += lost;
    }

    /// Empties the capacitor (deep discharge during a long outage).
    pub fn deplete(&mut self) {
        self.energy = Joules::ZERO;
    }

    /// Fraction of capacity currently filled (0–1).
    #[must_use]
    pub fn fill_fraction(&self) -> f64 {
        self.energy / self.max_energy()
    }
}

/// Configuration of the complete power-provisioning chain between the
/// harvester and the platform's energy storage.
///
/// Every platform shares the same physics — rectifier conversion, an
/// optional minimum-charge trickle penalty, an optional charger input
/// clip, then capacitor charge and leakage. What differs between an NVP
/// (small ceramic buffer directly at the rectifier output) and a
/// wait-then-compute baseline (supercapacitor behind a charger IC) is
/// only the *options*: the NVP disables the trickle and clip effects,
/// the supercap platform enables them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrontEndConfig {
    /// AC-DC conversion model.
    pub rectifier: Rectifier,
    /// Storage capacitance.
    pub capacitance: Farads,
    /// Storage rated voltage.
    pub cap_voltage: Volts,
    /// Storage self-discharge time constant.
    pub cap_leak_tau: Seconds,
    /// Converted input power below which the storage device accepts only
    /// a trickle (supercapacitor minimum-charging-current effect).
    /// [`Watts::ZERO`] disables the effect.
    pub min_charge_power: Watts,
    /// Fraction of sub-minimum trickle power actually banked.
    pub trickle_efficiency: f64,
    /// Charger input power limit: converted power above this is clipped
    /// when banking into storage. [`Watts::INFINITY`] disables the
    /// effect (a buffer directly at the rectifier output has no limit).
    pub max_charge_power: Watts,
}

impl FrontEndConfig {
    /// A front end with storage directly at the rectifier output — no
    /// trickle penalty, no charger clipping (the NVP configuration).
    #[must_use]
    pub fn direct(
        rectifier: Rectifier,
        capacitance: Farads,
        cap_voltage: Volts,
        cap_leak_tau: Seconds,
    ) -> Self {
        FrontEndConfig {
            rectifier,
            capacitance,
            cap_voltage,
            cap_leak_tau,
            min_charge_power: Watts::ZERO,
            trickle_efficiency: 1.0,
            max_charge_power: Watts::INFINITY,
        }
    }

    /// Maximum storable energy of the configured capacitor, `½CV²`.
    #[must_use]
    pub fn max_storage_energy(&self) -> Joules {
        self.capacitance.energy_at(self.cap_voltage)
    }
}

/// The energy delivered during one front-end tick.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TickIncome {
    /// Raw harvested energy offered by the trace this tick.
    pub harvested: Joules,
    /// Energy delivered past the rectifier (after trickle/clip effects)
    /// into storage this tick.
    pub converted: Joules,
}

/// The per-tick income path shared by every simulated platform:
/// rectifier output → trickle/clip effects → capacitor charge → leakage.
///
/// Extracting this chain into one type is what keeps the NVP-versus-
/// baseline comparison fair: both platforms bank income through exactly
/// the same code, differing only in their [`FrontEndConfig`] options.
///
/// # Example
///
/// ```
/// use nvp_energy::units::{Farads, Joules, Seconds, Volts, Watts};
/// use nvp_energy::{EnergyFrontEnd, FrontEndConfig, Rectifier};
///
/// let mut fe = EnergyFrontEnd::new(FrontEndConfig::direct(
///     Rectifier::default(), Farads::new(2.2e-6), Volts::new(3.3),
///     Seconds::new(3600.0)));
/// let income = fe.tick(Watts::new(300e-6), Seconds::new(1e-4));
/// assert!(income.converted > Joules::ZERO);
/// assert!(income.converted < income.harvested, "conversion is lossy");
/// assert!(fe.storage().energy() > Joules::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyFrontEnd {
    config: FrontEndConfig,
    cap: Capacitor,
}

impl EnergyFrontEnd {
    /// Creates a front end with an empty storage capacitor.
    ///
    /// # Panics
    ///
    /// Panics if the capacitor parameters are non-positive.
    #[must_use]
    pub fn new(config: FrontEndConfig) -> Self {
        let cap =
            Capacitor::from_units(config.capacitance, config.cap_voltage, config.cap_leak_tau);
        EnergyFrontEnd { config, cap }
    }

    /// Banks one tick of harvested input power: applies the rectifier
    /// curve, the trickle and clip options, charges the capacitor, and
    /// applies leakage. Returns the tick's energy income.
    pub fn tick(&mut self, input: Watts, dt: Seconds) -> TickIncome {
        let mut out = self.config.rectifier.output(input);
        if out < self.config.min_charge_power {
            // Below the storage device's minimum charging current the
            // bank barely accepts charge.
            out = out * self.config.trickle_efficiency;
        }
        // Spikes above the charger's input limit are clipped.
        out = out.min(self.config.max_charge_power);
        let converted = out * dt;
        self.cap.charge(converted);
        self.cap.leak(dt);
        TickIncome { harvested: input * dt, converted }
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &FrontEndConfig {
        &self.config
    }

    /// Read access to the storage capacitor.
    #[must_use]
    pub fn storage(&self) -> &Capacitor {
        &self.cap
    }

    /// Mutable access to the storage capacitor (platforms draw their
    /// compute/backup/sleep energy directly from storage).
    pub fn storage_mut(&mut self) -> &mut Capacitor {
        &mut self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectifier_curve_shape() {
        let r = Rectifier::default();
        assert_eq!(r.efficiency(0.0), 0.0); // nvp-lint: allow(float-eq)
        let e_small = r.efficiency(2e-6);
        let e_mid = r.efficiency(200e-6);
        assert!(e_small < e_mid, "{e_small} vs {e_mid}");
        assert!(e_mid <= r.peak_efficiency);
        // Monotone non-increasing far above the knee is allowed but mild.
        let e_high = r.efficiency(2e-3);
        assert!(e_high > 0.6 * r.peak_efficiency);
        // Output power is monotone in input power across the range.
        let mut prev = Watts::ZERO;
        for i in 1..100 {
            let p = 1e-6 * f64::from(i) * f64::from(i);
            let out = r.output(Watts::new(p));
            assert!(out >= prev, "output power must be monotone");
            prev = out;
        }
    }

    #[test]
    fn capacitor_energy_conservation() {
        let mut cap = Capacitor::new(10e-6, 3.3, 100.0);
        let stored = cap.charge(Joules::new(10e-6));
        assert!((stored - Joules::new(10e-6)).get().abs() < 1e-18);
        assert!(cap.draw(Joules::new(4e-6)));
        assert!((cap.energy() - Joules::new(6e-6)).get().abs() < 1e-15);
        assert!(!cap.draw(Joules::new(7e-6)), "insufficient draw must fail");
        assert!(
            (cap.energy() - Joules::new(6e-6)).get().abs() < 1e-15,
            "failed draw must not change state"
        );
        let got = cap.draw_up_to(Joules::new(100.0));
        assert!((got - Joules::new(6e-6)).get().abs() < 1e-15);
        assert_eq!(cap.energy(), Joules::ZERO);
    }

    #[test]
    fn overcharge_spills_to_waste() {
        let mut cap = Capacitor::new(1e-9, 1.0, 100.0);
        let max = cap.max_energy();
        cap.charge(10.0 * max);
        assert!((cap.energy() - max).get().abs() < 1e-18);
        assert!((cap.wasted() - 9.0 * max).get().abs() < 1e-15);
        assert!((cap.fill_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn leakage_is_exponential() {
        let mut cap = Capacitor::new(100e-6, 3.3, 10.0);
        cap.charge(cap.max_energy());
        let e0 = cap.energy();
        cap.leak(Seconds::new(10.0)); // one time constant
        assert!((cap.energy() / e0 - (-1.0_f64).exp()).abs() < 1e-9);
        assert!(cap.wasted() > Joules::ZERO);
    }

    #[test]
    fn voltage_tracks_energy() {
        let mut cap = Capacitor::new(1e-6, 2.0, 100.0);
        cap.charge(cap.max_energy());
        assert!((cap.voltage() - Volts::new(2.0)).get().abs() < 1e-9);
        let _ = cap.draw(cap.energy() * 0.75);
        assert!((cap.voltage() - Volts::new(1.0)).get().abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "capacitance must be positive")]
    fn zero_capacitance_rejected() {
        let _ = Capacitor::new(0.0, 3.3, 1.0);
    }

    /// The `direct` configuration must reproduce the raw rectifier →
    /// charge → leak path bit-for-bit: it is the NVP income path, and
    /// this is the units-migration pin — the typed chain must lower to
    /// exactly the pre-migration `f64` arithmetic.
    #[test]
    fn direct_front_end_matches_raw_path() {
        let r = Rectifier::default();
        let mut fe = EnergyFrontEnd::new(FrontEndConfig::direct(
            r,
            Farads::new(2.2e-6),
            Volts::new(3.3),
            Seconds::new(3600.0),
        ));
        let mut cap = Capacitor::new(2.2e-6, 3.3, 3600.0);
        let dt = 1e-4;
        for i in 0..2000 {
            let p = 2e-3 * (f64::from(i) / 2000.0);
            let income = fe.tick(Watts::new(p), Seconds::new(dt));
            let converted = r.output_w(p) * dt;
            cap.charge(Joules::new(converted));
            cap.leak(Seconds::new(dt));
            assert_eq!(income.converted.get().to_bits(), converted.to_bits());
            assert_eq!(income.harvested.get().to_bits(), (p * dt).to_bits());
            assert_eq!(fe.storage().energy_j().to_bits(), cap.energy_j().to_bits());
            assert_eq!(fe.storage().wasted_j().to_bits(), cap.wasted_j().to_bits());
        }
    }

    #[test]
    fn trickle_penalizes_weak_input() {
        let r = Rectifier::default();
        let direct_cfg =
            || FrontEndConfig::direct(r, Farads::new(100e-6), Volts::new(3.3), Seconds::new(200.0));
        let mut cfg = direct_cfg();
        cfg.min_charge_power = Watts::new(50e-6);
        cfg.trickle_efficiency = 0.15;
        let mut trickled = EnergyFrontEnd::new(cfg);
        let mut direct = EnergyFrontEnd::new(direct_cfg());
        // 30 µW input converts to well under 50 µW: the trickle applies.
        let a = trickled.tick(Watts::new(30e-6), Seconds::new(1e-4));
        let b = direct.tick(Watts::new(30e-6), Seconds::new(1e-4));
        assert!((a.converted - b.converted * 0.15).get().abs() < 1e-18);
        assert_eq!(a.harvested, b.harvested);
    }

    #[test]
    fn clip_limits_strong_input() {
        let r = Rectifier::default();
        let mut cfg =
            FrontEndConfig::direct(r, Farads::new(100e-6), Volts::new(3.3), Seconds::new(200.0));
        cfg.max_charge_power = Watts::new(150e-6);
        let mut fe = EnergyFrontEnd::new(cfg);
        // 2 mW input converts far above the 150 µW clip.
        let income = fe.tick(Watts::new(2e-3), Seconds::new(1e-4));
        assert!((income.converted - Watts::new(150e-6) * Seconds::new(1e-4)).get().abs() < 1e-18);
        assert!(income.harvested > income.converted);
    }
}
