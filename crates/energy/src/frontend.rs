//! Power-provisioning front end: rectifier and storage capacitor.

use serde::{Deserialize, Serialize};

/// AC-DC rectifier / power-conditioning efficiency model.
///
/// Conversion efficiency collapses at very low input power (diode drops
/// and controller overhead dominate), peaks in the hundreds-of-µW band a
/// wrist harvester actually delivers, and sags slightly at high power.
/// This is the loss mechanism that penalizes "charge a big capacitor
/// first" schemes: energy moved into and out of storage pays the
/// conversion tax twice.
///
/// # Example
///
/// ```
/// use nvp_energy::Rectifier;
///
/// let r = Rectifier::default();
/// assert!(r.efficiency(1e-6) < 0.5, "tiny inputs convert poorly");
/// assert!(r.efficiency(300e-6) > 0.7, "mid-band is efficient");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rectifier {
    /// Peak conversion efficiency (0–1).
    pub peak_efficiency: f64,
    /// Input power at which efficiency reaches half its peak, watts.
    pub knee_w: f64,
    /// Fractional efficiency droop per decade above the knee.
    pub high_power_droop: f64,
}

impl Default for Rectifier {
    fn default() -> Self {
        Rectifier { peak_efficiency: 0.82, knee_w: 8e-6, high_power_droop: 0.02 }
    }
}

impl Rectifier {
    /// Conversion efficiency at the given input power (0–1).
    #[must_use]
    pub fn efficiency(&self, input_w: f64) -> f64 {
        if input_w <= 0.0 {
            return 0.0;
        }
        // Saturating rise past the knee…
        let rise = input_w / (input_w + self.knee_w);
        // …with a gentle droop at high power.
        let decades_above = (input_w / (self.knee_w * 10.0)).max(1.0).log10();
        let droop = 1.0 - self.high_power_droop * decades_above;
        (self.peak_efficiency * rise * droop).clamp(0.0, 1.0)
    }

    /// Output (DC) power delivered for a given harvested input power.
    #[must_use]
    pub fn output_w(&self, input_w: f64) -> f64 {
        input_w * self.efficiency(input_w)
    }
}

/// An energy-storage capacitor tracked in the energy domain.
///
/// Capacity is `½·C·V²` at the rated voltage; leakage is exponential
/// self-discharge with time constant `leak_tau_s` (≈ `R_leak·C`). Small
/// on-chip backup capacitors have τ of hours; large supercapacitor ESDs
/// have τ of minutes-to-hours *and* waste charge every cycle — the core
/// energy trade-off between NVP and wait-then-compute platforms.
///
/// # Example
///
/// ```
/// use nvp_energy::Capacitor;
///
/// let mut cap = Capacitor::new(100e-9, 3.3, 3600.0); // 100 nF on-chip
/// let max = cap.max_energy_j();
/// cap.charge_j(2.0 * max); // overcharge clamps at capacity
/// assert!((cap.energy_j() - max).abs() < 1e-15);
/// assert!(cap.draw_j(max * 0.5));
/// assert!(!cap.draw_j(max), "cannot draw more than stored");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Capacitor {
    capacitance_f: f64,
    rated_voltage_v: f64,
    leak_tau_s: f64,
    energy_j: f64,
    wasted_j: f64,
}

impl Capacitor {
    /// Creates an empty capacitor.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive.
    #[must_use]
    pub fn new(capacitance_f: f64, rated_voltage_v: f64, leak_tau_s: f64) -> Self {
        assert!(capacitance_f > 0.0, "capacitance must be positive");
        assert!(rated_voltage_v > 0.0, "voltage must be positive");
        assert!(leak_tau_s > 0.0, "leakage time constant must be positive");
        Capacitor { capacitance_f, rated_voltage_v, leak_tau_s, energy_j: 0.0, wasted_j: 0.0 }
    }

    /// Capacitance in farads.
    #[must_use]
    pub fn capacitance_f(&self) -> f64 {
        self.capacitance_f
    }

    /// Maximum storable energy, `½CV²`, joules.
    #[must_use]
    pub fn max_energy_j(&self) -> f64 {
        0.5 * self.capacitance_f * self.rated_voltage_v * self.rated_voltage_v
    }

    /// Currently stored energy, joules.
    #[must_use]
    pub fn energy_j(&self) -> f64 {
        self.energy_j
    }

    /// Present terminal voltage implied by the stored energy.
    #[must_use]
    pub fn voltage_v(&self) -> f64 {
        (2.0 * self.energy_j / self.capacitance_f).sqrt()
    }

    /// Energy lost so far to leakage and overcharge spill, joules.
    #[must_use]
    pub fn wasted_j(&self) -> f64 {
        self.wasted_j
    }

    /// Adds harvested energy; overflow beyond capacity is spilled (and
    /// accounted as waste). Returns the energy actually stored.
    pub fn charge_j(&mut self, joules: f64) -> f64 {
        debug_assert!(joules >= 0.0);
        let room = self.max_energy_j() - self.energy_j;
        let stored = joules.min(room);
        self.energy_j += stored;
        self.wasted_j += joules - stored;
        stored
    }

    /// Draws `joules` if available; returns `false` (and leaves the store
    /// untouched) if there is not enough energy.
    #[must_use = "a failed draw means a power emergency"]
    pub fn draw_j(&mut self, joules: f64) -> bool {
        if joules <= self.energy_j {
            self.energy_j -= joules;
            true
        } else {
            false
        }
    }

    /// Draws up to `joules`, returning what was actually obtained
    /// (brown-out semantics).
    pub fn draw_up_to_j(&mut self, joules: f64) -> f64 {
        let got = joules.min(self.energy_j);
        self.energy_j -= got;
        got
    }

    /// Applies self-discharge over `dt_s` seconds.
    pub fn leak(&mut self, dt_s: f64) {
        let kept = (-dt_s / self.leak_tau_s).exp();
        let lost = self.energy_j * (1.0 - kept);
        self.energy_j -= lost;
        self.wasted_j += lost;
    }

    /// Empties the capacitor (deep discharge during a long outage).
    pub fn deplete(&mut self) {
        self.energy_j = 0.0;
    }

    /// Fraction of capacity currently filled (0–1).
    #[must_use]
    pub fn fill_fraction(&self) -> f64 {
        self.energy_j / self.max_energy_j()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectifier_curve_shape() {
        let r = Rectifier::default();
        assert_eq!(r.efficiency(0.0), 0.0);
        let e_small = r.efficiency(2e-6);
        let e_mid = r.efficiency(200e-6);
        assert!(e_small < e_mid, "{e_small} vs {e_mid}");
        assert!(e_mid <= r.peak_efficiency);
        // Monotone non-increasing far above the knee is allowed but mild.
        let e_high = r.efficiency(2e-3);
        assert!(e_high > 0.6 * r.peak_efficiency);
        // Output power is monotone in input power across the range.
        let mut prev = 0.0;
        for i in 1..100 {
            let p = 1e-6 * f64::from(i) * f64::from(i);
            let out = r.output_w(p);
            assert!(out >= prev, "output power must be monotone");
            prev = out;
        }
    }

    #[test]
    fn capacitor_energy_conservation() {
        let mut cap = Capacitor::new(10e-6, 3.3, 100.0);
        let stored = cap.charge_j(10e-6);
        assert!((stored - 10e-6).abs() < 1e-18);
        assert!(cap.draw_j(4e-6));
        assert!((cap.energy_j() - 6e-6).abs() < 1e-15);
        assert!(!cap.draw_j(7e-6), "insufficient draw must fail");
        assert!((cap.energy_j() - 6e-6).abs() < 1e-15, "failed draw must not change state");
        let got = cap.draw_up_to_j(100.0);
        assert!((got - 6e-6).abs() < 1e-15);
        assert_eq!(cap.energy_j(), 0.0);
    }

    #[test]
    fn overcharge_spills_to_waste() {
        let mut cap = Capacitor::new(1e-9, 1.0, 100.0);
        let max = cap.max_energy_j();
        cap.charge_j(10.0 * max);
        assert!((cap.energy_j() - max).abs() < 1e-18);
        assert!((cap.wasted_j() - 9.0 * max).abs() < 1e-15);
        assert!((cap.fill_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn leakage_is_exponential() {
        let mut cap = Capacitor::new(100e-6, 3.3, 10.0);
        cap.charge_j(cap.max_energy_j());
        let e0 = cap.energy_j();
        cap.leak(10.0); // one time constant
        assert!((cap.energy_j() / e0 - (-1.0_f64).exp()).abs() < 1e-9);
        assert!(cap.wasted_j() > 0.0);
    }

    #[test]
    fn voltage_tracks_energy() {
        let mut cap = Capacitor::new(1e-6, 2.0, 100.0);
        cap.charge_j(cap.max_energy_j());
        assert!((cap.voltage_v() - 2.0).abs() < 1e-9);
        let _ = cap.draw_j(cap.energy_j() * 0.75);
        assert!((cap.voltage_v() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "capacitance must be positive")]
    fn zero_capacitance_rejected() {
        let _ = Capacitor::new(0.0, 3.3, 1.0);
    }
}
