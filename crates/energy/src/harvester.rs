//! Seeded synthetic harvester-trace generators.
//!
//! The published NVP studies evaluate against measured traces from four
//! ambient source classes; those waveforms are not redistributable, so
//! this module synthesizes traces whose *statistics* match the published
//! envelopes (the substitution is documented in `DESIGN.md`):
//!
//! | Source | Character | Published envelope reproduced |
//! |--------|-----------|-------------------------------|
//! | [`wrist_watch`] | unbalanced-ring rotational harvester | 10–40 µW average, spikes to ≈2000 µW, 1000–2000 emergencies / 10 s at 33 µW |
//! | [`solar_indoor`] | indoor photovoltaic | hundreds of µW with second-scale shadow outages |
//! | [`rf_wifi`] | RF/WiFi scavenging | ms-scale packet bursts, very frequent short outages |
//! | [`thermal_body`] | body-heat TEG | tens of µW, slow drift, long sub-threshold epochs |
//!
//! All generators are deterministic functions of `(seed, duration)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{PowerTrace, DEFAULT_DT_S};

/// The ambient energy-source classes evaluated by the framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SourceKind {
    /// Wrist-worn rotational (piezo/electromagnetic) harvester.
    WristWatch,
    /// Indoor photovoltaic cell.
    SolarIndoor,
    /// RF / WiFi energy scavenging.
    RfWifi,
    /// Body-heat thermoelectric generator.
    ThermalBody,
}

impl SourceKind {
    /// All source kinds in reporting order.
    pub const ALL: [SourceKind; 4] = [
        SourceKind::WristWatch,
        SourceKind::SolarIndoor,
        SourceKind::RfWifi,
        SourceKind::ThermalBody,
    ];

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SourceKind::WristWatch => "wrist-watch",
            SourceKind::SolarIndoor => "solar-indoor",
            SourceKind::RfWifi => "rf-wifi",
            SourceKind::ThermalBody => "thermal-body",
        }
    }

    /// Generates a trace of this source class.
    #[must_use]
    pub fn generate(self, seed: u64, duration_s: f64) -> PowerTrace {
        match self {
            SourceKind::WristWatch => wrist_watch(seed, duration_s),
            SourceKind::SolarIndoor => solar_indoor(seed, duration_s),
            SourceKind::RfWifi => rf_wifi(seed, duration_s),
            SourceKind::ThermalBody => thermal_body(seed, duration_s),
        }
    }
}

impl std::fmt::Display for SourceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn exp_sample<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    // Inverse-CDF sampling; `random` is in [0, 1), so 1-u is in (0, 1].
    -mean * (1.0 - rng.random::<f64>()).ln()
}

fn lognormal_sample<R: Rng + ?Sized>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    // Box-Muller for one standard normal.
    let u1: f64 = (1.0 - rng.random::<f64>()).max(1e-12);
    let u2: f64 = rng.random();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    median * (sigma * z).exp()
}

/// Synthesizes a wrist-worn rotational-harvester ("watch") trace.
///
/// Activity comes in bursts (arm swings pluck the unbalanced ring, which
/// then rings down): active/idle epochs alternate with sub-second
/// durations, and within an active epoch the output is a train of
/// half-sine pulses of ms-scale width separated by ms-scale gaps.
///
/// # Example
///
/// ```
/// let t = nvp_energy::harvester::wrist_watch(3, 5.0);
/// let avg = t.average_w();
/// assert!(avg > 5e-6 && avg < 60e-6, "published envelope is 10-40 µW, got {avg}");
/// ```
#[must_use]
pub fn wrist_watch(seed: u64, duration_s: f64) -> PowerTrace {
    let dt = DEFAULT_DT_S;
    let n = (duration_s / dt).round() as usize;
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1));
    // Per-wearer activity scaling differentiates the five "profiles".
    let vigor = 0.7 + 0.6 * rng.random::<f64>();

    let mut samples = Vec::with_capacity(n);
    let mut active = rng.random::<f64>() < 0.5;
    let mut epoch_left = exp_sample(&mut rng, if active { 0.6 } else { 0.9 });
    // Pulse state within an active epoch.
    let mut in_pulse = false;
    let mut pulse_left = 0.0;
    let mut pulse_total = 1.0;
    let mut pulse_amp = 0.0;

    for _ in 0..n {
        if epoch_left <= 0.0 {
            active = !active;
            epoch_left = exp_sample(&mut rng, if active { 0.6 } else { 0.9 });
            in_pulse = false;
            pulse_left = 0.0;
        }
        epoch_left -= dt;

        let p = if active {
            if pulse_left <= 0.0 {
                if in_pulse {
                    // Enter a gap.
                    in_pulse = false;
                    pulse_left = exp_sample(&mut rng, 2.5e-3).max(0.5e-3);
                } else {
                    // Start a new pulse.
                    in_pulse = true;
                    pulse_total = exp_sample(&mut rng, 1.5e-3).max(0.6e-3);
                    pulse_left = pulse_total;
                    pulse_amp =
                        (lognormal_sample(&mut rng, 200e-6 * vigor, 0.8)).clamp(20e-6, 2.2e-3);
                }
            }
            pulse_left -= dt;
            if in_pulse {
                let phase = 1.0 - (pulse_left / pulse_total).clamp(0.0, 1.0);
                pulse_amp * (std::f64::consts::PI * phase).sin().max(0.0)
            } else {
                rng.random::<f64>() * 8e-6
            }
        } else {
            rng.random::<f64>() * 6e-6
        };
        samples.push(p);
    }
    PowerTrace::from_samples(dt, samples)
}

/// Synthesizes an indoor-solar trace: a slowly wandering baseline of
/// hundreds of µW with occasional second-scale shadow events.
#[must_use]
pub fn solar_indoor(seed: u64, duration_s: f64) -> PowerTrace {
    let dt = DEFAULT_DT_S;
    let n = (duration_s / dt).round() as usize;
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xD134_2543_DE82_EF95).wrapping_add(2));
    let mut base = 150e-6 + 250e-6 * rng.random::<f64>();
    let mut shadow_left = 0.0_f64;
    let mut until_shadow = exp_sample(&mut rng, 4.0);
    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        // Ornstein-Uhlenbeck-style wander of the illumination baseline.
        let target = 300e-6;
        base += (target - base) * dt / 5.0 + 4e-6 * (rng.random::<f64>() - 0.5);
        base = base.clamp(40e-6, 800e-6);
        if shadow_left > 0.0 {
            shadow_left -= dt;
            samples.push(base * 0.02 + rng.random::<f64>() * 2e-6);
        } else {
            until_shadow -= dt;
            if until_shadow <= 0.0 {
                shadow_left = exp_sample(&mut rng, 0.5).max(0.05);
                until_shadow = exp_sample(&mut rng, 4.0);
            }
            samples.push(base + rng.random::<f64>() * 10e-6);
        }
    }
    PowerTrace::from_samples(dt, samples)
}

/// Synthesizes an RF/WiFi scavenging trace: ms-scale packet bursts well
/// above threshold separated by near-zero idle gaps.
#[must_use]
pub fn rf_wifi(seed: u64, duration_s: f64) -> PowerTrace {
    let dt = DEFAULT_DT_S;
    let n = (duration_s / dt).round() as usize;
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xA076_1D64_78BD_642F).wrapping_add(3));
    let mut in_burst = false;
    let mut left = exp_sample(&mut rng, 8e-3);
    let mut amp = 0.0;
    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        if left <= 0.0 {
            in_burst = !in_burst;
            if in_burst {
                left = exp_sample(&mut rng, 3e-3).max(0.3e-3);
                amp = 60e-6 + 160e-6 * rng.random::<f64>();
            } else {
                left = exp_sample(&mut rng, 8e-3).max(0.5e-3);
            }
        }
        left -= dt;
        samples.push(if in_burst {
            amp * (0.85 + 0.3 * rng.random::<f64>())
        } else {
            rng.random::<f64>() * 4e-6
        });
    }
    PowerTrace::from_samples(dt, samples)
}

/// Synthesizes a body-heat thermoelectric trace: tens of µW with slow
/// drift, crossing the operating threshold on second-to-minute scales.
#[must_use]
pub fn thermal_body(seed: u64, duration_s: f64) -> PowerTrace {
    let dt = DEFAULT_DT_S;
    let n = (duration_s / dt).round() as usize;
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(4));
    let period = 8.0 + 10.0 * rng.random::<f64>();
    let phase0 = rng.random::<f64>() * std::f64::consts::TAU;
    let mean = 30e-6 + 8e-6 * rng.random::<f64>();
    let swing = 14e-6 + 6e-6 * rng.random::<f64>();
    let mut samples = Vec::with_capacity(n);
    // Slow (low-passed) noise so the trace crosses thresholds on the
    // sinusoid's timescale, not per-sample: TEG output has no fast jitter.
    let mut drift = 0.0_f64;
    for i in 0..n {
        let t = i as f64 * dt;
        drift += (-drift) * dt / 0.5 + 0.05e-6 * (rng.random::<f64>() - 0.5);
        let p = mean + swing * (std::f64::consts::TAU * t / period + phase0).sin() + drift;
        samples.push(p.max(0.0));
    }
    PowerTrace::from_samples(dt, samples)
}

/// The five standard "watch in daily life" profiles (seeds 1–5) used
/// throughout the evaluation, each 10 s long by default.
#[must_use]
pub fn watch_profiles(duration_s: f64) -> Vec<PowerTrace> {
    (1..=5).map(|seed| wrist_watch(seed, duration_s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OutageStats, OPERATING_THRESHOLD_W};

    #[test]
    fn generators_are_deterministic() {
        for kind in SourceKind::ALL {
            let a = kind.generate(7, 1.0);
            let b = kind.generate(7, 1.0);
            assert_eq!(a, b, "{kind}");
            let c = kind.generate(8, 1.0);
            assert_ne!(a, c, "{kind} must vary with seed");
        }
    }

    #[test]
    fn watch_matches_published_envelope() {
        for seed in 1..=5 {
            let t = wrist_watch(seed, 10.0);
            let avg = t.average_w();
            assert!(avg > 8e-6 && avg < 60e-6, "seed {seed}: avg {avg}");
            assert!(t.peak_w() > 500e-6, "seed {seed}: peak {}", t.peak_w());
            assert!(t.peak_w() <= 2.2e-3, "seed {seed}: peak {}", t.peak_w());
            let s = OutageStats::analyze(&t, OPERATING_THRESHOLD_W);
            let per10 = s.emergencies_per_10s(t.duration_s());
            assert!(
                (500.0..2500.0).contains(&per10),
                "seed {seed}: {per10} emergencies/10s (published: 1000-2000)"
            );
        }
    }

    #[test]
    fn watch_outages_are_ms_scale() {
        let t = wrist_watch(2, 10.0);
        let s = OutageStats::analyze(&t, OPERATING_THRESHOLD_W);
        assert!(s.mean_outage_s > 1e-3 && s.mean_outage_s < 0.5, "{}", s.mean_outage_s);
        assert!(s.longest_outage_s < 10.0);
    }

    #[test]
    fn solar_is_strong_with_rare_outages() {
        let t = solar_indoor(1, 10.0);
        assert!(t.average_w() > 100e-6);
        let s = OutageStats::analyze(&t, OPERATING_THRESHOLD_W);
        let per10 = s.emergencies_per_10s(t.duration_s());
        assert!(per10 < 50.0, "solar emergencies should be rare: {per10}");
    }

    #[test]
    fn rf_has_very_frequent_short_outages() {
        let t = rf_wifi(1, 10.0);
        let s = OutageStats::analyze(&t, OPERATING_THRESHOLD_W);
        let per10 = s.emergencies_per_10s(t.duration_s());
        assert!(per10 > 400.0, "rf emergencies: {per10}");
        assert!(s.mean_outage_s < 0.05, "{}", s.mean_outage_s);
    }

    #[test]
    fn thermal_is_weak_and_slow() {
        let t = thermal_body(1, 30.0);
        let avg = t.average_w();
        assert!(avg > 15e-6 && avg < 55e-6, "{avg}");
        assert!(t.peak_w() < 80e-6);
        let s = OutageStats::analyze(&t, OPERATING_THRESHOLD_W);
        // Slow sinusoid: few crossings, second-scale outages.
        assert!(s.emergency_count < 40, "{}", s.emergency_count);
        if !s.outage_durations_s.is_empty() {
            assert!(s.longest_outage_s > 0.5);
        }
    }

    #[test]
    fn five_profiles_differ() {
        let profiles = watch_profiles(2.0);
        assert_eq!(profiles.len(), 5);
        for i in 0..5 {
            for j in (i + 1)..5 {
                assert_ne!(profiles[i], profiles[j]);
            }
        }
    }
}
