//! # nvp-energy — the energy-harvesting environment
//!
//! Models everything *upstream* of the nonvolatile processor:
//!
//! * [`PowerTrace`] — harvested input power sampled at a fixed period
//!   (0.1 ms in the published NVP frameworks), with CSV import/export,
//! * [`harvester`] — seeded synthetic generators for the four ambient
//!   source classes the NVP literature evaluates (wrist-worn rotational /
//!   piezo, indoor solar, RF, body-thermal), calibrated to the published
//!   envelope: 10–40 µW averages, spikes to ~2000 µW, and 1000–2000
//!   sub-threshold emergencies per 10 s window at a 33 µW operating
//!   threshold,
//! * [`OutageStats`] — outage-duration and power-emergency statistics
//!   (figure F2 of the reconstructed evaluation),
//! * [`Rectifier`] and [`Capacitor`] — the AC-DC conversion-efficiency
//!   curve and the energy-storage device with leakage, whose sizing
//!   trade-off is the heart of the NVP-vs-wait-compute comparison,
//! * [`EnergyFrontEnd`] — the complete per-tick income path (rectifier →
//!   trickle/clip options → capacitor charge + leak) shared by every
//!   simulated platform, configured by a [`FrontEndConfig`],
//! * [`units`] — dimensional newtypes ([`Joules`], [`Watts`], [`Volts`],
//!   [`Farads`], [`Seconds`]) that make unit slips in the accounting
//!   engine compile errors while staying bit-exact with raw `f64`.
//!
//! ## Example
//!
//! ```
//! use nvp_energy::{harvester, OutageStats};
//!
//! let trace = harvester::wrist_watch(1, 10.0);
//! assert_eq!(trace.len(), 100_000); // 10 s at 0.1 ms
//! let stats = OutageStats::analyze(&trace, 33e-6);
//! assert!(stats.emergency_count > 500, "wearable traces are turbulent");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod frontend;
pub mod harvester;
mod stats;
mod trace;
pub mod units;

pub use frontend::{Capacitor, EnergyFrontEnd, FrontEndConfig, Rectifier, TickIncome};
pub use stats::{Histogram, OutageStats};
pub use trace::{PowerTrace, TraceError};
pub use units::{Farads, Joules, Seconds, Volts, Watts};

/// The sampling period used throughout the published NVP frameworks (0.1 ms).
pub const DEFAULT_DT_S: f64 = 1e-4;

/// The processor operating threshold the survey's statistics assume (33 µW).
pub const OPERATING_THRESHOLD_W: f64 = 33e-6;
