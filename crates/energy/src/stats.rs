//! Outage-duration and power-emergency statistics.

use serde::{Deserialize, Serialize};

use crate::PowerTrace;

/// A simple fixed-bin histogram over outage durations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Inclusive lower edge of each bin, seconds.
    pub bin_edges_s: Vec<f64>,
    /// Outage count per bin (`counts.len() == bin_edges_s.len()`); the
    /// final bin is open-ended.
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Builds a histogram of `values` over `n` equal-width bins spanning
    /// `[0, max(values)]`.
    #[must_use]
    pub fn of(values: &[f64], n: usize) -> Histogram {
        let n = n.max(1);
        let max = values.iter().copied().fold(0.0_f64, f64::max).max(f64::MIN_POSITIVE);
        let width = max / n as f64;
        let mut counts = vec![0u64; n];
        for &v in values {
            let bin = ((v / width) as usize).min(n - 1);
            counts[bin] += 1;
        }
        Histogram { bin_edges_s: (0..n).map(|i| i as f64 * width).collect(), counts }
    }

    /// Total number of counted values.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Statistics of sub-threshold intervals ("power emergencies") in a trace.
///
/// An *emergency* begins on a falling edge through the threshold; its
/// *outage duration* runs until power recovers. This reproduces the
/// outage-duration/frequency analysis (figure F2) whose published envelope
/// is 1000–2000 emergencies per 10 s on wrist-harvester traces at 33 µW.
///
/// # Example
///
/// ```
/// use nvp_energy::{OutageStats, PowerTrace};
///
/// let t = PowerTrace::from_segments(1e-4, &[
///     (100e-6, 0.010), (0.0, 0.003), (50e-6, 0.005), (10e-6, 0.002),
/// ]);
/// let s = OutageStats::analyze(&t, 33e-6);
/// assert_eq!(s.emergency_count, 2);
/// assert!((s.longest_outage_s - 0.003).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutageStats {
    /// Threshold used, watts.
    pub threshold_w: f64,
    /// Number of falling-edge crossings (power emergencies).
    pub emergency_count: u64,
    /// Every outage duration, seconds, in order of occurrence.
    pub outage_durations_s: Vec<f64>,
    /// Longest single outage, seconds.
    pub longest_outage_s: f64,
    /// Mean outage duration, seconds (0 if none).
    pub mean_outage_s: f64,
    /// Fraction of trace time spent at or above the threshold.
    pub above_threshold_fraction: f64,
}

impl OutageStats {
    /// Analyzes a trace against an operating-power threshold.
    #[must_use]
    pub fn analyze(trace: &PowerTrace, threshold_w: f64) -> OutageStats {
        let dt = trace.dt_s();
        let mut outages = Vec::new();
        let mut current: Option<u64> = None;
        let mut above_samples: u64 = 0;
        for &p in trace.samples() {
            if p >= threshold_w {
                above_samples += 1;
                if let Some(n) = current.take() {
                    outages.push(n as f64 * dt);
                }
            } else {
                current = Some(current.unwrap_or(0) + 1);
            }
        }
        if let Some(n) = current {
            outages.push(n as f64 * dt);
        }
        // Only count *emergencies* — falling edges. A trace that starts
        // below threshold has an initial outage but no falling edge.
        let starts_low = trace.samples().first().is_some_and(|&p| p < threshold_w);
        let emergency_count = outages.len() as u64 - u64::from(starts_low && !outages.is_empty());
        let longest = outages.iter().copied().fold(0.0, f64::max);
        let mean = if outages.is_empty() {
            0.0
        } else {
            outages.iter().sum::<f64>() / outages.len() as f64
        };
        let above_fraction =
            if trace.is_empty() { 0.0 } else { above_samples as f64 / trace.len() as f64 };
        OutageStats {
            threshold_w,
            emergency_count,
            outage_durations_s: outages,
            longest_outage_s: longest,
            mean_outage_s: mean,
            above_threshold_fraction: above_fraction,
        }
    }

    /// Emergencies normalized to a 10-second window (the survey's unit).
    #[must_use]
    pub fn emergencies_per_10s(&self, trace_duration_s: f64) -> f64 {
        if trace_duration_s <= 0.0 {
            return 0.0;
        }
        self.emergency_count as f64 * 10.0 / trace_duration_s
    }

    /// Histogram of outage durations over `n` bins.
    #[must_use]
    pub fn histogram(&self, n: usize) -> Histogram {
        Histogram::of(&self.outage_durations_s, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_edges_not_initial_low() {
        // Starts low: the initial outage is not an emergency.
        let t = PowerTrace::from_segments(1e-3, &[(0.0, 0.01), (1e-3, 0.01), (0.0, 0.01)]);
        let s = OutageStats::analyze(&t, 33e-6);
        assert_eq!(s.emergency_count, 1);
        assert_eq!(s.outage_durations_s.len(), 2);
    }

    #[test]
    fn all_above_no_outage() {
        let t = PowerTrace::constant(1e-4, 1e-3, 0.1);
        let s = OutageStats::analyze(&t, 33e-6);
        assert_eq!(s.emergency_count, 0);
        assert!(s.outage_durations_s.is_empty());
        assert_eq!(s.above_threshold_fraction, 1.0);
        assert_eq!(s.mean_outage_s, 0.0);
    }

    #[test]
    fn all_below_is_one_long_outage() {
        let t = PowerTrace::constant(1e-4, 1e-6, 0.1);
        let s = OutageStats::analyze(&t, 33e-6);
        assert_eq!(s.emergency_count, 0, "no falling edge");
        assert_eq!(s.outage_durations_s.len(), 1);
        assert!((s.longest_outage_s - 0.1).abs() < 1e-9);
        assert_eq!(s.above_threshold_fraction, 0.0);
    }

    #[test]
    fn per_10s_normalization() {
        let t = PowerTrace::from_segments(
            1e-4,
            &[(1e-3, 0.1), (0.0, 0.1), (1e-3, 0.1), (0.0, 0.1), (1e-3, 0.1)],
        );
        let s = OutageStats::analyze(&t, 33e-6);
        assert_eq!(s.emergency_count, 2);
        assert!((s.emergencies_per_10s(t.duration_s()) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_bins_sum() {
        let values = [0.001, 0.002, 0.010, 0.020, 0.020];
        let h = Histogram::of(&values, 4);
        assert_eq!(h.total(), 5);
        assert_eq!(h.counts.len(), 4);
        assert_eq!(h.bin_edges_s.len(), 4);
        // Max value lands in the last bin.
        assert!(h.counts[3] >= 2);
    }

    #[test]
    fn histogram_of_empty() {
        let h = Histogram::of(&[], 8);
        assert_eq!(h.total(), 0);
    }
}
