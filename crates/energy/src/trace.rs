//! Sampled harvested-power traces.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Error returned when parsing a CSV trace fails: the 1-based line and
/// the offending CSV field, so a bad row in a long measured trace can be
/// found and fixed without bisecting the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    line: usize,
    field: &'static str,
    msg: String,
}

impl TraceError {
    fn new(line: usize, field: &'static str, msg: impl Into<String>) -> Self {
        TraceError { line, field, msg: msg.into() }
    }

    /// 1-based line of the offending record.
    #[must_use]
    pub fn line(&self) -> usize {
        self.line
    }

    /// The CSV field the error is about: `"time_s"`, `"power_w"`, or
    /// `"row"` for whole-record problems (e.g. an empty file).
    #[must_use]
    pub fn field(&self) -> &'static str {
        self.field
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}, field `{}`: {}", self.line, self.field, self.msg)
    }
}

impl std::error::Error for TraceError {}

/// A harvested-power trace: input power in watts, sampled every `dt_s`.
///
/// # Example
///
/// ```
/// use nvp_energy::PowerTrace;
///
/// let t = PowerTrace::from_samples(1e-4, vec![10e-6, 20e-6, 0.0, 40e-6]);
/// assert_eq!(t.len(), 4);
/// assert!((t.duration_s() - 4e-4).abs() < 1e-12);
/// assert!((t.average_w() - 17.5e-6).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerTrace {
    dt_s: f64,
    samples: Vec<f64>,
}

impl PowerTrace {
    /// Creates a trace from raw samples.
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` is not positive or any sample is negative/NaN.
    #[must_use]
    pub fn from_samples(dt_s: f64, samples: Vec<f64>) -> Self {
        assert!(dt_s > 0.0, "sample period must be positive");
        assert!(
            samples.iter().all(|p| p.is_finite() && *p >= 0.0),
            "power samples must be finite and non-negative"
        );
        PowerTrace { dt_s, samples }
    }

    /// Creates a constant-power trace of the given duration.
    #[must_use]
    pub fn constant(dt_s: f64, power_w: f64, duration_s: f64) -> Self {
        let n = (duration_s / dt_s).round() as usize;
        Self::from_samples(dt_s, vec![power_w; n])
    }

    /// Builds a trace from `(power_w, duration_s)` segments.
    ///
    /// # Example
    ///
    /// ```
    /// use nvp_energy::PowerTrace;
    /// let t = PowerTrace::from_segments(1e-3, &[(100e-6, 0.01), (0.0, 0.005)]);
    /// assert_eq!(t.len(), 15);
    /// ```
    #[must_use]
    pub fn from_segments(dt_s: f64, segments: &[(f64, f64)]) -> Self {
        let mut samples = Vec::new();
        for &(power, duration) in segments {
            let n = (duration / dt_s).round() as usize;
            samples.extend(std::iter::repeat_n(power, n));
        }
        Self::from_samples(dt_s, samples)
    }

    /// The sampling period in seconds.
    #[must_use]
    pub fn dt_s(&self) -> f64 {
        self.dt_s
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if the trace has no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total duration in seconds.
    #[must_use]
    pub fn duration_s(&self) -> f64 {
        self.dt_s * self.samples.len() as f64
    }

    /// The raw samples, watts.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Power at sample index `i`, or 0 beyond the end.
    #[must_use]
    pub fn power_at(&self, i: usize) -> f64 {
        self.samples.get(i).copied().unwrap_or(0.0)
    }

    /// Mean power over the whole trace, watts.
    #[must_use]
    pub fn average_w(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Peak power, watts.
    #[must_use]
    pub fn peak_w(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// Total harvested energy over the trace, joules (before conversion
    /// losses).
    #[must_use]
    pub fn total_energy_j(&self) -> f64 {
        self.samples.iter().sum::<f64>() * self.dt_s
    }

    /// Serializes as two-column CSV (`time_s,power_w`) with a header row.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.samples.len() * 16 + 16);
        out.push_str("time_s,power_w\n");
        for (i, p) in self.samples.iter().enumerate() {
            use fmt::Write;
            writeln!(out, "{:.6},{:.9}", i as f64 * self.dt_s, p).expect("write to String");
        }
        out
    }

    /// Parses the CSV produced by [`to_csv`](Self::to_csv).
    ///
    /// The sample period is inferred from the first two timestamps; a
    /// single-sample trace uses `dt_s = 1e-4`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] on malformed rows or negative power.
    pub fn from_csv(text: &str) -> Result<Self, TraceError> {
        let mut times = Vec::new();
        let mut powers = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || (i == 0 && line.starts_with("time")) {
                continue;
            }
            let mut cols = line.split(',');
            let t: f64 = cols
                .next()
                .ok_or_else(|| TraceError::new(i + 1, "time_s", "missing time column"))?
                .trim()
                .parse()
                .map_err(|e| TraceError::new(i + 1, "time_s", format!("bad time: {e}")))?;
            let p: f64 = cols
                .next()
                .ok_or_else(|| TraceError::new(i + 1, "power_w", "missing power column"))?
                .trim()
                .parse()
                .map_err(|e| TraceError::new(i + 1, "power_w", format!("bad power: {e}")))?;
            if !p.is_finite() || p < 0.0 {
                return Err(TraceError::new(i + 1, "power_w", format!("invalid power {p}")));
            }
            times.push(t);
            powers.push(p);
        }
        if powers.is_empty() {
            return Err(TraceError::new(1, "row", "no samples"));
        }
        let dt = if times.len() >= 2 { (times[1] - times[0]).abs() } else { 1e-4 };
        if dt <= 0.0 {
            return Err(TraceError::new(2, "time_s", "non-increasing timestamps"));
        }
        Ok(PowerTrace { dt_s: dt, samples: powers })
    }

    /// Returns a sub-trace covering `[start_s, start_s + duration_s)`.
    #[must_use]
    pub fn slice(&self, start_s: f64, duration_s: f64) -> PowerTrace {
        let from = ((start_s / self.dt_s).round() as usize).min(self.samples.len());
        let to = (((start_s + duration_s) / self.dt_s).round() as usize).min(self.samples.len());
        PowerTrace { dt_s: self.dt_s, samples: self.samples[from..to].to_vec() }
    }

    /// Returns the trace with every sample scaled by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> PowerTrace {
        assert!(factor >= 0.0, "scale factor must be non-negative");
        PowerTrace { dt_s: self.dt_s, samples: self.samples.iter().map(|p| p * factor).collect() }
    }

    /// Returns this trace followed by `other`.
    ///
    /// # Panics
    ///
    /// Panics if the sample periods differ.
    #[must_use]
    pub fn concat(&self, other: &PowerTrace) -> PowerTrace {
        assert!(
            (self.dt_s - other.dt_s).abs() < 1e-15,
            "cannot concatenate traces with different sample periods"
        );
        let mut samples = self.samples.clone();
        samples.extend_from_slice(&other.samples);
        PowerTrace { dt_s: self.dt_s, samples }
    }

    /// Returns the trace repeated `n` times back to back (e.g. looping a
    /// 10 s measurement into a minutes-long scenario).
    #[must_use]
    pub fn repeated(&self, n: usize) -> PowerTrace {
        let mut samples = Vec::with_capacity(self.samples.len() * n);
        for _ in 0..n {
            samples.extend_from_slice(&self.samples);
        }
        PowerTrace { dt_s: self.dt_s, samples }
    }

    /// Returns the trace with a constant power `offset_w` added to every
    /// sample (e.g. modelling a secondary always-on source).
    ///
    /// # Panics
    ///
    /// Panics if the offset would make any sample negative.
    #[must_use]
    pub fn with_offset(&self, offset_w: f64) -> PowerTrace {
        let samples: Vec<f64> = self.samples.iter().map(|p| p + offset_w).collect();
        assert!(samples.iter().all(|p| *p >= 0.0), "offset must not make power negative");
        PowerTrace { dt_s: self.dt_s, samples }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_and_metrics() {
        let t = PowerTrace::from_segments(1e-4, &[(100e-6, 0.01), (0.0, 0.01)]);
        assert_eq!(t.len(), 200);
        assert!((t.average_w() - 50e-6).abs() < 1e-12);
        assert!((t.peak_w() - 100e-6).abs() < 1e-15);
        assert!((t.total_energy_j() - 100e-6 * 0.01).abs() < 1e-12);
    }

    #[test]
    fn csv_round_trip() {
        let t = PowerTrace::from_samples(1e-4, vec![1e-6, 2e-6, 0.0, 1.5e-3]);
        let parsed = PowerTrace::from_csv(&t.to_csv()).unwrap();
        assert_eq!(parsed.len(), t.len());
        assert!((parsed.dt_s() - t.dt_s()).abs() < 1e-12);
        for (a, b) in parsed.samples().iter().zip(t.samples()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(PowerTrace::from_csv("").is_err());
        assert!(PowerTrace::from_csv("time_s,power_w\n0.0,abc").is_err());
        assert!(PowerTrace::from_csv("0.0,-1.0").is_err());
    }

    #[test]
    fn csv_errors_pinpoint_line_and_field() {
        // Bad power value on (1-based) line 3, in the power column.
        let e = PowerTrace::from_csv("time_s,power_w\n0.0,1e-6\n0.0001,abc").unwrap_err();
        assert_eq!(e.line(), 3);
        assert_eq!(e.field(), "power_w");
        assert!(e.to_string().contains("line 3"), "{e}");
        assert!(e.to_string().contains("power_w"), "{e}");

        // Unparsable timestamp on line 2, time column.
        let e = PowerTrace::from_csv("time_s,power_w\nxyz,1e-6").unwrap_err();
        assert_eq!((e.line(), e.field()), (2, "time_s"));

        // A row missing the power column entirely.
        let e = PowerTrace::from_csv("time_s,power_w\n0.0").unwrap_err();
        assert_eq!((e.line(), e.field()), (2, "power_w"));

        // Negative power is rejected with the value in the message.
        let e = PowerTrace::from_csv("time_s,power_w\n0.0,-1.0").unwrap_err();
        assert_eq!((e.line(), e.field()), (2, "power_w"));
        assert!(e.to_string().contains("-1"), "{e}");

        // An empty file is a whole-record problem.
        let e = PowerTrace::from_csv("time_s,power_w\n").unwrap_err();
        assert_eq!((e.line(), e.field()), (1, "row"));

        // Duplicate timestamps make dt non-positive.
        let e = PowerTrace::from_csv("time_s,power_w\n0.0,1e-6\n0.0,1e-6").unwrap_err();
        assert_eq!((e.line(), e.field()), (2, "time_s"));
    }

    #[test]
    fn slice_extracts_window() {
        let t = PowerTrace::from_segments(1e-3, &[(1.0, 0.01), (2.0, 0.01)]);
        let s = t.slice(0.008, 0.004);
        assert_eq!(s.len(), 4);
        assert_eq!(s.samples(), &[1.0, 1.0, 2.0, 2.0]);
        // Out-of-range slice clamps.
        assert_eq!(t.slice(1.0, 1.0).len(), 0);
    }

    #[test]
    fn scaled_multiplies() {
        let t = PowerTrace::from_samples(1e-4, vec![1e-6, 3e-6]);
        let s = t.scaled(2.0);
        assert_eq!(s.samples(), &[2e-6, 6e-6]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_scale_panics() {
        let _ = PowerTrace::from_samples(1e-4, vec![1e-6]).scaled(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_sample_panics() {
        let _ = PowerTrace::from_samples(1e-4, vec![-1.0]);
    }
}
