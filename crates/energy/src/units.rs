//! Dimensional newtypes for the energy domain.
//!
//! Every quantity the simulators account for — stored charge, harvested
//! power, capacitor sizing, trace timing — is a bare `f64` at the I/O
//! boundary (CSV artifacts, config structs swept by studies) but flows
//! through the accounting engine as one of these five newtypes. The
//! arithmetic that is physically meaningful is implemented as operator
//! overloads that *change* the unit ([`Watts`] × [`Seconds`] →
//! [`Joules`]); everything else is a compile error, which is what turns
//! a `backup_energy + restore_time` slip from a silently-wrong artifact
//! into a type error.
//!
//! The wrappers are `#[repr(transparent)]` over `f64` and every
//! operation lowers to exactly one IEEE-754 operation on the inner
//! value, in the same order as the expression it replaced — the
//! migration is pinned bit-exact (`f64::to_bits`) by the golden digest
//! test and by this module's `typed_ops_are_bit_exact_vs_raw_f64` test.
//!
//! # Example
//!
//! ```
//! use nvp_energy::units::{Farads, Joules, Seconds, Volts, Watts};
//!
//! let cap = Farads::new(2.2e-6);
//! let full: Joules = cap.energy_at(Volts::new(3.3)); // ½CV²
//! let income: Joules = Watts::new(300e-6) * Seconds::new(0.01);
//! assert!(income < full);
//! let rate: Watts = income / Seconds::new(0.01);
//! assert!((rate.get() - 300e-6).abs() < 1e-12);
//! ```

use serde::{Deserialize, Serialize};

/// Implements the shared single-unit surface: constructors, accessors,
/// same-unit arithmetic, scalar scaling, and ordering helpers.
macro_rules! unit {
    ($(#[$doc:meta])* $name:ident, $sym:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
        #[repr(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// Wraps a raw magnitude in base SI units.
            #[must_use]
            pub const fn new(value: f64) -> Self {
                $name(value)
            }

            /// The raw magnitude in base SI units — the untyped escape
            /// hatch for formatting and config boundaries.
            #[must_use]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// The larger of two quantities.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                $name(self.0.max(other.0))
            }

            /// The smaller of two quantities.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                $name(self.0.min(other.0))
            }

            /// Magnitude (absolute value).
            #[must_use]
            pub fn abs(self) -> Self {
                $name(self.0.abs())
            }

            /// `true` if the magnitude is neither infinite nor NaN.
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Subtraction that refuses to go negative: `None` when
            /// `other` exceeds `self` (e.g. a draw from an emptier
            /// store), `Some(self - other)` otherwise.
            #[must_use]
            pub fn checked_sub(self, other: Self) -> Option<Self> {
                if other.0 <= self.0 {
                    Some($name(self.0 - other.0))
                } else {
                    None
                }
            }
        }

        impl std::ops::Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl std::ops::Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl std::ops::Neg for $name {
            type Output = $name;
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl std::ops::AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl std::ops::SubAssign for $name {
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl std::ops::Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl std::ops::Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl std::ops::Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        /// Ratio of two like quantities is dimensionless.
        impl std::ops::Div<$name> for $name {
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{} {}", self.0, $sym)
            }
        }
    };
}

unit!(
    /// An amount of energy, joules.
    Joules,
    "J"
);
unit!(
    /// A power level, watts.
    Watts,
    "W"
);
unit!(
    /// An electric potential, volts.
    Volts,
    "V"
);
unit!(
    /// A capacitance, farads.
    Farads,
    "F"
);
unit!(
    /// A duration, seconds.
    Seconds,
    "s"
);

impl Watts {
    /// Unbounded power — disables charger clipping in a front end.
    pub const INFINITY: Watts = Watts(f64::INFINITY);
}

/// Power sustained over time delivers energy.
impl std::ops::Mul<Seconds> for Watts {
    type Output = Joules;
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

/// Time at a power level delivers energy.
impl std::ops::Mul<Watts> for Seconds {
    type Output = Joules;
    fn mul(self, rhs: Watts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

/// Energy per unit time is power.
impl std::ops::Div<Seconds> for Joules {
    type Output = Watts;
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

/// Energy at a power level takes time.
impl std::ops::Div<Watts> for Joules {
    type Output = Seconds;
    fn div(self, rhs: Watts) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

impl Farads {
    /// Energy stored at a terminal voltage: `½CV²`.
    #[must_use]
    pub fn energy_at(self, v: Volts) -> Joules {
        Joules(0.5 * self.0 * v.0 * v.0)
    }
}

impl Joules {
    /// Terminal voltage this energy implies across a capacitance:
    /// `√(2E/C)`.
    #[must_use]
    pub fn voltage_across(self, c: Farads) -> Volts {
        Volts((2.0 * self.0 / c.0).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_unit_arithmetic() {
        let a = Joules::new(3e-6);
        let b = Joules::new(1e-6);
        assert_eq!((a + b).get(), 3e-6 + 1e-6);
        assert_eq!((a - b).get(), 3e-6 - 1e-6);
        assert_eq!((-b).get(), -1e-6);
        let mut acc = Joules::ZERO;
        acc += a;
        acc -= b;
        assert_eq!(acc.get(), 3e-6 - 1e-6);
        assert_eq!((a * 2.0).get(), 6e-6);
        assert_eq!((2.0 * a).get(), 6e-6);
        assert_eq!((a / 2.0).get(), 1.5e-6);
        assert_eq!(a / b, 3.0);
        assert!(a > b);
        assert!(b < a);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        assert_eq!((-b).abs(), b);
    }

    #[test]
    fn cross_unit_arithmetic() {
        let e = Watts::new(200e-6) * Seconds::new(0.5);
        assert_eq!(e.get(), 200e-6 * 0.5);
        assert_eq!((Seconds::new(0.5) * Watts::new(200e-6)).get(), e.get());
        assert_eq!((e / Seconds::new(0.5)).get(), 200e-6);
        assert_eq!((e / Watts::new(200e-6)).get(), 0.5);
    }

    #[test]
    fn capacitor_relations() {
        let c = Farads::new(100e-9);
        let v = Volts::new(3.3);
        let e = c.energy_at(v);
        assert_eq!(e.get().to_bits(), (0.5_f64 * 100e-9 * 3.3 * 3.3).to_bits());
        let back = e.voltage_across(c);
        assert!((back.get() - 3.3).abs() < 1e-12);
    }

    #[test]
    fn checked_sub_refuses_negative() {
        let a = Joules::new(2e-6);
        let b = Joules::new(3e-6);
        assert_eq!(a.checked_sub(b), None);
        assert_eq!(b.checked_sub(a), Some(Joules::new(3e-6 - 2e-6)));
        assert_eq!(a.checked_sub(a), Some(Joules::ZERO));
    }

    #[test]
    fn infinity_disables_clipping() {
        assert!(!Watts::INFINITY.is_finite());
        assert_eq!(Watts::new(5.0).min(Watts::INFINITY), Watts::new(5.0));
    }

    /// Every typed operation must lower to the identical IEEE-754
    /// operation on the raw magnitudes — the bit-exactness contract the
    /// artifact digests depend on.
    #[test]
    fn typed_ops_are_bit_exact_vs_raw_f64() {
        let xs = [1.5e-7, 3.3, 2.2e-6, 0.82, 1e-4, 7.25];
        for &a in &xs {
            for &b in &xs {
                assert_eq!((Joules::new(a) + Joules::new(b)).get().to_bits(), (a + b).to_bits());
                assert_eq!((Joules::new(a) - Joules::new(b)).get().to_bits(), (a - b).to_bits());
                assert_eq!((Joules::new(a) * b).get().to_bits(), (a * b).to_bits());
                assert_eq!((Joules::new(a) / b).get().to_bits(), (a / b).to_bits());
                assert_eq!((Watts::new(a) * Seconds::new(b)).get().to_bits(), (a * b).to_bits());
                assert_eq!((Joules::new(a) / Seconds::new(b)).get().to_bits(), (a / b).to_bits());
            }
        }
    }

    #[test]
    fn display_appends_symbol() {
        assert_eq!(Joules::new(1.5).to_string(), "1.5 J");
        assert_eq!(Watts::new(0.25).to_string(), "0.25 W");
        assert_eq!(Seconds::new(2.0).to_string(), "2 s");
    }
}
