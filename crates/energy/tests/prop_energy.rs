//! Property tests for the energy-environment models.

use nvp_energy::{Capacitor, OutageStats, PowerTrace, Rectifier};
use proptest::prelude::*;

fn any_trace() -> impl Strategy<Value = PowerTrace> {
    proptest::collection::vec(0.0f64..2e-3, 1..400)
        .prop_map(|samples| PowerTrace::from_samples(1e-4, samples))
}

/// Operations a capacitor can undergo.
#[derive(Debug, Clone, Copy)]
enum CapOp {
    Charge(f64),
    Draw(f64),
    Leak(f64),
}

fn any_cap_ops() -> impl Strategy<Value = Vec<CapOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0.0f64..1e-5).prop_map(CapOp::Charge),
            (0.0f64..1e-5).prop_map(CapOp::Draw),
            (0.0f64..10.0).prop_map(CapOp::Leak),
        ],
        1..60,
    )
}

proptest! {
    /// Stored energy stays within `[0, capacity]` and the bookkeeping
    /// identity `charged_in == stored + drawn + wasted` holds for any
    /// operation sequence.
    #[test]
    fn capacitor_conservation(ops in any_cap_ops()) {
        let mut cap = Capacitor::new(2.2e-6, 3.3, 100.0);
        let capacity = cap.max_energy_j();
        let mut charged = 0.0;
        let mut drawn = 0.0;
        for op in ops {
            match op {
                CapOp::Charge(j) => {
                    charged += j;
                    cap.charge_j(j);
                }
                CapOp::Draw(j) => {
                    if cap.draw_j(j) {
                        drawn += j;
                    }
                }
                CapOp::Leak(dt) => cap.leak(dt),
            }
            prop_assert!(cap.energy_j() >= 0.0);
            prop_assert!(cap.energy_j() <= capacity * (1.0 + 1e-12));
            prop_assert!((0.0..=1.0 + 1e-12).contains(&cap.fill_fraction()));
        }
        let balance = cap.energy_j() + drawn + cap.wasted_j();
        prop_assert!((balance - charged).abs() <= charged.max(1e-12) * 1e-9,
            "in {charged} vs out {balance}");
    }

    /// Rectifier output power is monotone in input power and never
    /// exceeds the input.
    #[test]
    fn rectifier_sane(a in 0.0f64..5e-3, b in 0.0f64..5e-3) {
        let r = Rectifier::default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(r.output_w(lo) <= r.output_w(hi) + 1e-18);
        prop_assert!(r.output_w(hi) <= hi);
        prop_assert!((0.0..=1.0).contains(&r.efficiency(hi)));
    }

    /// Outage accounting: time above + time in outages equals the trace
    /// duration, and emergencies never exceed outage count.
    #[test]
    fn outage_accounting(trace in any_trace(), threshold in 1e-6f64..1e-3) {
        let s = OutageStats::analyze(&trace, threshold);
        let outage_time: f64 = s.outage_durations_s.iter().sum();
        let above_time = s.above_threshold_fraction * trace.duration_s();
        prop_assert!((outage_time + above_time - trace.duration_s()).abs() < 1e-9);
        prop_assert!(s.emergency_count as usize <= s.outage_durations_s.len());
        prop_assert!(s.longest_outage_s <= trace.duration_s() + 1e-12);
        prop_assert!(s.histogram(8).total() == s.outage_durations_s.len() as u64);
    }

    /// CSV round trip preserves every sample to the printed precision.
    #[test]
    fn csv_round_trip(trace in any_trace()) {
        let parsed = PowerTrace::from_csv(&trace.to_csv()).unwrap();
        prop_assert_eq!(parsed.len(), trace.len());
        for (a, b) in parsed.samples().iter().zip(trace.samples()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Composition algebra: concat length/energy adds; repeat multiplies;
    /// scaling scales energy linearly.
    #[test]
    fn composition_algebra(a in any_trace(), b in any_trace(), k in 0.0f64..4.0, n in 1usize..4) {
        let joined = a.concat(&b);
        prop_assert_eq!(joined.len(), a.len() + b.len());
        prop_assert!((joined.total_energy_j() - a.total_energy_j() - b.total_energy_j()).abs() < 1e-12);
        let rep = a.repeated(n);
        prop_assert_eq!(rep.len(), a.len() * n);
        prop_assert!((rep.total_energy_j() - a.total_energy_j() * n as f64).abs() < 1e-9);
        let scaled = a.scaled(k);
        prop_assert!((scaled.total_energy_j() - a.total_energy_j() * k).abs() < 1e-9);
    }
}
