//! Randomized property tests for the energy-environment models,
//! deterministically seeded so every failure is reproducible.

use nvp_energy::units::Seconds;
use nvp_energy::{Capacitor, OutageStats, PowerTrace, Rectifier};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn any_trace(rng: &mut StdRng) -> PowerTrace {
    let n = 1 + rng.random::<u32>() as usize % 400;
    let samples: Vec<f64> = (0..n).map(|_| rng.random::<f64>() * 2e-3).collect();
    PowerTrace::from_samples(1e-4, samples)
}

/// Operations a capacitor can undergo.
#[derive(Debug, Clone, Copy)]
enum CapOp {
    Charge(f64),
    Draw(f64),
    Leak(f64),
}

fn any_cap_ops(rng: &mut StdRng) -> Vec<CapOp> {
    let n = 1 + rng.random::<u32>() as usize % 60;
    (0..n)
        .map(|_| match rng.random::<u32>() % 3 {
            0 => CapOp::Charge(rng.random::<f64>() * 1e-5),
            1 => CapOp::Draw(rng.random::<f64>() * 1e-5),
            _ => CapOp::Leak(rng.random::<f64>() * 10.0),
        })
        .collect()
}

/// Stored energy stays within `[0, capacity]` and the bookkeeping
/// identity `charged_in == stored + drawn + wasted` holds for any
/// operation sequence.
#[test]
fn capacitor_conservation() {
    let mut rng = StdRng::seed_from_u64(0xe9e_001);
    for _ in 0..200 {
        let ops = any_cap_ops(&mut rng);
        let mut cap = Capacitor::new(2.2e-6, 3.3, 100.0);
        let capacity = cap.max_energy_j();
        let mut charged = 0.0;
        let mut drawn = 0.0;
        for op in ops {
            match op {
                CapOp::Charge(j) => {
                    charged += j;
                    cap.charge_j(j);
                }
                CapOp::Draw(j) => {
                    if cap.draw_j(j) {
                        drawn += j;
                    }
                }
                CapOp::Leak(dt) => cap.leak(Seconds::new(dt)),
            }
            assert!(cap.energy_j() >= 0.0);
            assert!(cap.energy_j() <= capacity * (1.0 + 1e-12));
            assert!((0.0..=1.0 + 1e-12).contains(&cap.fill_fraction()));
        }
        let balance = cap.energy_j() + drawn + cap.wasted_j();
        assert!(
            (balance - charged).abs() <= charged.max(1e-12) * 1e-9,
            "in {charged} vs out {balance}"
        );
    }
}

/// Rectifier output power is monotone in input power and never exceeds
/// the input.
#[test]
fn rectifier_sane() {
    let mut rng = StdRng::seed_from_u64(0xe9e_002);
    for _ in 0..2000 {
        let a = rng.random::<f64>() * 5e-3;
        let b = rng.random::<f64>() * 5e-3;
        let r = Rectifier::default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(r.output_w(lo) <= r.output_w(hi) + 1e-18);
        assert!(r.output_w(hi) <= hi);
        assert!((0.0..=1.0).contains(&r.efficiency(hi)));
    }
}

/// Outage accounting: time above + time in outages equals the trace
/// duration, and emergencies never exceed outage count.
#[test]
fn outage_accounting() {
    let mut rng = StdRng::seed_from_u64(0xe9e_003);
    for _ in 0..200 {
        let trace = any_trace(&mut rng);
        let threshold = 1e-6 + rng.random::<f64>() * (1e-3 - 1e-6);
        let s = OutageStats::analyze(&trace, threshold);
        let outage_time: f64 = s.outage_durations_s.iter().sum();
        let above_time = s.above_threshold_fraction * trace.duration_s();
        assert!((outage_time + above_time - trace.duration_s()).abs() < 1e-9);
        assert!(s.emergency_count as usize <= s.outage_durations_s.len());
        assert!(s.longest_outage_s <= trace.duration_s() + 1e-12);
        assert!(s.histogram(8).total() == s.outage_durations_s.len() as u64);
    }
}

/// CSV round trip preserves every sample to the printed precision.
#[test]
fn csv_round_trip() {
    let mut rng = StdRng::seed_from_u64(0xe9e_004);
    for _ in 0..60 {
        let trace = any_trace(&mut rng);
        let parsed = PowerTrace::from_csv(&trace.to_csv()).unwrap();
        assert_eq!(parsed.len(), trace.len());
        for (a, b) in parsed.samples().iter().zip(trace.samples()) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}

/// Composition algebra: concat length/energy adds; repeat multiplies;
/// scaling scales energy linearly.
#[test]
fn composition_algebra() {
    let mut rng = StdRng::seed_from_u64(0xe9e_005);
    for _ in 0..100 {
        let a = any_trace(&mut rng);
        let b = any_trace(&mut rng);
        let k = rng.random::<f64>() * 4.0;
        let n = 1 + rng.random::<u32>() as usize % 3;
        let joined = a.concat(&b);
        assert_eq!(joined.len(), a.len() + b.len());
        assert!((joined.total_energy_j() - a.total_energy_j() - b.total_energy_j()).abs() < 1e-12);
        let rep = a.repeated(n);
        assert_eq!(rep.len(), a.len() * n);
        assert!((rep.total_energy_j() - a.total_energy_j() * n as f64).abs() < 1e-9);
        let scaled = a.scaled(k);
        assert!((scaled.total_energy_j() - a.total_energy_j() * k).abs() < 1e-9);
    }
}
