//! Regenerates every table/figure of the reconstructed evaluation.
//!
//! Usage: `cargo run --release -p nvp-experiments --bin repro [out_dir] [--quick]`

use std::path::PathBuf;
use std::process::ExitCode;

use nvp_experiments::{run_all, ExpConfig};

fn main() -> ExitCode {
    let mut out_dir = PathBuf::from("results");
    let mut cfg = ExpConfig::default();
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            cfg = ExpConfig::quick();
        } else {
            out_dir = PathBuf::from(arg);
        }
    }
    eprintln!(
        "regenerating evaluation ({}s traces, {} profiles, {}x{} frames) into {} ...",
        cfg.trace_duration_s,
        cfg.profile_seeds.len(),
        cfg.frame_w,
        cfg.frame_h,
        out_dir.display()
    );
    match run_all(&cfg, &out_dir) {
        Ok(artifacts) => {
            for t in &artifacts.tables {
                println!("{}", t.to_markdown());
            }
            eprintln!("wrote {} files to {}", artifacts.files.len(), out_dir.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
