//! Regenerates the reconstructed evaluation's tables and figures.
//!
//! Usage: `cargo run --release -p nvp-experiments --bin repro -- --help`
//!
//! Both execution modes build the same [`CampaignRequest`] and render
//! the same [`nvp_experiments::CampaignResult`]: in-process runs call
//! `run_request` directly, and `--connect ADDR` ships the request to a
//! resident `nvpd` campaign server and writes the returned values —
//! byte-identical artifacts either way.

use std::process::ExitCode;

use nvp_experiments::cli::{self, Command};
use nvp_experiments::{
    client, feasibility, run_request, set_cache_dir, CachePolicy, CampaignRequest,
};

/// One-line execution-tier summary, printed alongside the sim-cache
/// line by both the in-process and `--connect` paths.
fn exec_summary(exec: &nvp_experiments::ExecStats) -> String {
    format!(
        "exec tiers: {} superblock chain(s) formed, {} chain run(s), {} side exit(s), \
         {} lane group(s) covering {} simulation(s)",
        exec.chains_formed,
        exec.chain_runs,
        exec.side_exits,
        exec.lane_groups,
        exec.lane_group_items
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match cli::parse(&args) {
        Ok(cmd) => cmd,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{}", cli::USAGE);
            return ExitCode::from(2);
        }
    };
    let (out_dir, only, quick, seed, no_cache, connect, timeout, retries) = match cmd {
        Command::Help => {
            println!("{}", cli::USAGE);
            return ExitCode::SUCCESS;
        }
        Command::List => {
            print!("{}", cli::list_text());
            return ExitCode::SUCCESS;
        }
        Command::Check { quick } => {
            let cfg = Command::config(quick);
            let diags = feasibility::check_registry(&cfg);
            if diags.is_empty() {
                println!(
                    "feasibility: all {} registered experiments declare feasible configurations",
                    nvp_experiments::registry().len()
                );
            } else {
                for d in &diags {
                    eprintln!("infeasible: {d}");
                }
                eprintln!("feasibility: {} violation(s) found", diags.len());
                return ExitCode::FAILURE;
            }
            // Program-level intermittency safety: every registry kernel
            // must pass the nvp-flow analyzer with zero diagnostics.
            let image = nvp_workloads::GrayImage::synthetic(1, 16, 16);
            let mut flow_bad = 0usize;
            for kind in nvp_workloads::KernelKind::ALL {
                let instance = match kind.build(&image) {
                    Ok(i) => i,
                    Err(e) => {
                        eprintln!("flow: {}: {e}", kind.name());
                        flow_bad += 1;
                        continue;
                    }
                };
                let flow_cfg = nvp_flow::AnalysisConfig {
                    dmem_words: instance.min_dmem_words(),
                    ..nvp_flow::AnalysisConfig::default()
                };
                match nvp_flow::analyze(instance.program(), &flow_cfg, &nvp_flow::Waivers::none()) {
                    Ok(a) if a.is_clean() => {}
                    Ok(a) => {
                        for d in &a.diagnostics {
                            eprintln!("flow: {}: {d}", kind.name());
                        }
                        flow_bad += 1;
                    }
                    Err(e) => {
                        eprintln!("flow: {}: {e}", kind.name());
                        flow_bad += 1;
                    }
                }
            }
            if flow_bad > 0 {
                eprintln!("flow: {flow_bad} kernel(s) failed intermittency-safety analysis");
                return ExitCode::FAILURE;
            }
            println!(
                "flow: all {} registry kernels analyze clean (war-hazard, dead-store, \
                 unreachable-block, no-progress-loop)",
                nvp_workloads::KernelKind::ALL.len()
            );
            return ExitCode::SUCCESS;
        }
        Command::Run { out_dir, only, quick, seed, no_cache, connect, timeout, retries } => {
            (out_dir, only, quick, seed, no_cache, connect, timeout, retries)
        }
    };

    // Both transports run the identical job: the request is the unit of
    // work, the artifacts a rendering of its result.
    let mut request = CampaignRequest::all(Command::config(quick));
    request.only = only;
    request.seed = seed;
    if no_cache {
        // The parser already rejects --no-cache with --connect, so a
        // MemoryOnly request never reaches a server.
        request.cache = CachePolicy::MemoryOnly;
    }

    if let Some(addr) = connect {
        // Thin-client mode: the server simulates, we render.
        let mut cfg = client::ClientConfig::default();
        if let Some(secs) = timeout {
            cfg.timeout = std::time::Duration::from_secs_f64(secs);
        }
        if let Some(n) = retries {
            cfg.retries = n;
        }
        eprintln!("submitting campaign to nvpd at {addr} ...");
        return match client::submit_with(&addr, &request, &cfg) {
            Ok(outcome) => {
                let files = match outcome.result.write(&out_dir) {
                    Ok(files) => files,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                for t in &outcome.result.tables {
                    println!("{}", t.to_markdown());
                }
                eprintln!(
                    "nvpd job {} (queue depth {} at admission{}): {} unique simulations, \
                     {} deduplicated, {} served from the server's disk store, \
                     {} shard(s) quarantined",
                    outcome.job,
                    outcome.queued,
                    if outcome.replayed { "; replayed from journal" } else { "" },
                    outcome.result.cache.misses,
                    outcome.result.cache.hits,
                    outcome.result.cache.disk_hits,
                    outcome.result.cache.quarantined
                );
                eprintln!("{}", exec_summary(&outcome.result.exec));
                eprintln!("wrote {} files to {}", files.len(), out_dir.display());
                ExitCode::SUCCESS
            }
            Err(e @ client::ClientError::Unreachable { .. }) => {
                // A dead address is a usage error, like a bad flag: the
                // command as typed cannot work.
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    // In-process mode. Persistent simulation cache: --no-cache pins it
    // memory-only; NVP_CACHE_DIR (resolved lazily by the library) wins
    // over the default <out_dir>/.simcache.
    if no_cache {
        let _ = set_cache_dir(None);
    } else if std::env::var_os("NVP_CACHE_DIR").is_none_or(|v| v.is_empty()) {
        let cache_dir = out_dir.join(".simcache");
        if let Err(e) = set_cache_dir(Some(&cache_dir)) {
            eprintln!(
                "warning: sim cache at {} unavailable ({e}); running without",
                cache_dir.display()
            );
        }
    }

    let cfg = request.effective_config();
    eprintln!(
        "regenerating evaluation ({}s traces, {} profiles, {}x{} frames) into {} ...",
        cfg.trace_duration_s,
        cfg.profile_seeds.len(),
        cfg.frame_w,
        cfg.frame_h,
        out_dir.display()
    );
    match run_request(&request).and_then(|result| {
        let files = result.write(&out_dir)?;
        Ok((result, files))
    }) {
        Ok((result, files)) => {
            for t in &result.tables {
                println!("{}", t.to_markdown());
            }
            eprintln!(
                "sim cache: {} unique simulations, {} duplicate run(s) deduplicated, \
                 {} served from disk, {} record(s) persisted, {} shard(s) quarantined",
                result.cache.misses,
                result.cache.hits,
                result.cache.disk_hits,
                result.cache.persisted,
                result.cache.quarantined
            );
            eprintln!("{}", exec_summary(&result.exec));
            eprintln!("wrote {} files to {}", files.len(), out_dir.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
