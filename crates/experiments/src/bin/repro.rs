//! Regenerates the reconstructed evaluation's tables and figures.
//!
//! Usage: `cargo run --release -p nvp-experiments --bin repro -- --help`

use std::process::ExitCode;

use nvp_experiments::cli::{self, Command};
use nvp_experiments::{feasibility, run_all, run_only, set_cache_dir};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match cli::parse(&args) {
        Ok(cmd) => cmd,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{}", cli::USAGE);
            return ExitCode::from(2);
        }
    };
    let (out_dir, only, quick, seed, no_cache) = match cmd {
        Command::Help => {
            println!("{}", cli::USAGE);
            return ExitCode::SUCCESS;
        }
        Command::List => {
            print!("{}", cli::list_text());
            return ExitCode::SUCCESS;
        }
        Command::Check { quick } => {
            let cfg = Command::config(quick);
            let diags = feasibility::check_registry(&cfg);
            if diags.is_empty() {
                println!(
                    "feasibility: all {} registered experiments declare feasible configurations",
                    nvp_experiments::registry().len()
                );
                return ExitCode::SUCCESS;
            }
            for d in &diags {
                eprintln!("infeasible: {d}");
            }
            eprintln!("feasibility: {} violation(s) found", diags.len());
            return ExitCode::FAILURE;
        }
        Command::Run { out_dir, only, quick, seed, no_cache } => {
            (out_dir, only, quick, seed, no_cache)
        }
    };

    // Persistent simulation cache: --no-cache pins it memory-only;
    // NVP_CACHE_DIR (resolved lazily by the library) wins over the
    // default <out_dir>/.simcache.
    if no_cache {
        let _ = set_cache_dir(None);
    } else if std::env::var_os("NVP_CACHE_DIR").is_none_or(|v| v.is_empty()) {
        let cache_dir = out_dir.join(".simcache");
        if let Err(e) = set_cache_dir(Some(&cache_dir)) {
            eprintln!(
                "warning: sim cache at {} unavailable ({e}); running without",
                cache_dir.display()
            );
        }
    }

    let mut cfg = Command::config(quick);
    if let Some(s) = seed {
        cfg.fault_seed = s;
    }
    eprintln!(
        "regenerating evaluation ({}s traces, {} profiles, {}x{} frames) into {} ...",
        cfg.trace_duration_s,
        cfg.profile_seeds.len(),
        cfg.frame_w,
        cfg.frame_h,
        out_dir.display()
    );
    let result = match &only {
        Some(ids) => run_only(&cfg, &out_dir, ids),
        None => run_all(&cfg, &out_dir),
    };
    match result {
        Ok(artifacts) => {
            for t in &artifacts.tables {
                println!("{}", t.to_markdown());
            }
            eprintln!(
                "sim cache: {} unique simulations, {} duplicate run(s) deduplicated, \
                 {} served from disk, {} record(s) persisted",
                artifacts.cache.misses,
                artifacts.cache.hits,
                artifacts.cache.disk_hits,
                artifacts.cache.persisted
            );
            eprintln!("wrote {} files to {}", artifacts.files.len(), out_dir.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
