//! Argument parsing for the `repro` binary.
//!
//! Kept in the library (rather than the binary) so the parser is unit
//! tested like everything else. The grammar is deliberately tiny:
//!
//! ```text
//! repro [out_dir] [--quick] [--only IDS] [--seed N] [--no-cache] [--check] [--list] [--help]
//! ```
//!
//! Unknown `--flags` are rejected with a usage error instead of being
//! silently treated as the output directory.

use std::path::PathBuf;

use crate::registry::{find, registry};
use crate::ExpConfig;

/// Usage text shared by `--help` and parse errors.
pub const USAGE: &str = "\
Usage: repro [out_dir] [options]

Regenerates the reconstructed DATE'17 NVP evaluation artifacts.

Arguments:
  out_dir            output directory (default: results)

Options:
  --quick            small traces/frames for a fast smoke run
  --only IDS         comma-separated experiment ids (e.g. --only f5,t1)
  --seed N           base seed for the F12 fault-injection campaign
                     (default: 1; e.g. --only f12 --seed 7)
  --no-cache         keep the simulation cache memory-only (skip the
                     persistent store in <out_dir>/.simcache or
                     $NVP_CACHE_DIR)
  --check            validate every registered experiment's platform
                     configurations for physical feasibility and exit
                     (0 = all feasible, 1 = diagnostics printed)
  --list             list registered experiments and exit
  --help             show this help and exit";

/// What the command line asked for.
#[derive(Debug, PartialEq, Eq)]
pub enum Command {
    /// Print [`USAGE`] and exit successfully.
    Help,
    /// Print the experiment registry and exit successfully.
    List,
    /// Run the config-feasibility validator over the registry and exit
    /// (see [`crate::feasibility`]).
    Check {
        /// Use the quick configuration instead of the default.
        quick: bool,
    },
    /// Regenerate artifacts into `out_dir`; `only: None` means all.
    Run {
        /// Output directory for CSV/Markdown artifacts.
        out_dir: PathBuf,
        /// Selected experiment ids (registry-validated, lowercase), or
        /// `None` for the full evaluation.
        only: Option<Vec<String>>,
        /// Use the quick configuration instead of the default.
        quick: bool,
        /// Base seed for the fault-injection campaign (`--seed`), or
        /// `None` to keep the configuration default.
        seed: Option<u64>,
        /// `--no-cache`: keep the simulation cache memory-only instead
        /// of backing it with the persistent on-disk store.
        no_cache: bool,
    },
}

impl Command {
    /// The [`ExpConfig`] a `Run` command asked for.
    #[must_use]
    pub fn config(quick: bool) -> ExpConfig {
        if quick {
            ExpConfig::quick()
        } else {
            ExpConfig::default()
        }
    }
}

/// Renders the registry as an aligned `id  title` listing for `--list`.
#[must_use]
pub fn list_text() -> String {
    let width = registry().iter().map(|e| e.id().len()).max().unwrap_or(0);
    let mut out = String::from("registered experiments (artifact order):\n");
    for e in registry() {
        out.push_str(&format!("  {:width$}  {}\n", e.id(), e.title()));
    }
    out
}

/// Parses `repro` arguments (without the program name).
///
/// # Errors
///
/// Returns a one-line message (without usage text — callers append
/// [`USAGE`]) for unknown flags, duplicate positional arguments,
/// missing or unknown `--only` ids.
pub fn parse<S: AsRef<str>>(args: &[S]) -> Result<Command, String> {
    let mut out_dir: Option<PathBuf> = None;
    let mut only: Option<Vec<String>> = None;
    let mut quick = false;
    let mut check = false;
    let mut seed: Option<u64> = None;
    let mut no_cache = false;
    let mut iter = args.iter().map(AsRef::as_ref);
    while let Some(arg) = iter.next() {
        match arg {
            "--help" | "-h" => return Ok(Command::Help),
            "--list" => return Ok(Command::List),
            "--quick" => quick = true,
            "--check" => check = true,
            "--no-cache" => no_cache = true,
            "--only" => {
                let ids = iter.next().ok_or("--only needs a comma-separated id list")?;
                only = Some(parse_only(ids)?);
            }
            _ if arg.starts_with("--only=") => {
                only = Some(parse_only(&arg["--only=".len()..])?);
            }
            "--seed" => {
                let value = iter.next().ok_or("--seed needs an unsigned integer value")?;
                seed = Some(parse_seed(value)?);
            }
            _ if arg.starts_with("--seed=") => {
                seed = Some(parse_seed(&arg["--seed=".len()..])?);
            }
            _ if arg.starts_with('-') && arg.len() > 1 => {
                return Err(format!("unknown option `{arg}`"));
            }
            _ => {
                if let Some(prev) = &out_dir {
                    return Err(format!(
                        "unexpected argument `{arg}` (out_dir already set to `{}`)",
                        prev.display()
                    ));
                }
                out_dir = Some(PathBuf::from(arg));
            }
        }
    }
    if check {
        return Ok(Command::Check { quick });
    }
    Ok(Command::Run {
        out_dir: out_dir.unwrap_or_else(|| PathBuf::from("results")),
        only,
        quick,
        seed,
        no_cache,
    })
}

/// Parses a `--seed` value.
fn parse_seed(value: &str) -> Result<u64, String> {
    value
        .trim()
        .parse::<u64>()
        .map_err(|_| format!("--seed needs an unsigned integer, got `{value}`"))
}

/// Splits and registry-validates an `--only` id list.
fn parse_only(ids: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for raw in ids.split(',') {
        let id = raw.trim();
        if id.is_empty() {
            continue;
        }
        match find(id) {
            Some(e) => out.push(e.id().to_string()),
            None => {
                let valid: Vec<&str> = registry().iter().map(|e| e.id()).collect();
                return Err(format!(
                    "unknown experiment id `{id}` (valid ids: {})",
                    valid.join(", ")
                ));
            }
        }
    }
    if out.is_empty() {
        return Err("--only needs a comma-separated id list".to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_run_everything_into_results() {
        let cmd = parse::<&str>(&[]).unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                out_dir: PathBuf::from("results"),
                only: None,
                quick: false,
                seed: None,
                no_cache: false,
            }
        );
    }

    #[test]
    fn positional_quick_and_only_combine() {
        let cmd = parse(&["out", "--quick", "--only", "F5,t1"]).unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                out_dir: PathBuf::from("out"),
                only: Some(vec!["f5".into(), "t1".into()]),
                quick: true,
                seed: None,
                no_cache: false,
            }
        );
    }

    #[test]
    fn only_equals_form_works() {
        let cmd = parse(&["--only=f2h"]).unwrap();
        match cmd {
            Command::Run { only, .. } => assert_eq!(only, Some(vec!["f2h".to_string()])),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn seed_flag_parses_both_forms() {
        let cmd = parse(&["--only", "f12", "--seed", "42"]).unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                out_dir: PathBuf::from("results"),
                only: Some(vec!["f12".into()]),
                quick: false,
                seed: Some(42),
                no_cache: false,
            }
        );
        match parse(&["--seed=7"]).unwrap() {
            Command::Run { seed, .. } => assert_eq!(seed, Some(7)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn seed_rejects_missing_and_non_integer_values() {
        let err = parse(&["--seed"]).unwrap_err();
        assert!(err.contains("--seed"), "{err}");
        let err = parse(&["--seed", "lots"]).unwrap_err();
        assert!(err.contains("lots"), "{err}");
        let err = parse(&["--seed=-3"]).unwrap_err();
        assert!(err.contains("-3"), "{err}");
        let err = parse(&["--seed=1.5"]).unwrap_err();
        assert!(err.contains("1.5"), "{err}");
    }

    #[test]
    fn help_and_list_short_circuit() {
        assert_eq!(parse(&["--help", "whatever"]).unwrap(), Command::Help);
        assert_eq!(parse(&["-h"]).unwrap(), Command::Help);
        assert_eq!(parse(&["--list", "--bogus"]).unwrap(), Command::List);
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let err = parse(&["--fast"]).unwrap_err();
        assert!(err.contains("--fast"), "{err}");
        // The old parser treated any non---quick argument as out_dir;
        // a second positional is now an error too.
        let err = parse(&["a", "b"]).unwrap_err();
        assert!(err.contains('b'), "{err}");
    }

    #[test]
    fn only_validates_ids_against_registry() {
        let err = parse(&["--only", "f99"]).unwrap_err();
        assert!(err.contains("f99"), "{err}");
        // The error enumerates every valid id so the user never needs a
        // second round trip through --list.
        for e in registry() {
            assert!(err.contains(e.id()), "error omits valid id {}: {err}", e.id());
        }
        let err = parse(&["--only"]).unwrap_err();
        assert!(err.contains("--only"), "{err}");
        let err = parse(&["--only", ","]).unwrap_err();
        assert!(err.contains("--only"), "{err}");
    }

    #[test]
    fn no_cache_flag_is_recognized() {
        match parse(&["--no-cache"]).unwrap() {
            Command::Run { no_cache, .. } => assert!(no_cache),
            other => panic!("unexpected {other:?}"),
        }
        match parse(&["out", "--quick", "--no-cache", "--only", "f5"]).unwrap() {
            Command::Run { no_cache, quick, .. } => {
                assert!(no_cache);
                assert!(quick);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn check_flag_selects_the_validator() {
        assert_eq!(parse(&["--check"]).unwrap(), Command::Check { quick: false });
        assert_eq!(parse(&["--check", "--quick"]).unwrap(), Command::Check { quick: true });
        assert_eq!(parse(&["--quick", "--check"]).unwrap(), Command::Check { quick: true });
    }

    #[test]
    fn list_text_names_every_experiment() {
        let text = list_text();
        for e in registry() {
            assert!(text.contains(e.id()), "missing {}", e.id());
            assert!(text.contains(e.title()), "missing title for {}", e.id());
        }
    }
}
