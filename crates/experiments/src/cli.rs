//! Argument parsing for the `repro` binary.
//!
//! Kept in the library (rather than the binary) so the parser is unit
//! tested like everything else. The grammar is deliberately tiny:
//!
//! ```text
//! repro [out_dir] [--quick] [--only IDS] [--seed N] [--no-cache]
//!       [--connect ADDR] [--timeout SECS] [--retries N]
//!       [--check] [--list] [--help]
//! ```
//!
//! Unknown `--flags` are rejected with a usage error instead of being
//! silently treated as the output directory, and contradictory
//! combinations (`--check --seed 3`, `--list --only f5`,
//! `--connect --no-cache`, `--timeout` without `--connect`) are
//! rejected instead of silently ignoring one of the flags — the only
//! exception is `--help`, which always wins.

use std::path::PathBuf;

use crate::registry::{find, registry};
use crate::ExpConfig;

/// Usage text shared by `--help` and parse errors.
pub const USAGE: &str = "\
Usage: repro [out_dir] [options]

Regenerates the reconstructed DATE'17 NVP evaluation artifacts.

Arguments:
  out_dir            output directory (default: results)

Options:
  --quick            small traces/frames for a fast smoke run
  --only IDS         comma-separated experiment ids, case-insensitive
                     (e.g. --only f5,T1)
  --seed N           base seed for the F12 fault-injection campaign
                     (default: 1; e.g. --only f12 --seed 7)
  --no-cache         keep the simulation cache memory-only (skip the
                     persistent store in <out_dir>/.simcache or
                     $NVP_CACHE_DIR); not valid with --connect — the
                     nvpd server owns its resident cache
  --connect ADDR     submit the run to an nvpd campaign server at ADDR
                     (e.g. 127.0.0.1:7117) instead of simulating in
                     process; artifacts are still written locally and
                     are byte-identical to an in-process run
  --timeout SECS     with --connect: bound on connecting and on the
                     submit handshake, in seconds (fractions allowed;
                     default 10). An unreachable server is a usage
                     error (exit 2), never a hang.
  --retries N        with --connect: extra attempts after a transient
                     failure, with jittered exponential backoff
                     (default 2). Resubmission is safe — the server
                     deduplicates by idempotency key.
  --check            validate every registered experiment's platform
                     configurations for physical feasibility and exit
                     (0 = all feasible, 1 = diagnostics printed)
  --list             list registered experiments and exit
  --help             show this help and exit";

/// What the command line asked for.
#[derive(Debug, PartialEq)]
pub enum Command {
    /// Print [`USAGE`] and exit successfully.
    Help,
    /// Print the experiment registry and exit successfully.
    List,
    /// Run the config-feasibility validator over the registry and exit
    /// (see [`crate::feasibility`]).
    Check {
        /// Use the quick configuration instead of the default.
        quick: bool,
    },
    /// Regenerate artifacts into `out_dir`; `only: None` means all.
    Run {
        /// Output directory for CSV/Markdown artifacts.
        out_dir: PathBuf,
        /// Selected experiment ids (registry-validated, folded to the
        /// canonical lowercase form), or `None` for the full
        /// evaluation.
        only: Option<Vec<String>>,
        /// Use the quick configuration instead of the default.
        quick: bool,
        /// Base seed for the fault-injection campaign (`--seed`), or
        /// `None` to keep the configuration default.
        seed: Option<u64>,
        /// `--no-cache`: keep the simulation cache memory-only instead
        /// of backing it with the persistent on-disk store.
        no_cache: bool,
        /// `--connect ADDR`: submit to an nvpd campaign server instead
        /// of running in process.
        connect: Option<String>,
        /// `--timeout SECS`: connect/handshake bound for `--connect`,
        /// or `None` for the client default.
        timeout: Option<f64>,
        /// `--retries N`: transient-failure retry budget for
        /// `--connect`, or `None` for the client default.
        retries: Option<u32>,
    },
}

impl Command {
    /// The [`ExpConfig`] a `Run` command asked for.
    #[must_use]
    pub fn config(quick: bool) -> ExpConfig {
        if quick {
            ExpConfig::quick()
        } else {
            ExpConfig::default()
        }
    }
}

/// Renders the registry as an aligned `id  title` listing for `--list`.
#[must_use]
pub fn list_text() -> String {
    let width = registry().iter().map(|e| e.id().len()).max().unwrap_or(0);
    let mut out = String::from("registered experiments (artifact order):\n");
    for e in registry() {
        out.push_str(&format!("  {:width$}  {}\n", e.id(), e.title()));
    }
    out
}

/// Everything the flag loop collected, before mode validation.
#[derive(Default)]
struct Raw {
    out_dir: Option<PathBuf>,
    only: Option<Vec<String>>,
    quick: bool,
    check: bool,
    list: bool,
    seed: Option<u64>,
    no_cache: bool,
    connect: Option<String>,
    timeout: Option<f64>,
    retries: Option<u32>,
}

/// Parses `repro` arguments (without the program name).
///
/// # Errors
///
/// Returns a one-line message (without usage text — callers append
/// [`USAGE`]) for unknown flags, duplicate positional arguments,
/// missing or unknown `--only` ids, and contradictory flag
/// combinations (e.g. `--check --seed 3`, `--list --only f5`,
/// `--connect --no-cache`).
pub fn parse<S: AsRef<str>>(args: &[S]) -> Result<Command, String> {
    let mut raw = Raw::default();
    let mut iter = args.iter().map(AsRef::as_ref);
    while let Some(arg) = iter.next() {
        match arg {
            "--help" | "-h" => return Ok(Command::Help),
            "--list" => raw.list = true,
            "--quick" => raw.quick = true,
            "--check" => raw.check = true,
            "--no-cache" => raw.no_cache = true,
            "--only" => {
                let ids = iter.next().ok_or("--only needs a comma-separated id list")?;
                raw.only = Some(parse_only(ids)?);
            }
            _ if arg.starts_with("--only=") => {
                raw.only = Some(parse_only(&arg["--only=".len()..])?);
            }
            "--seed" => {
                let value = iter.next().ok_or("--seed needs an unsigned integer value")?;
                raw.seed = Some(parse_seed(value)?);
            }
            _ if arg.starts_with("--seed=") => {
                raw.seed = Some(parse_seed(&arg["--seed=".len()..])?);
            }
            "--connect" => {
                let addr = iter.next().ok_or("--connect needs a server address (host:port)")?;
                raw.connect = Some(parse_connect(addr)?);
            }
            _ if arg.starts_with("--connect=") => {
                raw.connect = Some(parse_connect(&arg["--connect=".len()..])?);
            }
            "--timeout" => {
                let value = iter.next().ok_or("--timeout needs a positive seconds value")?;
                raw.timeout = Some(parse_timeout(value)?);
            }
            _ if arg.starts_with("--timeout=") => {
                raw.timeout = Some(parse_timeout(&arg["--timeout=".len()..])?);
            }
            "--retries" => {
                let value = iter.next().ok_or("--retries needs an unsigned integer value")?;
                raw.retries = Some(parse_retries(value)?);
            }
            _ if arg.starts_with("--retries=") => {
                raw.retries = Some(parse_retries(&arg["--retries=".len()..])?);
            }
            _ if arg.starts_with('-') && arg.len() > 1 => {
                return Err(format!("unknown option `{arg}`"));
            }
            _ => {
                if let Some(prev) = &raw.out_dir {
                    return Err(format!(
                        "unexpected argument `{arg}` (out_dir already set to `{}`)",
                        prev.display()
                    ));
                }
                raw.out_dir = Some(PathBuf::from(arg));
            }
        }
    }
    validate(raw)
}

/// Rejects contradictory combinations and assembles the command.
fn validate(raw: Raw) -> Result<Command, String> {
    // Helper naming every run-mode flag present, for error messages.
    let conflicts = |with: &str, allowed_quick: bool| -> Result<(), String> {
        let mut extras = Vec::new();
        if raw.quick && !allowed_quick {
            extras.push("--quick".to_string());
        }
        if let Some(ids) = &raw.only {
            extras.push(format!("--only {}", ids.join(",")));
        }
        if let Some(s) = raw.seed {
            extras.push(format!("--seed {s}"));
        }
        if raw.no_cache {
            extras.push("--no-cache".to_string());
        }
        if let Some(addr) = &raw.connect {
            extras.push(format!("--connect {addr}"));
        }
        if let Some(t) = raw.timeout {
            extras.push(format!("--timeout {t}"));
        }
        if let Some(r) = raw.retries {
            extras.push(format!("--retries {r}"));
        }
        if let Some(dir) = &raw.out_dir {
            extras.push(format!("out_dir `{}`", dir.display()));
        }
        if extras.is_empty() {
            Ok(())
        } else {
            Err(format!("{with} contradicts {}", extras.join(", ")))
        }
    };
    if raw.list && raw.check {
        return Err("--list contradicts --check".to_string());
    }
    if raw.list {
        conflicts("--list", false)?;
        return Ok(Command::List);
    }
    if raw.check {
        conflicts("--check", true)?;
        return Ok(Command::Check { quick: raw.quick });
    }
    if raw.connect.is_some() && raw.no_cache {
        return Err("--connect contradicts --no-cache (the nvpd server owns its resident cache)"
            .to_string());
    }
    if raw.connect.is_none() {
        // Socket policy only makes sense for a socket.
        if raw.timeout.is_some() {
            return Err("--timeout requires --connect".to_string());
        }
        if raw.retries.is_some() {
            return Err("--retries requires --connect".to_string());
        }
    }
    Ok(Command::Run {
        out_dir: raw.out_dir.unwrap_or_else(|| PathBuf::from("results")),
        only: raw.only,
        quick: raw.quick,
        seed: raw.seed,
        no_cache: raw.no_cache,
        connect: raw.connect,
        timeout: raw.timeout,
        retries: raw.retries,
    })
}

/// Parses a `--seed` value.
fn parse_seed(value: &str) -> Result<u64, String> {
    value
        .trim()
        .parse::<u64>()
        .map_err(|_| format!("--seed needs an unsigned integer, got `{value}`"))
}

/// Parses a `--timeout` value: positive, finite seconds (fractions
/// allowed).
fn parse_timeout(value: &str) -> Result<f64, String> {
    match value.trim().parse::<f64>() {
        Ok(secs) if secs.is_finite() && secs > 0.0 => Ok(secs),
        _ => Err(format!("--timeout needs a positive seconds value, got `{value}`")),
    }
}

/// Parses a `--retries` value.
fn parse_retries(value: &str) -> Result<u32, String> {
    value
        .trim()
        .parse::<u32>()
        .map_err(|_| format!("--retries needs an unsigned integer, got `{value}`"))
}

/// Parses a `--connect` address: any non-empty `host:port` string (the
/// socket layer validates it fully at connect time).
fn parse_connect(value: &str) -> Result<String, String> {
    let addr = value.trim();
    if addr.is_empty() || !addr.contains(':') {
        return Err(format!("--connect needs a host:port address, got `{value}`"));
    }
    Ok(addr.to_string())
}

/// Splits and registry-validates an `--only` id list, folding each id
/// to its canonical (lowercase) registry form — `F12` and `f12` name
/// the same experiment.
fn parse_only(ids: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for raw in ids.split(',') {
        let id = raw.trim();
        if id.is_empty() {
            continue;
        }
        match find(id) {
            Some(e) => out.push(e.id().to_string()),
            None => {
                let valid: Vec<&str> = registry().iter().map(|e| e.id()).collect();
                return Err(format!(
                    "unknown experiment id `{id}` (valid ids: {})",
                    valid.join(", ")
                ));
            }
        }
    }
    if out.is_empty() {
        return Err("--only needs a comma-separated id list".to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_run_everything_into_results() {
        let cmd = parse::<&str>(&[]).unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                out_dir: PathBuf::from("results"),
                only: None,
                quick: false,
                seed: None,
                no_cache: false,
                connect: None,
                timeout: None,
                retries: None,
            }
        );
    }

    #[test]
    fn positional_quick_and_only_combine() {
        let cmd = parse(&["out", "--quick", "--only", "F5,t1"]).unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                out_dir: PathBuf::from("out"),
                only: Some(vec!["f5".into(), "t1".into()]),
                quick: true,
                seed: None,
                no_cache: false,
                connect: None,
                timeout: None,
                retries: None,
            }
        );
    }

    #[test]
    fn only_equals_form_works() {
        let cmd = parse(&["--only=f2h"]).unwrap();
        match cmd {
            Command::Run { only, .. } => assert_eq!(only, Some(vec!["f2h".to_string()])),
            other => panic!("unexpected {other:?}"),
        }
    }

    /// `--only` ids are case-insensitive and fold to the canonical
    /// lowercase registry id, in every spelling and both flag forms.
    #[test]
    fn only_ids_fold_case_to_registry_form() {
        for spelling in ["f12", "F12", "f12 ", " F12"] {
            match parse(&["--only", spelling]).unwrap() {
                Command::Run { only, .. } => {
                    assert_eq!(only, Some(vec!["f12".to_string()]), "spelling {spelling:?}");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        match parse(&["--only=F2H,T1,f5"]).unwrap() {
            Command::Run { only, .. } => {
                assert_eq!(only, Some(vec!["f2h".into(), "t1".into(), "f5".into()]));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn seed_flag_parses_both_forms() {
        let cmd = parse(&["--only", "f12", "--seed", "42"]).unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                out_dir: PathBuf::from("results"),
                only: Some(vec!["f12".into()]),
                quick: false,
                seed: Some(42),
                no_cache: false,
                connect: None,
                timeout: None,
                retries: None,
            }
        );
        match parse(&["--seed=7"]).unwrap() {
            Command::Run { seed, .. } => assert_eq!(seed, Some(7)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn seed_rejects_missing_and_non_integer_values() {
        let err = parse(&["--seed"]).unwrap_err();
        assert!(err.contains("--seed"), "{err}");
        let err = parse(&["--seed", "lots"]).unwrap_err();
        assert!(err.contains("lots"), "{err}");
        let err = parse(&["--seed=-3"]).unwrap_err();
        assert!(err.contains("-3"), "{err}");
        let err = parse(&["--seed=1.5"]).unwrap_err();
        assert!(err.contains("1.5"), "{err}");
    }

    #[test]
    fn help_always_wins() {
        assert_eq!(parse(&["--help", "whatever"]).unwrap(), Command::Help);
        assert_eq!(parse(&["-h"]).unwrap(), Command::Help);
        assert_eq!(parse(&["--list", "--help"]).unwrap(), Command::Help);
        assert_eq!(parse(&["--check", "--seed", "3", "--help"]).unwrap(), Command::Help);
    }

    #[test]
    fn list_alone_lists() {
        assert_eq!(parse(&["--list"]).unwrap(), Command::List);
    }

    #[test]
    fn contradictory_combinations_are_usage_errors() {
        // --list runs nothing, so run-mode flags contradict it.
        let err = parse(&["--list", "--only", "f5"]).unwrap_err();
        assert!(err.contains("--list") && err.contains("--only"), "{err}");
        let err = parse(&["--list", "--quick"]).unwrap_err();
        assert!(err.contains("--list"), "{err}");
        let err = parse(&["--list", "out"]).unwrap_err();
        assert!(err.contains("out_dir"), "{err}");
        let err = parse(&["--list", "--check"]).unwrap_err();
        assert!(err.contains("--check"), "{err}");
        // --check validates configs; a seed, id selection, cache mode,
        // server address, or output directory is meaningless with it.
        let err = parse(&["--check", "--seed", "3"]).unwrap_err();
        assert!(err.contains("--check") && err.contains("--seed 3"), "{err}");
        let err = parse(&["--check", "--only", "f12"]).unwrap_err();
        assert!(err.contains("--only"), "{err}");
        let err = parse(&["--check", "--no-cache"]).unwrap_err();
        assert!(err.contains("--no-cache"), "{err}");
        let err = parse(&["--check", "out"]).unwrap_err();
        assert!(err.contains("out_dir"), "{err}");
        let err = parse(&["--check", "--connect", "h:1"]).unwrap_err();
        assert!(err.contains("--connect"), "{err}");
        // The server owns its cache; --no-cache cannot ride --connect.
        let err = parse(&["--connect", "127.0.0.1:7117", "--no-cache"]).unwrap_err();
        assert!(err.contains("--no-cache"), "{err}");
        // --check --quick stays valid: quick selects which config to
        // validate.
        assert_eq!(parse(&["--check", "--quick"]).unwrap(), Command::Check { quick: true });
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let err = parse(&["--fast"]).unwrap_err();
        assert!(err.contains("--fast"), "{err}");
        // The old parser treated any non---quick argument as out_dir;
        // a second positional is now an error too.
        let err = parse(&["a", "b"]).unwrap_err();
        assert!(err.contains('b'), "{err}");
        // Unknown flags after --list no longer slide through.
        let err = parse(&["--list", "--bogus"]).unwrap_err();
        assert!(err.contains("--bogus"), "{err}");
    }

    #[test]
    fn connect_parses_both_forms_and_validates_shape() {
        match parse(&["--connect", "127.0.0.1:7117"]).unwrap() {
            Command::Run { connect, .. } => assert_eq!(connect.as_deref(), Some("127.0.0.1:7117")),
            other => panic!("unexpected {other:?}"),
        }
        match parse(&["out", "--quick", "--connect=localhost:9", "--only", "f2"]).unwrap() {
            Command::Run { connect, quick, only, .. } => {
                assert_eq!(connect.as_deref(), Some("localhost:9"));
                assert!(quick);
                assert_eq!(only, Some(vec!["f2".to_string()]));
            }
            other => panic!("unexpected {other:?}"),
        }
        let err = parse(&["--connect"]).unwrap_err();
        assert!(err.contains("--connect"), "{err}");
        let err = parse(&["--connect", "noport"]).unwrap_err();
        assert!(err.contains("host:port"), "{err}");
        let err = parse(&["--connect="]).unwrap_err();
        assert!(err.contains("host:port"), "{err}");
    }

    #[test]
    fn timeout_and_retries_parse_and_require_connect() {
        match parse(&["--connect", "h:1", "--timeout", "2.5", "--retries", "4"]).unwrap() {
            Command::Run { connect, timeout, retries, .. } => {
                assert_eq!(connect.as_deref(), Some("h:1"));
                assert_eq!(timeout, Some(2.5));
                assert_eq!(retries, Some(4));
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&["--connect=h:1", "--timeout=0.25", "--retries=0"]).unwrap() {
            Command::Run { timeout, retries, .. } => {
                assert_eq!(timeout, Some(0.25));
                assert_eq!(retries, Some(0));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Socket policy without a socket is a usage error.
        let err = parse(&["--timeout", "5"]).unwrap_err();
        assert!(err.contains("--timeout") && err.contains("--connect"), "{err}");
        let err = parse(&["--retries", "1"]).unwrap_err();
        assert!(err.contains("--retries") && err.contains("--connect"), "{err}");
        // Value validation.
        for bad in ["0", "-1", "nan", "inf", ""] {
            let err = parse(&["--connect", "h:1", &format!("--timeout={bad}")]).unwrap_err();
            assert!(err.contains("--timeout"), "{bad}: {err}");
        }
        let err = parse(&["--connect", "h:1", "--retries", "-2"]).unwrap_err();
        assert!(err.contains("--retries"), "{err}");
        // --check / --list reject them like other run-mode flags.
        let err = parse(&["--check", "--connect", "h:1", "--timeout", "1"]).unwrap_err();
        assert!(err.contains("--timeout 1"), "{err}");
    }

    #[test]
    fn only_validates_ids_against_registry() {
        let err = parse(&["--only", "f99"]).unwrap_err();
        assert!(err.contains("f99"), "{err}");
        // The error enumerates every valid id so the user never needs a
        // second round trip through --list.
        for e in registry() {
            assert!(err.contains(e.id()), "error omits valid id {}: {err}", e.id());
        }
        let err = parse(&["--only"]).unwrap_err();
        assert!(err.contains("--only"), "{err}");
        let err = parse(&["--only", ","]).unwrap_err();
        assert!(err.contains("--only"), "{err}");
    }

    #[test]
    fn no_cache_flag_is_recognized() {
        match parse(&["--no-cache"]).unwrap() {
            Command::Run { no_cache, .. } => assert!(no_cache),
            other => panic!("unexpected {other:?}"),
        }
        match parse(&["out", "--quick", "--no-cache", "--only", "f5"]).unwrap() {
            Command::Run { no_cache, quick, .. } => {
                assert!(no_cache);
                assert!(quick);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn check_flag_selects_the_validator() {
        assert_eq!(parse(&["--check"]).unwrap(), Command::Check { quick: false });
        assert_eq!(parse(&["--check", "--quick"]).unwrap(), Command::Check { quick: true });
        assert_eq!(parse(&["--quick", "--check"]).unwrap(), Command::Check { quick: true });
    }

    #[test]
    fn list_text_names_every_experiment() {
        let text = list_text();
        for e in registry() {
            assert!(text.contains(e.id()), "missing {}", e.id());
            assert!(text.contains(e.title()), "missing title for {}", e.id());
        }
    }
}
