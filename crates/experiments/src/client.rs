//! Retrying client for the `nvpd` campaign server.
//!
//! [`submit`] connects, sends one [`CampaignRequest`], and reads the
//! streamed status/result frames back. The returned
//! [`crate::job::CampaignResult`] is the same value an in-process
//! [`crate::job::run_request`] call produces — render it with
//! `CampaignResult::write` and the artifacts are byte-identical to a
//! local run (pinned by the golden digests and the loopback tests).
//!
//! ## Failure handling
//!
//! Every socket operation is bounded: connects use
//! [`TcpStream::connect_timeout`], the submit/accept handshake runs
//! under [`ClientConfig::timeout`], and the (potentially long) wait for
//! the result frame under the separate, generous
//! [`ClientConfig::result_timeout`] — a dead server or a half-delivered
//! frame can no longer hang the client forever. Failures are *typed*
//! ([`ClientError`]): transport-level problems are `Unreachable` or
//! `Retryable` and are retried up to [`ClientConfig::retries`] times
//! with jittered exponential backoff, while protocol violations
//! (`Fatal`) and explicit non-retryable server rejections (`Rejected`)
//! fail fast.
//!
//! Retrying a submission is safe because the server deduplicates by
//! content-addressed idempotency key ([`crate::wire::request_key`]): a
//! resubmitted request after a client-observed failure returns the
//! original job's result instead of simulating twice.
//!
//! The backoff schedule is deterministic — delays derive from the
//! request key and attempt number through a splitmix-style mixer, not
//! from the wall clock — so test runs and reproductions see identical
//! retry timing.

use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::job::{CampaignRequest, CampaignResult};
use crate::wire::{read_frame, request_key, write_frame, Message};

/// Socket-level policy for [`submit_with`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientConfig {
    /// Bound on connecting and on the submit/accept handshake (each
    /// read/write individually). Short: a healthy server answers the
    /// handshake immediately even when the queue is deep.
    pub timeout: Duration,
    /// Bound on waiting for the result frame after admission. Generous:
    /// a full-campaign simulation legitimately takes minutes.
    pub result_timeout: Duration,
    /// Additional attempts after the first (so `retries: 2` means at
    /// most three connects) for `Unreachable`/`Retryable` failures.
    pub retries: u32,
    /// Base delay of the exponential backoff between attempts; attempt
    /// `n` waits roughly `backoff_base * 2^n`, jittered ±50% and capped
    /// at 64× the base.
    pub backoff_base: Duration,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            timeout: Duration::from_secs(10),
            result_timeout: Duration::from_secs(900),
            retries: 2,
            backoff_base: Duration::from_millis(50),
        }
    }
}

/// Why a submission failed, split by what the caller should do next.
#[derive(Debug)]
pub enum ClientError {
    /// No server answered at the address: resolution failed, the
    /// connect was refused, or it timed out. `repro --connect` renders
    /// this as a usage error (exit 2).
    Unreachable {
        /// The address as given by the caller.
        addr: String,
        /// Underlying failure detail.
        detail: String,
    },
    /// A transient transport failure after connecting (timeout, reset,
    /// truncated frame). Retried automatically; safe to resubmit —
    /// the server deduplicates by idempotency key.
    Retryable {
        /// Underlying failure detail.
        detail: String,
    },
    /// A protocol violation (undecodable or out-of-order frame).
    /// Never retried: the peer is not speaking `nvpd/3`.
    Fatal {
        /// Underlying failure detail.
        detail: String,
    },
    /// The server explicitly rejected the request and marked the
    /// rejection non-retryable (e.g. an admission-gate failure).
    Rejected {
        /// The server's reason string.
        reason: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Unreachable { addr, detail } => {
                write!(f, "server unreachable at {addr}: {detail}")
            }
            ClientError::Retryable { detail } => write!(f, "transient failure: {detail}"),
            ClientError::Fatal { detail } => write!(f, "protocol error: {detail}"),
            ClientError::Rejected { reason } => write!(f, "server rejected job: {reason}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl ClientError {
    /// Whether [`submit_with`] may try this submission again.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        matches!(self, ClientError::Unreachable { .. } | ClientError::Retryable { .. })
    }
}

/// A completed remote job: admission status plus the result values.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteOutcome {
    /// Server-assigned job id.
    pub job: u64,
    /// Jobs that were ahead of this one in the admission queue.
    pub queued: u32,
    /// True when the server answered from its completed-job store (the
    /// request's idempotency key matched an already-finished job)
    /// without running any new simulation.
    pub replayed: bool,
    /// The campaign output, identical in shape and bytes to an
    /// in-process run of the same request.
    pub result: CampaignResult,
}

/// Splitmix64-style mixer: the deterministic jitter source for backoff.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic jittered exponential backoff delay before retry
/// attempt `attempt` (1-based): `base * 2^(attempt-1)` capped at
/// `base * 64`, jittered to 50–150% by a mix of the request key and
/// the attempt number. No wall-clock input — identical requests see
/// identical schedules.
fn backoff_delay(cfg: &ClientConfig, key: &[u8; 32], attempt: u32) -> Duration {
    let base_ms = cfg.backoff_base.as_millis() as u64;
    let exp = base_ms.saturating_mul(1u64 << attempt.saturating_sub(1).min(6));
    let seed =
        u64::from_le_bytes(key[..8].try_into().expect("8 bytes")).wrapping_add(u64::from(attempt));
    // Jitter factor in [0.5, 1.5): keeps retry storms from phase-locking
    // while staying reproducible.
    let jitter_milli = 500 + mix64(seed) % 1000;
    Duration::from_millis(exp.saturating_mul(jitter_milli) / 1000)
}

/// Maps a transport-layer error seen mid-conversation to a typed one.
/// Timeouts, resets, and truncation are transient; an undecodable
/// frame (`InvalidData`) means the peer is not speaking our protocol.
fn classify_io(e: &io::Error) -> ClientError {
    match e.kind() {
        io::ErrorKind::InvalidData => ClientError::Fatal { detail: e.to_string() },
        _ => ClientError::Retryable { detail: e.to_string() },
    }
}

/// One connect-submit-await cycle; [`submit_with`] wraps it in retry.
fn attempt(
    addr: &str,
    req: &CampaignRequest,
    cfg: &ClientConfig,
) -> Result<RemoteOutcome, ClientError> {
    let unreachable = |detail: String| ClientError::Unreachable { addr: addr.to_string(), detail };
    let mut candidates = addr.to_socket_addrs().map_err(|e| unreachable(e.to_string()))?;
    let sock_addr =
        candidates.next().ok_or_else(|| unreachable("address resolved to nothing".into()))?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, cfg.timeout)
        .map_err(|e| unreachable(e.to_string()))?;
    stream
        .set_write_timeout(Some(cfg.timeout))
        .and_then(|()| stream.set_read_timeout(Some(cfg.timeout)))
        .map_err(|e| ClientError::Retryable { detail: e.to_string() })?;

    write_frame(&mut stream, &Message::Submit(req.clone())).map_err(|e| classify_io(&e))?;
    let (job, queued) = match read_frame(&mut stream).map_err(|e| classify_io(&e))? {
        Message::Accepted { job, queued } => (job, queued),
        Message::Reject { reason, retryable: true } => {
            return Err(ClientError::Retryable {
                detail: format!("server rejected job: {reason}"),
            });
        }
        Message::Reject { reason, retryable: false } => {
            return Err(ClientError::Rejected { reason });
        }
        other => {
            return Err(ClientError::Fatal {
                detail: format!("expected Accepted frame, got {other:?}"),
            });
        }
    };

    // Admitted: the wait for the result is legitimately long (a cold
    // full campaign simulates for minutes), so switch to the generous
    // bound for the remaining reads.
    stream
        .set_read_timeout(Some(cfg.result_timeout))
        .map_err(|e| ClientError::Retryable { detail: e.to_string() })?;
    match read_frame(&mut stream).map_err(|e| classify_io(&e))? {
        Message::Result { job: done, replayed, result } if done == job => {
            Ok(RemoteOutcome { job, queued, replayed, result })
        }
        Message::Result { job: done, .. } => Err(ClientError::Fatal {
            detail: format!("result frame for job {done}, expected {job}"),
        }),
        Message::Reject { reason, retryable: true } => {
            Err(ClientError::Retryable { detail: format!("job {job} failed: {reason}") })
        }
        Message::Reject { reason, retryable: false } => Err(ClientError::Rejected { reason }),
        other => {
            Err(ClientError::Fatal { detail: format!("expected Result frame, got {other:?}") })
        }
    }
}

/// Submits one campaign job to a server at `addr` (e.g.
/// `127.0.0.1:7117`) under an explicit [`ClientConfig`], retrying
/// transient failures with deterministic jittered backoff.
///
/// # Errors
///
/// The *last* attempt's [`ClientError`] once retries are exhausted;
/// `Fatal` and `Rejected` errors return immediately without retry.
pub fn submit_with(
    addr: &str,
    req: &CampaignRequest,
    cfg: &ClientConfig,
) -> Result<RemoteOutcome, ClientError> {
    let key = request_key(req);
    let mut tries = 0u32;
    loop {
        match attempt(addr, req, cfg) {
            Ok(outcome) => return Ok(outcome),
            Err(e) if e.is_retryable() && tries < cfg.retries => {
                tries += 1;
                eprintln!("warning: {e}; retrying ({tries}/{})", cfg.retries);
                std::thread::sleep(backoff_delay(cfg, &key, tries));
            }
            Err(e) => return Err(e),
        }
    }
}

/// [`submit_with`] under the default [`ClientConfig`], with the typed
/// error flattened into an [`io::Error`] for callers that only
/// propagate.
///
/// # Errors
///
/// Any [`ClientError`], stringified; the typed variants are available
/// through [`submit_with`].
pub fn submit(addr: &str, req: &CampaignRequest) -> io::Result<RemoteOutcome> {
    submit_with(addr, req, &ClientConfig::default()).map_err(io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn quick_cfg() -> ClientConfig {
        ClientConfig {
            timeout: Duration::from_millis(200),
            result_timeout: Duration::from_millis(200),
            retries: 1,
            backoff_base: Duration::from_millis(1),
        }
    }

    fn tiny_request() -> CampaignRequest {
        CampaignRequest::all(crate::ExpConfig::quick())
    }

    #[test]
    fn connecting_to_a_dead_port_is_unreachable() {
        // Bind-then-drop: the port was just free, so the connect is
        // refused (or times out) rather than hanging.
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let addr = format!("127.0.0.1:{port}");
        let err = submit_with(&addr, &tiny_request(), &quick_cfg()).unwrap_err();
        match &err {
            ClientError::Unreachable { addr: a, .. } => assert_eq!(a, &addr),
            other => panic!("expected Unreachable, got {other:?}"),
        }
        assert!(err.to_string().contains(&format!("server unreachable at {addr}")));
        assert!(err.is_retryable());
    }

    #[test]
    fn unresolvable_address_is_unreachable() {
        let err = submit_with("definitely-not-a-host.invalid:1", &tiny_request(), &quick_cfg())
            .unwrap_err();
        assert!(matches!(err, ClientError::Unreachable { .. }), "got {err:?}");
    }

    #[test]
    fn bound_but_never_accepting_socket_trips_the_read_timeout() {
        // The listener's kernel backlog completes the TCP handshake, so
        // the connect and the submit write succeed — then no Accepted
        // frame ever arrives. The read must time out (Retryable), not
        // wedge the client forever.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let err = submit_with(&addr, &tiny_request(), &quick_cfg()).unwrap_err();
        match err {
            ClientError::Retryable { .. } => {}
            other => panic!("expected Retryable timeout, got {other:?}"),
        }
        drop(listener);
    }

    #[test]
    fn backoff_is_deterministic_jittered_and_capped() {
        let cfg =
            ClientConfig { backoff_base: Duration::from_millis(100), ..ClientConfig::default() };
        let key = request_key(&tiny_request());
        for attempt in 1..=10u32 {
            let a = backoff_delay(&cfg, &key, attempt);
            let b = backoff_delay(&cfg, &key, attempt);
            assert_eq!(a, b, "same inputs, same delay");
            // Exponent is capped at 2^6; jitter stays within ±50%.
            assert!(a >= Duration::from_millis(50), "attempt {attempt}: {a:?}");
            assert!(a < Duration::from_millis(100 * 64 * 3 / 2), "attempt {attempt}: {a:?}");
        }
        // Different attempts (and different keys) jitter differently.
        let d1 = backoff_delay(&cfg, &key, 1);
        let d2 = backoff_delay(&cfg, &key, 2);
        assert_ne!(d1, d2);
    }

    #[test]
    fn fatal_errors_are_not_retryable() {
        let fatal = ClientError::Fatal { detail: "bad frame".into() };
        let rejected = ClientError::Rejected { reason: "nope".into() };
        assert!(!fatal.is_retryable());
        assert!(!rejected.is_retryable());
    }
}
