//! Thin client for the `nvpd` campaign server.
//!
//! [`submit`] connects, sends one [`CampaignRequest`], and reads the
//! streamed status/result frames back. The returned
//! [`crate::job::CampaignResult`] is the same value an in-process
//! [`crate::job::run_request`] call produces — render it with
//! `CampaignResult::write` and the artifacts are byte-identical to a
//! local run (pinned by the golden digests and the loopback tests).

use std::io;
use std::net::TcpStream;

use crate::job::{CampaignRequest, CampaignResult};
use crate::wire::{read_frame, write_frame, Message};

/// A completed remote job: admission status plus the result values.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteOutcome {
    /// Server-assigned job id.
    pub job: u64,
    /// Jobs that were ahead of this one in the admission queue.
    pub queued: u32,
    /// The campaign output, identical in shape and bytes to an
    /// in-process run of the same request.
    pub result: CampaignResult,
}

/// Submits one campaign job to a server at `addr` (e.g.
/// `127.0.0.1:7117`) and blocks until the result frame arrives.
///
/// # Errors
///
/// Connection and framing errors pass through; a server
/// [`Message::Reject`] becomes [`io::ErrorKind::Other`] carrying the
/// server's reason, and any out-of-order frame is
/// [`io::ErrorKind::InvalidData`].
pub fn submit(addr: &str, req: &CampaignRequest) -> io::Result<RemoteOutcome> {
    let mut stream = TcpStream::connect(addr)?;
    write_frame(&mut stream, &Message::Submit(req.clone()))?;
    let (job, queued) = match read_frame(&mut stream)? {
        Message::Accepted { job, queued } => (job, queued),
        Message::Reject { reason } => {
            return Err(io::Error::other(format!("server rejected job: {reason}")));
        }
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected Accepted frame, got {other:?}"),
            ));
        }
    };
    match read_frame(&mut stream)? {
        Message::Result { job: done, result } if done == job => {
            Ok(RemoteOutcome { job, queued, result })
        }
        Message::Result { job: done, .. } => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("result frame for job {done}, expected {job}"),
        )),
        Message::Reject { reason } => Err(io::Error::other(format!("job {job} failed: {reason}"))),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected Result frame, got {other:?}"),
        )),
    }
}
