//! Shared helpers: standard platforms, kernels, and run plumbing.
//!
//! The standard inputs (synthetic frame, kernel instances, wearable
//! traces, unconstrained task costs) are pure functions of their
//! parameters and were historically rebuilt by every experiment. They
//! are now memoized in process-wide caches so concurrent experiments
//! share one instance; the caches are keyed on every parameter that
//! influences the value, so results are unchanged.
//!
//! Simulation *runs* are deduplicated the same way: [`run_nvp_with`]
//! and [`run_wait`] route through the content-addressed
//! [`crate::simcache`], so identical `(program, config, trace)` runs
//! issued by different experiments simulate only once per process.

use std::collections::BTreeMap;
use std::ops::Deref;
use std::sync::{Arc, Mutex, OnceLock};

use nvp_core::{
    measure_task, BackupModel, BackupPolicy, IntermittentSystem, RunReport, SystemConfig, TaskCost,
    WaitComputeConfig, WaitComputeSystem,
};
use nvp_device::NvmTechnology;
use nvp_energy::harvester::SourceKind;
use nvp_energy::PowerTrace;
use nvp_workloads::{GrayImage, KernelInstance, KernelKind};

use crate::simcache::{self, Digest, KeyHasher};
use crate::ExpConfig;

/// Volatile state bits of the NV16 core (registers + PC + pipeline FFs),
/// matching the published chips' ~2 kbit backup payloads.
pub(crate) const STATE_BITS: u64 = 2048;

/// Frame identity: everything `GrayImage::synthetic` consumes.
type FrameKey = (u64, usize, usize);

fn frame_key(cfg: &ExpConfig) -> FrameKey {
    (cfg.frame_seed, cfg.frame_w, cfg.frame_h)
}

/// A lazily-initialized process-wide cache of shared values. A
/// `BTreeMap` keeps the cache's internal order a pure function of the
/// keys, so nothing downstream can ever observe insertion order.
type Memo<K, V> = OnceLock<Mutex<BTreeMap<K, Arc<V>>>>;

/// Looks up `key` in a lazily-initialized process-wide cache, building
/// the value with `make` on first use.
fn memo<K, V>(cell: &'static Memo<K, V>, key: K, make: impl FnOnce() -> V) -> Arc<V>
where
    K: Ord,
{
    let cache = cell.get_or_init(|| Mutex::new(BTreeMap::new()));
    // Holding the lock across `make` keeps the code simple and means a
    // value is only ever built once; entries are tiny and builds are
    // fast relative to the simulations that consume them.
    let mut map = cache.lock().unwrap();
    Arc::clone(map.entry(key).or_insert_with(|| Arc::new(make())))
}

/// The standard frame for image kernels.
pub(crate) fn frame(cfg: &ExpConfig) -> Arc<GrayImage> {
    static CACHE: Memo<FrameKey, GrayImage> = OnceLock::new();
    memo(&CACHE, frame_key(cfg), || GrayImage::synthetic(cfg.frame_seed, cfg.frame_w, cfg.frame_h))
}

/// Builds (or fetches) a kernel instance on the standard frame.
pub(crate) fn kernel(cfg: &ExpConfig, kind: KernelKind) -> Arc<KernelInstance> {
    static CACHE: Memo<(FrameKey, KernelKind), KernelInstance> = OnceLock::new();
    memo(&CACHE, (frame_key(cfg), kind), || {
        kind.build(&frame(cfg)).expect("kernel builds on standard frame")
    })
}

/// A shared power trace paired with its content digest, so the digest
/// is computed once per trace no matter how many cached runs use it.
#[derive(Clone)]
pub(crate) struct SimTrace(Arc<(PowerTrace, Digest)>);

impl SimTrace {
    pub(crate) fn digest(&self) -> &Digest {
        &self.0 .1
    }
}

impl Deref for SimTrace {
    type Target = PowerTrace;

    fn deref(&self) -> &PowerTrace {
        &self.0 .0
    }
}

/// A memoized harvester trace for any source kind. F7's technology ×
/// harvester grid and F11's solar variant hit this instead of
/// regenerating the trace per grid cell.
pub(crate) fn source_trace(cfg: &ExpConfig, kind: SourceKind, seed: u64) -> SimTrace {
    static CACHE: Memo<(&'static str, u64, u64), (PowerTrace, Digest)> = OnceLock::new();
    SimTrace(memo(&CACHE, (kind.name(), seed, cfg.trace_duration_s.to_bits()), || {
        let trace = kind.generate(seed, cfg.trace_duration_s);
        let digest = simcache::trace_digest(&trace);
        (trace, digest)
    }))
}

/// The standard wearable trace for a profile seed.
pub(crate) fn watch_trace(cfg: &ExpConfig, seed: u64) -> SimTrace {
    source_trace(cfg, SourceKind::WristWatch, seed)
}

/// The reference hardware-NVP backup model (distributed FeRAM NVFFs).
pub(crate) fn standard_backup() -> BackupModel {
    BackupModel::distributed(NvmTechnology::Feram, STATE_BITS)
}

/// System configuration sized for a kernel's memory needs.
pub(crate) fn system_config_for(inst: &KernelInstance) -> SystemConfig {
    let mut cfg = SystemConfig::default();
    cfg.dmem_words = cfg.dmem_words.max(inst.min_dmem_words());
    cfg
}

/// System configuration for a kernel on an NVP whose *data memory* is
/// built from the given technology: loads/stores pay that technology's
/// per-bit energies instead of the generic defaults.
pub(crate) fn system_config_for_tech(
    inst: &KernelInstance,
    tech: nvp_device::NvmTechnology,
) -> SystemConfig {
    let p = tech.params();
    let mut cfg = system_config_for(inst);
    cfg.energy_model = cfg
        .energy_model
        .with_mem_write_extra(p.write_energy_j(16))
        .with_mem_read_extra(p.read_energy_j(16));
    cfg
}

/// Unconstrained task cost of the standard kernel for `kind`.
///
/// Keyed on the frame identity and kernel kind — the same key space as
/// [`kernel`] — because the cost is a pure function of the generated
/// program and its data.
pub(crate) fn task_cost(cfg: &ExpConfig, kind: KernelKind) -> TaskCost {
    static CACHE: Memo<(FrameKey, KernelKind), TaskCost> = OnceLock::new();
    *memo(&CACHE, (frame_key(cfg), kind), || {
        let inst = kernel(cfg, kind);
        measure_task(inst.program(), &system_config_for(&inst), 500_000_000)
            .expect("kernel terminates under continuous power")
    })
}

/// Runs the hardware NVP over a trace.
pub(crate) fn run_nvp(inst: &KernelInstance, trace: &SimTrace) -> RunReport {
    run_nvp_with(inst, trace, system_config_for(inst), standard_backup(), BackupPolicy::demand())
}

/// Runs an NVP variant with explicit configuration, deduplicated
/// through the simulation cache: the key covers the program image, the
/// `Debug` renderings of the configuration triple, and the trace
/// digest.
pub(crate) fn run_nvp_with(
    inst: &KernelInstance,
    trace: &SimTrace,
    sys: SystemConfig,
    backup: BackupModel,
    policy: BackupPolicy,
) -> RunReport {
    let mut key = KeyHasher::new("nvp-simcache/1:nvp");
    key.program(inst.program());
    key.debug(&sys);
    key.debug(&backup);
    key.debug(&policy);
    key.digest(trace.digest());
    simcache::cached_run(key.finish(), || {
        let mut system =
            IntermittentSystem::new(inst.program(), sys, backup, policy).expect("platform builds");
        let report = system.run(trace).expect("workload does not fault");
        crate::stats::record_superblocks(system.machine().superblock_stats());
        report
    })
}

/// Runs the wait-then-compute baseline on the standard kernel for
/// `kind`, ESD sized for the kernel's task. Cached like
/// [`run_nvp_with`], under a distinct run-kind tag.
pub(crate) fn run_wait(cfg: &ExpConfig, kind: KernelKind, trace: &SimTrace) -> RunReport {
    let inst = kernel(cfg, kind);
    let cost = task_cost(cfg, kind);
    let mut wcfg = WaitComputeConfig::default().sized_for(&cost, 1.3);
    wcfg.dmem_words = wcfg.dmem_words.max(inst.min_dmem_words());
    let mut key = KeyHasher::new("nvp-simcache/1:wait");
    key.program(inst.program());
    key.debug(&wcfg);
    key.digest(trace.digest());
    simcache::cached_run(key.finish(), || {
        let mut system = WaitComputeSystem::new(inst.program(), wcfg).expect("platform builds");
        system.run(trace).expect("workload does not fault")
    })
}

/// Runs the software-checkpointing baseline (Hibernus-class: volatile
/// SRAM MCU, CPU-copied checkpoints into FeRAM at a voltage trigger).
pub(crate) fn run_software_ckpt(inst: &KernelInstance, trace: &SimTrace) -> RunReport {
    let mut sys = system_config_for(inst);
    sys.dmem_nonvolatile = false;
    let ram_words = inst.min_dmem_words() as u64;
    let backup = BackupModel::software(NvmTechnology::Feram, STATE_BITS, ram_words, sys.clock_hz);
    run_nvp_with(inst, trace, sys, backup, BackupPolicy::OnDemand { margin: 1.3 })
}

/// Seconds per completed frame, or `None` if no frame completed.
pub(crate) fn seconds_per_frame(report: &RunReport) -> Option<f64> {
    (report.tasks_completed > 0).then(|| report.duration_s / report.tasks_completed as f64)
}
