//! Shared helpers: standard platforms, kernels, and run plumbing.

use nvp_core::{
    measure_task, BackupModel, BackupPolicy, IntermittentSystem, RunReport, SystemConfig,
    TaskCost, WaitComputeConfig, WaitComputeSystem,
};
use nvp_device::NvmTechnology;
use nvp_energy::{harvester, PowerTrace};
use nvp_workloads::{GrayImage, KernelInstance, KernelKind};

use crate::ExpConfig;

/// Volatile state bits of the NV16 core (registers + PC + pipeline FFs),
/// matching the published chips' ~2 kbit backup payloads.
pub(crate) const STATE_BITS: u64 = 2048;

/// The standard frame for image kernels.
pub(crate) fn frame(cfg: &ExpConfig) -> GrayImage {
    GrayImage::synthetic(cfg.frame_seed, cfg.frame_w, cfg.frame_h)
}

/// Builds a kernel instance on the standard frame.
pub(crate) fn kernel(cfg: &ExpConfig, kind: KernelKind) -> KernelInstance {
    kind.build(&frame(cfg)).expect("kernel builds on standard frame")
}

/// The standard wearable trace for a profile seed.
pub(crate) fn watch_trace(cfg: &ExpConfig, seed: u64) -> PowerTrace {
    harvester::wrist_watch(seed, cfg.trace_duration_s)
}

/// The reference hardware-NVP backup model (distributed FeRAM NVFFs).
pub(crate) fn standard_backup() -> BackupModel {
    BackupModel::distributed(NvmTechnology::Feram, STATE_BITS)
}

/// System configuration sized for a kernel's memory needs.
pub(crate) fn system_config_for(inst: &KernelInstance) -> SystemConfig {
    let mut cfg = SystemConfig::default();
    cfg.dmem_words = cfg.dmem_words.max(inst.min_dmem_words());
    cfg
}

/// System configuration for a kernel on an NVP whose *data memory* is
/// built from the given technology: loads/stores pay that technology's
/// per-bit energies instead of the generic defaults.
pub(crate) fn system_config_for_tech(
    inst: &KernelInstance,
    tech: nvp_device::NvmTechnology,
) -> SystemConfig {
    let p = tech.params();
    let mut cfg = system_config_for(inst);
    cfg.energy_model = cfg
        .energy_model
        .with_mem_write_extra(p.write_energy_j(16))
        .with_mem_read_extra(p.read_energy_j(16));
    cfg
}

/// Unconstrained task cost of a kernel.
pub(crate) fn task_cost(inst: &KernelInstance) -> TaskCost {
    measure_task(inst.program(), &system_config_for(inst), 500_000_000)
        .expect("kernel terminates under continuous power")
}

/// Runs the hardware NVP over a trace.
pub(crate) fn run_nvp(inst: &KernelInstance, trace: &PowerTrace) -> RunReport {
    run_nvp_with(inst, trace, system_config_for(inst), standard_backup(), BackupPolicy::demand())
}

/// Runs an NVP variant with explicit configuration.
pub(crate) fn run_nvp_with(
    inst: &KernelInstance,
    trace: &PowerTrace,
    sys: SystemConfig,
    backup: BackupModel,
    policy: BackupPolicy,
) -> RunReport {
    let mut system = IntermittentSystem::new(inst.program(), sys, backup, policy)
        .expect("platform builds");
    system.run(trace).expect("workload does not fault")
}

/// Runs the wait-then-compute baseline, ESD sized for the kernel's task.
pub(crate) fn run_wait(inst: &KernelInstance, trace: &PowerTrace) -> RunReport {
    let cost = task_cost(inst);
    let mut cfg = WaitComputeConfig::default().sized_for(&cost, 1.3);
    cfg.dmem_words = cfg.dmem_words.max(inst.min_dmem_words());
    let mut system = WaitComputeSystem::new(inst.program(), cfg).expect("platform builds");
    system.run(trace).expect("workload does not fault")
}

/// Runs the software-checkpointing baseline (Hibernus-class: volatile
/// SRAM MCU, CPU-copied checkpoints into FeRAM at a voltage trigger).
pub(crate) fn run_software_ckpt(inst: &KernelInstance, trace: &PowerTrace) -> RunReport {
    let mut sys = system_config_for(inst);
    sys.dmem_nonvolatile = false;
    let ram_words = inst.min_dmem_words() as u64;
    let backup = BackupModel::software(NvmTechnology::Feram, STATE_BITS, ram_words, sys.clock_hz);
    run_nvp_with(inst, trace, sys, backup, BackupPolicy::OnDemand { margin: 1.3 })
}

/// Seconds per completed frame, or `None` if no frame completed.
pub(crate) fn seconds_per_frame(report: &RunReport) -> Option<f64> {
    (report.tasks_completed > 0).then(|| report.duration_s / report.tasks_completed as f64)
}
