//! Experiment configuration.

use serde::{Deserialize, Serialize};

/// Shared parameters for the experiment suite.
///
/// [`ExpConfig::default`] runs the full evaluation (10 s traces, five
/// profiles, 32×32 frames); [`ExpConfig::quick`] is a reduced
/// configuration for tests and smoke runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpConfig {
    /// Simulated trace length per run, seconds.
    pub trace_duration_s: f64,
    /// Seeds of the wearable "watch" profiles to evaluate.
    pub profile_seeds: Vec<u64>,
    /// Seed for the synthetic sensor frame.
    pub frame_seed: u64,
    /// Frame width, pixels.
    pub frame_w: usize,
    /// Frame height, pixels.
    pub frame_h: usize,
    /// Monte-Carlo trials per fault-rate point in the F12 resilience
    /// campaign.
    pub fault_trials: usize,
    /// Base seed for the F12 fault-injection campaign (`repro --seed`).
    pub fault_seed: u64,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            trace_duration_s: 10.0,
            profile_seeds: vec![1, 2, 3, 4, 5],
            frame_seed: 7,
            frame_w: 32,
            frame_h: 32,
            fault_trials: 5,
            fault_seed: 1,
        }
    }
}

impl ExpConfig {
    /// Reduced configuration for fast test runs.
    #[must_use]
    pub fn quick() -> Self {
        ExpConfig {
            trace_duration_s: 2.0,
            profile_seeds: vec![1, 2],
            frame_seed: 7,
            frame_w: 16,
            frame_h: 16,
            fault_trials: 3,
            fault_seed: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller_than_default() {
        let full = ExpConfig::default();
        let quick = ExpConfig::quick();
        assert!(quick.trace_duration_s < full.trace_duration_s);
        assert!(quick.profile_seeds.len() < full.profile_seeds.len());
        assert!(quick.frame_w * quick.frame_h < full.frame_w * full.frame_h);
        assert!(quick.fault_trials < full.fault_trials);
        assert_eq!(quick.fault_seed, full.fault_seed, "quick keeps the default fault seed");
    }
}
