//! **F10 — backup-policy sweep (extension experiment).**
//!
//! How much reserve to keep before triggering a demand backup (the
//! TECS'17 bounded-energy-management question), and what purely periodic
//! checkpointing (Mementos-class) costs in lost work on turbulent traces.

use nvp_core::BackupPolicy;
use nvp_workloads::KernelKind;
use serde::{Deserialize, Serialize};

use crate::common::{kernel, run_nvp_with, standard_backup, system_config_for, watch_trace};
use crate::report::fmt;
use crate::{ExpConfig, Table};

/// Swept demand-backup margins (× backup energy).
pub const MARGINS: [f64; 5] = [1.0, 1.5, 2.0, 3.0, 5.0];
/// Swept periodic checkpoint intervals, seconds.
pub const INTERVALS_S: [f64; 3] = [0.005, 0.02, 0.1];

/// One policy point (first profile).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Policy description.
    pub policy: String,
    /// Forward progress.
    pub fp: u64,
    /// Instructions lost to rollbacks.
    pub lost: u64,
    /// Backups performed.
    pub backups: u64,
    /// Rollbacks suffered.
    pub rollbacks: u64,
}

/// Sweeps demand margins and periodic intervals. Each policy point is
/// an independent simulation; the combined policy list is evaluated on
/// the shared thread pool with margins first, intervals after, as
/// before.
#[must_use]
pub fn rows(cfg: &ExpConfig) -> Vec<Row> {
    let inst = kernel(cfg, KernelKind::Sobel);
    let sys = system_config_for(&inst);
    let trace = watch_trace(cfg, cfg.profile_seeds[0]);
    let policies: Vec<(String, BackupPolicy)> = MARGINS
        .into_iter()
        .map(|margin| (format!("demand margin {margin:.1}"), BackupPolicy::OnDemand { margin }))
        .chain(INTERVALS_S.into_iter().map(|interval_s| {
            (format!("periodic {} ms", interval_s * 1e3), BackupPolicy::Periodic { interval_s })
        }))
        .collect();
    crate::sched::par_map(&policies, |(label, policy)| {
        let r = run_nvp_with(&inst, &trace, sys, standard_backup(), *policy);
        Row {
            policy: label.clone(),
            fp: r.forward_progress(),
            lost: r.lost,
            backups: r.backups,
            rollbacks: r.rollbacks,
        }
    })
}

/// Renders the sweep.
#[must_use]
pub fn table(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "F10",
        "Backup-policy sweep: demand margins vs periodic checkpointing",
        &["policy", "fp", "lost", "backups", "rollbacks"],
    );
    for r in rows(cfg) {
        t.push_row(vec![
            r.policy,
            r.fp.to_string(),
            r.lost.to_string(),
            r.backups.to_string(),
            r.rollbacks.to_string(),
        ]);
    }
    let _ = fmt(0.0, 0); // keep helper linked for future columns
    t
}

/// Feasibility plans: the standard NVP under every swept backup policy.
#[must_use]
pub fn plans(cfg: &ExpConfig) -> Vec<crate::feasibility::CheckItem> {
    use crate::feasibility::{nvp_plan, sweep};

    let inst = kernel(cfg, KernelKind::Sobel);
    let sys = system_config_for(&inst);
    let mut out = vec![
        sweep("demand margins", MARGINS.len()),
        sweep("periodic intervals", INTERVALS_S.len()),
    ];
    for &margin in &MARGINS {
        out.push(nvp_plan(
            format!("demand margin {margin:.1}"),
            &sys,
            standard_backup(),
            &BackupPolicy::OnDemand { margin },
        ));
    }
    for &interval_s in &INTERVALS_S {
        out.push(nvp_plan(
            format!("periodic {:.0} ms", interval_s * 1e3),
            &sys,
            standard_backup(),
            &BackupPolicy::Periodic { interval_s },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safe_margins_never_lose_work() {
        let rows = rows(&ExpConfig::quick());
        for r in rows.iter().filter(|r| r.policy.starts_with("demand")) {
            assert!(r.fp > 0, "{}", r.policy);
            if !r.policy.contains("1.0") {
                assert_eq!(r.rollbacks, 0, "{}", r.policy);
                assert_eq!(r.lost, 0, "{}", r.policy);
            }
        }
    }

    #[test]
    fn greedy_margin_is_unsafe() {
        // Reserving exactly one backup's worth leaves no slack for the
        // instruction in flight when the floor is crossed — the greedy
        // policy's failure mode.
        let rows = rows(&ExpConfig::quick());
        let greedy = rows.iter().find(|r| r.policy.contains("1.0")).unwrap();
        assert!(greedy.rollbacks > 0, "margin 1.0 should occasionally fail to checkpoint");
    }

    #[test]
    fn periodic_policies_lose_work_on_turbulent_traces() {
        let rows = rows(&ExpConfig::quick());
        let periodic: Vec<_> = rows.iter().filter(|r| r.policy.starts_with("periodic")).collect();
        assert_eq!(periodic.len(), INTERVALS_S.len());
        assert!(
            periodic.iter().any(|r| r.rollbacks > 0),
            "at least one periodic interval must suffer rollbacks"
        );
    }

    #[test]
    fn excessive_margin_costs_forward_progress() {
        let rows = rows(&ExpConfig::quick());
        let fp = |m: &str| rows.iter().find(|r| r.policy.contains(m)).unwrap().fp;
        // A 5x reserve starts later and stops earlier than a 1.5x one.
        assert!(fp("margin 1.5") >= fp("margin 5.0"));
    }
}
