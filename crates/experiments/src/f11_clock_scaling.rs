//! **F11 — income-adaptive clock scaling (extension experiment).**
//!
//! The second pillar of the NVP literature after cheap backup: *adapting
//! the compute architecture to exploit dynamic variations in incoming
//! power which would otherwise be wasted* (HPCA'15 / Spendthrift
//! direction). The regime matters on source classes whose income exceeds
//! the base core's draw — an indoor-solar cell delivers ~300 µW against
//! a 210 µW core at 1 MHz, so a fixed-base NVP leaves a third of the
//! income unused (storage fills, surplus spills), while a fixed-fast
//! core churns backups on weak wearable power. The adaptive policy picks
//! the clock per tick from the instantaneous income and buffer fill.
//!
//! Measured finding worth noting: on the wearable traces themselves,
//! pulse power is comparable to the base core draw, so a fixed 1 MHz
//! core already captures nearly everything — adaptation's win comes
//! from covering *both* deployments with one part.

use nvp_core::{BackupPolicy, ClockPolicy, SystemConfig};
use nvp_energy::harvester::SourceKind;
use nvp_workloads::KernelKind;
use serde::{Deserialize, Serialize};

use crate::common::{
    kernel, run_nvp_with, source_trace, standard_backup, system_config_for, watch_trace,
};
use crate::report::{fmt, fmt_ratio};
use crate::{ExpConfig, Table};

/// One clock-policy measurement across the two source classes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Policy description.
    pub policy: String,
    /// Mean forward progress on the wearable profiles.
    pub fp_wrist: f64,
    /// Forward progress on the indoor-solar trace.
    pub fp_solar: f64,
    /// Fraction of converted solar energy lost to storage spill/leak.
    pub solar_waste_fraction: f64,
    /// Combined (wrist + solar) gain over the fixed base clock.
    pub combined_gain: f64,
}

fn measure(cfg: &ExpConfig, sys: SystemConfig, label: &str) -> Row {
    let inst = kernel(cfg, KernelKind::Sobel);
    let n = cfg.profile_seeds.len() as f64;
    // Per-seed runs are independent; summing the ordered results keeps
    // the accumulation order (and thus the f64 value) identical to the
    // sequential loop.
    let fps = crate::sched::par_map(&cfg.profile_seeds, |&seed| {
        run_nvp_with(&inst, &watch_trace(cfg, seed), sys, standard_backup(), BackupPolicy::demand())
            .forward_progress() as f64
    });
    let fp_wrist: f64 = fps.iter().sum();
    let solar = source_trace(cfg, SourceKind::SolarIndoor, cfg.profile_seeds[0]);
    let rs = run_nvp_with(&inst, &solar, sys, standard_backup(), BackupPolicy::demand());
    Row {
        policy: label.to_owned(),
        fp_wrist: fp_wrist / n,
        fp_solar: rs.forward_progress() as f64,
        solar_waste_fraction: rs.energy.storage_wasted.get() / rs.energy.converted.get().max(1e-18),
        combined_gain: 1.0,
    }
}

/// Fixed 1/2/4/8 MHz cores versus the income-adaptive policy, on both
/// the wearable and solar sources.
#[must_use]
pub fn rows(cfg: &ExpConfig) -> Vec<Row> {
    let inst = kernel(cfg, KernelKind::Sobel);
    let variants: Vec<(SystemConfig, &str)> =
        [(1u32, "fixed 1 MHz"), (2, "fixed 2 MHz"), (4, "fixed 4 MHz"), (8, "fixed 8 MHz")]
            .into_iter()
            .map(|(mult, label)| {
                let mut sys = system_config_for(&inst);
                sys.clock_hz = 1e6 * f64::from(mult);
                (sys, label)
            })
            .chain(std::iter::once((
                system_config_for(&inst).with_clock_policy(ClockPolicy::adaptive()),
                "adaptive 1-8 MHz",
            )))
            .collect();
    let mut out = crate::sched::par_map(&variants, |&(sys, label)| measure(cfg, sys, label));
    let base_combined = (out[0].fp_wrist + out[0].fp_solar).max(1.0);
    for r in &mut out {
        r.combined_gain = (r.fp_wrist + r.fp_solar) / base_combined;
    }
    out
}

/// Renders the comparison.
#[must_use]
pub fn table(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "F11",
        "Clock scaling: fixed frequencies vs income-adaptive (sobel; wearable + solar)",
        &["policy", "fp_wrist", "fp_solar", "solar_waste_fraction", "combined_gain"],
    );
    for r in rows(cfg) {
        t.push_row(vec![
            r.policy,
            fmt(r.fp_wrist, 0),
            fmt(r.fp_solar, 0),
            fmt(r.solar_waste_fraction, 3),
            fmt_ratio(r.combined_gain),
        ]);
    }
    t
}

/// Feasibility plans: the standard NVP at every fixed clock multiplier
/// and under the income-adaptive policy.
#[must_use]
pub fn plans(cfg: &ExpConfig) -> Vec<crate::feasibility::CheckItem> {
    use crate::feasibility::{nvp_plan, sweep};

    let inst = kernel(cfg, KernelKind::Sobel);
    let mut out = vec![sweep("clock variants", 5)];
    for mult in [1u32, 2, 4, 8] {
        let mut sys = system_config_for(&inst);
        sys.clock_hz = 1e6 * f64::from(mult);
        out.push(nvp_plan(
            format!("fixed {mult} MHz"),
            &sys,
            standard_backup(),
            &BackupPolicy::demand(),
        ));
    }
    out.push(nvp_plan(
        "adaptive 1-8 MHz",
        &system_config_for(&inst).with_clock_policy(ClockPolicy::adaptive()),
        standard_backup(),
        &BackupPolicy::demand(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get<'a>(rows: &'a [Row], name: &str) -> &'a Row {
        rows.iter().find(|r| r.policy.starts_with(name)).unwrap()
    }

    #[test]
    fn base_clock_spills_solar_surplus() {
        let rows = rows(&ExpConfig::quick());
        assert_eq!(rows.len(), 5);
        let base = get(&rows, "fixed 1 MHz");
        let two = get(&rows, "fixed 2 MHz");
        // The under-clocked core wastes a visible chunk of solar income…
        assert!(
            base.solar_waste_fraction > 0.08,
            "base clock should spill solar surplus: {}",
            base.solar_waste_fraction
        );
        // …which a rightly-sized fixed clock recovers.
        assert!(two.fp_solar > base.fp_solar, "{} vs {}", two.fp_solar, base.fp_solar);
        assert!(two.solar_waste_fraction < base.solar_waste_fraction / 2.0);
    }

    #[test]
    fn overclocking_churns_backups_on_weak_power() {
        // Energy per instruction is clock-independent here, so the only
        // way a faster fixed clock loses is overhead: shorter on-periods
        // mean more backup/restore cycles per committed instruction.
        let rows = rows(&ExpConfig::quick());
        let base = get(&rows, "fixed 1 MHz");
        let fast = get(&rows, "fixed 8 MHz");
        assert!(
            fast.fp_wrist < base.fp_wrist,
            "8 MHz should pay backup churn on wearable power: {} vs {}",
            fast.fp_wrist,
            base.fp_wrist
        );
    }

    #[test]
    fn adaptive_covers_both_deployments() {
        let rows = rows(&ExpConfig::quick());
        let base = get(&rows, "fixed 1 MHz");
        let adaptive = get(&rows, "adaptive");
        // Matches (or beats) the base clock on weak wearable power…
        assert!(
            adaptive.fp_wrist >= base.fp_wrist * 0.97,
            "adaptive wrist {} vs base {}",
            adaptive.fp_wrist,
            base.fp_wrist
        );
        // …and captures the solar surplus better than any fixed clock.
        assert!(
            adaptive.fp_solar > base.fp_solar * 1.15,
            "adaptive solar {} vs base {}",
            adaptive.fp_solar,
            base.fp_solar
        );
        for r in &rows {
            assert!(
                adaptive.combined_gain >= r.combined_gain * 0.999,
                "adaptive ({}) must dominate {} ({})",
                adaptive.combined_gain,
                r.policy,
                r.combined_gain
            );
        }
    }
}
