//! **F12 — fault-injection resilience campaign (extension experiment).**
//!
//! Monte-Carlo stress test of the recovery path itself: seeded
//! [`FaultPlan`]s tear backups mid-write, flip stored checkpoint bits
//! during off-time, and fail restores outright, across all three backup
//! styles (distributed NVFFs, centralized copy, software
//! checkpointing). Reported per (style × fault-rate) cell: forward
//! progress relative to the fault-free baseline, committed work lost to
//! corruption, fault/recovery event totals, and the distribution of
//! recovery latencies (corrupt restore → next durable point).
//!
//! *Anchor: reconstructed — the survey has no published fault-injection
//! figure; rates and retention profile are framework choices.*
//!
//! Unlike every other experiment this one does **not** route through
//! the simulation cache: each trial needs the observer event stream
//! (for recovery latencies), and per-trial fault seeds make every run
//! unique anyway. Determinism is preserved the same way as everywhere
//! else — each trial is a pure function of `(program, config, plan,
//! trace)` and the internal `par_map` returns results in input order,
//! so the table is bit-identical across reruns and thread counts
//! (pinned by `tests/fault_resilience.rs`).

use std::sync::Arc;

use nvp_core::{
    BackupModel, BackupPolicy, FaultPlan, IntermittentSystem, RunReport, SimEvent, SimObserver,
    SystemConfig,
};
use nvp_device::{NvmTechnology, RelaxPolicy, RetentionShaper};
use nvp_sim::MachineImage;
use nvp_workloads::{KernelInstance, KernelKind};
use serde::{Deserialize, Serialize};

use crate::common::{kernel, system_config_for, watch_trace, STATE_BITS};
use crate::report::{fmt, fmt_ratio};
use crate::sched;
use crate::{ExpConfig, Table};

/// Injected fault rates (tear probability per backup; restore failures
/// run at half this rate). `0.0` is the fault-free control row — its
/// forward-progress ratio is exactly 1 by construction.
pub const FAULT_RATES: [f64; 3] = [0.0, 0.05, 0.2];

/// Retention profile for faulted cells: linearly shaped 2 s – 10⁴ s
/// per-bit retention, so checkpoint LSBs decay occasionally over
/// wearable-scale outages (a tail risk, not a certainty) while MSBs
/// survive.
const RETENTION_MIN_S: f64 = 2.0;
/// See [`RETENTION_MIN_S`].
const RETENTION_MAX_S: f64 = 1e4;
/// Checkpoint words are 16-bit.
const FIELD_BITS: usize = 16;

/// One (backup style × fault rate) measurement, aggregated over the
/// configured Monte-Carlo trials.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Backup style label.
    pub style: String,
    /// Backup tear probability (restore failures at half this rate).
    pub fault_rate: f64,
    /// Trials aggregated into this row.
    pub trials: usize,
    /// Mean committed instructions per trial.
    pub mean_committed: f64,
    /// Mean committed instructions surviving corruption per trial.
    pub mean_surviving: f64,
    /// `mean_surviving` relative to the fault-free baseline's committed
    /// count for the same style (1.0 at rate zero by construction).
    pub fp_ratio: f64,
    /// Mean committed instructions lost to corruption per trial.
    pub mean_lost: f64,
    /// Torn backups, summed over trials.
    pub torn: u64,
    /// Backup retries, summed over trials.
    pub retries: u64,
    /// Corrupt/failed restores, summed over trials.
    pub corrupt: u64,
    /// Safe-mode (graceful-degradation) entries, summed over trials.
    pub safe_modes: u64,
    /// Mean latency from a corrupt restore to the next durable point
    /// (backup or task commit), milliseconds; 0 when no recovery
    /// happened.
    pub recovery_ms_mean: f64,
    /// Worst observed recovery latency, milliseconds.
    pub recovery_ms_max: f64,
}

/// One platform variant of the campaign.
struct Style {
    name: &'static str,
    sys: SystemConfig,
    backup: BackupModel,
    policy: BackupPolicy,
}

/// The three backup styles of T3, as fault-campaign platforms.
fn styles(inst: &KernelInstance) -> Vec<Style> {
    let sys = system_config_for(inst);
    let mut sw_sys = sys;
    sw_sys.dmem_nonvolatile = false;
    let ram_words = inst.min_dmem_words() as u64;
    vec![
        Style {
            name: "nvp-distributed",
            sys,
            backup: BackupModel::distributed(NvmTechnology::Feram, STATE_BITS),
            policy: BackupPolicy::demand(),
        },
        Style {
            name: "nvp-centralized",
            sys,
            backup: BackupModel::centralized(NvmTechnology::Feram, STATE_BITS),
            policy: BackupPolicy::demand(),
        },
        Style {
            name: "sw-checkpoint",
            sys: sw_sys,
            backup: BackupModel::software(
                NvmTechnology::Feram,
                STATE_BITS,
                ram_words,
                sys.clock_hz,
            ),
            policy: BackupPolicy::OnDemand { margin: 1.3 },
        },
    ]
}

/// The fault plan for one (rate, trial) cell. Rate zero is the genuine
/// disabled plan — no RNG draws, bit-identical to the legacy platform.
fn plan_for(cfg: &ExpConfig, rate: f64, style_idx: usize, trial: usize) -> FaultPlan {
    if rate <= 0.0 {
        return FaultPlan::none();
    }
    // SplitMix-style seed mixing: well-separated per-cell streams from
    // one user-facing base seed.
    let cell = (style_idx as u64) << 32 | (trial as u64) << 8 | ((rate * 1000.0) as u64 % 251);
    let seed = cfg
        .fault_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(cell)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let retention =
        RetentionShaper::new(RelaxPolicy::Linear, FIELD_BITS, RETENTION_MIN_S, RETENTION_MAX_S)
            .bit_retention();
    FaultPlan::with_rates(seed, rate, rate * 0.5).with_retention(retention)
}

/// Records the full event stream of one trial.
#[derive(Default)]
struct EventLog {
    events: Vec<(f64, SimEvent)>,
}

impl SimObserver for EventLog {
    fn on_event(&mut self, t_s: f64, event: SimEvent) {
        self.events.push((t_s, event));
    }
}

/// Recovery latencies: time from each corrupt restore to the next
/// durable point (successful backup or task commit), in milliseconds.
fn recovery_latencies_ms(events: &[(f64, SimEvent)]) -> Vec<f64> {
    let mut out = Vec::new();
    for (i, &(t0, e)) in events.iter().enumerate() {
        if e != SimEvent::RestoreCorrupt {
            continue;
        }
        let durable = events[i + 1..]
            .iter()
            .find(|&&(_, e2)| e2 == SimEvent::Backup || e2 == SimEvent::TaskCommit);
        if let Some(&(t1, _)) = durable {
            out.push((t1 - t0) * 1e3);
        }
    }
    out
}

/// Runs one seeded trial, returning the report and its recovery
/// latencies. Deliberately bypasses the simulation cache (see module
/// docs). Every trial shares one prebuilt machine image: all three
/// styles run the same program under the same cycle/energy models, so
/// decode and block partitioning happen once per campaign, not per
/// trial.
fn run_trial(
    image: &Arc<MachineImage>,
    trace: &nvp_energy::PowerTrace,
    style: &Style,
    plan: FaultPlan,
) -> (RunReport, Vec<f64>) {
    let mut system = IntermittentSystem::with_faults_on_image(
        image,
        style.sys,
        style.backup,
        style.policy,
        plan,
    );
    let mut log = EventLog::default();
    let report = system.run_observed(trace, &mut log).expect("workload does not fault");
    let (report, latencies) = (report, recovery_latencies_ms(&log.events));
    crate::stats::record_superblocks(system.machine().superblock_stats());
    (report, latencies)
}

/// Runs the full campaign: every style × fault rate × trial.
#[must_use]
pub fn rows(cfg: &ExpConfig) -> Vec<Row> {
    let inst = kernel(cfg, KernelKind::Sobel);
    let trace = watch_trace(cfg, cfg.profile_seeds[0]);
    let styles = styles(&inst);
    // One shared image for the whole campaign: the styles differ only
    // in backup hardware and data-memory volatility, never in the
    // image-relevant configuration (memory size, cycle/energy models).
    let sys = styles[0].sys;
    let image = Arc::new(
        MachineImage::build(inst.program(), sys.dmem_words, sys.cycle_model, sys.energy_model)
            .expect("kernel image builds"),
    );

    // Flattened work grid; the fault-free control runs one trial (the
    // disabled plan is deterministic, so further trials are identical).
    let mut grid: Vec<(usize, usize, usize)> = Vec::new();
    for (si, _) in styles.iter().enumerate() {
        for (ri, &rate) in FAULT_RATES.iter().enumerate() {
            let trials = if rate > 0.0 { cfg.fault_trials } else { 1 };
            for trial in 0..trials {
                grid.push((si, ri, trial));
            }
        }
    }
    // Monte-Carlo trials of the same kernel dispatch as lane groups:
    // one scheduler task per group of consecutive trials, all sharing
    // the hot image instead of travelling as independent tasks.
    let results = sched::par_map_groups(&grid, sched::GROUP_WIDTH, |&(si, ri, trial)| {
        let plan = plan_for(cfg, FAULT_RATES[ri], si, trial);
        run_trial(&image, &trace, &styles[si], plan)
    });

    let mut out = Vec::new();
    for (si, style) in styles.iter().enumerate() {
        // The rate-0 control is the baseline the faulted cells are
        // normalized against.
        let baseline: f64 = grid
            .iter()
            .zip(&results)
            .find(|((s, r, _), _)| *s == si && FAULT_RATES[*r] <= 0.0)
            .map_or(0.0, |(_, (report, _))| report.committed as f64);
        for (ri, &rate) in FAULT_RATES.iter().enumerate() {
            let cell: Vec<&(RunReport, Vec<f64>)> = grid
                .iter()
                .zip(&results)
                .filter(|((s, r, _), _)| *s == si && *r == ri)
                .map(|(_, res)| res)
                .collect();
            let n = cell.len();
            let mean = |f: &dyn Fn(&RunReport) -> u64| {
                cell.iter().map(|(rep, _)| f(rep) as f64).sum::<f64>() / n as f64
            };
            let mean_committed = mean(&|r| r.committed);
            let mean_surviving = mean(&|r| r.committed_surviving());
            let latencies: Vec<f64> =
                cell.iter().flat_map(|(_, lat)| lat.iter().copied()).collect();
            out.push(Row {
                style: style.name.to_owned(),
                fault_rate: rate,
                trials: n,
                mean_committed,
                mean_surviving,
                fp_ratio: if baseline > 0.0 { mean_surviving / baseline } else { 0.0 },
                mean_lost: mean(&|r| r.committed_lost),
                torn: cell.iter().map(|(r, _)| r.backups_torn).sum(),
                retries: cell.iter().map(|(r, _)| r.backup_retries).sum(),
                corrupt: cell.iter().map(|(r, _)| r.restores_corrupt).sum(),
                safe_modes: cell.iter().map(|(r, _)| r.safe_mode_entries).sum(),
                recovery_ms_mean: if latencies.is_empty() {
                    0.0
                } else {
                    latencies.iter().sum::<f64>() / latencies.len() as f64
                },
                recovery_ms_max: latencies.iter().fold(0.0, |a, &b| a.max(b)),
            });
        }
    }
    out
}

/// Renders the campaign table.
#[must_use]
pub fn table(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "F12",
        "Fault-injection resilience: forward progress, work lost, recovery latency",
        &[
            "style",
            "fault_rate",
            "trials",
            "mean_committed",
            "mean_surviving",
            "fp_ratio",
            "mean_lost",
            "torn",
            "retries",
            "corrupt",
            "safe_modes",
            "recovery_ms_mean",
            "recovery_ms_max",
        ],
    );
    for r in rows(cfg) {
        t.push_row(vec![
            r.style,
            fmt(r.fault_rate, 2),
            r.trials.to_string(),
            fmt(r.mean_committed, 0),
            fmt(r.mean_surviving, 0),
            fmt_ratio(r.fp_ratio),
            fmt(r.mean_lost, 0),
            r.torn.to_string(),
            r.retries.to_string(),
            r.corrupt.to_string(),
            r.safe_modes.to_string(),
            fmt(r.recovery_ms_mean, 2),
            fmt(r.recovery_ms_max, 2),
        ]);
    }
    t
}

/// Feasibility plans: each backup style's platform, plus the campaign's
/// sweep dimensions.
#[must_use]
pub fn plans(cfg: &ExpConfig) -> Vec<crate::feasibility::CheckItem> {
    use crate::feasibility::{nvp_plan, sweep};

    let inst = kernel(cfg, KernelKind::Sobel);
    let mut out = vec![
        sweep("fault rates", FAULT_RATES.len()),
        sweep("monte-carlo trials per faulted cell", cfg.fault_trials),
    ];
    for style in styles(&inst) {
        out.push(nvp_plan(
            format!("{} under fault injection", style.name),
            &style.sys,
            style.backup,
            &style.policy,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_rows_are_exactly_fault_free() {
        let rows = rows(&ExpConfig::quick());
        assert_eq!(rows.len(), 3 * FAULT_RATES.len());
        for r in rows.iter().filter(|r| r.fault_rate <= 0.0) {
            assert_eq!(r.trials, 1, "disabled plan is deterministic: one trial suffices");
            assert_eq!(r.fp_ratio, 1.0, "{}: control must normalize to exactly 1", r.style);
            assert_eq!(r.torn + r.retries + r.corrupt + r.safe_modes, 0, "{}", r.style);
            assert_eq!(r.mean_lost, 0.0, "{}", r.style);
            assert_eq!(r.mean_committed, r.mean_surviving, "{}", r.style);
        }
    }

    #[test]
    fn faults_fire_and_survival_never_exceeds_commitment() {
        let rows = rows(&ExpConfig::quick());
        let faulted: Vec<&Row> = rows.iter().filter(|r| r.fault_rate > 0.0).collect();
        assert!(!faulted.is_empty());
        let total_events: u64 = faulted.iter().map(|r| r.torn + r.corrupt).sum();
        assert!(total_events > 0, "no injected fault fired across the whole campaign");
        for r in &faulted {
            assert_eq!(r.trials, ExpConfig::quick().fault_trials);
            assert!(r.mean_surviving <= r.mean_committed + 1e-9, "{}: {r:?}", r.style);
            assert!(r.fp_ratio.is_finite());
        }
        // Recovery latencies only exist where corrupt restores happened.
        for r in rows.iter().filter(|r| r.corrupt == 0) {
            assert_eq!(r.recovery_ms_mean, 0.0, "{}", r.style);
        }
        for r in rows.iter() {
            assert!(r.recovery_ms_max >= r.recovery_ms_mean - 1e-12, "{r:?}");
        }
    }

    #[test]
    fn campaign_is_deterministic_per_seed() {
        let cfg = ExpConfig::quick();
        assert_eq!(rows(&cfg), rows(&cfg));
        // A different base seed reseeds every faulted trial.
        let mut other = cfg.clone();
        other.fault_seed = 99;
        let a = rows(&cfg);
        let b = rows(&other);
        assert_ne!(a, b, "base seed must reach the per-trial fault plans");
        // ... but leaves the fault-free controls untouched.
        for (ra, rb) in a.iter().zip(&b).filter(|(r, _)| r.fault_rate <= 0.0) {
            assert_eq!(ra, rb);
        }
    }
}
