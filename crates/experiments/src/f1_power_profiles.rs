//! **F1 — the five wearable power profiles.**
//!
//! Summary statistics for the synthetic "watch in daily life" traces
//! (published envelope: 10–40 µW averages, spikes to ~2000 µW). The raw
//! sample series are exported as CSV by the runner for plotting.

use nvp_energy::PowerTrace;
use serde::{Deserialize, Serialize};

use crate::common::watch_trace;
use crate::report::fmt;
use crate::{ExpConfig, Table};

/// Per-profile summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Profile seed (1–5).
    pub profile: u64,
    /// Mean power, µW.
    pub average_uw: f64,
    /// Peak power, µW.
    pub peak_uw: f64,
    /// Total harvested energy over the window, µJ.
    pub energy_uj: f64,
    /// Trace duration, s.
    pub duration_s: f64,
}

/// The raw trace for one profile (for CSV export / plotting).
#[must_use]
pub fn series(cfg: &ExpConfig, profile: u64) -> PowerTrace {
    (*watch_trace(cfg, profile)).clone()
}

/// Summary rows for all configured profiles.
#[must_use]
pub fn rows(cfg: &ExpConfig) -> Vec<Row> {
    cfg.profile_seeds
        .iter()
        .map(|&seed| {
            let t = watch_trace(cfg, seed);
            Row {
                profile: seed,
                average_uw: t.average_w() * 1e6,
                peak_uw: t.peak_w() * 1e6,
                energy_uj: t.total_energy_j() * 1e6,
                duration_s: t.duration_s(),
            }
        })
        .collect()
}

/// Renders the summary table.
#[must_use]
pub fn table(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "F1",
        "Wearable harvester power profiles (synthetic, seeded)",
        &["profile", "average_uw", "peak_uw", "energy_uj", "duration_s"],
    );
    for r in rows(cfg) {
        t.push_row(vec![
            r.profile.to_string(),
            fmt(r.average_uw, 1),
            fmt(r.peak_uw, 0),
            fmt(r.energy_uj, 1),
            fmt(r.duration_s, 1),
        ]);
    }
    t
}

/// Feasibility plans: F1 only summarizes traces; the profile list is
/// the sweep.
#[must_use]
pub fn plans(cfg: &ExpConfig) -> Vec<crate::feasibility::CheckItem> {
    vec![crate::feasibility::sweep("wearable power profiles", cfg.profile_seeds.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_published_envelope() {
        let cfg = ExpConfig::default();
        for r in rows(&cfg) {
            assert!(
                r.average_uw > 8.0 && r.average_uw < 60.0,
                "profile {}: {}",
                r.profile,
                r.average_uw
            );
            assert!(r.peak_uw > 500.0 && r.peak_uw <= 2200.0, "profile {}", r.profile);
        }
    }

    #[test]
    fn series_is_full_length() {
        let cfg = ExpConfig::quick();
        let s = series(&cfg, 1);
        assert_eq!(s.duration_s(), cfg.trace_duration_s);
    }
}
