//! **F2 — outage durations and emergency frequencies.**
//!
//! The statistics that make the NVP case: at a 33 µW operating threshold
//! a wrist harvester suffers on the order of a thousand power emergencies
//! per 10 s window, with outages lasting milliseconds — far too frequent
//! for charge-then-compute platforms, and far shorter than decade-class
//! NVM retention.

use nvp_energy::{OutageStats, OPERATING_THRESHOLD_W};
use serde::{Deserialize, Serialize};

use crate::common::watch_trace;
use crate::report::fmt;
use crate::{ExpConfig, Table};

/// Per-profile outage statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Profile seed.
    pub profile: u64,
    /// Falling-edge power emergencies per 10 s.
    pub emergencies_per_10s: f64,
    /// Mean outage duration, ms.
    pub mean_outage_ms: f64,
    /// Longest outage, ms.
    pub longest_outage_ms: f64,
    /// Fraction of time at or above the threshold.
    pub above_threshold: f64,
}

/// Outage statistics for each configured profile.
#[must_use]
pub fn rows(cfg: &ExpConfig) -> Vec<Row> {
    cfg.profile_seeds
        .iter()
        .map(|&seed| {
            let t = watch_trace(cfg, seed);
            let s = OutageStats::analyze(&t, OPERATING_THRESHOLD_W);
            Row {
                profile: seed,
                emergencies_per_10s: s.emergencies_per_10s(t.duration_s()),
                mean_outage_ms: s.mean_outage_s * 1e3,
                longest_outage_ms: s.longest_outage_s * 1e3,
                above_threshold: s.above_threshold_fraction,
            }
        })
        .collect()
}

/// Outage-duration histogram for one profile (`bins` equal-width bins).
#[must_use]
pub fn histogram_table(cfg: &ExpConfig, profile: u64, bins: usize) -> Table {
    let trace = watch_trace(cfg, profile);
    let stats = OutageStats::analyze(&trace, OPERATING_THRESHOLD_W);
    let hist = stats.histogram(bins);
    let mut t = Table::new("F2h", "Outage-duration histogram", &["bin_start_ms", "count"]);
    for (edge, count) in hist.bin_edges_s.iter().zip(&hist.counts) {
        t.push_row(vec![fmt(edge * 1e3, 2), count.to_string()]);
    }
    t
}

/// Renders the statistics table.
#[must_use]
pub fn table(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "F2",
        "Power-emergency statistics at the 33 µW operating threshold",
        &["profile", "emergencies_per_10s", "mean_outage_ms", "longest_outage_ms", "on_fraction"],
    );
    for r in rows(cfg) {
        t.push_row(vec![
            r.profile.to_string(),
            fmt(r.emergencies_per_10s, 0),
            fmt(r.mean_outage_ms, 2),
            fmt(r.longest_outage_ms, 1),
            fmt(r.above_threshold, 3),
        ]);
    }
    t
}

/// Feasibility plans: F2 computes trace statistics; the profile list is
/// the sweep.
#[must_use]
pub fn plans(cfg: &ExpConfig) -> Vec<crate::feasibility::CheckItem> {
    vec![crate::feasibility::sweep("outage-statistics profiles", cfg.profile_seeds.len())]
}

/// Feasibility plans for the histogram artifact (`f2h`).
#[must_use]
pub fn histogram_plans(cfg: &ExpConfig, bins: usize) -> Vec<crate::feasibility::CheckItem> {
    vec![
        crate::feasibility::sweep("outage-histogram profiles", cfg.profile_seeds.len().min(1)),
        crate::feasibility::sweep("outage-duration histogram bins", bins),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emergencies_in_published_band() {
        // Published: 1000-2000 per 10 s; the synthetic generators land in
        // a compatible band across the standard profiles.
        for r in rows(&ExpConfig::default()) {
            assert!(
                (500.0..2500.0).contains(&r.emergencies_per_10s),
                "profile {}: {}",
                r.profile,
                r.emergencies_per_10s
            );
            assert!(r.mean_outage_ms > 1.0, "outages are ms-scale");
        }
    }

    #[test]
    fn histogram_counts_everything() {
        let cfg = ExpConfig::quick();
        let t = histogram_table(&cfg, 1, 10);
        assert_eq!(t.rows().len(), 10);
        let total: u64 = t.rows().iter().map(|r| r[1].parse::<u64>().unwrap()).sum();
        assert!(total > 0);
    }
}
