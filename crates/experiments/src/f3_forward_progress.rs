//! **F3 — forward progress: NVP vs. the conventional platforms.**
//!
//! The survey's headline quantitative claim: on wearable harvester
//! traces, a hardware-managed NVP makes several times the persistent
//! forward progress of a charge-then-compute volatile MCU (published
//! band: 2.2×–5×), with software checkpointing in between.

use nvp_workloads::KernelKind;
use serde::{Deserialize, Serialize};

use crate::common::{kernel, run_nvp, run_software_ckpt, run_wait, watch_trace};
use crate::report::fmt_ratio;
use crate::{ExpConfig, Table};

/// Kernels used for the headline comparison (frame-scale workloads).
pub const KERNELS: [KernelKind; 3] = [KernelKind::Sobel, KernelKind::Median, KernelKind::Dct8];

/// One kernel × profile comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Kernel name.
    pub kernel: String,
    /// Profile seed.
    pub profile: u64,
    /// NVP forward progress (committed instructions).
    pub nvp_fp: u64,
    /// Wait-then-compute forward progress.
    pub wait_fp: u64,
    /// Software-checkpointing forward progress.
    pub swckpt_fp: u64,
}

impl Row {
    /// NVP / wait-compute forward-progress ratio, or `None` when the
    /// wait-compute platform completed no frame at all (a common outcome
    /// for heavy kernels — its ESD never accumulates one frame's energy).
    #[must_use]
    pub fn nvp_over_wait(&self) -> Option<f64> {
        (self.wait_fp > 0).then(|| self.nvp_fp as f64 / self.wait_fp as f64)
    }

    /// NVP / software-checkpointing forward-progress ratio.
    #[must_use]
    pub fn nvp_over_swckpt(&self) -> Option<f64> {
        (self.swckpt_fp > 0).then(|| self.nvp_fp as f64 / self.swckpt_fp as f64)
    }
}

/// Runs the three platforms for every kernel × profile combination.
#[must_use]
pub fn rows(cfg: &ExpConfig) -> Vec<Row> {
    let mut out = Vec::new();
    for kind in KERNELS {
        let inst = kernel(cfg, kind);
        for &seed in &cfg.profile_seeds {
            let trace = watch_trace(cfg, seed);
            out.push(Row {
                kernel: kind.name().to_owned(),
                profile: seed,
                nvp_fp: run_nvp(&inst, &trace).forward_progress(),
                wait_fp: run_wait(cfg, kind, &trace).forward_progress(),
                swckpt_fp: run_software_ckpt(&inst, &trace).forward_progress(),
            });
        }
    }
    out
}

/// Geometric-mean NVP/wait ratio across the rows where wait-compute was
/// viable at all; `None` if it never was.
#[must_use]
pub fn mean_nvp_over_wait(rows: &[Row]) -> Option<f64> {
    let finite: Vec<f64> = rows.iter().filter_map(Row::nvp_over_wait).collect();
    if finite.is_empty() {
        return None;
    }
    let log_sum: f64 = finite.iter().map(|v| v.ln()).sum();
    Some((log_sum / finite.len() as f64).exp())
}

/// Renders the comparison.
#[must_use]
pub fn table(cfg: &ExpConfig) -> Table {
    let rows = rows(cfg);
    let mut t = Table::new(
        "F3",
        "Forward progress: hardware NVP vs wait-compute vs software checkpointing",
        &["kernel", "profile", "nvp_fp", "wait_fp", "swckpt_fp", "nvp/wait", "nvp/swckpt"],
    );
    let ratio = |v: Option<f64>| v.map_or_else(|| "inf".to_owned(), fmt_ratio);
    for r in &rows {
        t.push_row(vec![
            r.kernel.clone(),
            r.profile.to_string(),
            r.nvp_fp.to_string(),
            r.wait_fp.to_string(),
            r.swckpt_fp.to_string(),
            ratio(r.nvp_over_wait()),
            ratio(r.nvp_over_swckpt()),
        ]);
    }
    t.push_row(vec![
        "geomean (wait-viable rows)".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        ratio(mean_nvp_over_wait(&rows)),
        "-".into(),
    ]);
    t
}

/// Feasibility plans: the three platform configurations F3 simulates
/// for every kernel (hardware NVP, wait-compute, software checkpoint).
#[must_use]
pub fn plans(cfg: &ExpConfig) -> Vec<crate::feasibility::CheckItem> {
    use crate::common::{standard_backup, system_config_for, task_cost, STATE_BITS};
    use crate::feasibility::{nvp_plan, sweep, wait_plan};
    use nvp_core::{BackupModel, BackupPolicy, WaitComputeConfig};

    let mut out = vec![sweep("kernel x profile grid", KERNELS.len() * cfg.profile_seeds.len())];
    for kind in KERNELS {
        let inst = kernel(cfg, kind);
        out.push(nvp_plan(
            format!("hardware nvp {}", kind.name()),
            &system_config_for(&inst),
            standard_backup(),
            &BackupPolicy::demand(),
        ));
        let mut wcfg = WaitComputeConfig::default().sized_for(&task_cost(cfg, kind), 1.3);
        wcfg.dmem_words = wcfg.dmem_words.max(inst.min_dmem_words());
        out.push(wait_plan(format!("wait-compute {}", kind.name()), &wcfg));
        let mut sys = system_config_for(&inst);
        sys.dmem_nonvolatile = false;
        let backup = BackupModel::software(
            nvp_device::NvmTechnology::Feram,
            STATE_BITS,
            inst.min_dmem_words() as u64,
            sys.clock_hz,
        );
        out.push(nvp_plan(
            format!("software checkpoint {}", kind.name()),
            &sys,
            backup,
            &BackupPolicy::OnDemand { margin: 1.3 },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvp_wins_on_wearable_traces() {
        let cfg = ExpConfig::quick();
        let rows = rows(&cfg);
        assert_eq!(rows.len(), KERNELS.len() * cfg.profile_seeds.len());
        for r in &rows {
            assert!(r.nvp_fp > 0, "{} p{}", r.kernel, r.profile);
            assert!(
                r.nvp_fp >= r.wait_fp,
                "{} p{}: nvp {} < wait {}",
                r.kernel,
                r.profile,
                r.nvp_fp,
                r.wait_fp
            );
        }
        let mean = mean_nvp_over_wait(&rows).expect("wait viable for light kernels in quick cfg");
        assert!(mean > 1.3, "published band is 2.2-5x; quick run gives {mean}");
    }
}
