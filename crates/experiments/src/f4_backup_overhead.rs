//! **F4 — backup overheads on wearable traces.**
//!
//! Published calibration targets: 1400–1700 backups per minute, consuming
//! 20–33 % of income energy. This experiment reports the framework's
//! measured values per profile.

use nvp_workloads::KernelKind;
use serde::{Deserialize, Serialize};

use crate::common::{kernel, run_nvp, watch_trace};
use crate::report::fmt;
use crate::{ExpConfig, Table};

/// Per-profile backup-overhead measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Profile seed.
    pub profile: u64,
    /// Backups per minute.
    pub backups_per_minute: f64,
    /// Restores per minute.
    pub restores_per_minute: f64,
    /// Share of converted income energy spent on backup + restore.
    pub backup_energy_share: f64,
    /// Rollbacks (should be zero under the demand policy).
    pub rollbacks: u64,
}

/// Measures backup overheads with the sobel workload.
#[must_use]
pub fn rows(cfg: &ExpConfig) -> Vec<Row> {
    let inst = kernel(cfg, KernelKind::Sobel);
    cfg.profile_seeds
        .iter()
        .map(|&seed| {
            let trace = watch_trace(cfg, seed);
            let r = run_nvp(&inst, &trace);
            Row {
                profile: seed,
                backups_per_minute: r.backups_per_minute(),
                restores_per_minute: r.restores as f64 * 60.0 / r.duration_s,
                backup_energy_share: r.backup_energy_share(),
                rollbacks: r.rollbacks,
            }
        })
        .collect()
}

/// Renders the table.
#[must_use]
pub fn table(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "F4",
        "Backup overheads (published: 1400-1700 backups/min, 20-33% of income energy)",
        &["profile", "backups_per_min", "restores_per_min", "backup_energy_share", "rollbacks"],
    );
    for r in rows(cfg) {
        t.push_row(vec![
            r.profile.to_string(),
            fmt(r.backups_per_minute, 0),
            fmt(r.restores_per_minute, 0),
            fmt(r.backup_energy_share, 3),
            r.rollbacks.to_string(),
        ]);
    }
    t
}

/// Feasibility plans: F4 runs the standard NVP over every profile.
#[must_use]
pub fn plans(cfg: &ExpConfig) -> Vec<crate::feasibility::CheckItem> {
    use crate::common::{standard_backup, system_config_for};
    use crate::feasibility::{nvp_plan, sweep};

    let inst = kernel(cfg, KernelKind::Sobel);
    vec![
        sweep("backup-overhead profiles", cfg.profile_seeds.len()),
        nvp_plan(
            "standard hardware nvp",
            &system_config_for(&inst),
            standard_backup(),
            &nvp_core::BackupPolicy::demand(),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_in_calibrated_band() {
        for r in rows(&ExpConfig::default()) {
            assert!(
                (400.0..4000.0).contains(&r.backups_per_minute),
                "profile {}: {} backups/min",
                r.profile,
                r.backups_per_minute
            );
            assert!(
                (0.05..0.45).contains(&r.backup_energy_share),
                "profile {}: share {}",
                r.profile,
                r.backup_energy_share
            );
            assert_eq!(r.rollbacks, 0, "demand policy must not roll back");
        }
    }
}
