//! **F5 — storage-capacitor sizing sweep.**
//!
//! The architecture-exploration result (HPCA'15 class): an NVP needs only
//! enough storage to cover restore + one backup + a little useful work —
//! below that it cannot start at all; above it, extra capacitance buys
//! ride-through for short outages with diminishing returns, while the
//! wait-compute platform needs orders of magnitude more storage before it
//! works at all.

use nvp_core::{SystemConfig, WaitComputeConfig, WaitComputeSystem};
use nvp_workloads::KernelKind;
use serde::{Deserialize, Serialize};

use crate::common::{kernel, run_nvp_with, standard_backup, system_config_for, watch_trace};
use crate::report::fmt;
use crate::{ExpConfig, Table};

/// Swept capacitances, farads.
pub const CAPACITANCES_F: [f64; 9] =
    [47e-9, 100e-9, 220e-9, 470e-9, 1e-6, 2.2e-6, 10e-6, 47e-6, 220e-6];

/// One sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Storage capacitance, µF.
    pub cap_uf: f64,
    /// NVP forward progress with this buffer size.
    pub nvp_fp: u64,
    /// Wait-compute forward progress with this ESD size.
    pub wait_fp: u64,
}

/// Sweeps storage size for both platforms on the first profile.
/// Points are independent simulations of one shared kernel, so they
/// dispatch as lane groups on the shared thread pool; result order
/// follows [`CAPACITANCES_F`] regardless.
#[must_use]
pub fn rows(cfg: &ExpConfig) -> Vec<Row> {
    let inst = kernel(cfg, KernelKind::Sobel);
    let trace = watch_trace(cfg, cfg.profile_seeds[0]);
    let cost = crate::common::task_cost(cfg, KernelKind::Sobel);
    crate::sched::par_map_groups(&CAPACITANCES_F, crate::sched::GROUP_WIDTH / 2, |&c| {
        let sys: SystemConfig = system_config_for(&inst).with_capacitance(c);
        let nvp =
            run_nvp_with(&inst, &trace, sys, standard_backup(), nvp_core::BackupPolicy::demand());
        // Wait-compute with the same storage size; the start threshold
        // stays task-sized but is capped at 90 % of the ESD capacity
        // (an undersized ESD forces early, risky starts).
        let mut wcfg = WaitComputeConfig::default().sized_for(&cost, 1.3);
        wcfg.capacitance_f = c;
        wcfg.dmem_words = wcfg.dmem_words.max(inst.min_dmem_words());
        let capacity = 0.5 * c * wcfg.cap_voltage_v * wcfg.cap_voltage_v;
        wcfg.start_energy_j = wcfg.start_energy_j.min(0.9 * capacity);
        let mut wait = WaitComputeSystem::new(inst.program(), wcfg).expect("platform builds");
        let wait_report = wait.run(&trace).expect("workload does not fault");
        Row {
            cap_uf: c * 1e6,
            nvp_fp: nvp.forward_progress(),
            wait_fp: wait_report.forward_progress(),
        }
    })
}

/// Renders the sweep.
#[must_use]
pub fn table(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "F5",
        "Forward progress vs storage capacitance (NVP buffer vs wait-compute ESD)",
        &["cap_uf", "nvp_fp", "wait_fp"],
    );
    for r in rows(cfg) {
        t.push_row(vec![fmt(r.cap_uf, 3), r.nvp_fp.to_string(), r.wait_fp.to_string()]);
    }
    t
}

/// Feasibility plans: both platforms at every swept capacitance. The
/// smallest buffers legitimately cannot *start* — that is the measured
/// result — but a single backup must always fit the store.
#[must_use]
pub fn plans(cfg: &ExpConfig) -> Vec<crate::feasibility::CheckItem> {
    use crate::feasibility::{nvp_plan, sweep, wait_plan};

    let inst = kernel(cfg, KernelKind::Sobel);
    let cost = crate::common::task_cost(cfg, KernelKind::Sobel);
    let mut out = vec![sweep("capacitance sweep", CAPACITANCES_F.len())];
    for &c in &CAPACITANCES_F {
        let sys = system_config_for(&inst).with_capacitance(c);
        out.push(nvp_plan(
            format!("nvp {:.0} nF buffer", c * 1e9),
            &sys,
            standard_backup(),
            &nvp_core::BackupPolicy::demand(),
        ));
        let mut wcfg = WaitComputeConfig::default().sized_for(&cost, 1.3);
        wcfg.capacitance_f = c;
        wcfg.dmem_words = wcfg.dmem_words.max(inst.min_dmem_words());
        let capacity = 0.5 * c * wcfg.cap_voltage_v * wcfg.cap_voltage_v;
        wcfg.start_energy_j = wcfg.start_energy_j.min(0.9 * capacity);
        out.push(wait_plan(format!("wait-compute {:.0} nF esd", c * 1e9), &wcfg));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_buffer_cannot_start_nvp() {
        let rows = rows(&ExpConfig::quick());
        // 47 nF at 3.3 V stores ~0.26 µJ — below the NVP start threshold.
        assert_eq!(rows[0].nvp_fp, 0, "47 nF must be unviable");
        // Micro-farad-class buffers work.
        let viable = rows.iter().find(|r| (r.cap_uf - 2.2).abs() < 1e-9).unwrap();
        assert!(viable.nvp_fp > 0);
    }

    #[test]
    fn nvp_needs_less_storage_than_wait() {
        let rows = rows(&ExpConfig::quick());
        let min_nvp = rows.iter().find(|r| r.nvp_fp > 0).map(|r| r.cap_uf);
        let min_wait = rows.iter().find(|r| r.wait_fp > 0).map(|r| r.cap_uf);
        match (min_nvp, min_wait) {
            (Some(n), Some(w)) => assert!(n <= w, "nvp {n} µF vs wait {w} µF"),
            (Some(_), None) => {} // wait never works in the quick window
            other => panic!("unexpected viability pattern {other:?}"),
        }
    }
}
