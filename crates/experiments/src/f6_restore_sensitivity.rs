//! **F6 — wake-up (restore) latency sensitivity.**
//!
//! Why the silicon race for faster wake-up matters (400 ns JSSC'14 →
//! 3 µs ESSCIRC'12 → 46 µs TCAS-I'17): at a thousand power cycles per
//! 10 s, every microsecond of restore latency is paid over and over.

use nvp_core::BackupPolicy;
use nvp_energy::units::{Joules, Seconds};
use nvp_workloads::KernelKind;
use serde::{Deserialize, Serialize};

use crate::common::{kernel, run_nvp_with, standard_backup, system_config_for, watch_trace};
use crate::report::{fmt, fmt_ratio};
use crate::{ExpConfig, Table};

/// Swept restore (wake-up) times, seconds — anchored to published chips
/// plus a pessimistic 200 µs point.
pub const RESTORE_TIMES_S: [f64; 5] = [0.4e-6, 3e-6, 14e-6, 46e-6, 200e-6];

/// Power drawn while waking up (clocks, sense amps, the core ramping),
/// watts. This is what makes wake-up latency expensive in the
/// energy-bound regime: during restore the chip burns energy without
/// committing instructions.
pub const WAKEUP_POWER_W: f64 = 0.5e-3;

/// One sweep point (averaged over profiles).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Restore time, µs.
    pub restore_us: f64,
    /// Mean forward progress across profiles.
    pub mean_fp: f64,
    /// Forward progress relative to the fastest restore point.
    pub relative: f64,
}

/// Sweeps restore latency over the configured profiles.
#[must_use]
pub fn rows(cfg: &ExpConfig) -> Vec<Row> {
    let inst = kernel(cfg, KernelKind::Sobel);
    let sys = system_config_for(&inst);
    let mut means = Vec::new();
    for &restore in &RESTORE_TIMES_S {
        let mut backup = standard_backup().with_restore_time(Seconds::new(restore));
        backup.restore_energy += Joules::new(restore * WAKEUP_POWER_W);
        let total: u64 = cfg
            .profile_seeds
            .iter()
            .map(|&seed| {
                run_nvp_with(&inst, &watch_trace(cfg, seed), sys, backup, BackupPolicy::demand())
                    .forward_progress()
            })
            .sum();
        means.push(total as f64 / cfg.profile_seeds.len() as f64);
    }
    let best = means.first().copied().unwrap_or(1.0).max(1.0);
    RESTORE_TIMES_S
        .iter()
        .zip(means)
        .map(|(&t, mean_fp)| Row { restore_us: t * 1e6, mean_fp, relative: mean_fp / best })
        .collect()
}

/// Renders the sweep.
#[must_use]
pub fn table(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "F6",
        "Forward progress vs restore (wake-up) latency",
        &["restore_us", "mean_fp", "relative_to_fastest"],
    );
    for r in rows(cfg) {
        t.push_row(vec![fmt(r.restore_us, 1), fmt(r.mean_fp, 0), fmt_ratio(r.relative)]);
    }
    t
}

/// Feasibility plans: the NVP with every swept wake-up latency (and its
/// wake-up energy surcharge) folded into the backup model.
#[must_use]
pub fn plans(cfg: &ExpConfig) -> Vec<crate::feasibility::CheckItem> {
    use crate::feasibility::{nvp_plan, sweep};

    let inst = kernel(cfg, KernelKind::Sobel);
    let sys = system_config_for(&inst);
    let mut out = vec![sweep("restore-latency sweep", RESTORE_TIMES_S.len())];
    for &restore in &RESTORE_TIMES_S {
        let mut backup = standard_backup().with_restore_time(Seconds::new(restore));
        backup.restore_energy += Joules::new(restore * WAKEUP_POWER_W);
        out.push(nvp_plan(
            format!("nvp restore {:.1} us", restore * 1e6),
            &sys,
            backup,
            &BackupPolicy::demand(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slower_wakeup_never_helps() {
        let rows = rows(&ExpConfig::quick());
        assert_eq!(rows.len(), RESTORE_TIMES_S.len());
        for pair in rows.windows(2) {
            // Allow ~1% trace-alignment noise between adjacent points;
            // the overall trend must still be downward.
            assert!(
                pair[1].mean_fp <= pair[0].mean_fp * 1.01,
                "fp must be (weakly) non-increasing in restore time: {pair:?}"
            );
        }
        assert!(rows[0].mean_fp > 0.0);
        let last = rows.last().unwrap();
        assert!(last.mean_fp <= rows[0].mean_fp, "200 µs wake-up cannot beat 400 ns overall");
    }
}
