//! **F7 — NVM technology × harvester class.**
//!
//! Which backup technology suits which ambient source: forward progress
//! for all four NVM technologies (distributed backup) across the four
//! source classes, plus the endurance verdict at each source's backup
//! rate.

use nvp_core::{BackupModel, BackupPolicy};
use nvp_device::{EnduranceMeter, NvmTechnology};
use nvp_energy::harvester::SourceKind;
use serde::{Deserialize, Serialize};

use crate::common::{kernel, run_nvp_with, source_trace, system_config_for_tech, STATE_BITS};
use crate::report::fmt;
use crate::{ExpConfig, Table};
use nvp_workloads::KernelKind;

/// One technology × source measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// NVM technology.
    pub tech: String,
    /// Harvester class.
    pub source: String,
    /// Forward progress.
    pub fp: u64,
    /// Backups per minute.
    pub backups_per_min: f64,
    /// Projected lifetime at this backup rate, years (∞-safe as f64).
    pub lifetime_years: f64,
}

/// Runs the full technology × source grid. Every cell is an
/// independent simulation of the same kernel, so the flattened grid
/// dispatches as lane groups on the shared thread pool; row order
/// stays technology-major.
#[must_use]
pub fn rows(cfg: &ExpConfig) -> Vec<Row> {
    let inst = kernel(cfg, KernelKind::Sobel);
    let grid: Vec<(NvmTechnology, SourceKind)> = NvmTechnology::ALL
        .into_iter()
        .flat_map(|tech| SourceKind::ALL.into_iter().map(move |source| (tech, source)))
        .collect();
    crate::sched::par_map_groups(&grid, crate::sched::GROUP_WIDTH / 2, |&(tech, source)| {
        // Both the backup path *and* the NVM data memory use `tech`.
        let sys = system_config_for_tech(&inst, tech);
        let backup = BackupModel::distributed(tech, STATE_BITS);
        let trace = source_trace(cfg, source, cfg.profile_seeds[0]);
        let r = run_nvp_with(&inst, &trace, sys, backup, BackupPolicy::demand());
        let rate = r.backups as f64 / r.duration_s.max(1e-9);
        let meter = EnduranceMeter::new(tech.params());
        Row {
            tech: tech.to_string(),
            source: source.to_string(),
            fp: r.forward_progress(),
            backups_per_min: r.backups_per_minute(),
            lifetime_years: meter.lifetime_years(rate),
        }
    })
}

/// Renders the grid.
#[must_use]
pub fn table(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "F7",
        "Forward progress and endurance by NVM technology and harvester class",
        &["tech", "source", "fp", "backups_per_min", "lifetime_years"],
    );
    for r in rows(cfg) {
        let life = if r.lifetime_years.is_finite() && r.lifetime_years < 1e6 {
            fmt(r.lifetime_years, 1)
        } else {
            ">1e6".to_owned()
        };
        t.push_row(vec![r.tech, r.source, r.fp.to_string(), fmt(r.backups_per_min, 0), life]);
    }
    t
}

/// Feasibility plans: one platform per NVM technology (the harvester
/// sources vary only the trace, not the platform) plus the grid sweep.
#[must_use]
pub fn plans(cfg: &ExpConfig) -> Vec<crate::feasibility::CheckItem> {
    use crate::feasibility::{nvp_plan, sweep};

    let inst = kernel(cfg, KernelKind::Sobel);
    let mut out =
        vec![sweep("technology x source grid", NvmTechnology::ALL.len() * SourceKind::ALL.len())];
    for tech in NvmTechnology::ALL {
        out.push(nvp_plan(
            format!("nvp {tech} backup + data memory"),
            &system_config_for_tech(&inst, tech),
            BackupModel::distributed(tech, STATE_BITS),
            &BackupPolicy::demand(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_complete_and_ordered() {
        let rows = rows(&ExpConfig::quick());
        assert_eq!(rows.len(), 16);
        // Solar (strong source) beats thermal (weak) for every tech.
        for tech in NvmTechnology::ALL {
            let f = |src: &str| {
                rows.iter().find(|r| r.tech == tech.to_string() && r.source == src).unwrap().fp
            };
            assert!(
                f("solar-indoor") > f("thermal-body"),
                "{tech}: solar {} vs thermal {}",
                f("solar-indoor"),
                f("thermal-body")
            );
        }
    }

    #[test]
    fn feram_cheap_writes_beat_pcm() {
        let rows = rows(&ExpConfig::quick());
        let fp = |tech: &str| -> u64 { rows.iter().filter(|r| r.tech == tech).map(|r| r.fp).sum() };
        assert!(fp("FeRAM") >= fp("PCM"), "FeRAM {} vs PCM {}", fp("FeRAM"), fp("PCM"));
    }
}
