//! **F8 — per-frame latency by platform.**
//!
//! The application-level consequence of forward progress: how long one
//! processed sensor frame takes on harvested power. Published anchor
//! shape (256² frames): wait-compute 1.65/4.9/12.55 s/frame for
//! corners/edges/jpeg-class kernels, improved to 0.97/2.28/5.22 s/frame
//! by a precise NVP. We measure at the configured frame size (default
//! 32²) — absolute numbers scale with pixel count; the *ordering* and
//! the NVP speedup factor are the reproduced shape.

use nvp_workloads::KernelKind;
use serde::{Deserialize, Serialize};

use crate::common::{kernel, run_nvp, run_wait, seconds_per_frame, task_cost, watch_trace};
use crate::report::{fmt, fmt_ratio};
use crate::{ExpConfig, Table};

/// Kernels compared (lightest to heaviest).
pub const KERNELS: [KernelKind; 6] = [
    KernelKind::Corners,
    KernelKind::Edges,
    KernelKind::Sobel,
    KernelKind::Smooth,
    KernelKind::Median,
    KernelKind::Dct8,
];

/// One kernel's latency comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Kernel name.
    pub kernel: String,
    /// Unconstrained (continuous-power) time per frame, s.
    pub unconstrained_s: f64,
    /// NVP seconds per frame on the trace (`None` = no frame finished).
    pub nvp_s_per_frame: Option<f64>,
    /// Wait-compute seconds per frame on the trace.
    pub wait_s_per_frame: Option<f64>,
}

impl Row {
    /// Wait / NVP latency ratio (NVP speedup), when both completed frames.
    #[must_use]
    pub fn nvp_speedup(&self) -> Option<f64> {
        match (self.nvp_s_per_frame, self.wait_s_per_frame) {
            (Some(n), Some(w)) if n > 0.0 => Some(w / n),
            _ => None,
        }
    }
}

/// Measures frame latency for every kernel on the first profile.
#[must_use]
pub fn rows(cfg: &ExpConfig) -> Vec<Row> {
    let trace = watch_trace(cfg, cfg.profile_seeds[0]);
    KERNELS
        .iter()
        .map(|&kind| {
            let inst = kernel(cfg, kind);
            let cost = task_cost(cfg, kind);
            let nvp = run_nvp(&inst, &trace);
            let wait = run_wait(cfg, kind, &trace);
            Row {
                kernel: kind.name().to_owned(),
                unconstrained_s: cost.time_s(1e6),
                nvp_s_per_frame: seconds_per_frame(&nvp),
                wait_s_per_frame: seconds_per_frame(&wait),
            }
        })
        .collect()
}

fn opt(v: Option<f64>, decimals: usize) -> String {
    v.map_or_else(|| "none".to_owned(), |x| fmt(x, decimals))
}

/// Renders the comparison.
#[must_use]
pub fn table(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "F8",
        "Seconds per processed frame on harvested power (NVP vs wait-compute)",
        &["kernel", "unconstrained_s", "nvp_s_per_frame", "wait_s_per_frame", "nvp_speedup"],
    );
    for r in rows(cfg) {
        let speedup = r.nvp_speedup().map_or_else(|| "-".to_owned(), fmt_ratio);
        t.push_row(vec![
            r.kernel.clone(),
            fmt(r.unconstrained_s, 4),
            opt(r.nvp_s_per_frame, 3),
            opt(r.wait_s_per_frame, 3),
            speedup,
        ]);
    }
    t
}

/// Feasibility plans: the NVP and wait-compute configurations F8 runs
/// for every kernel in the latency ladder.
#[must_use]
pub fn plans(cfg: &ExpConfig) -> Vec<crate::feasibility::CheckItem> {
    use crate::common::{standard_backup, system_config_for};
    use crate::feasibility::{nvp_plan, sweep, wait_plan};
    use nvp_core::{BackupPolicy, WaitComputeConfig};

    let mut out = vec![sweep("frame-latency kernels", KERNELS.len())];
    for kind in KERNELS {
        let inst = kernel(cfg, kind);
        out.push(nvp_plan(
            format!("hardware nvp {}", kind.name()),
            &system_config_for(&inst),
            standard_backup(),
            &BackupPolicy::demand(),
        ));
        let mut wcfg = WaitComputeConfig::default().sized_for(&task_cost(cfg, kind), 1.3);
        wcfg.dmem_words = wcfg.dmem_words.max(inst.min_dmem_words());
        out.push(wait_plan(format!("wait-compute {}", kind.name()), &wcfg));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvp_frames_complete_and_beat_wait() {
        let cfg = ExpConfig::quick();
        let rows = rows(&cfg);
        for r in &rows {
            assert!(r.unconstrained_s > 0.0);
            let nvp = r.nvp_s_per_frame.unwrap_or(f64::INFINITY);
            let wait = r.wait_s_per_frame.unwrap_or(f64::INFINITY);
            assert!(nvp <= wait * 1.05, "{}: nvp {nvp} vs wait {wait}", r.kernel);
        }
        // At least the light kernels complete frames on the NVP.
        assert!(rows.iter().filter(|r| r.nvp_s_per_frame.is_some()).count() >= 3);
    }

    #[test]
    fn heavier_kernels_take_longer_unconstrained() {
        let rows = rows(&ExpConfig::quick());
        let time = |name: &str| rows.iter().find(|r| r.kernel == name).unwrap().unconstrained_s;
        assert!(time("dct8") > time("sobel"));
        assert!(time("median") > time("smooth"));
    }
}
