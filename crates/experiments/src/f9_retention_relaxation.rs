//! **F9 — shaped retention relaxation (extension experiment).**
//!
//! The "adaptive retention" direction the survey highlights (ISSCC'16
//! ReRAM NVP): most outages last milliseconds, so writing backup bits
//! with decade-class retention wastes write energy. Shaping retention per
//! bit significance (linear / log / parabola in Δ-space) trades backup
//! energy against a small, significance-weighted risk of bit decay.
//!
//! Modelling note: published chips report the *array* write energy, which
//! relaxation scales fully; our calibrated backup cost also carries
//! controller/analog overhead. We take 60 % of the backup energy as
//! retention-sensitive ([`RELAXABLE_FRACTION`]), so measured
//! forward-progress gains here are smaller than the ≈1.4× the
//! approximate-backup literature attributes to its full stack — see
//! `EXPERIMENTS.md`.

use nvp_core::{BackupModel, BackupPolicy};
use nvp_device::sttram::SttModel;
use nvp_device::{NvmTechnology, RelaxPolicy, RetentionShaper};
use nvp_energy::{OutageStats, OPERATING_THRESHOLD_W};
use nvp_workloads::{metrics, KernelKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::common::{kernel, run_nvp_with, system_config_for, watch_trace, STATE_BITS};
use crate::report::{fmt, fmt_ratio};
use crate::{ExpConfig, Table};

/// Fraction of backup energy that scales with retention (array + write
/// drivers); the remainder is fixed controller/analog overhead.
pub const RELAXABLE_FRACTION: f64 = 0.6;
/// LSB retention target, seconds (covers nearly all observed outages).
pub const MIN_RETENTION_S: f64 = 0.01;
/// MSB retention target, seconds (one day).
pub const MAX_RETENTION_S: f64 = 86_400.0;
/// Stored field width used for shaping (8-bit sensor data).
pub const FIELD_BITS: usize = 8;

/// One relaxation-policy measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Shaping policy.
    pub policy: String,
    /// Backup-array write-energy scale (1.0 = no relaxation).
    pub energy_scale: f64,
    /// Effective backup energy, nJ.
    pub backup_nj: f64,
    /// Mean forward progress across profiles.
    pub mean_fp: f64,
    /// Forward progress relative to the uniform (unrelaxed) policy.
    pub fp_gain: f64,
    /// Expected retention-failure (at-risk bit) count summed over the
    /// first profile's outages.
    pub at_risk_bits: u64,
    /// PSNR (dB) of a sobel output degraded by the mean outage.
    pub psnr_typical_db: f64,
    /// PSNR (dB) of a sobel output degraded by the longest outage.
    pub psnr_worst_db: f64,
}

fn relaxed_backup(policy: RelaxPolicy) -> (BackupModel, f64) {
    let base = BackupModel::distributed(NvmTechnology::SttMram, STATE_BITS);
    let shaper = RetentionShaper::new(policy, FIELD_BITS, MIN_RETENTION_S, MAX_RETENTION_S);
    let scale = shaper.write_energy_scale(&SttModel::default());
    let mut model = base;
    model.backup_energy =
        base.backup_energy * (1.0 - RELAXABLE_FRACTION + RELAXABLE_FRACTION * scale);
    (model, scale)
}

fn degraded_psnr(cfg: &ExpConfig, policy: RelaxPolicy, outage_s: f64, seed: u64) -> f64 {
    let inst = kernel(cfg, KernelKind::Sobel);
    let shaper = RetentionShaper::new(policy, FIELD_BITS, MIN_RETENTION_S, MAX_RETENTION_S);
    let retention = shaper.bit_retention();
    let mut rng = StdRng::seed_from_u64(seed);
    let degraded: Vec<u16> =
        inst.reference().iter().map(|&w| retention.degrade(w, outage_s, &mut rng).0).collect();
    metrics::psnr(inst.reference(), &degraded, 255.0)
}

/// Runs all four policies over the configured profiles.
#[must_use]
pub fn rows(cfg: &ExpConfig) -> Vec<Row> {
    let inst = kernel(cfg, KernelKind::Sobel);
    let sys = system_config_for(&inst);
    let trace0 = watch_trace(cfg, cfg.profile_seeds[0]);
    let outages = OutageStats::analyze(&trace0, OPERATING_THRESHOLD_W);

    let mut baseline_fp = 0.0_f64;
    let mut out = Vec::new();
    for policy in RelaxPolicy::ALL {
        let (model, scale) = relaxed_backup(policy);
        let total: u64 = cfg
            .profile_seeds
            .iter()
            .map(|&seed| {
                run_nvp_with(&inst, &watch_trace(cfg, seed), sys, model, BackupPolicy::demand())
                    .forward_progress()
            })
            .sum();
        let mean_fp = total as f64 / cfg.profile_seeds.len() as f64;
        if policy == RelaxPolicy::Uniform {
            baseline_fp = mean_fp;
        }
        let shaper = RetentionShaper::new(policy, FIELD_BITS, MIN_RETENTION_S, MAX_RETENTION_S);
        let retention = shaper.bit_retention();
        let at_risk: u64 =
            outages.outage_durations_s.iter().map(|&d| u64::from(retention.at_risk_bits(d))).sum();
        out.push(Row {
            policy: policy.to_string(),
            energy_scale: scale,
            backup_nj: model.backup_energy.get() * 1e9,
            mean_fp,
            fp_gain: mean_fp / baseline_fp.max(1.0),
            at_risk_bits: at_risk,
            psnr_typical_db: degraded_psnr(cfg, policy, outages.mean_outage_s, 11),
            psnr_worst_db: degraded_psnr(cfg, policy, outages.longest_outage_s, 13),
        });
    }
    out
}

/// Renders the comparison.
#[must_use]
pub fn table(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "F9",
        "Retention-relaxed backup: energy saved, forward-progress gain, decay risk",
        &[
            "policy",
            "array_energy_scale",
            "backup_nj",
            "mean_fp",
            "fp_gain",
            "at_risk_bits",
            "psnr_typical_db",
            "psnr_worst_db",
        ],
    );
    for r in rows(cfg) {
        let p = |v: f64| if v.is_finite() { fmt(v, 1) } else { "inf".to_owned() };
        t.push_row(vec![
            r.policy,
            fmt(r.energy_scale, 3),
            fmt(r.backup_nj, 1),
            fmt(r.mean_fp, 0),
            fmt_ratio(r.fp_gain),
            r.at_risk_bits.to_string(),
            p(r.psnr_typical_db),
            p(r.psnr_worst_db),
        ]);
    }
    t
}

/// Feasibility plans: the relaxed STT-MRAM backup model under every
/// retention policy.
#[must_use]
pub fn plans(cfg: &ExpConfig) -> Vec<crate::feasibility::CheckItem> {
    use crate::feasibility::{nvp_plan, sweep};

    let inst = kernel(cfg, KernelKind::Sobel);
    let sys = system_config_for(&inst);
    let mut out = vec![sweep("retention-relaxation policies", RelaxPolicy::ALL.len())];
    for policy in RelaxPolicy::ALL {
        let (model, _) = relaxed_backup(policy);
        out.push(nvp_plan(
            format!("stt-mram {policy:?} relaxation"),
            &sys,
            model,
            &BackupPolicy::demand(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxation_saves_energy_and_helps_fp() {
        let rows = rows(&ExpConfig::quick());
        assert_eq!(rows.len(), 4);
        let get = |name: &str| rows.iter().find(|r| r.policy == name).unwrap();
        let uniform = get("uniform");
        let log = get("log");
        let linear = get("linear");
        let parabola = get("parabola");
        assert!((uniform.energy_scale - 1.0).abs() < 1e-9);
        assert!(log.energy_scale < linear.energy_scale);
        assert!(linear.energy_scale < parabola.energy_scale);
        assert!(log.backup_nj < uniform.backup_nj);
        // Cheaper backups never hurt forward progress.
        for r in &rows {
            assert!(r.fp_gain >= 0.99, "{}: {}", r.policy, r.fp_gain);
        }
        assert!(log.fp_gain >= parabola.fp_gain * 0.999);
    }

    #[test]
    fn risk_grows_with_aggressiveness() {
        let rows = rows(&ExpConfig::quick());
        let get = |name: &str| rows.iter().find(|r| r.policy == name).unwrap();
        assert_eq!(get("uniform").at_risk_bits, 0, "decade retention never decays in 10 s");
        assert!(get("log").at_risk_bits >= get("parabola").at_risk_bits);
        // Typical-outage quality stays high even for the log policy.
        assert!(get("log").psnr_typical_db > 20.0);
    }
}
