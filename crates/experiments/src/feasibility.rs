//! **Config feasibility validation** — the static checker behind
//! `repro --check`.
//!
//! Every registered experiment declares the platform configurations and
//! sweep ranges it is about to simulate ([`Experiment::plans`]); this
//! module checks each declared plan against physical-feasibility rules
//! *before* any simulation runs, so an infeasible reconstruction is a
//! diagnostic instead of a silent zero-progress run:
//!
//! | rule | meaning |
//! |------|---------|
//! | [`RULE_BACKUP_CAPACITY`] | backup energy must fit in the storage capacitor |
//! | [`RULE_THRESHOLD_ORDER`] | the restore/start threshold must exceed the brown-out reserve |
//! | [`RULE_TRICKLE_CLIP`]    | trickle floor ≤ charger clip, efficiency in (0, 1] |
//! | [`RULE_STORAGE`]         | capacitance, rated voltage, and leak τ must be positive and finite |
//! | [`RULE_EMPTY_SWEEP`]     | sweep ranges must be nonempty |
//!
//! A *start threshold above the storage capacity* is deliberately **not**
//! an error: capacitor sweeps (F5) include unviable points on purpose —
//! the platform reports zero forward progress, which is the measurement.
//! What is never acceptable is a platform that could start but then
//! loses state because a single backup cannot fit in the store.

use std::fmt;

use nvp_core::{BackupModel, BackupPolicy, SystemConfig, Thresholds, WaitComputeConfig};
use nvp_energy::{Farads, FrontEndConfig, Joules, Seconds, Volts};

use crate::registry::{registry, Experiment};
use crate::ExpConfig;

/// Rule id: the backup (state-save) energy exceeds the maximum energy
/// the storage capacitor can hold, so state is lost on every brown-out.
pub const RULE_BACKUP_CAPACITY: &str = "backup-exceeds-capacity";
/// Rule id: the restore/start threshold does not exceed the brown-out
/// (backup-reserve) threshold, so the platform would oscillate or never
/// leave the off state.
pub const RULE_THRESHOLD_ORDER: &str = "threshold-order";
/// Rule id: the minimum-charging (trickle) floor lies above the charger
/// clip, or the trickle efficiency is outside `(0, 1]`.
pub const RULE_TRICKLE_CLIP: &str = "trickle-above-clip";
/// Rule id: nonphysical storage — capacitance, rated voltage, or leak
/// time constant is zero, negative, or non-finite.
pub const RULE_STORAGE: &str = "nonpositive-storage";
/// Rule id: a sweep declared zero points, so the experiment would emit
/// an empty artifact.
pub const RULE_EMPTY_SWEEP: &str = "empty-sweep";

/// One platform configuration an experiment intends to run.
///
/// Collapses both platform kinds to the values the feasibility rules
/// inspect: the energy front end, plus the backup model and derived
/// thresholds (hardware/software NVP) or the start threshold
/// (wait-then-compute).
#[derive(Debug, Clone)]
pub struct PlatformPlan {
    /// Human-readable plan label, shown in diagnostics.
    pub label: String,
    /// The energy front end the platform would be built with.
    pub fe: FrontEndConfig,
    /// Backup model (NVP platforms).
    pub backup: Option<BackupModel>,
    /// Derived start/reserve thresholds (NVP platforms).
    pub thresholds: Option<Thresholds>,
    /// Stored energy required before execution begins (wait-compute).
    pub start_energy: Option<Joules>,
}

/// One checkable unit of an experiment's declared intent.
#[derive(Debug, Clone)]
pub enum CheckItem {
    /// A platform configuration that will be simulated.
    Platform(Box<PlatformPlan>),
    /// A parameter sweep with a declared point count.
    Sweep {
        /// Human-readable sweep label, shown in diagnostics.
        label: String,
        /// Number of points the sweep will evaluate.
        points: usize,
    },
}

/// Declares an NVP platform plan exactly as [`nvp_core::IntermittentSystem::new`]
/// would derive it: direct-charge front end from the [`SystemConfig`]
/// storage fields, thresholds from the backup model and policy.
#[must_use]
pub fn nvp_plan(
    label: impl Into<String>,
    sys: &SystemConfig,
    backup: BackupModel,
    policy: &BackupPolicy,
) -> CheckItem {
    let fe = FrontEndConfig::direct(
        sys.rectifier,
        Farads::new(sys.capacitance_f),
        Volts::new(sys.cap_voltage_v),
        Seconds::new(sys.cap_leak_tau_s),
    );
    let thresholds = Thresholds::derive(&backup, policy, Joules::new(sys.work_headroom_j));
    CheckItem::Platform(Box::new(PlatformPlan {
        label: label.into(),
        fe,
        backup: Some(backup),
        thresholds: Some(thresholds),
        start_energy: None,
    }))
}

/// Declares a wait-then-compute platform plan with the front end
/// [`nvp_core::WaitComputeSystem::new`] would build.
#[must_use]
pub fn wait_plan(label: impl Into<String>, w: &WaitComputeConfig) -> CheckItem {
    let fe = FrontEndConfig {
        rectifier: w.rectifier,
        capacitance: Farads::new(w.capacitance_f),
        cap_voltage: Volts::new(w.cap_voltage_v),
        cap_leak_tau: Seconds::new(w.cap_leak_tau_s),
        min_charge_power: nvp_energy::Watts::new(w.min_charge_power_w),
        trickle_efficiency: w.trickle_efficiency,
        max_charge_power: nvp_energy::Watts::new(w.max_charge_power_w),
    };
    CheckItem::Platform(Box::new(PlatformPlan {
        label: label.into(),
        fe,
        backup: None,
        thresholds: None,
        start_energy: Some(Joules::new(w.start_energy_j)),
    }))
}

/// Declares a parameter sweep of `points` points.
#[must_use]
pub fn sweep(label: impl Into<String>, points: usize) -> CheckItem {
    CheckItem::Sweep { label: label.into(), points }
}

/// One feasibility violation, attributed to an experiment and plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Registry id of the offending experiment (e.g. `"f5"`).
    pub experiment: String,
    /// Label of the offending plan or sweep.
    pub plan: String,
    /// Violated rule id (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// Human-readable explanation with the offending values.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: `{}`: {}: {}", self.experiment, self.plan, self.rule, self.message)
    }
}

/// Checks one item; returns `(rule, message)` pairs for every violation.
#[must_use]
pub fn check_item(item: &CheckItem) -> Vec<(&'static str, String)> {
    match item {
        CheckItem::Platform(plan) => check_platform(plan),
        CheckItem::Sweep { points, .. } => {
            if *points == 0 {
                vec![(RULE_EMPTY_SWEEP, "sweep declares zero points".to_owned())]
            } else {
                Vec::new()
            }
        }
    }
}

fn check_platform(plan: &PlatformPlan) -> Vec<(&'static str, String)> {
    let mut out = Vec::new();
    let fe = &plan.fe;

    let c = fe.capacitance.get();
    let v = fe.cap_voltage.get();
    let tau = fe.cap_leak_tau.get();
    if !(c > 0.0 && c.is_finite()) {
        out.push((RULE_STORAGE, format!("storage capacitance {c} F is not positive and finite")));
    }
    if !(v > 0.0 && v.is_finite()) {
        out.push((RULE_STORAGE, format!("storage rated voltage {v} V is not positive and finite")));
    }
    if !(tau > 0.0 && tau.is_finite()) {
        out.push((RULE_STORAGE, format!("storage leak time constant {tau} s is not positive")));
    }

    if fe.min_charge_power.get() > fe.max_charge_power.get() {
        out.push((
            RULE_TRICKLE_CLIP,
            format!(
                "trickle floor {} exceeds charger clip {}",
                fe.min_charge_power, fe.max_charge_power
            ),
        ));
    }
    let eff = fe.trickle_efficiency;
    if !(eff > 0.0 && eff <= 1.0) {
        out.push((RULE_TRICKLE_CLIP, format!("trickle efficiency {eff} is outside (0, 1]")));
    }

    let capacity = fe.max_storage_energy();
    if let Some(backup) = &plan.backup {
        if backup.backup_energy > capacity {
            out.push((
                RULE_BACKUP_CAPACITY,
                format!(
                    "backup needs {} but the storage holds at most {}",
                    backup.backup_energy, capacity
                ),
            ));
        }
    }
    if let Some(th) = &plan.thresholds {
        if th.start <= th.backup_reserve {
            out.push((
                RULE_THRESHOLD_ORDER,
                format!(
                    "start threshold {} does not exceed the brown-out reserve {}",
                    th.start, th.backup_reserve
                ),
            ));
        }
    }
    if let Some(start) = plan.start_energy {
        if start <= Joules::ZERO {
            out.push((
                RULE_THRESHOLD_ORDER,
                format!("start threshold {start} does not exceed the zero brown-out floor"),
            ));
        }
    }
    out
}

fn item_label(item: &CheckItem) -> &str {
    match item {
        CheckItem::Platform(plan) => &plan.label,
        CheckItem::Sweep { label, .. } => label,
    }
}

/// Checks every plan one experiment declares for `cfg`.
#[must_use]
pub fn check_experiment(exp: &dyn Experiment, cfg: &ExpConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for item in exp.plans(cfg) {
        for (rule, message) in check_item(&item) {
            out.push(Diagnostic {
                experiment: exp.id().to_owned(),
                plan: item_label(&item).to_owned(),
                rule,
                message,
            });
        }
    }
    out
}

/// Checks the full experiment registry; an empty result means every
/// declared configuration is feasible.
#[must_use]
pub fn check_registry(cfg: &ExpConfig) -> Vec<Diagnostic> {
    registry().iter().flat_map(|e| check_experiment(*e, cfg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvp_core::BackupPolicy;
    use nvp_device::NvmTechnology;

    fn demand() -> BackupPolicy {
        BackupPolicy::demand()
    }

    fn unwrap_violation(item: &CheckItem, rule: &str) -> String {
        let violations = check_item(item);
        let hit = violations.iter().find(|(r, _)| *r == rule);
        let (_, message) = hit.unwrap_or_else(|| {
            panic!("expected a `{rule}` violation, got {violations:?}");
        });
        message.clone()
    }

    /// Rule 1: a backup that cannot fit in the store is diagnosed.
    #[test]
    fn oversized_backup_is_diagnosed() {
        // 1 nF at 1 V stores 0.5 nJ; a distributed FeRAM backup of 2 kbit
        // state needs ~150 nJ of overhead alone.
        let sys =
            SystemConfig { capacitance_f: 1e-9, cap_voltage_v: 1.0, ..SystemConfig::default() };
        let backup = BackupModel::distributed(NvmTechnology::Feram, 2048);
        let item = nvp_plan("tiny cap", &sys, backup, &demand());
        let msg = unwrap_violation(&item, RULE_BACKUP_CAPACITY);
        assert!(msg.contains("backup needs"), "{msg}");
        assert!(msg.contains("holds at most"), "{msg}");
    }

    /// Rule 2: start threshold must strictly exceed the brown-out reserve.
    #[test]
    fn inverted_thresholds_are_diagnosed() {
        let backup = BackupModel::distributed(NvmTechnology::Feram, 2048);
        let item = CheckItem::Platform(Box::new(PlatformPlan {
            label: "inverted".into(),
            fe: FrontEndConfig::direct(
                nvp_energy::Rectifier::default(),
                Farads::new(2.2e-6),
                Volts::new(3.3),
                Seconds::new(3600.0),
            ),
            thresholds: Some(Thresholds {
                start: backup.backup_energy,
                backup_reserve: backup.backup_energy,
            }),
            backup: Some(backup),
            start_energy: None,
        }));
        let msg = unwrap_violation(&item, RULE_THRESHOLD_ORDER);
        assert!(msg.contains("does not exceed the brown-out reserve"), "{msg}");
        // A wait-compute platform with a zero start threshold is the
        // same class of error.
        let w = WaitComputeConfig { start_energy_j: 0.0, ..WaitComputeConfig::default() };
        let msg = unwrap_violation(&wait_plan("zero start", &w), RULE_THRESHOLD_ORDER);
        assert!(msg.contains("zero brown-out floor"), "{msg}");
    }

    /// Rule 3: the trickle floor must not exceed the charger clip.
    #[test]
    fn trickle_above_clip_is_diagnosed() {
        let w = WaitComputeConfig {
            min_charge_power_w: 1e-3,
            max_charge_power_w: 1e-4,
            ..WaitComputeConfig::default()
        };
        let msg = unwrap_violation(&wait_plan("inverted charger", &w), RULE_TRICKLE_CLIP);
        assert!(msg.contains("exceeds charger clip"), "{msg}");

        let w = WaitComputeConfig { trickle_efficiency: 0.0, ..WaitComputeConfig::default() };
        let msg = unwrap_violation(&wait_plan("dead trickle", &w), RULE_TRICKLE_CLIP);
        assert!(msg.contains("outside (0, 1]"), "{msg}");
    }

    /// Rule 4: nonphysical storage parameters are diagnosed.
    #[test]
    fn nonpositive_storage_is_diagnosed() {
        let sys = SystemConfig { capacitance_f: 0.0, ..SystemConfig::default() };
        let backup = BackupModel::distributed(NvmTechnology::Feram, 2048);
        let item = nvp_plan("no cap", &sys, backup, &demand());
        let msg = unwrap_violation(&item, RULE_STORAGE);
        assert!(msg.contains("capacitance"), "{msg}");

        let sys = SystemConfig { cap_leak_tau_s: -1.0, ..SystemConfig::default() };
        let backup = BackupModel::distributed(NvmTechnology::Feram, 2048);
        let item = nvp_plan("negative leak", &sys, backup, &demand());
        let msg = unwrap_violation(&item, RULE_STORAGE);
        assert!(msg.contains("leak time constant"), "{msg}");
    }

    /// Rule 5: empty sweeps are diagnosed.
    #[test]
    fn empty_sweep_is_diagnosed() {
        let msg = unwrap_violation(&sweep("no points", 0), RULE_EMPTY_SWEEP);
        assert!(msg.contains("zero points"), "{msg}");
        assert!(check_item(&sweep("one point", 1)).is_empty());
    }

    /// The default platform configurations are feasible.
    #[test]
    fn default_platforms_are_feasible() {
        let backup = BackupModel::distributed(NvmTechnology::Feram, 2048);
        let item = nvp_plan("default nvp", &SystemConfig::default(), backup, &demand());
        assert!(check_item(&item).is_empty());
        let item = wait_plan("default wait", &WaitComputeConfig::default());
        assert!(check_item(&item).is_empty());
    }

    /// Every registered experiment declares only feasible plans, in
    /// both the quick and the default configuration.
    #[test]
    fn all_registry_entries_pass() {
        for cfg in [ExpConfig::quick(), ExpConfig::default()] {
            for exp in registry() {
                let diags = check_experiment(*exp, &cfg);
                assert!(!exp.plans(&cfg).is_empty(), "{} declares no plans", exp.id());
                assert!(
                    diags.is_empty(),
                    "{}: infeasible plans: {}",
                    exp.id(),
                    diags.iter().map(ToString::to_string).collect::<Vec<_>>().join("; ")
                );
            }
        }
    }

    /// Diagnostics render with experiment, plan, rule, and message.
    #[test]
    fn diagnostic_display_is_complete() {
        let d = Diagnostic {
            experiment: "f5".into(),
            plan: "tiny cap".into(),
            rule: RULE_BACKUP_CAPACITY,
            message: "backup needs 1 J but the storage holds at most 0.5 J".into(),
        };
        let text = d.to_string();
        for needle in ["f5", "tiny cap", RULE_BACKUP_CAPACITY, "holds at most"] {
            assert!(text.contains(needle), "{text}");
        }
    }
}
