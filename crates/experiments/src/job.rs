//! The campaign job layer: experiments as values.
//!
//! [`CampaignRequest`] names *what* to run — an experiment selection,
//! an [`ExpConfig`], a seed override, and a cache policy — and
//! [`CampaignResult`] is *what came out* — tables, profile series, and
//! per-job cache/scheduler counters. Neither touches the filesystem:
//! results are values first and files second
//! ([`CampaignResult::write`] renders the exact artifact set the
//! classic runner wrote). That split is what lets the same request run
//! in-process (`repro`, [`crate::run_all`]) or travel over a socket to
//! the `nvpd` campaign server (see [`crate::wire`]) and come back
//! byte-identical: the golden digests pin both transports because both
//! are this one path.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::registry::{find, registry, Experiment};
use crate::sched::{self, sched_stats, SchedStats};
use crate::simcache::{sim_cache_stats, SimCacheStats};
use crate::stats::{exec_stats, ExecStats};
use crate::{f1_power_profiles, ExpConfig, Table};

/// How a job may use the simulation cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Consult and feed the configured store (in-memory index plus the
    /// persistent log, when one is attached). The default, and the only
    /// policy the `nvpd` server admits: its resident store doubles as
    /// the response cache, so duplicate submissions are deduplicated.
    #[default]
    Shared,
    /// In-memory dedup only: the transport endpoint must not attach a
    /// persistent store for this run (`repro --no-cache`). Rejected at
    /// admission by the server — the daemon's store is process-wide and
    /// cannot be bypassed per job.
    MemoryOnly,
}

/// A self-contained campaign job: everything the runner needs, nothing
/// about where artifacts will land.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRequest {
    /// Experiment ids to run (matched case-insensitively against the
    /// registry), or `None` for the full evaluation.
    pub only: Option<Vec<String>>,
    /// The experiment configuration.
    pub config: ExpConfig,
    /// Override for `config.fault_seed` (`repro --seed`, per-job seeds
    /// on the server), or `None` to keep the configured value.
    pub seed: Option<u64>,
    /// How this job may use the simulation cache.
    pub cache: CachePolicy,
}

impl CampaignRequest {
    /// A full-evaluation request with the default cache policy.
    #[must_use]
    pub fn all(config: ExpConfig) -> CampaignRequest {
        CampaignRequest { only: None, config, seed: None, cache: CachePolicy::Shared }
    }

    /// A request for a subset of experiment ids (validated at run time).
    #[must_use]
    pub fn only<S: AsRef<str>>(config: ExpConfig, ids: &[S]) -> CampaignRequest {
        CampaignRequest {
            only: Some(ids.iter().map(|s| s.as_ref().to_string()).collect()),
            config,
            seed: None,
            cache: CachePolicy::Shared,
        }
    }

    /// The configuration this request actually runs: `config` with the
    /// seed override folded in.
    #[must_use]
    pub fn effective_config(&self) -> ExpConfig {
        let mut cfg = self.config.clone();
        if let Some(s) = self.seed {
            cfg.fault_seed = s;
        }
        cfg
    }

    /// Resolves the id selection against the registry: case-insensitive
    /// lookup, duplicates dropped, registry order restored.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidInput`] for an unknown id.
    pub fn resolve(&self) -> io::Result<Vec<&'static dyn Experiment>> {
        let Some(ids) = &self.only else {
            return Ok(registry().to_vec());
        };
        let mut selected: Vec<&'static dyn Experiment> = Vec::new();
        for id in ids {
            let exp = find(id).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("unknown experiment id `{id}` (try `repro --list`)"),
                )
            })?;
            if !selected.iter().any(|e| e.id() == exp.id()) {
                selected.push(exp);
            }
        }
        selected.sort_by_key(|e| registry().iter().position(|r| r.id() == e.id()));
        Ok(selected)
    }
}

/// What a campaign job produced: pure values plus per-job counters.
/// Render to disk with [`write`](Self::write).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// Every regenerated table, in registry order.
    pub tables: Vec<Table>,
    /// Raw `f1` power-profile series as `(seed, csv)`, in seed order
    /// (empty unless `f1` was selected).
    pub profiles: Vec<(u64, String)>,
    /// Simulation-cache counters for this job
    /// ([`SimCacheStats::since`] delta over the run).
    pub cache: SimCacheStats,
    /// Work-stealing scheduler counters for this job.
    pub sched: SchedStats,
    /// Execution-tier counters for this job: superblock chain activity
    /// and lane-group dispatch ([`ExecStats::since`] delta).
    pub exec: ExecStats,
}

impl CampaignResult {
    /// The combined `RESULTS.md` document for this job's tables.
    #[must_use]
    pub fn results_markdown(&self) -> String {
        let mut combined = String::from("# nvp — regenerated evaluation results\n\n");
        for t in &self.tables {
            combined.push_str(&t.to_markdown());
            combined.push('\n');
        }
        combined
    }

    /// Writes the artifact set the classic runner wrote — one CSV per
    /// table, one CSV per profile series, and `RESULTS.md` — into
    /// `out_dir` (created if missing), returning the paths in write
    /// order. In-process and over-the-wire results render through this
    /// one function, which is what keeps both transports byte-identical.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error encountered while writing.
    pub fn write(&self, out_dir: &Path) -> io::Result<Vec<PathBuf>> {
        fs::create_dir_all(out_dir)?;
        let mut files = Vec::new();
        for t in &self.tables {
            let path = out_dir.join(format!("{}.csv", t.id().to_lowercase()));
            fs::write(&path, t.to_csv())?;
            files.push(path);
        }
        for (seed, csv) in &self.profiles {
            let path = out_dir.join(format!("f1_profile_{seed}.csv"));
            fs::write(&path, csv)?;
            files.push(path);
        }
        let md_path = out_dir.join("RESULTS.md");
        fs::write(&md_path, self.results_markdown())?;
        files.push(md_path);
        Ok(files)
    }
}

/// One schedulable unit of a flattened campaign: an experiment builder
/// or a raw profile series. Keeping both in a single task list lets the
/// scheduler overlap them freely.
enum CampaignTask {
    Build(&'static dyn Experiment),
    Profile(u64),
}

/// What a [`CampaignTask`] produced (same variant, same order).
enum CampaignOutput {
    Table(Table),
    Profile(u64, String),
}

/// Runs `experiments` and the profile series for `profile_seeds` as one
/// flattened task list on the work-stealing scheduler, returning tables
/// in experiment order and profile CSVs in seed order.
pub(crate) fn run_campaign(
    cfg: &ExpConfig,
    experiments: &[&'static dyn Experiment],
    profile_seeds: &[u64],
) -> (Vec<Table>, Vec<(u64, String)>) {
    let tasks: Vec<CampaignTask> = experiments
        .iter()
        .map(|&e| CampaignTask::Build(e))
        .chain(profile_seeds.iter().map(|&seed| CampaignTask::Profile(seed)))
        .collect();
    let outputs = sched::par_map(&tasks, |task| match task {
        CampaignTask::Build(e) => CampaignOutput::Table(e.build(cfg)),
        CampaignTask::Profile(seed) => {
            CampaignOutput::Profile(*seed, f1_power_profiles::series(cfg, *seed).to_csv())
        }
    });
    let mut tables = Vec::with_capacity(experiments.len());
    let mut profiles = Vec::with_capacity(profile_seeds.len());
    for out in outputs {
        match out {
            CampaignOutput::Table(t) => tables.push(t),
            CampaignOutput::Profile(seed, csv) => profiles.push((seed, csv)),
        }
    }
    (tables, profiles)
}

/// Executes a [`CampaignRequest`] in this process and returns the
/// result as values — no files are written. The raw `f1` profile series
/// are included exactly when `f1` is selected. Cache and scheduler
/// counters are per-job deltas over the process-wide totals (exact when
/// jobs run one at a time, as on the default single-worker server;
/// approximate under concurrent jobs).
///
/// The cache *policy* is applied by the transport endpoint (the `repro`
/// binary attaches or skips the persistent store, the server rejects
/// [`CachePolicy::MemoryOnly`] at admission); this function runs under
/// whatever store is currently configured.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidInput`] for an unknown experiment id.
pub fn run_request(req: &CampaignRequest) -> io::Result<CampaignResult> {
    let cache_before = sim_cache_stats();
    let sched_before = sched_stats();
    let exec_before = exec_stats();
    let selected = req.resolve()?;
    let cfg = req.effective_config();
    let seeds: &[u64] =
        if selected.iter().any(|e| e.id() == "f1") { &cfg.profile_seeds } else { &[] };
    let (tables, profiles) = run_campaign(&cfg, &selected, seeds);
    Ok(CampaignResult {
        tables,
        profiles,
        cache: sim_cache_stats().since(cache_before),
        sched: sched_stats().since(sched_before),
        exec: exec_stats().since(exec_before),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_folds_case_dedups_and_restores_registry_order() {
        let req = CampaignRequest::only(ExpConfig::quick(), &["F12", "t1", "f12"]);
        let selected = req.resolve().unwrap();
        let ids: Vec<&str> = selected.iter().map(|e| e.id()).collect();
        assert_eq!(ids, ["t1", "f12"], "registry order, case folded, dedup'd");
    }

    #[test]
    fn resolve_rejects_unknown_ids() {
        let req = CampaignRequest::only(ExpConfig::quick(), &["f99"]);
        let err = req.resolve().map(|v| v.len()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("f99"));
    }

    #[test]
    fn effective_config_applies_the_seed_override() {
        let mut req = CampaignRequest::all(ExpConfig::quick());
        assert_eq!(req.effective_config().fault_seed, req.config.fault_seed);
        req.seed = Some(99);
        assert_eq!(req.effective_config().fault_seed, 99);
        assert_eq!(req.config.fault_seed, ExpConfig::quick().fault_seed, "request is not mutated");
    }

    #[test]
    fn run_request_is_values_first_and_selects_profiles_with_f1() {
        let req = CampaignRequest::only(ExpConfig::quick(), &["t1"]);
        let result = run_request(&req).unwrap();
        assert_eq!(result.tables.len(), 1);
        assert!(result.profiles.is_empty(), "no f1 selected, no profile series");

        let req = CampaignRequest::only(ExpConfig::quick(), &["F1"]);
        let result = run_request(&req).unwrap();
        assert_eq!(result.tables.len(), 1);
        assert_eq!(result.profiles.len(), ExpConfig::quick().profile_seeds.len());
    }

    #[test]
    fn write_renders_the_classic_artifact_set() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("nvp_job_write_{}_{n}", std::process::id()));

        let req = CampaignRequest::only(ExpConfig::quick(), &["t1", "f2h"]);
        let result = run_request(&req).unwrap();
        let files = result.write(&dir).unwrap();
        // 2 tables + RESULTS.md, no profile series without f1.
        assert_eq!(files.len(), 3);
        for f in &files {
            assert!(f.exists(), "{}", f.display());
        }
        assert!(dir.join("t1.csv").exists());
        assert!(dir.join("f2h.csv").exists());
        assert!(dir.join("RESULTS.md").exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
