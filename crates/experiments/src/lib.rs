//! # nvp-experiments — the reconstructed evaluation harness
//!
//! One module per table/figure of the reconstructed DATE'17 NVP
//! evaluation (see `DESIGN.md` for the experiment index and the
//! paper-mismatch note). Every experiment is a deterministic function of
//! an [`ExpConfig`]; [`run_all`] regenerates everything and writes
//! CSV/Markdown artifacts.
//!
//! | ID | Module | What it reproduces |
//! |----|--------|--------------------|
//! | T1 | [`t1_chip_gallery`] | published NVP chip/technology comparison |
//! | F1 | [`f1_power_profiles`] | the five wearable power profiles |
//! | F2 | [`f2_outage_stats`] | outage durations & emergency frequencies |
//! | F3 | [`f3_forward_progress`] | NVP vs wait-compute vs software ckpt |
//! | F4 | [`f4_backup_overhead`] | backups/minute & income-energy share |
//! | F5 | [`f5_capacitor_sweep`] | forward progress vs storage size |
//! | F6 | [`f6_restore_sensitivity`] | forward progress vs wake-up latency |
//! | F7 | [`f7_tech_sweep`] | NVM technology × harvester class |
//! | T2 | [`t2_energy_distribution`] | compute/radio/sense energy shares |
//! | F8 | [`f8_frame_latency`] | per-frame latency by platform |
//! | T3 | [`t3_backup_strategies`] | distributed vs centralized vs software |
//! | F9 | [`f9_retention_relaxation`] | shaped-retention backup (extension) |
//! | F10 | [`f10_policy_sweep`] | backup-margin policy sweep (extension) |
//! | F11 | [`f11_clock_scaling`] | income-adaptive clock scaling (extension) |
//! | F12 | [`f12_fault_resilience`] | fault-injection resilience campaign (extension) |
//!
//! ## Example
//!
//! ```
//! use nvp_experiments::{t1_chip_gallery, ExpConfig};
//!
//! let table = t1_chip_gallery::table(&ExpConfig::quick());
//! assert!(table.rows().len() >= 6);
//! println!("{}", table.to_markdown());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod client;
mod common;
mod config;
pub mod feasibility;
pub mod job;
mod par;
mod persist;
mod registry;
mod report;
mod runner;
mod sched;
mod simcache;
mod stats;
pub mod wire;

pub mod f10_policy_sweep;
pub mod f11_clock_scaling;
pub mod f12_fault_resilience;
pub mod f1_power_profiles;
pub mod f2_outage_stats;
pub mod f3_forward_progress;
pub mod f4_backup_overhead;
pub mod f5_capacitor_sweep;
pub mod f6_restore_sensitivity;
pub mod f7_tech_sweep;
pub mod f8_frame_latency;
pub mod f9_retention_relaxation;
pub mod t1_chip_gallery;
pub mod t2_energy_distribution;
pub mod t3_backup_strategies;

pub use config::ExpConfig;
pub use job::{run_request, CachePolicy, CampaignRequest, CampaignResult};
pub use par::{set_thread_limit, set_thread_override, thread_count};
pub use registry::{find, registry, Experiment};
pub use report::Table;
pub use runner::{run_all, run_all_sequential, run_only, RunArtifacts};
pub use sched::{sched_stats, SchedStats};
pub use simcache::{reset_sim_cache, set_cache_dir, sim_cache_stats, SimCacheStats};
pub use stats::{exec_stats, ExecStats};
