//! Thread-count configuration for the work-stealing scheduler.
//!
//! The scheduler itself lives in [`crate::sched`]; this module owns the
//! single process-wide answer to "how many workers may run at once".
//! The budget can be forced/limited with the `NVP_THREADS` environment
//! variable, parsed **once** per process (so CI and users get one
//! deterministic answer no matter when the variable changes), or
//! programmatically with [`set_thread_override`], which always wins
//! over the environment. `NVP_THREADS=1` forces fully sequential,
//! inline execution.
//!
//! Nesting-awareness: the budget is *global*, not per `par_map` call. A
//! worker thread that calls back into the scheduler (an experiment's
//! point sweep running inside the campaign-level map) contributes its
//! own thread and draws any extra helpers from the same budget, instead
//! of spawning a fresh scoped pool the way the old fork-join helper did
//! — which is what oversubscribed 1-core hosts.
//!
//! Requested budgets are **clamped to the detected hardware
//! parallelism** by default: `NVP_THREADS=4` on a 1-core host runs one
//! worker instead of four threads time-slicing one core (the measured
//! `speedup_4t = 0.902` regression). Appending `!` (`NVP_THREADS=4!`)
//! or calling [`set_thread_override`] *forces* the count past the
//! clamp, for oversubscription testing and benchmark A/B runs.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Sentinel: `NVP_THREADS` not parsed yet.
const UNPARSED: usize = usize::MAX;
/// Sentinel: no override (use hardware parallelism).
const NO_OVERRIDE: usize = 0;

/// The resolved override, encoded as `n << 1 | forced`: `UNPARSED`
/// until first use, then `NO_OVERRIDE` or the encoded worker cap.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(UNPARSED);

/// Encodes a worker-count override into the atomic's representation.
fn encode(n: usize, forced: bool) -> usize {
    (n << 1) | usize::from(forced)
}

/// Parses an `NVP_THREADS` value: a positive integer caps the worker
/// count (`1` forces sequential execution), clamped to the detected
/// cores unless suffixed with `!` (`"4!"` forces genuine
/// oversubscription); anything else — unset, empty, zero, garbage —
/// means "no override". Returns `(count, forced)`.
pub(crate) fn parse_nvp_threads(value: Option<&str>) -> Option<(usize, bool)> {
    let s = value?.trim();
    let (s, forced) = match s.strip_suffix('!') {
        Some(rest) => (rest.trim_end(), true),
        None => (s, false),
    };
    s.parse::<usize>().ok().filter(|&n| n >= 1).map(|n| (n, forced))
}

/// Programmatically forces (or, with `None`, clears back to the
/// hardware default) the worker-count override, taking precedence over
/// `NVP_THREADS` and exempt from the hardware clamp. Benchmarks use
/// this to time sequential vs parallel runs in one process without
/// mutating the environment.
pub fn set_thread_override(threads: Option<usize>) {
    let v = match threads {
        Some(n) if n >= 1 => encode(n, true),
        _ => NO_OVERRIDE,
    };
    THREAD_OVERRIDE.store(v, Ordering::Relaxed);
}

/// Programmatically requests a worker-count cap that, like a plain
/// `NVP_THREADS=n`, still clamps to the detected hardware parallelism
/// (`None` clears back to the default).
pub fn set_thread_limit(threads: Option<usize>) {
    let v = match threads {
        Some(n) if n >= 1 => encode(n, false),
        _ => NO_OVERRIDE,
    };
    THREAD_OVERRIDE.store(v, Ordering::Relaxed);
}

/// The active override as `(count, forced)`: reads `NVP_THREADS` on
/// first call and caches the result for the life of the process.
fn thread_override() -> Option<(usize, bool)> {
    let decode = |v: usize| match v {
        NO_OVERRIDE => None,
        v => Some((v >> 1, v & 1 == 1)),
    };
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        UNPARSED => {
            let env = std::env::var("NVP_THREADS").ok();
            let parsed = parse_nvp_threads(env.as_deref());
            let v = parsed.map_or(NO_OVERRIDE, |(n, forced)| encode(n, forced));
            // Racing first calls parse the same environment and store
            // the same value, so last-write-wins is benign — unless a
            // `set_thread_override` landed in between, which must win.
            let _ =
                THREAD_OVERRIDE.compare_exchange(UNPARSED, v, Ordering::Relaxed, Ordering::Relaxed);
            decode(THREAD_OVERRIDE.load(Ordering::Relaxed))
        }
        v => decode(v),
    }
}

/// The process-wide worker budget: the override if set — clamped to the
/// detected hardware parallelism unless forced — else the hardware
/// parallelism. This bounds the total number of threads doing
/// scheduler work at any instant — the caller of the outermost
/// `par_map` plus every recruited helper, across all nesting levels.
#[must_use]
pub(crate) fn thread_budget() -> usize {
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    match thread_override() {
        Some((n, true)) => n.max(1),
        Some((n, false)) => n.min(hw).max(1),
        None => hw.max(1),
    }
}

/// Number of worker slots for `work` items: the smaller of the item
/// count and the process-wide budget (`NVP_THREADS` /
/// [`set_thread_override`]; `1` forces sequential execution). How many
/// of those slots actually get a thread depends on how much of the
/// budget is free at run time — see the `sched` module.
#[must_use]
pub fn thread_count(work: usize) -> usize {
    thread_budget().min(work).max(1)
}

/// Serializes every test (here and in `sched`) that mutates the
/// process-global thread override.
#[cfg(test)]
pub(crate) fn test_override_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_count_is_bounded() {
        assert_eq!(thread_count(0), 1);
        assert_eq!(thread_count(1), 1);
        assert!(thread_count(1000) >= 1);
        assert!(thread_count(1000) <= thread_budget());
    }

    #[test]
    fn parse_nvp_threads_accepts_positive_integers_only() {
        assert_eq!(parse_nvp_threads(None), None);
        assert_eq!(parse_nvp_threads(Some("")), None);
        assert_eq!(parse_nvp_threads(Some("0")), None);
        assert_eq!(parse_nvp_threads(Some("-3")), None);
        assert_eq!(parse_nvp_threads(Some("lots")), None);
        assert_eq!(parse_nvp_threads(Some("1.5")), None);
        assert_eq!(parse_nvp_threads(Some("1")), Some((1, false)));
        assert_eq!(parse_nvp_threads(Some(" 8 ")), Some((8, false)));
        assert_eq!(parse_nvp_threads(Some("64")), Some((64, false)));
    }

    #[test]
    fn parse_nvp_threads_bang_suffix_forces() {
        assert_eq!(parse_nvp_threads(Some("4!")), Some((4, true)));
        assert_eq!(parse_nvp_threads(Some(" 8! ")), Some((8, true)));
        assert_eq!(parse_nvp_threads(Some("0!")), None);
        assert_eq!(parse_nvp_threads(Some("!")), None);
        assert_eq!(parse_nvp_threads(Some("!4")), None);
    }

    use super::test_override_lock as override_lock;

    #[test]
    fn override_beats_environment_and_clears() {
        let _guard = override_lock();
        // Other tests exercise `thread_count` concurrently; only probe
        // the explicit-override states, then restore the default.
        set_thread_override(Some(1));
        assert_eq!(thread_count(1000), 1);
        set_thread_override(Some(3));
        assert_eq!(thread_count(1000), 3);
        assert_eq!(thread_count(2), 2);
        set_thread_override(None);
        assert!(thread_count(1000) >= 1);
    }

    #[test]
    fn unforced_budget_clamps_to_detected_cores() {
        let _guard = override_lock();
        let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        // A plain (env-style) request far past the core count clamps.
        set_thread_limit(Some(hw * 4));
        assert_eq!(thread_budget(), hw, "unforced budget must cap at available parallelism");
        // At or below the core count it is honored as given.
        set_thread_limit(Some(1));
        assert_eq!(thread_budget(), 1);
        // A forced override is exempt from the clamp.
        set_thread_override(Some(hw * 4));
        assert_eq!(thread_budget(), hw * 4);
        set_thread_override(None);
        assert!(thread_budget() >= 1);
    }
}
