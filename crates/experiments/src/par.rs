//! Minimal deterministic fork-join helper for the evaluation runner.
//!
//! [`par_map`] fans work items out over scoped std threads and returns
//! results in input order, so parallel and sequential execution produce
//! byte-identical artifacts. No external thread-pool dependency: the
//! scope joins every worker before returning, and a worker panic (e.g.
//! a failed assertion inside an experiment) propagates to the caller.
//!
//! The worker count can be forced/limited with the `NVP_THREADS`
//! environment variable, parsed **once** per process (so CI and users
//! get one deterministic answer no matter when the variable changes),
//! or programmatically with [`set_thread_override`], which always wins
//! over the environment.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Sentinel: `NVP_THREADS` not parsed yet.
const UNPARSED: usize = usize::MAX;
/// Sentinel: no override (use hardware parallelism).
const NO_OVERRIDE: usize = 0;

/// The resolved `NVP_THREADS` override: `UNPARSED` until first use,
/// then `NO_OVERRIDE` or the requested worker cap.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(UNPARSED);

/// Parses an `NVP_THREADS` value: a positive integer caps the worker
/// count (`1` forces sequential execution); anything else — unset,
/// empty, zero, garbage — means "no override".
pub(crate) fn parse_nvp_threads(value: Option<&str>) -> Option<usize> {
    value.and_then(|s| s.trim().parse::<usize>().ok()).filter(|&n| n >= 1)
}

/// Programmatically forces (or, with `None`, clears back to the
/// hardware default) the worker-count override, taking precedence over
/// `NVP_THREADS`. Benchmarks use this to time sequential vs parallel
/// runs in one process without mutating the environment.
pub fn set_thread_override(threads: Option<usize>) {
    let v = match threads {
        Some(n) if n >= 1 => n,
        _ => NO_OVERRIDE,
    };
    THREAD_OVERRIDE.store(v, Ordering::Relaxed);
}

/// The active override: reads `NVP_THREADS` on first call and caches
/// the result for the life of the process.
fn thread_override() -> Option<usize> {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        UNPARSED => {
            let env = std::env::var("NVP_THREADS").ok();
            let parsed = parse_nvp_threads(env.as_deref());
            let v = parsed.unwrap_or(NO_OVERRIDE);
            // Racing first calls parse the same environment and store
            // the same value, so last-write-wins is benign — unless a
            // `set_thread_override` landed in between, which must win.
            let _ =
                THREAD_OVERRIDE.compare_exchange(UNPARSED, v, Ordering::Relaxed, Ordering::Relaxed);
            match THREAD_OVERRIDE.load(Ordering::Relaxed) {
                NO_OVERRIDE => None,
                n => Some(n),
            }
        }
        NO_OVERRIDE => None,
        n => Some(n),
    }
}

/// Number of worker threads for `work` items: the smaller of the item
/// count and the hardware parallelism, overridable with `NVP_THREADS`
/// or [`set_thread_override`] (`1` forces sequential execution).
#[must_use]
pub fn thread_count(work: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    thread_override().unwrap_or(hw).min(work).max(1)
}

/// Maps `f` over `items` on a scoped thread pool, preserving input
/// order in the output. Work is claimed via an atomic cursor, so
/// uneven item costs balance automatically; ordering is restored by
/// sorting on the original index, making the result independent of
/// scheduling.
pub(crate) fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = thread_count(items.len());
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let results = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(item);
                results.lock().unwrap().push((i, r));
            });
        }
    });
    let mut indexed = results.into_inner().unwrap();
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        // Uneven per-item cost to scramble completion order.
        let out = par_map(&items, |&x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(par_map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(par_map(&[41], |&x| x + 1), vec![42]);
    }

    #[test]
    fn thread_count_is_bounded() {
        assert_eq!(thread_count(0), 1);
        assert_eq!(thread_count(1), 1);
        assert!(thread_count(1000) >= 1);
    }

    #[test]
    fn parse_nvp_threads_accepts_positive_integers_only() {
        assert_eq!(parse_nvp_threads(None), None);
        assert_eq!(parse_nvp_threads(Some("")), None);
        assert_eq!(parse_nvp_threads(Some("0")), None);
        assert_eq!(parse_nvp_threads(Some("-3")), None);
        assert_eq!(parse_nvp_threads(Some("lots")), None);
        assert_eq!(parse_nvp_threads(Some("1.5")), None);
        assert_eq!(parse_nvp_threads(Some("1")), Some(1));
        assert_eq!(parse_nvp_threads(Some(" 8 ")), Some(8));
        assert_eq!(parse_nvp_threads(Some("64")), Some(64));
    }

    #[test]
    fn override_beats_environment_and_clears() {
        // Other tests exercise `thread_count` concurrently; only probe
        // the explicit-override states, then restore the default.
        set_thread_override(Some(1));
        assert_eq!(thread_count(1000), 1);
        set_thread_override(Some(3));
        assert_eq!(thread_count(1000), 3);
        assert_eq!(thread_count(2), 2);
        set_thread_override(None);
        assert!(thread_count(1000) >= 1);
    }
}
