//! Thread-count configuration for the work-stealing scheduler.
//!
//! The scheduler itself lives in [`crate::sched`]; this module owns the
//! single process-wide answer to "how many workers may run at once".
//! The budget can be forced/limited with the `NVP_THREADS` environment
//! variable, parsed **once** per process (so CI and users get one
//! deterministic answer no matter when the variable changes), or
//! programmatically with [`set_thread_override`], which always wins
//! over the environment. `NVP_THREADS=1` forces fully sequential,
//! inline execution.
//!
//! Nesting-awareness: the budget is *global*, not per `par_map` call. A
//! worker thread that calls back into the scheduler (an experiment's
//! point sweep running inside the campaign-level map) contributes its
//! own thread and draws any extra helpers from the same budget, instead
//! of spawning a fresh scoped pool the way the old fork-join helper did
//! — which is what oversubscribed 1-core hosts.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Sentinel: `NVP_THREADS` not parsed yet.
const UNPARSED: usize = usize::MAX;
/// Sentinel: no override (use hardware parallelism).
const NO_OVERRIDE: usize = 0;

/// The resolved `NVP_THREADS` override: `UNPARSED` until first use,
/// then `NO_OVERRIDE` or the requested worker cap.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(UNPARSED);

/// Parses an `NVP_THREADS` value: a positive integer caps the worker
/// count (`1` forces sequential execution); anything else — unset,
/// empty, zero, garbage — means "no override".
pub(crate) fn parse_nvp_threads(value: Option<&str>) -> Option<usize> {
    value.and_then(|s| s.trim().parse::<usize>().ok()).filter(|&n| n >= 1)
}

/// Programmatically forces (or, with `None`, clears back to the
/// hardware default) the worker-count override, taking precedence over
/// `NVP_THREADS`. Benchmarks use this to time sequential vs parallel
/// runs in one process without mutating the environment.
pub fn set_thread_override(threads: Option<usize>) {
    let v = match threads {
        Some(n) if n >= 1 => n,
        _ => NO_OVERRIDE,
    };
    THREAD_OVERRIDE.store(v, Ordering::Relaxed);
}

/// The active override: reads `NVP_THREADS` on first call and caches
/// the result for the life of the process.
fn thread_override() -> Option<usize> {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        UNPARSED => {
            let env = std::env::var("NVP_THREADS").ok();
            let parsed = parse_nvp_threads(env.as_deref());
            let v = parsed.unwrap_or(NO_OVERRIDE);
            // Racing first calls parse the same environment and store
            // the same value, so last-write-wins is benign — unless a
            // `set_thread_override` landed in between, which must win.
            let _ =
                THREAD_OVERRIDE.compare_exchange(UNPARSED, v, Ordering::Relaxed, Ordering::Relaxed);
            match THREAD_OVERRIDE.load(Ordering::Relaxed) {
                NO_OVERRIDE => None,
                n => Some(n),
            }
        }
        NO_OVERRIDE => None,
        n => Some(n),
    }
}

/// The process-wide worker budget: the override if set, else the
/// hardware parallelism. This bounds the total number of threads doing
/// scheduler work at any instant — the caller of the outermost
/// `par_map` plus every recruited helper, across all nesting levels.
#[must_use]
pub(crate) fn thread_budget() -> usize {
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    thread_override().unwrap_or(hw).max(1)
}

/// Number of worker slots for `work` items: the smaller of the item
/// count and the process-wide budget (`NVP_THREADS` /
/// [`set_thread_override`]; `1` forces sequential execution). How many
/// of those slots actually get a thread depends on how much of the
/// budget is free at run time — see the `sched` module.
#[must_use]
pub fn thread_count(work: usize) -> usize {
    thread_budget().min(work).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_count_is_bounded() {
        assert_eq!(thread_count(0), 1);
        assert_eq!(thread_count(1), 1);
        assert!(thread_count(1000) >= 1);
        assert!(thread_count(1000) <= thread_budget());
    }

    #[test]
    fn parse_nvp_threads_accepts_positive_integers_only() {
        assert_eq!(parse_nvp_threads(None), None);
        assert_eq!(parse_nvp_threads(Some("")), None);
        assert_eq!(parse_nvp_threads(Some("0")), None);
        assert_eq!(parse_nvp_threads(Some("-3")), None);
        assert_eq!(parse_nvp_threads(Some("lots")), None);
        assert_eq!(parse_nvp_threads(Some("1.5")), None);
        assert_eq!(parse_nvp_threads(Some("1")), Some(1));
        assert_eq!(parse_nvp_threads(Some(" 8 ")), Some(8));
        assert_eq!(parse_nvp_threads(Some("64")), Some(64));
    }

    #[test]
    fn override_beats_environment_and_clears() {
        // Other tests exercise `thread_count` concurrently; only probe
        // the explicit-override states, then restore the default.
        set_thread_override(Some(1));
        assert_eq!(thread_count(1000), 1);
        set_thread_override(Some(3));
        assert_eq!(thread_count(1000), 3);
        assert_eq!(thread_count(2), 2);
        set_thread_override(None);
        assert!(thread_count(1000) >= 1);
    }
}
