//! Minimal deterministic fork-join helper for the evaluation runner.
//!
//! [`par_map`] fans work items out over scoped std threads and returns
//! results in input order, so parallel and sequential execution produce
//! byte-identical artifacts. No external thread-pool dependency: the
//! scope joins every worker before returning, and a worker panic (e.g.
//! a failed assertion inside an experiment) propagates to the caller.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads for `work` items: the smaller of the item
/// count and the hardware parallelism, overridable with `NVP_THREADS`
/// (`NVP_THREADS=1` forces sequential execution).
#[must_use]
pub(crate) fn thread_count(work: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let cap = std::env::var("NVP_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(hw);
    cap.min(work).max(1)
}

/// Maps `f` over `items` on a scoped thread pool, preserving input
/// order in the output. Work is claimed via an atomic cursor, so
/// uneven item costs balance automatically; ordering is restored by
/// sorting on the original index, making the result independent of
/// scheduling.
pub(crate) fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = thread_count(items.len());
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let results = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(item);
                results.lock().unwrap().push((i, r));
            });
        }
    });
    let mut indexed = results.into_inner().unwrap();
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        // Uneven per-item cost to scramble completion order.
        let out = par_map(&items, |&x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(par_map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(par_map(&[41], |&x| x + 1), vec![42]);
    }

    #[test]
    fn thread_count_is_bounded() {
        assert_eq!(thread_count(0), 1);
        assert_eq!(thread_count(1), 1);
        assert!(thread_count(1000) >= 1);
    }
}
