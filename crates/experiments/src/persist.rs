//! Persistent on-disk backing for the simulation-result cache.
//!
//! The in-memory cache in [`crate::simcache`] dies with the process, so
//! a warm full-campaign rerun still pays for every unique simulation.
//! This module makes the cache durable: an **append-only record log**
//! under a cache directory (`NVP_CACHE_DIR`, or `<out_dir>/.simcache`
//! for the `repro` binary), **sharded by the first byte** of the
//! SHA-256 content key so concurrent writers rarely touch the same
//! file and reloads stream a few small files instead of one huge one.
//!
//! ## Record format
//!
//! Each shard file `<xx>.log` (`xx` = first key byte, hex) starts with
//! the 8-byte magic `b"nvpsimc1"` — the `1` is the schema version,
//! bumped whenever the `RunReport` layout changes so stale caches are
//! skipped wholesale rather than misdecoded. After the header, records
//! are length-prefixed and CRC-framed:
//!
//! ```text
//! [len: u32 le] [crc32: u32 le] [payload: len bytes]
//! payload = key (32 bytes) ++ RunReport (24 × 8-byte fields, le)
//! ```
//!
//! The CRC-32 is the checkpoint subsystem's
//! ([`nvp_sim::crc32_bytes`]) — cache integrity and checkpoint
//! integrity share one checksum — and covers the whole payload.
//! Floats are stored as IEEE-754 bit patterns, so a reloaded
//! `RunReport` is bit-identical to the one computed, and artifacts
//! built from cache hits stay byte-identical to cold runs.
//!
//! ## Failure tolerance
//!
//! Loading is strictly best-effort — a damaged cache can cost time,
//! never correctness:
//!
//! * **Truncated tail** (a writer killed mid-append): the broken tail
//!   record is dropped, every record before it loads.
//! * **Corrupt record** (CRC mismatch, bad length, short payload): the
//!   record is skipped and never served; framing resumes at the next
//!   length prefix when it is trustworthy, otherwise the rest of the
//!   shard is abandoned.
//! * **Concurrent appenders**: records are written with a single
//!   `O_APPEND` write each, so two processes filling the same cache
//!   interleave whole records; a duplicated header (both processes
//!   creating the same shard) is recognized and skipped. Duplicate
//!   keys are benign — both writers computed bit-identical reports.
//!
//! ## Quarantine
//!
//! A shard that shows *any* damage on load — a torn tail, a CRC
//! mismatch, a foreign or stale-schema file — is **quarantined**:
//! renamed to `<name>.quarantine` (suffixed `.2`, `.3`, … if earlier
//! quarantines exist) and counted in [`LoadOutcome::quarantined`], so
//! operators can tell a *cold* cache from a *corrupted* one instead of
//! records silently vanishing. Records salvaged from a damaged shard
//! are still served, and are immediately re-appended to a fresh shard
//! file so the on-disk state heals while the quarantined file preserves
//! the evidence. The counter flows through
//! [`crate::SimCacheStats::quarantined`] into the `repro` cache summary
//! and the `nvpd/3` wire stats.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use nvp_core::RunReport;
use nvp_energy::units::Joules;
use nvp_sim::crc32_bytes;

use crate::simcache::Digest;

/// Shard-file magic: `nvpsimc` + schema version digit.
const MAGIC: &[u8; 8] = b"nvpsimc1";

/// Serialized `RunReport`: 2 + 13 + 9 eight-byte fields.
const REPORT_BYTES: usize = 24 * 8;

/// Payload length of a well-formed record: key + report.
const PAYLOAD_BYTES: usize = 32 + REPORT_BYTES;

/// Upper bound a length prefix may claim before the loader stops
/// trusting the shard's framing entirely.
const MAX_RECORD_BYTES: u32 = 4096;

/// What [`PersistentStore::open`] recovered from disk.
#[derive(Debug, Default)]
pub(crate) struct LoadOutcome {
    /// Every valid `(key, report)` record, shard-major in key order.
    pub records: Vec<(Digest, RunReport)>,
    /// Records (or whole unreadable/foreign files) dropped during the
    /// scan — corruption tolerated, never served.
    pub skipped: u64,
    /// Shard files renamed to `*.quarantine` because the scan found
    /// damage in them. Salvaged records were re-appended to a fresh
    /// shard, so a subsequent open reports the directory clean.
    pub quarantined: u64,
}

/// An open cache directory: load-once at open, append-only afterwards.
#[derive(Debug)]
pub(crate) struct PersistentStore {
    dir: PathBuf,
}

impl PersistentStore {
    /// Opens (creating if missing) a cache directory and scans every
    /// shard for valid records.
    pub(crate) fn open(dir: &Path) -> io::Result<(PersistentStore, LoadOutcome)> {
        fs::create_dir_all(dir)?;
        let store = PersistentStore { dir: dir.to_path_buf() };
        let mut outcome = LoadOutcome::default();
        // Deterministic scan order: sorted shard names.
        let mut shards: Vec<PathBuf> = fs::read_dir(dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "log"))
            .collect();
        shards.sort();
        for shard in shards {
            let mut local = LoadOutcome::default();
            match fs::read(&shard) {
                Ok(bytes) => scan_shard(&bytes, &mut local),
                Err(_) => local.skipped += 1,
            }
            if local.skipped > 0 {
                // Any damage quarantines the whole file: rename it
                // aside as evidence, then heal by re-appending the
                // salvaged records to a fresh shard. Operators see a
                // counter instead of records silently vanishing.
                match quarantine_file(&shard) {
                    Ok(target) => {
                        outcome.quarantined += 1;
                        eprintln!(
                            "warning: sim cache shard {} damaged ({} record(s) lost); \
                             quarantined as {}",
                            shard.display(),
                            local.skipped,
                            target.display()
                        );
                        for (key, report) in &local.records {
                            // Healing is best-effort; the records are
                            // already in memory either way.
                            let _ = store.append(key, report);
                        }
                    }
                    Err(e) => eprintln!(
                        "warning: sim cache shard {} damaged but could not be quarantined ({e})",
                        shard.display()
                    ),
                }
            }
            outcome.skipped += local.skipped;
            outcome.records.append(&mut local.records);
        }
        Ok((store, outcome))
    }

    /// Appends one record to the key's shard. The header (for a fresh
    /// shard) and the record are each written with a single `O_APPEND`
    /// write, so concurrent appenders interleave whole records.
    pub(crate) fn append(&self, key: &Digest, report: &RunReport) -> io::Result<()> {
        let shard = self.dir.join(format!("{:02x}.log", key[0]));
        let fresh = fs::metadata(&shard).map_or(true, |m| m.len() == 0);
        let mut file = fs::OpenOptions::new().create(true).append(true).open(&shard)?;
        let payload = encode_payload(key, report);
        let crc = crc32_bytes(&payload);
        let len = u32::try_from(payload.len()).expect("payload is far below u32::MAX");
        let mut record = Vec::with_capacity(MAGIC.len() + 8 + payload.len());
        if fresh {
            // Two processes racing on a fresh shard can both prepend
            // the magic; the loader tolerates a repeated header.
            record.extend_from_slice(MAGIC);
        }
        record.extend_from_slice(&len.to_le_bytes());
        record.extend_from_slice(&crc.to_le_bytes());
        record.extend_from_slice(&payload);
        file.write_all(&record)
    }
}

/// Renames a damaged shard to the first free `<name>.quarantine[.N]`
/// sibling and returns the chosen path.
fn quarantine_file(path: &Path) -> io::Result<PathBuf> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| io::Error::other("shard path has no utf-8 file name"))?;
    for n in 1..=1000u32 {
        let candidate = if n == 1 {
            dir.join(format!("{name}.quarantine"))
        } else {
            dir.join(format!("{name}.quarantine.{n}"))
        };
        if !candidate.exists() {
            fs::rename(path, &candidate)?;
            return Ok(candidate);
        }
    }
    Err(io::Error::other("no free quarantine name after 1000 attempts"))
}

/// Walks one shard's bytes, pushing valid records and counting damage.
fn scan_shard(bytes: &[u8], outcome: &mut LoadOutcome) {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        // Foreign or stale-schema file: skip wholesale.
        outcome.skipped += 1;
        return;
    }
    let mut off = MAGIC.len();
    while off < bytes.len() {
        // A header written twice by racing shard creators.
        if bytes[off..].starts_with(MAGIC) {
            off += MAGIC.len();
            continue;
        }
        let Some(header) = bytes.get(off..off + 8) else {
            outcome.skipped += 1; // truncated length/CRC prefix
            return;
        };
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(header[4..].try_into().expect("4 bytes"));
        if len > MAX_RECORD_BYTES {
            // The length prefix itself is implausible; framing is no
            // longer trustworthy, abandon the rest of the shard.
            outcome.skipped += 1;
            return;
        }
        let Some(payload) = bytes.get(off + 8..off + 8 + len as usize) else {
            outcome.skipped += 1; // truncated tail record
            return;
        };
        off += 8 + len as usize;
        if crc32_bytes(payload) != crc {
            outcome.skipped += 1; // corrupt record: skip, never serve
            continue;
        }
        match decode_payload(payload) {
            Some(rec) => outcome.records.push(rec),
            None => outcome.skipped += 1, // valid CRC but foreign shape
        }
    }
}

/// Serializes `key ++ report` with every numeric field little-endian
/// and floats as IEEE-754 bit patterns.
fn encode_payload(key: &Digest, report: &RunReport) -> Vec<u8> {
    let mut out = Vec::with_capacity(PAYLOAD_BYTES);
    out.extend_from_slice(key);
    let mut f = |v: f64| out.extend_from_slice(&v.to_bits().to_le_bytes());
    f(report.duration_s);
    f(report.on_time_s);
    let mut u = |v: u64| out.extend_from_slice(&v.to_le_bytes());
    u(report.committed);
    u(report.executed);
    u(report.lost);
    u(report.uncommitted_at_end);
    u(report.backups);
    u(report.restores);
    u(report.rollbacks);
    u(report.tasks_completed);
    u(report.backups_torn);
    u(report.backup_retries);
    u(report.restores_corrupt);
    u(report.safe_mode_entries);
    u(report.committed_lost);
    let e = &report.energy;
    for j in [
        e.harvested,
        e.converted,
        e.compute,
        e.backup,
        e.restore,
        e.sleep,
        e.regulator,
        e.stored_at_end,
        e.storage_wasted,
    ] {
        out.extend_from_slice(&j.get().to_bits().to_le_bytes());
    }
    debug_assert_eq!(out.len(), PAYLOAD_BYTES);
    out
}

/// Inverse of [`encode_payload`]; `None` if the payload has the wrong
/// size for schema `nvpsimc1`.
fn decode_payload(payload: &[u8]) -> Option<(Digest, RunReport)> {
    if payload.len() != PAYLOAD_BYTES {
        return None;
    }
    let mut key = [0u8; 32];
    key.copy_from_slice(&payload[..32]);
    let mut off = 32;
    let mut next = || {
        let v = u64::from_le_bytes(payload[off..off + 8].try_into().expect("8 bytes"));
        off += 8;
        v
    };
    let mut report = RunReport {
        duration_s: f64::from_bits(next()),
        on_time_s: f64::from_bits(next()),
        committed: next(),
        executed: next(),
        lost: next(),
        uncommitted_at_end: next(),
        backups: next(),
        restores: next(),
        rollbacks: next(),
        tasks_completed: next(),
        backups_torn: next(),
        backup_retries: next(),
        restores_corrupt: next(),
        safe_mode_entries: next(),
        committed_lost: next(),
        ..RunReport::default()
    };
    report.energy.harvested = Joules::new(f64::from_bits(next()));
    report.energy.converted = Joules::new(f64::from_bits(next()));
    report.energy.compute = Joules::new(f64::from_bits(next()));
    report.energy.backup = Joules::new(f64::from_bits(next()));
    report.energy.restore = Joules::new(f64::from_bits(next()));
    report.energy.sleep = Joules::new(f64::from_bits(next()));
    report.energy.regulator = Joules::new(f64::from_bits(next()));
    report.energy.stored_at_end = Joules::new(f64::from_bits(next()));
    report.energy.storage_wasted = Joules::new(f64::from_bits(next()));
    Some((key, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unique_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("{tag}_{}_{n}", std::process::id()))
    }

    fn sample_report(salt: u64) -> RunReport {
        let mut r = RunReport {
            duration_s: 2.0 + salt as f64 * 0.125,
            on_time_s: 1.0,
            committed: 1000 + salt,
            executed: 1200 + salt,
            lost: 7,
            backups: 42,
            tasks_completed: 3,
            ..RunReport::default()
        };
        r.energy.compute = Joules::new(1e-6 + salt as f64 * 1e-9);
        r.energy.harvested = Joules::new(2e-6);
        r
    }

    fn key_of(b: u8) -> Digest {
        let mut k = [0u8; 32];
        k[0] = b;
        k[1] = b.wrapping_add(1);
        k
    }

    #[test]
    fn payload_round_trips_bit_exactly() {
        let report = sample_report(9);
        let key = key_of(0xAB);
        let (k2, r2) = decode_payload(&encode_payload(&key, &report)).unwrap();
        assert_eq!(k2, key);
        assert_eq!(r2, report);
        assert_eq!(r2.energy.compute.get().to_bits(), report.energy.compute.get().to_bits());
    }

    #[test]
    fn append_then_reopen_recovers_all_records() {
        let dir = unique_dir("nvp_persist_roundtrip");
        let (store, loaded) = PersistentStore::open(&dir).unwrap();
        assert!(loaded.records.is_empty());
        for i in 0..20u8 {
            // Spread over a few shards (keys differing in byte 0).
            store.append(&key_of(i % 4), &sample_report(u64::from(i))).unwrap();
        }
        let (_, reloaded) = PersistentStore::open(&dir).unwrap();
        assert_eq!(reloaded.records.len(), 20);
        assert_eq!(reloaded.skipped, 0);
        assert!(reloaded.records.iter().any(|(k, r)| k[0] == 2 && r.committed == 1002));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_record_is_dropped_not_fatal() {
        let dir = unique_dir("nvp_persist_trunc");
        let (store, _) = PersistentStore::open(&dir).unwrap();
        let key = key_of(0x11);
        store.append(&key, &sample_report(1)).unwrap();
        store.append(&key, &sample_report(2)).unwrap();
        let shard = dir.join("11.log");
        let bytes = fs::read(&shard).unwrap();
        // Chop the second record in half, as a crash mid-append would.
        fs::write(&shard, &bytes[..bytes.len() - PAYLOAD_BYTES / 2]).unwrap();
        let (_, loaded) = PersistentStore::open(&dir).unwrap();
        assert_eq!(loaded.records.len(), 1, "intact prefix record must survive");
        assert_eq!(loaded.records[0].1.committed, sample_report(1).committed);
        assert_eq!(loaded.skipped, 1);
        assert_eq!(loaded.quarantined, 1);
        assert!(dir.join("11.log.quarantine").exists(), "damaged shard renamed aside");
        // Healing: salvage was re-appended, so the next open is clean.
        let (_, healed) = PersistentStore::open(&dir).unwrap();
        assert_eq!(healed.records.len(), 1);
        assert_eq!(healed.skipped, 0);
        assert_eq!(healed.quarantined, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_crc_byte_skips_only_that_record() {
        let dir = unique_dir("nvp_persist_crc");
        let (store, _) = PersistentStore::open(&dir).unwrap();
        let key = key_of(0x22);
        store.append(&key, &sample_report(1)).unwrap();
        store.append(&key, &sample_report(2)).unwrap();
        store.append(&key, &sample_report(3)).unwrap();
        let shard = dir.join("22.log");
        let mut bytes = fs::read(&shard).unwrap();
        // Flip one payload byte inside the *middle* record.
        let middle_payload = MAGIC.len() + (8 + PAYLOAD_BYTES) + 8 + 40;
        bytes[middle_payload] ^= 0xFF;
        fs::write(&shard, &bytes).unwrap();
        let (_, loaded) = PersistentStore::open(&dir).unwrap();
        assert_eq!(loaded.records.len(), 2, "records around the corrupt one must survive");
        assert_eq!(loaded.skipped, 1);
        assert_eq!(loaded.quarantined, 1);
        let committed: Vec<u64> = loaded.records.iter().map(|(_, r)| r.committed).collect();
        assert_eq!(committed, vec![sample_report(1).committed, sample_report(3).committed]);
        // Both survivors were healed into a fresh shard.
        let (_, healed) = PersistentStore::open(&dir).unwrap();
        assert_eq!(healed.records.len(), 2);
        assert_eq!(healed.quarantined, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn repeated_quarantines_get_numbered_suffixes() {
        let dir = unique_dir("nvp_persist_requarantine");
        let (store, _) = PersistentStore::open(&dir).unwrap();
        let key = key_of(0x44);
        for round in 1..=3u64 {
            store.append(&key, &sample_report(round)).unwrap();
            let shard = dir.join("44.log");
            let mut bytes = fs::read(&shard).unwrap();
            let last = bytes.len() - 1;
            bytes[last] ^= 0xFF;
            fs::write(&shard, &bytes).unwrap();
            let (_, loaded) = PersistentStore::open(&dir).unwrap();
            assert_eq!(loaded.quarantined, 1, "round {round}");
        }
        assert!(dir.join("44.log.quarantine").exists());
        assert!(dir.join("44.log.quarantine.2").exists());
        assert!(dir.join("44.log.quarantine.3").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_and_stale_schema_files_are_skipped_wholesale() {
        let dir = unique_dir("nvp_persist_foreign");
        let (store, _) = PersistentStore::open(&dir).unwrap();
        store.append(&key_of(0x33), &sample_report(1)).unwrap();
        fs::write(dir.join("zz.log"), b"nvpsimc0old-schema-bytes").unwrap();
        fs::write(dir.join("not-a-cache.log"), b"short").unwrap();
        let (_, loaded) = PersistentStore::open(&dir).unwrap();
        assert_eq!(loaded.records.len(), 1);
        assert_eq!(loaded.skipped, 2);
        assert_eq!(loaded.quarantined, 2);
        assert!(dir.join("zz.log.quarantine").exists());
        assert!(dir.join("not-a-cache.log.quarantine").exists());
        assert!(dir.join("33.log").exists(), "healthy shard untouched");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_two_handle_append_recovers_every_record() {
        let dir = unique_dir("nvp_persist_concurrent");
        // Two independent handles on the same directory — the
        // in-process equivalent of two `repro` processes sharing
        // `NVP_CACHE_DIR` — appending into the same shards from two
        // threads.
        let (a, _) = PersistentStore::open(&dir).unwrap();
        let (b, _) = PersistentStore::open(&dir).unwrap();
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..50u64 {
                    a.append(&key_of((i % 3) as u8), &sample_report(i)).unwrap();
                }
            });
            s.spawn(|| {
                for i in 50..100u64 {
                    b.append(&key_of((i % 3) as u8), &sample_report(i)).unwrap();
                }
            });
        });
        let (_, loaded) = PersistentStore::open(&dir).unwrap();
        assert_eq!(loaded.skipped, 0, "interleaved whole-record appends never corrupt");
        assert_eq!(loaded.quarantined, 0);
        assert_eq!(loaded.records.len(), 100);
        let mut committed: Vec<u64> = loaded.records.iter().map(|(_, r)| r.committed).collect();
        committed.sort_unstable();
        let expect: Vec<u64> = (0..100).map(|i| 1000 + i).collect();
        assert_eq!(committed, expect);
        let _ = fs::remove_dir_all(&dir);
    }
}
