//! The declarative experiment registry.
//!
//! Every table/figure of the reconstructed evaluation registers here
//! once, as an [`Experiment`]; the runner, the `repro` binary
//! (`--list` / `--only`), and the examples all consult this one list.
//! Adding experiment 16 means writing its module and appending one
//! entry — no runner, binary, or example changes.

use crate::feasibility::CheckItem;
use crate::{
    f10_policy_sweep, f11_clock_scaling, f12_fault_resilience, f1_power_profiles, f2_outage_stats,
    f3_forward_progress, f4_backup_overhead, f5_capacitor_sweep, f6_restore_sensitivity,
    f7_tech_sweep, f8_frame_latency, f9_retention_relaxation, t1_chip_gallery,
    t2_energy_distribution, t3_backup_strategies, ExpConfig, Table,
};

/// A table/figure builder registered with the evaluation harness.
///
/// Implementations must be pure: [`build`](Self::build) is a
/// deterministic function of the [`ExpConfig`], which is what lets the
/// runner evaluate experiments concurrently yet write byte-identical
/// artifacts.
pub trait Experiment: Sync {
    /// Stable lower-case identifier (e.g. `"f5"`) — also the artifact
    /// file stem (`f5.csv`) and the handle `repro --only` accepts.
    fn id(&self) -> &'static str;

    /// One-line human-readable title (shown by `repro --list`).
    fn title(&self) -> &'static str;

    /// Builds the experiment's table for a configuration.
    fn build(&self, cfg: &ExpConfig) -> Table;

    /// Declares the platform configurations and sweep ranges
    /// [`build`](Self::build) is about to simulate, for static
    /// feasibility checking (`repro --check`). Required — every
    /// experiment must be checkable before it runs.
    fn plans(&self, cfg: &ExpConfig) -> Vec<CheckItem>;
}

/// An experiment backed by a plain builder function.
struct FnExperiment {
    id: &'static str,
    title: &'static str,
    build: fn(&ExpConfig) -> Table,
    plans: fn(&ExpConfig) -> Vec<CheckItem>,
}

impl Experiment for FnExperiment {
    fn id(&self) -> &'static str {
        self.id
    }

    fn title(&self) -> &'static str {
        self.title
    }

    fn build(&self, cfg: &ExpConfig) -> Table {
        (self.build)(cfg)
    }

    fn plans(&self, cfg: &ExpConfig) -> Vec<CheckItem> {
        (self.plans)(cfg)
    }
}

/// Bin count of the F2 outage-duration histogram artifact.
const F2_HISTOGRAM_BINS: usize = 16;

fn f2_histogram(cfg: &ExpConfig) -> Table {
    f2_outage_stats::histogram_table(cfg, cfg.profile_seeds[0], F2_HISTOGRAM_BINS)
}

fn f2_histogram_plans(cfg: &ExpConfig) -> Vec<CheckItem> {
    f2_outage_stats::histogram_plans(cfg, F2_HISTOGRAM_BINS)
}

/// Every registered experiment, in artifact order.
static REGISTRY: [&dyn Experiment; 16] = [
    &FnExperiment {
        id: "t1",
        title: "NVP chip & technology gallery (published silicon vs framework models)",
        build: t1_chip_gallery::table,
        plans: t1_chip_gallery::plans,
    },
    &FnExperiment {
        id: "f1",
        title: "Wearable harvester power profiles (synthetic, seeded)",
        build: f1_power_profiles::table,
        plans: f1_power_profiles::plans,
    },
    &FnExperiment {
        id: "f2",
        title: "Power-emergency statistics at the 33 µW operating threshold",
        build: f2_outage_stats::table,
        plans: f2_outage_stats::plans,
    },
    &FnExperiment {
        id: "f2h",
        title: "Outage-duration histogram",
        build: f2_histogram,
        plans: f2_histogram_plans,
    },
    &FnExperiment {
        id: "f3",
        title: "Forward progress: hardware NVP vs wait-compute vs software checkpointing",
        build: f3_forward_progress::table,
        plans: f3_forward_progress::plans,
    },
    &FnExperiment {
        id: "f4",
        title: "Backup overheads (published: 1400-1700 backups/min, 20-33% of income energy)",
        build: f4_backup_overhead::table,
        plans: f4_backup_overhead::plans,
    },
    &FnExperiment {
        id: "f5",
        title: "Forward progress vs storage capacitance (NVP buffer vs wait-compute ESD)",
        build: f5_capacitor_sweep::table,
        plans: f5_capacitor_sweep::plans,
    },
    &FnExperiment {
        id: "f6",
        title: "Forward progress vs restore (wake-up) latency",
        build: f6_restore_sensitivity::table,
        plans: f6_restore_sensitivity::plans,
    },
    &FnExperiment {
        id: "f7",
        title: "Forward progress and endurance by NVM technology and harvester class",
        build: f7_tech_sweep::table,
        plans: f7_tech_sweep::plans,
    },
    &FnExperiment {
        id: "t2",
        title: "System energy distribution by application class",
        build: t2_energy_distribution::table,
        plans: t2_energy_distribution::plans,
    },
    &FnExperiment {
        id: "f8",
        title: "Seconds per processed frame on harvested power (NVP vs wait-compute)",
        build: f8_frame_latency::table,
        plans: f8_frame_latency::plans,
    },
    &FnExperiment {
        id: "t3",
        title: "Backup strategies: distributed NVFF vs centralized copy vs software",
        build: t3_backup_strategies::table,
        plans: t3_backup_strategies::plans,
    },
    &FnExperiment {
        id: "f9",
        title: "Retention-relaxed backup: energy saved, forward-progress gain, decay risk",
        build: f9_retention_relaxation::table,
        plans: f9_retention_relaxation::plans,
    },
    &FnExperiment {
        id: "f10",
        title: "Backup-policy sweep: demand margins vs periodic checkpointing",
        build: f10_policy_sweep::table,
        plans: f10_policy_sweep::plans,
    },
    &FnExperiment {
        id: "f11",
        title: "Clock scaling: fixed frequencies vs income-adaptive",
        build: f11_clock_scaling::table,
        plans: f11_clock_scaling::plans,
    },
    &FnExperiment {
        id: "f12",
        title: "Fault-injection resilience: torn backups, retention decay, restore failures",
        build: f12_fault_resilience::table,
        plans: f12_fault_resilience::plans,
    },
];

/// The registered experiments, in artifact order.
#[must_use]
pub fn registry() -> &'static [&'static dyn Experiment] {
    &REGISTRY
}

/// Looks up an experiment by id, case-insensitively.
#[must_use]
pub fn find(id: &str) -> Option<&'static dyn Experiment> {
    REGISTRY.iter().find(|e| e.id().eq_ignore_ascii_case(id)).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_lowercase() {
        let mut seen = std::collections::BTreeSet::new();
        for e in registry() {
            assert_eq!(e.id(), e.id().to_lowercase(), "registry ids are lowercase");
            assert!(seen.insert(e.id()), "duplicate experiment id {}", e.id());
            assert!(!e.title().is_empty());
        }
        assert_eq!(registry().len(), 16);
    }

    #[test]
    fn find_is_case_insensitive() {
        assert!(find("f5").is_some());
        assert!(find("F5").is_some());
        assert!(find("F2H").is_some());
        assert!(find("nope").is_none());
    }

    /// Registry ids must match the table ids the builders emit — the
    /// artifact file stem is derived from the table, the `--only`
    /// handle from the registry, and they must agree.
    #[test]
    fn registry_ids_match_table_ids() {
        let cfg = ExpConfig::quick();
        // The two cheapest builders cover both naming styles (T*/F*);
        // the runner test checks the full set on a complete run.
        assert_eq!(find("t1").unwrap().build(&cfg).id().to_lowercase(), "t1");
        assert_eq!(find("f2h").unwrap().build(&cfg).id().to_lowercase(), "f2h");
    }
}
