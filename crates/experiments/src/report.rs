//! Table rendering (Markdown + CSV).

use serde::{Deserialize, Serialize};

/// A rendered experiment result: an identified, titled grid of cells.
///
/// # Example
///
/// ```
/// use nvp_experiments::Table;
///
/// let mut t = Table::new("T0", "demo", &["a", "b"]);
/// t.push_row(vec!["1".into(), "2".into()]);
/// assert!(t.to_markdown().contains("| 1 | 2 |"));
/// assert_eq!(t.to_csv().lines().count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    id: String,
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Table {
            id: id.to_owned(),
            title: title.to_owned(),
            columns: columns.iter().map(|&c| c.to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// The experiment identifier (e.g. `"F3"`).
    #[must_use]
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Human-readable title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Column headers.
    #[must_use]
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Data rows.
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the column count.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch in {}", self.id);
        self.rows.push(row);
    }

    /// Renders GitHub-flavoured Markdown (title, header, rows).
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {} — {}\n\n", self.id, self.title);
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.columns.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Renders CSV (header + rows, comma-separated; cells containing
    /// commas are quoted).
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        }
        let mut out = String::new();
        out.push_str(&self.columns.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with the given number of decimals.
pub(crate) fn fmt(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Formats a ratio like `2.31x`.
pub(crate) fn fmt_ratio(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_structure() {
        let mut t = Table::new("F1", "power", &["x", "y"]);
        t.push_row(vec!["0".into(), "1".into()]);
        t.push_row(vec!["1".into(), "4".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("### F1 — power"));
        assert_eq!(md.matches('|').count(), 3 * 4);
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new("X", "x", &["a"]);
        t.push_row(vec!["1,2".into()]);
        assert!(t.to_csv().contains("\"1,2\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new("X", "x", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt_ratio(2.345), "2.35x");
    }
}
