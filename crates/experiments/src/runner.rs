//! Regenerates tables/figures from the registry and writes artifacts.
//!
//! Since the `nvpd` refactor this module is a thin filesystem adapter
//! over the [`crate::job`] layer: every entry point builds a
//! [`CampaignRequest`], executes it with [`job::run_request`] (one
//! flattened task list on the work-stealing scheduler — see
//! [`crate::sched`]), and renders the returned [`CampaignResult`] with
//! its `write` method. The same request/result pair travels over the
//! wire to the campaign server, so in-process and remote runs share one
//! execution path and one artifact renderer — which is what pins them
//! byte-identical under the golden digests. [`run_all_sequential`]
//! produces the same bytes one builder at a time (enforced by
//! `tests/determinism.rs`), and [`run_only`] regenerates any subset by
//! id (`repro --only f5,t1`).

use std::io;
use std::path::{Path, PathBuf};

use crate::job::{self, CampaignRequest, CampaignResult};
use crate::registry::registry;
use crate::sched::sched_stats;
use crate::simcache::{sim_cache_stats, SimCacheStats};
use crate::stats::{exec_stats, ExecStats};
use crate::{f1_power_profiles, ExpConfig, Table};

/// What a runner call produced.
#[derive(Debug)]
pub struct RunArtifacts {
    /// Every regenerated table, in registry order.
    pub tables: Vec<Table>,
    /// Paths of the files written.
    pub files: Vec<PathBuf>,
    /// Simulation-cache hits/misses during this runner call
    /// (experiments replaying an identical simulation skip it).
    pub cache: SimCacheStats,
    /// Execution-tier counters during this runner call: superblock
    /// chain activity and lane-group dispatch.
    pub exec: ExecStats,
}

/// Executes `result`'s write phase and repackages it as [`RunArtifacts`].
fn into_artifacts(result: CampaignResult, out_dir: &Path) -> io::Result<RunArtifacts> {
    let files = result.write(out_dir)?;
    Ok(RunArtifacts { tables: result.tables, files, cache: result.cache, exec: result.exec })
}

/// Regenerates the full evaluation and writes one CSV per table, one
/// CSV per raw power-profile series, and a combined `RESULTS.md`, into
/// `out_dir` (created if missing). Builders and profile series run as
/// one flattened task list on the work-stealing scheduler; set
/// `NVP_THREADS=1` to force a fully sequential run.
///
/// # Errors
///
/// Returns any filesystem error encountered while writing.
pub fn run_all(cfg: &ExpConfig, out_dir: &Path) -> io::Result<RunArtifacts> {
    let result = job::run_request(&CampaignRequest::all(cfg.clone()))?;
    into_artifacts(result, out_dir)
}

/// [`run_all`] with every builder evaluated in registry order on the
/// calling thread — the reference implementation the parallel runner
/// must byte-match. (Point sweeps inside individual experiments still
/// use the shared pool unless `NVP_THREADS=1`.)
///
/// # Errors
///
/// Returns any filesystem error encountered while writing.
pub fn run_all_sequential(cfg: &ExpConfig, out_dir: &Path) -> io::Result<RunArtifacts> {
    let cache_before = sim_cache_stats();
    let sched_before = sched_stats();
    let exec_before = exec_stats();
    let tables: Vec<Table> = registry().iter().map(|e| e.build(cfg)).collect();
    let profiles: Vec<(u64, String)> = cfg
        .profile_seeds
        .iter()
        .map(|&seed| (seed, f1_power_profiles::series(cfg, seed).to_csv()))
        .collect();
    let result = CampaignResult {
        tables,
        profiles,
        cache: sim_cache_stats().since(cache_before),
        sched: sched_stats().since(sched_before),
        exec: exec_stats().since(exec_before),
    };
    into_artifacts(result, out_dir)
}

/// Regenerates only the experiments named by `ids` (case-insensitive
/// registry ids, e.g. `["f5", "t1"]`), writing their CSVs and a
/// `RESULTS.md` covering the selection. Artifact order follows the
/// registry regardless of the order ids are given in; the raw `f1`
/// profile series are written only when `f1` is selected.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidInput`] for an unknown id, or any
/// filesystem error encountered while writing.
pub fn run_only<S: AsRef<str>>(
    cfg: &ExpConfig,
    out_dir: &Path,
    ids: &[S],
) -> io::Result<RunArtifacts> {
    let result = job::run_request(&CampaignRequest::only(cfg.clone(), ids))?;
    into_artifacts(result, out_dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A temp dir unique to this process *and* call site, so concurrent
    /// test invocations never race on `remove_dir_all`.
    fn unique_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("{tag}_{}_{n}", std::process::id()))
    }

    #[test]
    fn run_all_quick_writes_everything() {
        let dir = unique_dir("nvp_exp_runner_test");
        let artifacts = run_all(&ExpConfig::quick(), &dir).unwrap();
        assert_eq!(artifacts.tables.len(), registry().len());
        // 16 tables + 2 profile series + RESULTS.md
        assert_eq!(artifacts.files.len(), 19);
        for f in &artifacts.files {
            assert!(f.exists(), "{}", f.display());
            assert!(fs::metadata(f).unwrap().len() > 0, "{}", f.display());
        }
        // Every artifact file stem agrees with its registry id.
        for (table, exp) in artifacts.tables.iter().zip(registry()) {
            assert_eq!(table.id().to_lowercase(), exp.id(), "table/registry id mismatch");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_all_quick_hits_sim_cache() {
        let cold_dir = unique_dir("nvp_exp_cache_cold");
        let warm_dir = unique_dir("nvp_exp_cache_warm");
        let cold = run_all(&ExpConfig::quick(), &cold_dir).unwrap();
        assert!(cold.cache.hits + cold.cache.misses > 0, "run_all issued no simulations");
        // Every simulation the repeat run needs is now cached, so it
        // must record hits (misses can still appear in the delta from
        // concurrently-running tests — only hits are asserted).
        let warm = run_all(&ExpConfig::quick(), &warm_dir).unwrap();
        assert!(warm.cache.hits > 0, "repeat run_all produced no cache hits: {:?}", warm.cache);
        let _ = fs::remove_dir_all(&cold_dir);
        let _ = fs::remove_dir_all(&warm_dir);
    }

    #[test]
    fn run_only_selects_and_orders_by_registry() {
        let dir = unique_dir("nvp_exp_only_test");
        // Ids out of order, mixed case, duplicated: output is still
        // registry-ordered and deduplicated.
        let artifacts = run_only(&ExpConfig::quick(), &dir, &["f2h", "T1", "f2h"]).unwrap();
        assert_eq!(artifacts.tables.len(), 2);
        assert_eq!(artifacts.tables[0].id(), "T1");
        assert_eq!(artifacts.tables[1].id(), "F2h");
        // 2 tables + RESULTS.md, no profile series without f1.
        assert_eq!(artifacts.files.len(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_only_unknown_id_is_invalid_input() {
        let dir = unique_dir("nvp_exp_only_bad");
        let err = run_only(&ExpConfig::quick(), &dir, &["f99"]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("f99"));
        let _ = fs::remove_dir_all(&dir);
    }
}
