//! Regenerates every table/figure and writes the artifacts.
//!
//! The 15 table builders are pure functions of the [`ExpConfig`], so
//! [`run_all`] evaluates them concurrently on scoped threads and then
//! writes the artifacts in the fixed experiment order —
//! [`run_all_sequential`] produces byte-identical output one builder at
//! a time (enforced by `tests/determinism.rs`).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::{
    f10_policy_sweep, f11_clock_scaling, f1_power_profiles, f2_outage_stats, f3_forward_progress,
    f4_backup_overhead, f5_capacitor_sweep, f6_restore_sensitivity, f7_tech_sweep,
    f8_frame_latency, f9_retention_relaxation, par, t1_chip_gallery, t2_energy_distribution,
    t3_backup_strategies, ExpConfig, Table,
};

/// What [`run_all`] produced.
#[derive(Debug)]
pub struct RunArtifacts {
    /// Every regenerated table, in experiment order.
    pub tables: Vec<Table>,
    /// Paths of the files written.
    pub files: Vec<PathBuf>,
}

type Builder = fn(&ExpConfig) -> Table;

fn f2_histogram(cfg: &ExpConfig) -> Table {
    f2_outage_stats::histogram_table(cfg, cfg.profile_seeds[0], 16)
}

/// The table builders, in artifact order.
const BUILDERS: [Builder; 15] = [
    t1_chip_gallery::table,
    f1_power_profiles::table,
    f2_outage_stats::table,
    f2_histogram,
    f3_forward_progress::table,
    f4_backup_overhead::table,
    f5_capacitor_sweep::table,
    f6_restore_sensitivity::table,
    f7_tech_sweep::table,
    t2_energy_distribution::table,
    f8_frame_latency::table,
    t3_backup_strategies::table,
    f9_retention_relaxation::table,
    f10_policy_sweep::table,
    f11_clock_scaling::table,
];

/// Regenerates the full evaluation and writes one CSV per table, one
/// CSV per raw power-profile series, and a combined `RESULTS.md`, into
/// `out_dir` (created if missing). Builders run concurrently; set
/// `NVP_THREADS=1` to force a fully sequential run.
///
/// # Errors
///
/// Returns any filesystem error encountered while writing.
pub fn run_all(cfg: &ExpConfig, out_dir: &Path) -> io::Result<RunArtifacts> {
    let tables = par::par_map(&BUILDERS, |b| b(cfg));
    let profiles = par::par_map(&cfg.profile_seeds, |&seed| {
        (seed, f1_power_profiles::series(cfg, seed).to_csv())
    });
    write_artifacts(out_dir, tables, &profiles)
}

/// [`run_all`] with every builder evaluated in order on the calling
/// thread — the reference implementation the parallel runner must
/// byte-match. (Point sweeps inside individual experiments still use
/// the shared pool unless `NVP_THREADS=1`.)
///
/// # Errors
///
/// Returns any filesystem error encountered while writing.
pub fn run_all_sequential(cfg: &ExpConfig, out_dir: &Path) -> io::Result<RunArtifacts> {
    let tables: Vec<Table> = BUILDERS.iter().map(|b| b(cfg)).collect();
    let profiles: Vec<(u64, String)> = cfg
        .profile_seeds
        .iter()
        .map(|&seed| (seed, f1_power_profiles::series(cfg, seed).to_csv()))
        .collect();
    write_artifacts(out_dir, tables, &profiles)
}

/// Writes all artifacts in the fixed order shared by both runners.
fn write_artifacts(
    out_dir: &Path,
    tables: Vec<Table>,
    profiles: &[(u64, String)],
) -> io::Result<RunArtifacts> {
    fs::create_dir_all(out_dir)?;
    let mut files = Vec::new();
    let mut combined = String::from("# nvp — regenerated evaluation results\n\n");
    for t in &tables {
        let path = out_dir.join(format!("{}.csv", t.id().to_lowercase()));
        fs::write(&path, t.to_csv())?;
        files.push(path);
        combined.push_str(&t.to_markdown());
        combined.push('\n');
    }
    for (seed, csv) in profiles {
        let path = out_dir.join(format!("f1_profile_{seed}.csv"));
        fs::write(&path, csv)?;
        files.push(path);
    }
    let md_path = out_dir.join("RESULTS.md");
    fs::write(&md_path, combined)?;
    files.push(md_path);

    Ok(RunArtifacts { tables, files })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A temp dir unique to this process *and* call site, so concurrent
    /// test invocations never race on `remove_dir_all`.
    fn unique_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("{tag}_{}_{n}", std::process::id()))
    }

    #[test]
    fn run_all_quick_writes_everything() {
        let dir = unique_dir("nvp_exp_runner_test");
        let artifacts = run_all(&ExpConfig::quick(), &dir).unwrap();
        assert_eq!(artifacts.tables.len(), 15);
        // 15 tables + 2 profile series + RESULTS.md
        assert_eq!(artifacts.files.len(), 18);
        for f in &artifacts.files {
            assert!(f.exists(), "{}", f.display());
            assert!(fs::metadata(f).unwrap().len() > 0, "{}", f.display());
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
