//! Regenerates every table/figure and writes the artifacts.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::{
    f10_policy_sweep, f11_clock_scaling, f1_power_profiles, f2_outage_stats, f3_forward_progress,
    f4_backup_overhead, f5_capacitor_sweep, f6_restore_sensitivity, f7_tech_sweep,
    f8_frame_latency, f9_retention_relaxation, t1_chip_gallery, t2_energy_distribution,
    t3_backup_strategies, ExpConfig, Table,
};

/// What [`run_all`] produced.
#[derive(Debug)]
pub struct RunArtifacts {
    /// Every regenerated table, in experiment order.
    pub tables: Vec<Table>,
    /// Paths of the files written.
    pub files: Vec<PathBuf>,
}

/// Regenerates the full evaluation and writes one CSV per table, one
/// CSV per raw power-profile series, and a combined `RESULTS.md`, into
/// `out_dir` (created if missing).
///
/// # Errors
///
/// Returns any filesystem error encountered while writing.
pub fn run_all(cfg: &ExpConfig, out_dir: &Path) -> io::Result<RunArtifacts> {
    fs::create_dir_all(out_dir)?;
    let tables = vec![
        t1_chip_gallery::table(cfg),
        f1_power_profiles::table(cfg),
        f2_outage_stats::table(cfg),
        f2_outage_stats::histogram_table(cfg, cfg.profile_seeds[0], 16),
        f3_forward_progress::table(cfg),
        f4_backup_overhead::table(cfg),
        f5_capacitor_sweep::table(cfg),
        f6_restore_sensitivity::table(cfg),
        f7_tech_sweep::table(cfg),
        t2_energy_distribution::table(cfg),
        f8_frame_latency::table(cfg),
        t3_backup_strategies::table(cfg),
        f9_retention_relaxation::table(cfg),
        f10_policy_sweep::table(cfg),
        f11_clock_scaling::table(cfg),
    ];

    let mut files = Vec::new();
    let mut combined = String::from("# nvp — regenerated evaluation results\n\n");
    for t in &tables {
        let path = out_dir.join(format!("{}.csv", t.id().to_lowercase()));
        fs::write(&path, t.to_csv())?;
        files.push(path);
        combined.push_str(&t.to_markdown());
        combined.push('\n');
    }
    for &seed in &cfg.profile_seeds {
        let path = out_dir.join(format!("f1_profile_{seed}.csv"));
        fs::write(&path, f1_power_profiles::series(cfg, seed).to_csv())?;
        files.push(path);
    }
    let md_path = out_dir.join("RESULTS.md");
    fs::write(&md_path, combined)?;
    files.push(md_path);

    Ok(RunArtifacts { tables, files })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_all_quick_writes_everything() {
        let dir = std::env::temp_dir().join("nvp_exp_runner_test");
        let _ = fs::remove_dir_all(&dir);
        let artifacts = run_all(&ExpConfig::quick(), &dir).unwrap();
        assert_eq!(artifacts.tables.len(), 15);
        // 15 tables + 2 profile series + RESULTS.md
        assert_eq!(artifacts.files.len(), 18);
        for f in &artifacts.files {
            assert!(f.exists(), "{}", f.display());
            assert!(fs::metadata(f).unwrap().len() > 0, "{}", f.display());
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
