//! Regenerates tables/figures from the registry and writes artifacts.
//!
//! The experiments come from the [`crate::registry`] — pure functions
//! of the [`ExpConfig`] — so [`run_all`] flattens the whole campaign
//! (every experiment builder *and* every raw profile series) into one
//! task list for the work-stealing scheduler ([`crate::sched`]) and
//! writes the artifacts in the fixed registry order afterwards. A
//! single pass means a long-tail experiment keeps stealing helpers
//! freed by short ones instead of waiting at a barrier between the
//! table phase and the profile phase. [`run_all_sequential`] produces
//! byte-identical output one builder at a time (enforced by
//! `tests/determinism.rs`), and [`run_only`] regenerates any subset by
//! id (`repro --only f5,t1`).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::registry::{find, registry, Experiment};
use crate::simcache::{sim_cache_stats, SimCacheStats};
use crate::{f1_power_profiles, sched, ExpConfig, Table};

/// What a runner call produced.
#[derive(Debug)]
pub struct RunArtifacts {
    /// Every regenerated table, in registry order.
    pub tables: Vec<Table>,
    /// Paths of the files written.
    pub files: Vec<PathBuf>,
    /// Simulation-cache hits/misses during this runner call
    /// (experiments replaying an identical simulation skip it).
    pub cache: SimCacheStats,
}

/// One schedulable unit of the flattened campaign: an experiment
/// builder or a raw profile series. Keeping both in a single task list
/// lets the scheduler overlap them freely.
enum CampaignTask {
    Build(&'static dyn Experiment),
    Profile(u64),
}

/// What a [`CampaignTask`] produced (same variant, same order).
enum CampaignOutput {
    Table(Table),
    Profile(u64, String),
}

/// Runs `experiments` and the profile series for `profile_seeds` as one
/// flattened task list on the scheduler, returning tables in
/// experiment order and profile CSVs in seed order.
fn run_campaign(
    cfg: &ExpConfig,
    experiments: &[&'static dyn Experiment],
    profile_seeds: &[u64],
) -> (Vec<Table>, Vec<(u64, String)>) {
    let tasks: Vec<CampaignTask> = experiments
        .iter()
        .map(|&e| CampaignTask::Build(e))
        .chain(profile_seeds.iter().map(|&seed| CampaignTask::Profile(seed)))
        .collect();
    let outputs = sched::par_map(&tasks, |task| match task {
        CampaignTask::Build(e) => CampaignOutput::Table(e.build(cfg)),
        CampaignTask::Profile(seed) => {
            CampaignOutput::Profile(*seed, f1_power_profiles::series(cfg, *seed).to_csv())
        }
    });
    let mut tables = Vec::with_capacity(experiments.len());
    let mut profiles = Vec::with_capacity(profile_seeds.len());
    for out in outputs {
        match out {
            CampaignOutput::Table(t) => tables.push(t),
            CampaignOutput::Profile(seed, csv) => profiles.push((seed, csv)),
        }
    }
    (tables, profiles)
}

/// Regenerates the full evaluation and writes one CSV per table, one
/// CSV per raw power-profile series, and a combined `RESULTS.md`, into
/// `out_dir` (created if missing). Builders and profile series run as
/// one flattened task list on the work-stealing scheduler; set
/// `NVP_THREADS=1` to force a fully sequential run.
///
/// # Errors
///
/// Returns any filesystem error encountered while writing.
pub fn run_all(cfg: &ExpConfig, out_dir: &Path) -> io::Result<RunArtifacts> {
    let before = sim_cache_stats();
    let all: Vec<&'static dyn Experiment> = registry().to_vec();
    let (tables, profiles) = run_campaign(cfg, &all, &cfg.profile_seeds);
    write_artifacts(out_dir, tables, &profiles, before)
}

/// [`run_all`] with every builder evaluated in registry order on the
/// calling thread — the reference implementation the parallel runner
/// must byte-match. (Point sweeps inside individual experiments still
/// use the shared pool unless `NVP_THREADS=1`.)
///
/// # Errors
///
/// Returns any filesystem error encountered while writing.
pub fn run_all_sequential(cfg: &ExpConfig, out_dir: &Path) -> io::Result<RunArtifacts> {
    let before = sim_cache_stats();
    let tables: Vec<Table> = registry().iter().map(|e| e.build(cfg)).collect();
    let profiles: Vec<(u64, String)> = cfg
        .profile_seeds
        .iter()
        .map(|&seed| (seed, f1_power_profiles::series(cfg, seed).to_csv()))
        .collect();
    write_artifacts(out_dir, tables, &profiles, before)
}

/// Regenerates only the experiments named by `ids` (case-insensitive
/// registry ids, e.g. `["f5", "t1"]`), writing their CSVs and a
/// `RESULTS.md` covering the selection. Artifact order follows the
/// registry regardless of the order ids are given in; the raw `f1`
/// profile series are written only when `f1` is selected.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidInput`] for an unknown id, or any
/// filesystem error encountered while writing.
pub fn run_only<S: AsRef<str>>(
    cfg: &ExpConfig,
    out_dir: &Path,
    ids: &[S],
) -> io::Result<RunArtifacts> {
    let before = sim_cache_stats();
    let mut selected: Vec<&'static dyn Experiment> = Vec::new();
    for id in ids {
        let id = id.as_ref();
        let exp = find(id).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("unknown experiment id `{id}` (try `repro --list`)"),
            )
        })?;
        if !selected.iter().any(|e| e.id() == exp.id()) {
            selected.push(exp);
        }
    }
    // Registry order, independent of the order ids were given in.
    selected.sort_by_key(|e| registry().iter().position(|r| r.id() == e.id()));
    let seeds: &[u64] =
        if selected.iter().any(|e| e.id() == "f1") { &cfg.profile_seeds } else { &[] };
    let (tables, profiles) = run_campaign(cfg, &selected, seeds);
    write_artifacts(out_dir, tables, &profiles, before)
}

/// Writes all artifacts in the fixed order shared by every runner.
fn write_artifacts(
    out_dir: &Path,
    tables: Vec<Table>,
    profiles: &[(u64, String)],
    cache_before: SimCacheStats,
) -> io::Result<RunArtifacts> {
    fs::create_dir_all(out_dir)?;
    let mut files = Vec::new();
    let mut combined = String::from("# nvp — regenerated evaluation results\n\n");
    for t in &tables {
        let path = out_dir.join(format!("{}.csv", t.id().to_lowercase()));
        fs::write(&path, t.to_csv())?;
        files.push(path);
        combined.push_str(&t.to_markdown());
        combined.push('\n');
    }
    for (seed, csv) in profiles {
        let path = out_dir.join(format!("f1_profile_{seed}.csv"));
        fs::write(&path, csv)?;
        files.push(path);
    }
    let md_path = out_dir.join("RESULTS.md");
    fs::write(&md_path, combined)?;
    files.push(md_path);

    Ok(RunArtifacts { tables, files, cache: sim_cache_stats().since(cache_before) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A temp dir unique to this process *and* call site, so concurrent
    /// test invocations never race on `remove_dir_all`.
    fn unique_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("{tag}_{}_{n}", std::process::id()))
    }

    #[test]
    fn run_all_quick_writes_everything() {
        let dir = unique_dir("nvp_exp_runner_test");
        let artifacts = run_all(&ExpConfig::quick(), &dir).unwrap();
        assert_eq!(artifacts.tables.len(), registry().len());
        // 16 tables + 2 profile series + RESULTS.md
        assert_eq!(artifacts.files.len(), 19);
        for f in &artifacts.files {
            assert!(f.exists(), "{}", f.display());
            assert!(fs::metadata(f).unwrap().len() > 0, "{}", f.display());
        }
        // Every artifact file stem agrees with its registry id.
        for (table, exp) in artifacts.tables.iter().zip(registry()) {
            assert_eq!(table.id().to_lowercase(), exp.id(), "table/registry id mismatch");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_all_quick_hits_sim_cache() {
        let cold_dir = unique_dir("nvp_exp_cache_cold");
        let warm_dir = unique_dir("nvp_exp_cache_warm");
        let cold = run_all(&ExpConfig::quick(), &cold_dir).unwrap();
        assert!(cold.cache.hits + cold.cache.misses > 0, "run_all issued no simulations");
        // Every simulation the repeat run needs is now cached, so it
        // must record hits (misses can still appear in the delta from
        // concurrently-running tests — only hits are asserted).
        let warm = run_all(&ExpConfig::quick(), &warm_dir).unwrap();
        assert!(warm.cache.hits > 0, "repeat run_all produced no cache hits: {:?}", warm.cache);
        let _ = fs::remove_dir_all(&cold_dir);
        let _ = fs::remove_dir_all(&warm_dir);
    }

    #[test]
    fn run_only_selects_and_orders_by_registry() {
        let dir = unique_dir("nvp_exp_only_test");
        // Ids out of order, mixed case, duplicated: output is still
        // registry-ordered and deduplicated.
        let artifacts = run_only(&ExpConfig::quick(), &dir, &["f2h", "T1", "f2h"]).unwrap();
        assert_eq!(artifacts.tables.len(), 2);
        assert_eq!(artifacts.tables[0].id(), "T1");
        assert_eq!(artifacts.tables[1].id(), "F2h");
        // 2 tables + RESULTS.md, no profile series without f1.
        assert_eq!(artifacts.files.len(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_only_unknown_id_is_invalid_input() {
        let dir = unique_dir("nvp_exp_only_bad");
        let err = run_only(&ExpConfig::quick(), &dir, &["f99"]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("f99"));
        let _ = fs::remove_dir_all(&dir);
    }
}
