//! Work-stealing task scheduler for the evaluation runner.
//!
//! [`par_map`] maps a function over a slice on scoped worker threads
//! and returns results in input order. Unlike the earlier fork-join
//! helper it is built around three ideas:
//!
//! * **Per-worker deques, stealing idle workers busy.** Each worker
//!   owns a deque of task indices (Chase–Lev style discipline over
//!   `std` primitives: LIFO `pop_back` on the owner's side for cache
//!   locality, FIFO `pop_front` steals from victims so the oldest —
//!   largest-remaining — work migrates first). A worker whose deque
//!   runs dry sweeps the other deques in a deterministic order; the
//!   sweep coming up empty means every task has been claimed and the
//!   worker retires. Task *indices* are what move between threads, so
//!   the deques carry no borrowed data and the whole scheduler is
//!   `forbid(unsafe_code)`-clean.
//!
//! * **One process-wide worker budget instead of nested pools.** The
//!   number of live helper threads across *all* concurrent and nested
//!   [`par_map`] calls is bounded by `NVP_THREADS` (or hardware
//!   parallelism) minus one; see [`crate::par::thread_budget`]. A
//!   nested call — an experiment's point sweep running inside the
//!   campaign-level map — never spawns a fresh full-size pool: the
//!   calling worker always contributes work itself, and extra helpers
//!   are recruited **dynamically between tasks** only while budget
//!   tokens are free. When the wide part of the campaign drains and
//!   other workers retire, their tokens flow to whatever long-tail
//!   experiment (e.g. F12's Monte-Carlo trials) is still submitting
//!   fine-grained tasks, which is exactly the tail the old
//!   whole-experiment fan-out serialized.
//!
//! * **Pre-allocated per-index result slots.** Every task writes its
//!   result into its own pre-allocated slot — no shared `Mutex<Vec>`
//!   on the hot path, no final sort. Input order falls out of the slot
//!   indices, so parallel and sequential execution stay byte-identical
//!   no matter how tasks were stolen.
//!
//! A panic inside the mapped function propagates to the caller with
//! its **original payload**: each worker catches the unwind, the first
//! payload is parked, every worker stops claiming tasks, and after the
//! scope joins the helpers the caller resumes the unwind. (Letting a
//! helper's panic reach the scope instead would replace the payload
//! with a generic "a scoped thread panicked".) Deque locks are
//! recovered from poisoning for the same reason.

use std::any::Any;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread::Scope;

use crate::par::{thread_budget, thread_count};

/// Scheduler counters since process start (monotone; see
/// [`sched_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Tasks submitted through the scheduler (including inline runs).
    pub tasks: u64,
    /// Tasks claimed from another worker's deque.
    pub steals: u64,
    /// Helper threads spawned.
    pub helpers: u64,
}

impl SchedStats {
    /// Counter-wise difference `self - earlier` (saturating), for
    /// per-run deltas against the process-wide counters.
    #[must_use]
    pub fn since(self, earlier: SchedStats) -> SchedStats {
        SchedStats {
            tasks: self.tasks.saturating_sub(earlier.tasks),
            steals: self.steals.saturating_sub(earlier.steals),
            helpers: self.helpers.saturating_sub(earlier.helpers),
        }
    }
}

static TASKS: AtomicU64 = AtomicU64::new(0);
static STEALS: AtomicU64 = AtomicU64::new(0);
static HELPERS: AtomicU64 = AtomicU64::new(0);

/// Helper threads currently live across every concurrent/nested
/// [`par_map`] call — the enforcement point of the process-wide budget.
static HELPERS_LIVE: AtomicUsize = AtomicUsize::new(0);

/// Process-wide scheduler counters.
#[must_use]
pub fn sched_stats() -> SchedStats {
    SchedStats {
        tasks: TASKS.load(Ordering::Relaxed),
        steals: STEALS.load(Ordering::Relaxed),
        helpers: HELPERS.load(Ordering::Relaxed),
    }
}

/// Claims one helper-thread token if the process-wide budget allows,
/// i.e. fewer than `thread_budget() - 1` helpers are live.
fn try_acquire_helper() -> bool {
    let limit = thread_budget().saturating_sub(1);
    let mut cur = HELPERS_LIVE.load(Ordering::Relaxed);
    while cur < limit {
        match HELPERS_LIVE.compare_exchange_weak(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return true,
            Err(seen) => cur = seen,
        }
    }
    false
}

/// Returns a helper token on worker exit — also on unwind, so a
/// panicking worker can never leak budget.
struct HelperToken;

impl Drop for HelperToken {
    fn drop(&mut self) {
        HELPERS_LIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Locks a deque, recovering from poisoning: the deques hold plain
/// indices (no invariants to protect), and surfacing the *original*
/// worker panic beats replacing it with a `PoisonError`.
fn lock_deque(deque: &Mutex<VecDeque<usize>>) -> std::sync::MutexGuard<'_, VecDeque<usize>> {
    deque.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One `par_map` invocation: the task list, the per-worker deques, and
/// the result slots. Shared by reference with every worker the call
/// recruits.
struct Run<'env, T, R, F> {
    items: &'env [T],
    f: &'env F,
    /// One slot per task index; each is locked at most twice (result
    /// store, final take), so there is no cross-task contention.
    slots: &'env [Mutex<Option<R>>],
    /// Per-worker task-index deques; owner pops the back, thieves pop
    /// the front.
    deques: Vec<Mutex<VecDeque<usize>>>,
    /// Indices still sitting in some deque (i.e. claimable). Recruiting
    /// stops once this reaches zero — tasks already executing cannot be
    /// helped.
    unclaimed: AtomicUsize,
    /// Next worker id to hand to a newly recruited helper (0 is the
    /// caller).
    next_worker: AtomicUsize,
    /// Worker-slot cap for this call (`thread_count` of the task
    /// count).
    workers: usize,
    /// First panic payload caught in a worker; set together with
    /// [`Self::aborted`].
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Tells every worker to stop claiming tasks (a sibling panicked).
    aborted: AtomicBool,
}

impl<'env, T, R, F> Run<'env, T, R, F>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    fn new(items: &'env [T], f: &'env F, slots: &'env [Mutex<Option<R>>], workers: usize) -> Self {
        // Contiguous chunks: worker `w` seeds its deque with the w-th
        // slice of the index space, so LIFO local pops stay dense while
        // FIFO steals peel whole untouched prefixes from idle workers.
        let mut deques: Vec<Mutex<VecDeque<usize>>> = Vec::with_capacity(workers);
        let per = items.len().div_ceil(workers);
        for w in 0..workers {
            let lo = (w * per).min(items.len());
            let hi = ((w + 1) * per).min(items.len());
            deques.push(Mutex::new((lo..hi).collect()));
        }
        Run {
            items,
            f,
            slots,
            deques,
            unclaimed: AtomicUsize::new(items.len()),
            next_worker: AtomicUsize::new(1),
            workers,
            panic: Mutex::new(None),
            aborted: AtomicBool::new(false),
        }
    }

    /// The parked panic payload, if any worker panicked.
    fn into_panic(self) -> Option<Box<dyn Any + Send>> {
        self.panic.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// LIFO pop from the worker's own deque.
    fn pop_local(&self, w: usize) -> Option<usize> {
        let idx = lock_deque(&self.deques[w]).pop_back();
        if idx.is_some() {
            self.unclaimed.fetch_sub(1, Ordering::Relaxed);
        }
        idx
    }

    /// FIFO steal, sweeping victims in a deterministic order starting
    /// after the thief. An empty sweep means every task is claimed.
    fn steal(&self, w: usize) -> Option<usize> {
        for off in 1..self.workers {
            let victim = (w + off) % self.workers;
            let idx = lock_deque(&self.deques[victim]).pop_front();
            if idx.is_some() {
                self.unclaimed.fetch_sub(1, Ordering::Relaxed);
                STEALS.fetch_add(1, Ordering::Relaxed);
                return idx;
            }
        }
        None
    }

    /// Spawns one more helper if claimable work remains, a worker slot
    /// is open, and the process-wide budget has a token. Every worker
    /// calls this between tasks, so capacity freed elsewhere (an outer
    /// experiment finishing) is recruited into whatever call still has
    /// queued tasks.
    fn maybe_recruit<'scope>(&'scope self, scope: &'scope Scope<'scope, '_>) {
        if self.unclaimed.load(Ordering::Relaxed) == 0
            || self.next_worker.load(Ordering::Relaxed) >= self.workers
            || !try_acquire_helper()
        {
            return;
        }
        let id = self.next_worker.fetch_add(1, Ordering::Relaxed);
        if id >= self.workers {
            // Lost the worker-slot race; hand the token straight back.
            HELPERS_LIVE.fetch_sub(1, Ordering::Relaxed);
            return;
        }
        HELPERS.fetch_add(1, Ordering::Relaxed);
        scope.spawn(move || {
            let _token = HelperToken;
            self.work(scope, id);
        });
    }

    /// A worker's main loop: local pops, then steals, recruiting
    /// between tasks; retires when a full steal sweep finds nothing or
    /// a sibling panicked.
    fn work<'scope>(&'scope self, scope: &'scope Scope<'scope, '_>, w: usize) {
        while !self.aborted.load(Ordering::Relaxed) {
            let Some(i) = self.pop_local(w).or_else(|| self.steal(w)) else {
                return;
            };
            self.maybe_recruit(scope);
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                (self.f)(&self.items[i])
            })) {
                Ok(r) => {
                    // A slot is written exactly once: indices live in
                    // exactly one deque and are claimed exactly once.
                    *self.slots[i].lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
                        Some(r);
                }
                Err(payload) => {
                    // Park the first payload; the caller re-raises it
                    // after the scope joins every helper.
                    let mut slot =
                        self.panic.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                    slot.get_or_insert(payload);
                    drop(slot);
                    self.aborted.store(true, Ordering::Relaxed);
                    return;
                }
            }
        }
    }
}

/// Maps `f` over `items` on the work-stealing scheduler, preserving
/// input order in the output. The caller always participates; helper
/// threads are recruited from the process-wide budget while spare
/// capacity and claimable tasks both exist. With a budget of one (or a
/// single item) this degrades to an inline sequential map with zero
/// scheduling overhead, which is also what every nested call does while
/// the pool is saturated.
pub(crate) fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    TASKS.fetch_add(items.len() as u64, Ordering::Relaxed);
    let workers = thread_count(items.len());
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    {
        let run = Run::new(items, &f, &slots, workers);
        std::thread::scope(|s| run.work(s, 0));
        // The scope has joined every helper: either all slots are
        // written, or a worker parked a panic to re-raise here.
        if let Some(payload) = run.into_panic() {
            std::panic::resume_unwind(payload);
        }
    }
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("every claimed task stores its result")
        })
        .collect()
}

/// Default lane-group width for [`par_map_groups`]: the number of
/// same-kernel work items one scheduler task carries. Sized so a group
/// amortizes task overhead and shares its program image hot in cache
/// without starving a small pool of parallelism.
pub(crate) const GROUP_WIDTH: usize = 8;

/// Maps `f` over `items` like [`par_map`], but dispatches *lane groups*
/// of up to `width` consecutive items as single scheduler tasks instead
/// of one task per item. Same-program work (Monte-Carlo trials, sweep
/// points sharing a kernel) runs back-to-back on one worker, reusing
/// the shared machine image while it is hot, and the scheduler moves
/// whole groups when it steals. Results keep input order, so grouped
/// and ungrouped dispatch are byte-identical.
pub(crate) fn par_map_groups<T, R, F>(items: &[T], width: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let width = width.max(1);
    if items.len() <= width {
        if !items.is_empty() {
            crate::stats::record_lane_group(items.len());
        }
        TASKS.fetch_add(items.len() as u64, Ordering::Relaxed);
        return items.iter().map(&f).collect();
    }
    let groups: Vec<&[T]> = items.chunks(width).collect();
    for g in &groups {
        crate::stats::record_lane_group(g.len());
    }
    // Each group is one scheduler task; TASKS counts the items it
    // carries (par_map adds the group count itself).
    TASKS.fetch_add((items.len() - groups.len()) as u64, Ordering::Relaxed);
    let nested = par_map(&groups, |group| group.iter().map(&f).collect::<Vec<R>>());
    nested.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::set_thread_override;

    use crate::par::test_override_lock as override_lock;

    #[test]
    fn preserves_input_order() {
        let _guard = override_lock();
        set_thread_override(Some(4));
        let items: Vec<u64> = (0..100).collect();
        // Uneven per-item cost to scramble completion order.
        let out = par_map(&items, |&x| {
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            x * 2
        });
        set_thread_override(None);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(par_map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(par_map(&[41], |&x| x + 1), vec![42]);
    }

    #[test]
    fn grouped_dispatch_preserves_order_and_counts_groups() {
        let _guard = override_lock();
        set_thread_override(Some(4));
        let items: Vec<u64> = (0..100).collect();
        let before = crate::stats::exec_stats();
        let out = par_map_groups(&items, 8, |&x| {
            if x % 13 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(150));
            }
            x * 3
        });
        let delta = crate::stats::exec_stats().since(before);
        set_thread_override(None);
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        // Other tests may record groups concurrently, so the delta is a
        // floor, not an exact count.
        assert!(delta.lane_groups >= 100u64.div_ceil(8), "{delta:?}");
        assert!(delta.lane_group_items >= 100, "{delta:?}");
    }

    #[test]
    fn grouped_dispatch_handles_degenerate_widths() {
        assert_eq!(par_map_groups(&[] as &[u32], 8, |&x| x), Vec::<u32>::new());
        assert_eq!(par_map_groups(&[1u32, 2, 3], 0, |&x| x + 1), vec![2, 3, 4]);
        let items: Vec<u32> = (0..5).collect();
        assert_eq!(par_map_groups(&items, 64, |&x| x), items);
    }

    #[test]
    fn steal_heavy_randomized_costs_stay_ordered() {
        let _guard = override_lock();
        set_thread_override(Some(8));
        // Seeded LCG task costs: a few long poles early in the index
        // space force the other workers to steal the rest.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let costs: Vec<u64> = (0..64)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                state >> 56
            })
            .collect();
        let before = sched_stats();
        let out = par_map(&costs, |&c| {
            // Busy-spin proportional to the seeded cost so stealing
            // actually happens (sleep would just idle every worker).
            let mut acc = 0u64;
            for i in 0..(c * 2_000) {
                acc = acc.wrapping_add(i ^ c);
            }
            std::hint::black_box(acc);
            c
        });
        let after = sched_stats();
        set_thread_override(None);
        assert_eq!(out, costs, "steal-heavy scheduling must not reorder results");
        assert_eq!(after.since(before).tasks, 64);
    }

    #[test]
    fn panic_in_task_propagates() {
        let _guard = override_lock();
        set_thread_override(Some(4));
        let items: Vec<u32> = (0..32).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map(&items, |&x| {
                assert!(x != 17, "boom at 17");
                x
            })
        }));
        set_thread_override(None);
        let err = result.expect_err("worker panic must propagate");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_default();
        assert!(msg.contains("boom at 17"), "original panic payload lost: {msg}");
    }

    #[test]
    fn nested_calls_share_one_budget() {
        let _guard = override_lock();
        set_thread_override(Some(3));
        // 3 threads total => at most 2 helpers live across all nesting
        // levels, however deep the nested maps go.
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        static MAX_LIVE: AtomicUsize = AtomicUsize::new(0);
        let track = || {
            let n = LIVE.fetch_add(1, Ordering::SeqCst) + 1;
            MAX_LIVE.fetch_max(n, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_micros(100));
            LIVE.fetch_sub(1, Ordering::SeqCst);
        };
        let outer: Vec<u32> = (0..8).collect();
        let sums = par_map(&outer, |&o| {
            let inner: Vec<u32> = (0..8).collect();
            par_map(&inner, |&i| {
                track();
                o * 100 + i
            })
            .into_iter()
            .sum::<u32>()
        });
        set_thread_override(None);
        let expect: Vec<u32> = (0..8).map(|o| (0..8).map(|i| o * 100 + i).sum()).collect();
        assert_eq!(sums, expect);
        // Caller + 2 budget helpers = 3 concurrently running tasks max.
        assert!(
            MAX_LIVE.load(Ordering::SeqCst) <= 3,
            "budget exceeded: {} tasks ran concurrently under NVP_THREADS=3",
            MAX_LIVE.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn sequential_override_runs_inline() {
        let _guard = override_lock();
        set_thread_override(Some(1));
        let before = sched_stats();
        let items: Vec<u32> = (0..10).collect();
        let out = par_map(&items, |&x| x * 3);
        let after = sched_stats();
        set_thread_override(None);
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        let delta = after.since(before);
        assert_eq!(delta.tasks, 10);
        assert_eq!(delta.helpers, 0, "NVP_THREADS=1 must never spawn helpers");
    }
}
