//! Content-addressed memoization of simulation runs.
//!
//! The evaluation re-runs many *identical* simulations: F4 replays F3's
//! sobel/wearable run to measure backup overheads, F8 replays it for
//! frame latency, and every sweep (F5/F6/F10/F11) includes the default
//! operating point that other experiments also simulate. Each run is a
//! pure function of `(program, system configuration, backup model,
//! policy, power trace)`, so a process-wide cache keyed on a SHA-256
//! digest of exactly those inputs deduplicates them.
//!
//! Key derivation (see `DESIGN.md` § Performance):
//!
//! * the program image: entry point, code words, initialized data
//!   segments — hashed directly;
//! * the platform configuration: the `Debug` rendering of
//!   `SystemConfig`/`WaitComputeConfig`, `BackupModel`, and
//!   `BackupPolicy`. Rust's `f64` `Debug` output is the shortest
//!   round-trip representation, so distinct configurations always
//!   render distinctly;
//! * the power trace: dt, length, and every sample's bit pattern,
//!   hashed **once per trace** (`trace_digest`) and reused across runs;
//! * a schema tag + run-kind tag, so NVP and wait-compute runs of the
//!   same inputs can never collide.
//!
//! Values are `RunReport` (plain `Copy` data). The cache map is a
//! `BTreeMap` for deterministic internal order; the lock is *not* held
//! while a missing value is computed, so concurrent experiments never
//! serialize on a simulation — at worst two threads race to fill the
//! same key with bit-identical reports.
//!
//! ## Persistence
//!
//! The in-memory index can be backed by an on-disk record log (see
//! [`crate::persist`] for the format), so a *fresh process* rerunning
//! the campaign is served from cache instead of resimulating. The
//! backing directory is resolved once, lazily, on the first cache
//! access: [`set_cache_dir`] (what the `repro` binary calls, defaulting
//! to `<out_dir>/.simcache` unless `--no-cache`) wins over the
//! `NVP_CACHE_DIR` environment variable; with neither, the cache stays
//! memory-only and behaves exactly as before. Library users and tests
//! therefore never touch the filesystem unless they opt in. Every
//! first-time insert is appended to the log; reports loaded from disk
//! are bit-identical to recomputed ones (the key is a SHA-256 of every
//! simulation input and the value encoding round-trips float bit
//! patterns), so golden digests cannot tell a warm-disk run from a
//! cold one.

use std::collections::BTreeMap;
use std::fmt::Debug;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use nvp_core::RunReport;
use nvp_energy::PowerTrace;

use crate::persist::PersistentStore;

/// A 256-bit content digest (cache key).
pub(crate) type Digest = [u8; 32];

/// Minimal incremental FIPS 180-4 SHA-256 (the workspace is offline and
/// takes no hashing dependency); validated against the standard test
/// vectors in this module's tests.
pub(crate) struct Sha256 {
    h: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total: u64,
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

fn compress(h: &mut [u32; 8], block: &[u8]) {
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = *h;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = hh.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        hh = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    for (s, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
        *s = s.wrapping_add(v);
    }
}

impl Sha256 {
    pub(crate) fn new() -> Sha256 {
        Sha256 {
            h: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0; 64],
            buf_len: 0,
            total: 0,
        }
    }

    pub(crate) fn update(&mut self, mut data: &[u8]) {
        self.total = self.total.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = data.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len < 64 {
                // `data` is now empty; a partial buffer must survive
                // until the next update (the remainder path below
                // would clobber `buf_len`).
                return;
            }
            let block = self.buf;
            compress(&mut self.h, &block);
            self.buf_len = 0;
        }
        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            compress(&mut self.h, block);
        }
        let rest = chunks.remainder();
        self.buf[..rest.len()].copy_from_slice(rest);
        self.buf_len = rest.len();
    }

    pub(crate) fn finalize(mut self) -> Digest {
        let bit_len = self.total.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // The length block must not count toward the message length,
        // but `update` already captured `total` before padding began.
        let tail = bit_len.to_be_bytes();
        let take = 64 - self.buf_len;
        self.buf[self.buf_len..].copy_from_slice(&tail[..take.min(8)]);
        let block = self.buf;
        compress(&mut self.h, &block);
        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.h) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

/// Builds a cache key from length-prefixed, type-tagged fields.
pub(crate) struct KeyHasher(Sha256);

impl KeyHasher {
    /// Starts a key with a schema + run-kind tag (e.g.
    /// `"nvp-simcache/1:nvp"`).
    pub(crate) fn new(tag: &str) -> KeyHasher {
        let mut h = KeyHasher(Sha256::new());
        h.str(tag);
        h
    }

    fn len(&mut self, n: usize) {
        self.0.update(&(n as u64).to_le_bytes());
    }

    /// A length-prefixed UTF-8 string.
    pub(crate) fn str(&mut self, s: &str) {
        self.len(s.len());
        self.0.update(s.as_bytes());
    }

    /// A value through its `Debug` rendering (length-prefixed). `f64`
    /// `Debug` is the shortest round-trip form, so distinct values
    /// render distinctly.
    pub(crate) fn debug<T: Debug>(&mut self, value: &T) {
        let mut s = String::new();
        write!(s, "{value:?}").expect("Debug formatting does not fail");
        self.str(&s);
    }

    /// A program image: entry, code words, initialized data segments.
    pub(crate) fn program(&mut self, program: &nvp_isa::Program) {
        self.0.update(&program.entry().to_le_bytes());
        self.len(program.code().len());
        for &word in program.code() {
            self.0.update(&word.to_le_bytes());
        }
        self.len(program.data_segments().len());
        for seg in program.data_segments() {
            self.0.update(&seg.addr.to_le_bytes());
            self.len(seg.words.len());
            for &w in &seg.words {
                self.0.update(&w.to_le_bytes());
            }
        }
    }

    /// A precomputed digest (e.g. a trace's).
    pub(crate) fn digest(&mut self, d: &Digest) {
        self.0.update(d);
    }

    pub(crate) fn finish(self) -> Digest {
        self.0.finalize()
    }
}

/// Digest of a power trace: dt, length, and every sample's bit pattern.
/// Computed once per trace and reused for every run over it.
pub(crate) fn trace_digest(trace: &PowerTrace) -> Digest {
    let mut h = Sha256::new();
    h.update(b"nvp-simcache/1:trace");
    h.update(&trace.dt_s().to_bits().to_le_bytes());
    h.update(&(trace.len() as u64).to_le_bytes());
    for &sample in trace.samples() {
        h.update(&sample.to_bits().to_le_bytes());
    }
    h.finalize()
}

/// Cache hit/miss counters for one runner invocation (or the whole
/// process, via [`sim_cache_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimCacheStats {
    /// Simulations answered from the cache (in-memory index).
    pub hits: u64,
    /// The subset of [`hits`](Self::hits) whose report was loaded from
    /// the persistent store rather than computed by this process.
    pub disk_hits: u64,
    /// Simulations actually executed (and then cached).
    pub misses: u64,
    /// Reports this process appended to the persistent store.
    pub persisted: u64,
    /// Damaged shard files the persistent store quarantined on load
    /// (renamed `*.quarantine`; salvage re-appended). Distinguishes a
    /// corrupted cache from a merely cold one.
    pub quarantined: u64,
}

impl SimCacheStats {
    /// Counter-wise difference `self - earlier` (saturating), for
    /// per-invocation deltas against process-wide counters.
    #[must_use]
    pub fn since(self, earlier: SimCacheStats) -> SimCacheStats {
        SimCacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            disk_hits: self.disk_hits.saturating_sub(earlier.disk_hits),
            misses: self.misses.saturating_sub(earlier.misses),
            persisted: self.persisted.saturating_sub(earlier.persisted),
            quarantined: self.quarantined.saturating_sub(earlier.quarantined),
        }
    }
}

/// Where a cached report came from, so disk-served hits are countable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Origin {
    /// Computed (or being computed) by this process.
    Computed,
    /// Loaded from the persistent store at open time.
    Disk,
}

/// The persistence backing, resolved at most once per process.
#[derive(Debug)]
enum PersistState {
    /// Neither [`set_cache_dir`] nor `NVP_CACHE_DIR` consulted yet.
    Unresolved,
    /// Memory-only (no directory configured, or opening one failed).
    Disabled,
    /// Appending to (and loaded from) an open store.
    Active(PersistentStore),
}

static CACHE: OnceLock<Mutex<BTreeMap<Digest, (RunReport, Origin)>>> = OnceLock::new();
static PERSIST: Mutex<PersistState> = Mutex::new(PersistState::Unresolved);
static HITS: AtomicU64 = AtomicU64::new(0);
static DISK_HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static PERSISTED: AtomicU64 = AtomicU64::new(0);
static QUARANTINED: AtomicU64 = AtomicU64::new(0);

fn cache() -> &'static Mutex<BTreeMap<Digest, (RunReport, Origin)>> {
    CACHE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Lock order: [`PERSIST`] strictly before the [`CACHE`] map lock
/// (never the reverse), shared by resolution, loading, and appending.
fn persist_lock() -> std::sync::MutexGuard<'static, PersistState> {
    PERSIST.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Opens `dir` and merges its records into the in-memory index (never
/// overwriting an entry this process already computed). Returns the
/// number of records now serving from memory that came from disk.
///
/// Entries loaded from a *previously* attached store are dropped first:
/// re-pointing the cache at a new directory must not keep serving (or
/// counting) another directory's records — the isolation the `nvpd`
/// server relies on when jobs repoint the store. Reports this process
/// computed itself stay, which is safe because keys are content
/// addresses: a hit is bit-identical wherever it came from.
fn activate(state: &mut PersistState, dir: &Path) -> std::io::Result<u64> {
    let (store, loaded) = PersistentStore::open(dir)?;
    QUARANTINED.fetch_add(loaded.quarantined, Ordering::Relaxed);
    let mut map = cache().lock().expect("sim cache lock");
    map.retain(|_, (_, origin)| *origin != Origin::Disk);
    let mut merged = 0u64;
    for (key, report) in loaded.records {
        map.entry(key).or_insert_with(|| {
            merged += 1;
            (report, Origin::Disk)
        });
    }
    drop(map);
    *state = PersistState::Active(store);
    Ok(merged)
}

/// Points the simulation cache at a persistent directory (`Some`) or
/// pins it memory-only (`None`), overriding `NVP_CACHE_DIR`. Opening a
/// directory loads every valid record into the in-memory index
/// immediately and returns how many were merged; subsequent first-time
/// simulations are appended to it. On `Err` the cache falls back to
/// memory-only — a broken cache directory costs time, never a run.
///
/// The `repro` binary calls this with `<out_dir>/.simcache` (or `None`
/// under `--no-cache`); benchmarks call it to measure cold/warm/reload
/// behavior. Calling it again re-resolves: pointing at the same
/// directory after [`reset_sim_cache`] reloads the log from disk, and
/// pointing at a *different* directory first drops every entry the old
/// store contributed, so records never leak between cache directories
/// (see `tests/persist_cache.rs`).
pub fn set_cache_dir(dir: Option<&Path>) -> std::io::Result<u64> {
    let mut state = persist_lock();
    match dir {
        None => {
            *state = PersistState::Disabled;
            Ok(0)
        }
        Some(d) => activate(&mut state, d).inspect_err(|_| *state = PersistState::Disabled),
    }
}

/// Resolves `NVP_CACHE_DIR` on the first cache access if no explicit
/// [`set_cache_dir`] call got there first. Unset or empty means
/// memory-only, as does a directory that fails to open.
fn ensure_persist_resolved() {
    let mut state = persist_lock();
    if matches!(*state, PersistState::Unresolved) {
        *state = PersistState::Disabled;
        if let Some(dir) = std::env::var_os("NVP_CACHE_DIR").filter(|v| !v.is_empty()) {
            let _ = activate(&mut state, Path::new(&dir));
        }
    }
}

/// Best-effort append of a freshly computed report to the active store.
fn persist_append(key: &Digest, report: &RunReport) {
    let state = persist_lock();
    if let PersistState::Active(store) = &*state {
        if store.append(key, report).is_ok() {
            PERSISTED.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Returns the cached report for `key`, or computes it with `run` and
/// caches it. The map lock is released while `run` executes, so
/// concurrent distinct simulations proceed in parallel; two threads
/// racing on the same key both compute the (bit-identical) report, one
/// insert wins, and only that winner is persisted.
pub(crate) fn cached_run(key: Digest, run: impl FnOnce() -> RunReport) -> RunReport {
    ensure_persist_resolved();
    if let Some(&(report, origin)) = cache().lock().expect("sim cache lock").get(&key) {
        HITS.fetch_add(1, Ordering::Relaxed);
        if origin == Origin::Disk {
            DISK_HITS.fetch_add(1, Ordering::Relaxed);
        }
        return report;
    }
    let report = run();
    MISSES.fetch_add(1, Ordering::Relaxed);
    let first =
        cache().lock().expect("sim cache lock").insert(key, (report, Origin::Computed)).is_none();
    if first {
        persist_append(&key, &report);
    }
    report
}

/// Process-wide simulation-cache counters.
#[must_use]
pub fn sim_cache_stats() -> SimCacheStats {
    SimCacheStats {
        hits: HITS.load(Ordering::Relaxed),
        disk_hits: DISK_HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        persisted: PERSISTED.load(Ordering::Relaxed),
        quarantined: QUARANTINED.load(Ordering::Relaxed),
    }
}

/// Clears the in-memory simulation cache and its counters (benchmarks
/// use this to measure cold- vs warm-cache runs). The persistence
/// configuration — and any on-disk records — are untouched; re-point
/// [`set_cache_dir`] at the directory to reload them.
pub fn reset_sim_cache() {
    cache().lock().expect("sim cache lock").clear();
    HITS.store(0, Ordering::Relaxed);
    DISK_HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    PERSISTED.store(0, Ordering::Relaxed);
    QUARANTINED.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: Digest) -> String {
        d.iter().fold(String::new(), |mut s, b| {
            write!(s, "{b:02x}").expect("write to String");
            s
        })
    }

    fn one_shot(data: &[u8]) -> Digest {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    #[test]
    fn sha256_matches_fips_vectors() {
        assert_eq!(
            hex(one_shot(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(one_shot(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(one_shot(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn incremental_updates_match_one_shot() {
        let data: Vec<u8> = (0u16..300).map(|i| (i % 251) as u8).collect();
        let mut h = Sha256::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), one_shot(&data));
    }

    #[test]
    fn key_fields_are_length_prefixed() {
        // ("ab", "c") and ("a", "bc") must hash differently.
        let mut h1 = KeyHasher::new("t");
        h1.str("ab");
        h1.str("c");
        let mut h2 = KeyHasher::new("t");
        h2.str("a");
        h2.str("bc");
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn trace_digest_distinguishes_traces() {
        let a = PowerTrace::from_samples(1e-4, vec![1.0e-6, 2.0e-6]);
        let b = PowerTrace::from_samples(1e-4, vec![1.0e-6, 2.0000001e-6]);
        let c = PowerTrace::from_samples(2e-4, vec![1.0e-6, 2.0e-6]);
        assert_ne!(trace_digest(&a), trace_digest(&b));
        assert_ne!(trace_digest(&a), trace_digest(&c));
        assert_eq!(trace_digest(&a), trace_digest(&a));
    }
}
