//! Process-wide execution-tier counters.
//!
//! The simulator's superblock tier ([`nvp_sim::SuperblockStats`]) and
//! the scheduler's lane-group dispatch both happen deep inside cached,
//! parallel experiment code; these monotone process-wide counters are
//! how their activity surfaces in campaign summaries without touching
//! any serialized result shape. Deltas are taken with
//! [`ExecStats::since`], mirroring the sim-cache and scheduler counter
//! pattern.

use std::sync::atomic::{AtomicU64, Ordering};

use nvp_sim::SuperblockStats;

/// Execution-tier counters since process start (monotone; see
/// [`exec_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Superblock chains built from warm-up edge profiles.
    pub chains_formed: u64,
    /// Chain dispatches (each replaces a run of block dispatches).
    pub chain_runs: u64,
    /// Side exits: chain guards that fell back to the block tier.
    pub side_exits: u64,
    /// Lane groups dispatched as single scheduler tasks.
    pub lane_groups: u64,
    /// Work items carried by those lane groups.
    pub lane_group_items: u64,
}

impl ExecStats {
    /// Counter-wise difference `self - earlier` (saturating), for
    /// per-run deltas against the process-wide counters.
    #[must_use]
    pub fn since(self, earlier: ExecStats) -> ExecStats {
        ExecStats {
            chains_formed: self.chains_formed.saturating_sub(earlier.chains_formed),
            chain_runs: self.chain_runs.saturating_sub(earlier.chain_runs),
            side_exits: self.side_exits.saturating_sub(earlier.side_exits),
            lane_groups: self.lane_groups.saturating_sub(earlier.lane_groups),
            lane_group_items: self.lane_group_items.saturating_sub(earlier.lane_group_items),
        }
    }
}

static CHAINS_FORMED: AtomicU64 = AtomicU64::new(0);
static CHAIN_RUNS: AtomicU64 = AtomicU64::new(0);
static SIDE_EXITS: AtomicU64 = AtomicU64::new(0);
static LANE_GROUPS: AtomicU64 = AtomicU64::new(0);
static LANE_GROUP_ITEMS: AtomicU64 = AtomicU64::new(0);

/// Process-wide execution-tier counters.
#[must_use]
pub fn exec_stats() -> ExecStats {
    ExecStats {
        chains_formed: CHAINS_FORMED.load(Ordering::Relaxed),
        chain_runs: CHAIN_RUNS.load(Ordering::Relaxed),
        side_exits: SIDE_EXITS.load(Ordering::Relaxed),
        lane_groups: LANE_GROUPS.load(Ordering::Relaxed),
        lane_group_items: LANE_GROUP_ITEMS.load(Ordering::Relaxed),
    }
}

/// Folds one machine's cumulative superblock counters into the
/// process-wide totals. Call once per finished simulation (the stats
/// are cumulative per machine, so recording mid-run would double
/// count).
pub(crate) fn record_superblocks(s: SuperblockStats) {
    if s.chains_formed > 0 {
        CHAINS_FORMED.fetch_add(s.chains_formed, Ordering::Relaxed);
    }
    if s.chain_runs > 0 {
        CHAIN_RUNS.fetch_add(s.chain_runs, Ordering::Relaxed);
    }
    if s.side_exits > 0 {
        SIDE_EXITS.fetch_add(s.side_exits, Ordering::Relaxed);
    }
}

/// Records one lane-group dispatch of `items` work items.
pub(crate) fn record_lane_group(items: usize) {
    LANE_GROUPS.fetch_add(1, Ordering::Relaxed);
    LANE_GROUP_ITEMS.fetch_add(items as u64, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_is_saturating_and_counterwise() {
        let a = ExecStats {
            chains_formed: 5,
            chain_runs: 10,
            side_exits: 2,
            lane_groups: 4,
            lane_group_items: 17,
        };
        let b = ExecStats {
            chains_formed: 3,
            chain_runs: 4,
            side_exits: 2,
            lane_groups: 1,
            lane_group_items: 5,
        };
        let d = a.since(b);
        assert_eq!(d.chains_formed, 2);
        assert_eq!(d.chain_runs, 6);
        assert_eq!(d.side_exits, 0);
        assert_eq!(d.lane_groups, 3);
        assert_eq!(d.lane_group_items, 12);
        assert_eq!(b.since(a), ExecStats::default(), "saturates at zero");
    }

    #[test]
    fn recording_moves_the_global_counters() {
        let before = exec_stats();
        record_superblocks(SuperblockStats {
            chains_formed: 1,
            chain_runs: 2,
            chained_blocks: 9,
            side_exits: 3,
        });
        record_lane_group(8);
        let d = exec_stats().since(before);
        assert!(d.chains_formed >= 1);
        assert!(d.chain_runs >= 2);
        assert!(d.side_exits >= 3);
        assert!(d.lane_groups >= 1);
        assert!(d.lane_group_items >= 8);
    }
}
