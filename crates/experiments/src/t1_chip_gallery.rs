//! **T1 — NVP chip & technology gallery.**
//!
//! The survey's "who has built one" table: published NVP silicon
//! operating points side by side with this framework's per-technology
//! distributed-backup models.

use nvp_core::BackupModel;
use nvp_device::{published_chips, NvmTechnology};
use serde::{Deserialize, Serialize};

use crate::common::STATE_BITS;
use crate::report::fmt;
use crate::{ExpConfig, Table};

/// One gallery row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Chip or model name.
    pub name: String,
    /// Backup technology.
    pub tech: String,
    /// Clock, MHz.
    pub clock_mhz: f64,
    /// State covered, bits.
    pub state_bits: u64,
    /// Backup time, µs.
    pub backup_us: f64,
    /// Restore (wake-up) time, µs.
    pub restore_us: f64,
    /// Backup energy, nJ.
    pub backup_nj: f64,
    /// Restore energy, nJ.
    pub restore_nj: f64,
    /// Hardware-managed (transparent) backup?
    pub hardware_managed: bool,
    /// Source.
    pub reference: String,
}

/// Gallery rows: all published chips plus this framework's four
/// technology models.
#[must_use]
pub fn rows(_cfg: &ExpConfig) -> Vec<Row> {
    let mut rows: Vec<Row> = published_chips()
        .into_iter()
        .map(|c| Row {
            name: c.name.clone(),
            tech: c.tech.to_string(),
            clock_mhz: c.clock_hz / 1e6,
            state_bits: c.state_bits,
            backup_us: c.backup_time_s * 1e6,
            restore_us: c.restore_time_s * 1e6,
            backup_nj: c.backup_energy_j * 1e9,
            restore_nj: c.restore_energy_j * 1e9,
            hardware_managed: c.hardware_managed,
            reference: c.reference,
        })
        .collect();
    for tech in NvmTechnology::ALL {
        let m = BackupModel::distributed(tech, STATE_BITS);
        rows.push(Row {
            name: format!("nvp-sim model ({tech})"),
            tech: tech.to_string(),
            clock_mhz: 1.0,
            state_bits: STATE_BITS,
            backup_us: m.backup_time.get() * 1e6,
            restore_us: m.restore_time.get() * 1e6,
            backup_nj: m.backup_energy.get() * 1e9,
            restore_nj: m.restore_energy.get() * 1e9,
            hardware_managed: true,
            reference: "this framework".to_owned(),
        });
    }
    rows
}

/// Renders the gallery.
#[must_use]
pub fn table(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "T1",
        "NVP chip & technology gallery (published silicon vs framework models)",
        &[
            "name",
            "tech",
            "clock_mhz",
            "state_bits",
            "backup_us",
            "restore_us",
            "backup_nj",
            "restore_nj",
            "hw_managed",
            "reference",
        ],
    );
    for r in rows(cfg) {
        t.push_row(vec![
            r.name,
            r.tech,
            fmt(r.clock_mhz, 1),
            r.state_bits.to_string(),
            fmt(r.backup_us, 2),
            fmt(r.restore_us, 2),
            fmt(r.backup_nj, 1),
            fmt(r.restore_nj, 1),
            r.hardware_managed.to_string(),
            r.reference,
        ]);
    }
    t
}

/// Feasibility plans: T1 is a pure tabulation (no platform simulation);
/// the gallery itself is the sweep.
#[must_use]
pub fn plans(_cfg: &ExpConfig) -> Vec<crate::feasibility::CheckItem> {
    vec![crate::feasibility::sweep(
        "published chip gallery",
        published_chips().len() + NvmTechnology::ALL.len(),
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gallery_has_chips_and_models() {
        let rows = rows(&ExpConfig::quick());
        assert!(rows.len() >= 10);
        assert!(rows.iter().any(|r| r.reference == "this framework"));
        assert!(rows.iter().any(|r| r.reference.contains("ISSCC")));
        for r in &rows {
            assert!(r.backup_us > 0.0 && r.restore_us > 0.0, "{}", r.name);
        }
    }

    #[test]
    fn table_renders() {
        let t = table(&ExpConfig::quick());
        assert_eq!(t.id(), "T1");
        assert_eq!(t.rows().len(), rows(&ExpConfig::quick()).len());
    }
}
