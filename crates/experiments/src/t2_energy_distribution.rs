//! **T2 — system energy distribution by application class.**
//!
//! The motivation table: once IoT nodes post-process locally, computation
//! dominates system energy (published compute shares: temperature sensing
//! 2.4 %, UV metering 16.8 %, pattern matching 59.5 %, image processing
//! up to 95 %).

use nvp_core::AppProfile;
use serde::{Deserialize, Serialize};

use crate::report::fmt;
use crate::{ExpConfig, Table};

/// One application class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Application name.
    pub app: String,
    /// Compute share of per-result energy.
    pub compute_share: f64,
    /// Radio share.
    pub radio_share: f64,
    /// Sensing share.
    pub sense_share: f64,
    /// Compute energy per result, µJ.
    pub compute_uj: f64,
    /// Radio energy per result, µJ.
    pub radio_uj: f64,
}

/// Energy shares for the standard application suite.
#[must_use]
pub fn rows(_cfg: &ExpConfig) -> Vec<Row> {
    AppProfile::standard_suite()
        .into_iter()
        .map(|p| {
            let s = p.shares();
            Row {
                app: p.name.clone(),
                compute_share: s.compute,
                radio_share: s.radio,
                sense_share: s.sense,
                compute_uj: p.compute_energy_j() * 1e6,
                radio_uj: p.radio_energy_j() * 1e6,
            }
        })
        .collect()
}

/// Renders the table.
#[must_use]
pub fn table(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "T2",
        "System energy distribution by application class (89.1 mW radio @ 250 kbps, 0.209 mW core @ 1 MHz)",
        &["application", "compute_share", "radio_share", "sense_share", "compute_uj", "radio_uj"],
    );
    for r in rows(cfg) {
        t.push_row(vec![
            r.app,
            fmt(r.compute_share, 3),
            fmt(r.radio_share, 3),
            fmt(r.sense_share, 3),
            fmt(r.compute_uj, 2),
            fmt(r.radio_uj, 2),
        ]);
    }
    t
}

/// Feasibility plans: T2 evaluates the analytic application models; the
/// suite is the sweep.
#[must_use]
pub fn plans(_cfg: &ExpConfig) -> Vec<crate::feasibility::CheckItem> {
    vec![crate::feasibility::sweep("application suite", AppProfile::standard_suite().len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_shares_reproduced() {
        let rows = rows(&ExpConfig::quick());
        let share = |name: &str| rows.iter().find(|r| r.app.contains(name)).unwrap().compute_share;
        assert!((share("temperature") - 0.024).abs() < 0.01);
        assert!((share("UV") - 0.168).abs() < 0.03);
        assert!((share("pattern") - 0.595).abs() < 0.05);
        assert!(share("image") > 0.9);
    }

    #[test]
    fn shares_sum_to_one() {
        for r in rows(&ExpConfig::quick()) {
            assert!(
                (r.compute_share + r.radio_share + r.sense_share - 1.0).abs() < 1e-9,
                "{}",
                r.app
            );
        }
    }
}
