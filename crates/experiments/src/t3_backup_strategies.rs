//! **T3 — backup-strategy comparison.**
//!
//! The architecture-level choice the survey dwells on: distributed
//! (parallel NV flip-flops) vs. centralized (word-serial copy to an NVM
//! array) vs. software checkpointing, per technology — op costs plus
//! end-to-end forward progress on a wearable trace.

use nvp_core::{BackupModel, BackupPolicy, BackupStyle};
use nvp_device::NvmTechnology;
use nvp_workloads::KernelKind;
use serde::{Deserialize, Serialize};

use crate::common::{kernel, run_nvp_with, system_config_for, watch_trace, STATE_BITS};
use crate::report::fmt;
use crate::{ExpConfig, Table};

/// One technology × style measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// NVM technology.
    pub tech: String,
    /// Backup style.
    pub style: String,
    /// Backup time, µs.
    pub backup_us: f64,
    /// Backup energy, nJ.
    pub backup_nj: f64,
    /// Restore time, µs.
    pub restore_us: f64,
    /// Forward progress on the first wearable profile.
    pub fp: u64,
}

fn model_for(style: BackupStyle, tech: NvmTechnology, ram_words: u64) -> BackupModel {
    match style {
        BackupStyle::Distributed => BackupModel::distributed(tech, STATE_BITS),
        BackupStyle::Centralized => BackupModel::centralized(tech, STATE_BITS),
        BackupStyle::Software => BackupModel::software(tech, STATE_BITS, ram_words, 1e6),
    }
}

/// Runs the style × technology grid (FeRAM and STT-MRAM — the two
/// technologies real NVPs and FRAM MCUs use).
#[must_use]
pub fn rows(cfg: &ExpConfig) -> Vec<Row> {
    let inst = kernel(cfg, KernelKind::Sobel);
    let trace = watch_trace(cfg, cfg.profile_seeds[0]);
    let ram_words = inst.min_dmem_words() as u64;
    let mut out = Vec::new();
    for tech in [NvmTechnology::Feram, NvmTechnology::SttMram] {
        for style in [BackupStyle::Distributed, BackupStyle::Centralized, BackupStyle::Software] {
            let model = model_for(style, tech, ram_words);
            let mut sys = system_config_for(&inst);
            if style == BackupStyle::Software {
                sys.dmem_nonvolatile = false;
            }
            let policy = match style {
                BackupStyle::Software => BackupPolicy::OnDemand { margin: 1.3 },
                _ => BackupPolicy::demand(),
            };
            let r = run_nvp_with(&inst, &trace, sys, model, policy);
            out.push(Row {
                tech: tech.to_string(),
                style: style.to_string(),
                backup_us: model.backup_time.get() * 1e6,
                backup_nj: model.backup_energy.get() * 1e9,
                restore_us: model.restore_time.get() * 1e6,
                fp: r.forward_progress(),
            });
        }
    }
    out
}

/// Renders the grid.
#[must_use]
pub fn table(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "T3",
        "Backup strategies: distributed NVFF vs centralized copy vs software checkpointing",
        &["tech", "style", "backup_us", "backup_nj", "restore_us", "fp"],
    );
    for r in rows(cfg) {
        t.push_row(vec![
            r.tech,
            r.style,
            fmt(r.backup_us, 2),
            fmt(r.backup_nj, 1),
            fmt(r.restore_us, 2),
            r.fp.to_string(),
        ]);
    }
    t
}

/// Feasibility plans: every style × technology cell of the comparison.
#[must_use]
pub fn plans(cfg: &ExpConfig) -> Vec<crate::feasibility::CheckItem> {
    use crate::feasibility::{nvp_plan, sweep};

    let inst = kernel(cfg, KernelKind::Sobel);
    let ram_words = inst.min_dmem_words() as u64;
    let mut out = vec![sweep("technology x style grid", 2 * 3)];
    for tech in [NvmTechnology::Feram, NvmTechnology::SttMram] {
        for style in [BackupStyle::Distributed, BackupStyle::Centralized, BackupStyle::Software] {
            let model = model_for(style, tech, ram_words);
            let mut sys = system_config_for(&inst);
            if style == BackupStyle::Software {
                sys.dmem_nonvolatile = false;
            }
            let policy = match style {
                BackupStyle::Software => BackupPolicy::OnDemand { margin: 1.3 },
                _ => BackupPolicy::demand(),
            };
            out.push(nvp_plan(format!("{tech} {style:?}"), &sys, model, &policy));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributed_dominates() {
        let rows = rows(&ExpConfig::quick());
        assert_eq!(rows.len(), 6);
        for tech in ["FeRAM", "STT-MRAM"] {
            let fp =
                |style: &str| rows.iter().find(|r| r.tech == tech && r.style == style).unwrap().fp;
            let t = |style: &str| {
                rows.iter().find(|r| r.tech == tech && r.style == style).unwrap().backup_us
            };
            assert!(t("distributed") < t("centralized"), "{tech}");
            assert!(t("centralized") < t("software"), "{tech}");
            assert!(
                fp("distributed") >= fp("software"),
                "{tech}: distributed {} vs software {}",
                fp("distributed"),
                fp("software")
            );
        }
    }
}
