//! The `nvpd` wire protocol: length-prefixed, CRC-framed messages.
//!
//! The campaign server and its clients (`repro --connect`, `nvpd
//! submit`) exchange [`Message`]s over a byte stream. Framing mirrors
//! the persistent cache's record log (`persist.rs`):
//!
//! ```text
//! [len: u32 le] [crc32: u32 le] [payload: len bytes]
//! payload = tag (1 byte) ++ body
//! ```
//!
//! The CRC-32 is the checkpoint subsystem's ([`nvp_sim::crc32_bytes`])
//! — wire integrity, cache integrity, and checkpoint integrity share
//! one checksum — and covers the whole payload. Bodies are built from
//! length-prefixed fields with every integer little-endian and floats
//! as IEEE-754 bit patterns, so a [`CampaignResult`] decoded on the
//! client renders artifacts byte-identical to an in-process run.
//!
//! Decoding is strictly total: a truncated frame, a flipped CRC byte,
//! an implausible length prefix, an unknown message tag, or a malformed
//! body all come back as [`io::ErrorKind::InvalidData`] /
//! [`io::ErrorKind::UnexpectedEof`] errors — never a panic, and never a
//! partially decoded message (mirroring the record-log loader's
//! robustness posture).

use std::io::{self, Read, Write};

use nvp_sim::crc32_bytes;

use crate::job::{CachePolicy, CampaignRequest, CampaignResult};
use crate::sched::SchedStats;
use crate::simcache::{Sha256, SimCacheStats};
use crate::stats::ExecStats;
use crate::{ExpConfig, Table};

/// Protocol schema tag carried inside every [`Message::Submit`]; bump
/// when the request or result encoding changes shape. `nvpd/2` added
/// the execution-tier counters (superblocks, lane groups) to results;
/// `nvpd/3` added the cache quarantine counter, the `retryable` hint on
/// `Reject` frames, and the `replayed` idempotency marker on `Result`
/// frames (crash-durable server).
pub const PROTOCOL: &str = "nvpd/3";

/// Upper bound a frame's length prefix may claim. Large enough for any
/// full-evaluation result with headroom, small enough that a corrupt or
/// hostile prefix cannot make the reader allocate unbounded memory.
pub const MAX_FRAME_BYTES: u32 = 16 * 1024 * 1024;

/// Everything that travels between a campaign client and the server.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client → server: run this campaign job.
    Submit(CampaignRequest),
    /// Server → client status frame, streamed immediately at admission:
    /// the job id and how many jobs sit ahead of it in the queue.
    Accepted {
        /// Server-assigned job id (monotone per server).
        job: u64,
        /// Queue depth in front of this job at admission time.
        queued: u32,
    },
    /// Server → client: the finished job's values, including per-job
    /// cache and scheduler counter deltas.
    Result {
        /// The job id this result answers.
        job: u64,
        /// `true` when the server answered from its content-addressed
        /// result store (idempotent replay of an earlier identical
        /// submission) without scheduling any simulation work; the
        /// counters inside `result` then describe the original job.
        replayed: bool,
        /// The campaign output.
        result: CampaignResult,
    },
    /// Server → client: the job was refused (admission control, unknown
    /// id, unsupported cache policy, …).
    Reject {
        /// Human-readable refusal reason.
        reason: String,
        /// `true` when the refusal is transient (e.g. a full admission
        /// queue) and an identical resubmission may succeed; the client
        /// retry loop keys off this instead of parsing the reason.
        retryable: bool,
    },
}

const TAG_SUBMIT: u8 = 1;
const TAG_ACCEPTED: u8 = 2;
const TAG_RESULT: u8 = 3;
const TAG_REJECT: u8 = 4;

/// Shorthand for the error every malformed input maps to.
fn bad(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

// ---------------------------------------------------------------------
// Body encoding: length-prefixed fields onto a byte vector.
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, u32::try_from(s.len()).expect("string below frame cap"));
    out.extend_from_slice(s.as_bytes());
}

fn put_config(out: &mut Vec<u8>, cfg: &ExpConfig) {
    put_f64(out, cfg.trace_duration_s);
    put_u32(out, u32::try_from(cfg.profile_seeds.len()).expect("seed list below frame cap"));
    for &s in &cfg.profile_seeds {
        put_u64(out, s);
    }
    put_u64(out, cfg.frame_seed);
    put_u64(out, u64::try_from(cfg.frame_w).expect("frame width fits u64"));
    put_u64(out, u64::try_from(cfg.frame_h).expect("frame height fits u64"));
    put_u64(out, u64::try_from(cfg.fault_trials).expect("trial count fits u64"));
    put_u64(out, cfg.fault_seed);
}

fn put_request(out: &mut Vec<u8>, req: &CampaignRequest) {
    put_str(out, PROTOCOL);
    match &req.only {
        None => out.push(0),
        Some(ids) => {
            out.push(1);
            put_u32(out, u32::try_from(ids.len()).expect("id list below frame cap"));
            for id in ids {
                put_str(out, id);
            }
        }
    }
    put_config(out, &req.config);
    match req.seed {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            put_u64(out, s);
        }
    }
    out.push(match req.cache {
        CachePolicy::Shared => 0,
        CachePolicy::MemoryOnly => 1,
    });
}

fn put_table(out: &mut Vec<u8>, table: &Table) {
    put_str(out, table.id());
    put_str(out, table.title());
    put_u32(out, u32::try_from(table.columns().len()).expect("columns below frame cap"));
    for c in table.columns() {
        put_str(out, c);
    }
    put_u32(out, u32::try_from(table.rows().len()).expect("rows below frame cap"));
    for row in table.rows() {
        for cell in row {
            put_str(out, cell);
        }
    }
}

fn put_result(out: &mut Vec<u8>, result: &CampaignResult) {
    put_u32(out, u32::try_from(result.tables.len()).expect("tables below frame cap"));
    for t in &result.tables {
        put_table(out, t);
    }
    put_u32(out, u32::try_from(result.profiles.len()).expect("profiles below frame cap"));
    for (seed, csv) in &result.profiles {
        put_u64(out, *seed);
        put_str(out, csv);
    }
    for v in [
        result.cache.hits,
        result.cache.disk_hits,
        result.cache.misses,
        result.cache.persisted,
        result.cache.quarantined,
    ] {
        put_u64(out, v);
    }
    for v in [result.sched.tasks, result.sched.steals, result.sched.helpers] {
        put_u64(out, v);
    }
    for v in [
        result.exec.chains_formed,
        result.exec.chain_runs,
        result.exec.side_exits,
        result.exec.lane_groups,
        result.exec.lane_group_items,
    ] {
        put_u64(out, v);
    }
}

/// Serializes a message payload (tag + body), without framing.
fn encode_payload(msg: &Message) -> Vec<u8> {
    let mut out = Vec::new();
    match msg {
        Message::Submit(req) => {
            out.push(TAG_SUBMIT);
            put_request(&mut out, req);
        }
        Message::Accepted { job, queued } => {
            out.push(TAG_ACCEPTED);
            put_u64(&mut out, *job);
            put_u32(&mut out, *queued);
        }
        Message::Result { job, replayed, result } => {
            out.push(TAG_RESULT);
            put_u64(&mut out, *job);
            out.push(u8::from(*replayed));
            put_result(&mut out, result);
        }
        Message::Reject { reason, retryable } => {
            out.push(TAG_REJECT);
            put_str(&mut out, reason);
            out.push(u8::from(*retryable));
        }
    }
    out
}

// ---------------------------------------------------------------------
// Body decoding: a bounds-checked reader over the payload slice.
// ---------------------------------------------------------------------

/// Cursor over a payload; every read is bounds-checked and errors
/// instead of panicking.
struct Reader<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, off: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.off
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.off.checked_add(n).ok_or_else(|| bad("length overflow"))?;
        let slice = self.bytes.get(self.off..end).ok_or_else(|| bad("truncated field"))?;
        self.off = end;
        Ok(slice)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn usize(&mut self) -> io::Result<usize> {
        usize::try_from(self.u64()?).map_err(|_| bad("field exceeds usize"))
    }

    fn str(&mut self) -> io::Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("invalid UTF-8 in string field"))
    }

    /// A `u32` element count, sanity-bounded by the bytes still
    /// available (each element costs at least `min_bytes`), so a
    /// corrupt count cannot drive a huge allocation.
    fn count(&mut self, min_bytes: usize) -> io::Result<usize> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_bytes.max(1)) > self.remaining() {
            return Err(bad("element count exceeds frame size"));
        }
        Ok(n)
    }

    fn done(&self) -> io::Result<()> {
        if self.remaining() != 0 {
            return Err(bad("trailing bytes after message body"));
        }
        Ok(())
    }
}

fn get_config(r: &mut Reader<'_>) -> io::Result<ExpConfig> {
    let trace_duration_s = r.f64()?;
    let n = r.count(8)?;
    let mut profile_seeds = Vec::with_capacity(n);
    for _ in 0..n {
        profile_seeds.push(r.u64()?);
    }
    Ok(ExpConfig {
        trace_duration_s,
        profile_seeds,
        frame_seed: r.u64()?,
        frame_w: r.usize()?,
        frame_h: r.usize()?,
        fault_trials: r.usize()?,
        fault_seed: r.u64()?,
    })
}

fn get_request(r: &mut Reader<'_>) -> io::Result<CampaignRequest> {
    let proto = r.str()?;
    if proto != PROTOCOL {
        return Err(bad(&format!("protocol mismatch (expected {PROTOCOL}, got {proto})")));
    }
    let only = match r.u8()? {
        0 => None,
        1 => {
            let n = r.count(4)?;
            let mut ids = Vec::with_capacity(n);
            for _ in 0..n {
                ids.push(r.str()?);
            }
            Some(ids)
        }
        _ => return Err(bad("invalid id-selection flag")),
    };
    let config = get_config(r)?;
    let seed = match r.u8()? {
        0 => None,
        1 => Some(r.u64()?),
        _ => return Err(bad("invalid seed flag")),
    };
    let cache = match r.u8()? {
        0 => CachePolicy::Shared,
        1 => CachePolicy::MemoryOnly,
        _ => return Err(bad("unknown cache policy")),
    };
    Ok(CampaignRequest { only, config, seed, cache })
}

fn get_table(r: &mut Reader<'_>) -> io::Result<Table> {
    let id = r.str()?;
    let title = r.str()?;
    let ncols = r.count(4)?;
    if ncols == 0 {
        // `Table::push_row` asserts on width; an empty header with
        // nonzero rows would otherwise panic below.
        return Err(bad("table with zero columns"));
    }
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        columns.push(r.str()?);
    }
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut table = Table::new(&id, &title, &col_refs);
    let nrows = r.count(4)?;
    for _ in 0..nrows {
        let mut row = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            row.push(r.str()?);
        }
        table.push_row(row);
    }
    Ok(table)
}

fn get_result(r: &mut Reader<'_>) -> io::Result<CampaignResult> {
    let ntables = r.count(4)?;
    let mut tables = Vec::with_capacity(ntables);
    for _ in 0..ntables {
        tables.push(get_table(r)?);
    }
    let nprofiles = r.count(12)?;
    let mut profiles = Vec::with_capacity(nprofiles);
    for _ in 0..nprofiles {
        let seed = r.u64()?;
        profiles.push((seed, r.str()?));
    }
    let cache = SimCacheStats {
        hits: r.u64()?,
        disk_hits: r.u64()?,
        misses: r.u64()?,
        persisted: r.u64()?,
        quarantined: r.u64()?,
    };
    let sched = SchedStats { tasks: r.u64()?, steals: r.u64()?, helpers: r.u64()? };
    let exec = ExecStats {
        chains_formed: r.u64()?,
        chain_runs: r.u64()?,
        side_exits: r.u64()?,
        lane_groups: r.u64()?,
        lane_group_items: r.u64()?,
    };
    Ok(CampaignResult { tables, profiles, cache, sched, exec })
}

/// Decodes one payload (tag + body) into a [`Message`].
fn decode_payload(payload: &[u8]) -> io::Result<Message> {
    let mut r = Reader::new(payload);
    let msg = match r.u8()? {
        TAG_SUBMIT => Message::Submit(get_request(&mut r)?),
        TAG_ACCEPTED => Message::Accepted { job: r.u64()?, queued: r.u32()? },
        TAG_RESULT => {
            let job = r.u64()?;
            let replayed = match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(bad("invalid replay flag")),
            };
            Message::Result { job, replayed, result: get_result(&mut r)? }
        }
        TAG_REJECT => {
            let reason = r.str()?;
            let retryable = match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(bad("invalid retryable flag")),
            };
            Message::Reject { reason, retryable }
        }
        tag => return Err(bad(&format!("unknown message tag {tag}"))),
    };
    r.done()?;
    Ok(msg)
}

// ---------------------------------------------------------------------
// Standalone value codecs: the crash-durable `nvpd` journal and its
// content-addressed result store persist requests and results with the
// exact wire encoding, so a replayed value is bit-identical to one that
// travelled a socket.
// ---------------------------------------------------------------------

/// Serializes a [`CampaignRequest`] body (the `Submit` payload without
/// its tag byte) — the canonical durable encoding of a request.
#[must_use]
pub fn encode_request_bytes(req: &CampaignRequest) -> Vec<u8> {
    let mut out = Vec::new();
    put_request(&mut out, req);
    out
}

/// Decodes a [`CampaignRequest`] from [`encode_request_bytes`] output.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] for any malformed or trailing bytes —
/// including requests journalled under a different protocol version.
pub fn decode_request_bytes(bytes: &[u8]) -> io::Result<CampaignRequest> {
    let mut r = Reader::new(bytes);
    let req = get_request(&mut r)?;
    r.done()?;
    Ok(req)
}

/// Serializes a [`CampaignResult`] body — the canonical durable
/// encoding of a finished job's values.
#[must_use]
pub fn encode_result_bytes(result: &CampaignResult) -> Vec<u8> {
    let mut out = Vec::new();
    put_result(&mut out, result);
    out
}

/// Decodes a [`CampaignResult`] from [`encode_result_bytes`] output.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] for any malformed or trailing bytes.
pub fn decode_result_bytes(bytes: &[u8]) -> io::Result<CampaignResult> {
    let mut r = Reader::new(bytes);
    let result = get_result(&mut r)?;
    r.done()?;
    Ok(result)
}

/// The content-addressed idempotency key of a request: a SHA-256 over
/// its canonical wire encoding (which embeds [`PROTOCOL`], so keys
/// never alias across protocol revisions). Two byte-identical
/// submissions — e.g. a client retry after an observed failure — map to
/// the same key, which is what lets the server deduplicate them through
/// its result store.
#[must_use]
pub fn request_key(req: &CampaignRequest) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"nvpd-idem/1");
    h.update(&encode_request_bytes(req));
    h.finalize()
}

/// SHA-256 content digest of an arbitrary byte string (the same
/// in-tree FIPS 180-4 core the simulation cache keys on). The journal
/// records this digest for every completed result so recovery can
/// verify the result store against the write-ahead log.
#[must_use]
pub fn content_digest(bytes: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(bytes);
    h.finalize()
}

// ---------------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------------

/// Writes one framed message: `[len][crc32][payload]`, then flushes.
///
/// # Errors
///
/// Any I/O error from the underlying writer.
pub fn write_frame<W: Write>(w: &mut W, msg: &Message) -> io::Result<()> {
    let payload = encode_payload(msg);
    let len = u32::try_from(payload.len()).map_err(|_| bad("message exceeds frame cap"))?;
    if len > MAX_FRAME_BYTES {
        return Err(bad("message exceeds frame cap"));
    }
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&crc32_bytes(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    w.write_all(&frame)?;
    w.flush()
}

/// Reads one framed message, verifying the length bound and CRC before
/// decoding. Malformed input of any kind is an error, never a panic:
/// truncation surfaces as [`io::ErrorKind::UnexpectedEof`], everything
/// else as [`io::ErrorKind::InvalidData`].
///
/// # Errors
///
/// Any I/O error from the underlying reader, or the malformed-frame
/// errors above.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Message> {
    let mut header = [0u8; 8];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(header[4..].try_into().expect("4 bytes"));
    if len == 0 || len > MAX_FRAME_BYTES {
        return Err(bad(&format!("implausible frame length {len}")));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    if crc32_bytes(&payload) != crc {
        return Err(bad("frame CRC mismatch"));
    }
    decode_payload(&payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_request() -> CampaignRequest {
        let mut req = CampaignRequest::only(ExpConfig::quick(), &["f2", "F12"]);
        req.seed = Some(42);
        req
    }

    fn sample_result() -> CampaignResult {
        let mut t = Table::new("F2", "outage stats", &["metric", "value"]);
        t.push_row(vec!["emergencies/min".into(), "12.5".into()]);
        t.push_row(vec!["mean_outage_ms".into(), "3.25".into()]);
        CampaignResult {
            tables: vec![t],
            profiles: vec![(1, "t_s,power_uW\n0.0,12.5\n".into())],
            cache: SimCacheStats { hits: 7, disk_hits: 2, misses: 3, persisted: 3, quarantined: 1 },
            sched: SchedStats { tasks: 10, steals: 4, helpers: 2 },
            exec: ExecStats {
                chains_formed: 5,
                chain_runs: 80,
                side_exits: 6,
                lane_groups: 4,
                lane_group_items: 30,
            },
        }
    }

    fn roundtrip(msg: &Message) -> Message {
        let mut buf = Vec::new();
        write_frame(&mut buf, msg).unwrap();
        read_frame(&mut Cursor::new(buf)).unwrap()
    }

    #[test]
    fn every_message_kind_round_trips() {
        let submit = Message::Submit(sample_request());
        assert_eq!(roundtrip(&submit), submit);
        let full = Message::Submit(CampaignRequest::all(ExpConfig::default()));
        assert_eq!(roundtrip(&full), full);
        let accepted = Message::Accepted { job: 9, queued: 3 };
        assert_eq!(roundtrip(&accepted), accepted);
        let result = Message::Result { job: 9, replayed: false, result: sample_result() };
        assert_eq!(roundtrip(&result), result);
        let replay = Message::Result { job: 10, replayed: true, result: sample_result() };
        assert_eq!(roundtrip(&replay), replay);
        let reject = Message::Reject { reason: "queue full".into(), retryable: true };
        assert_eq!(roundtrip(&reject), reject);
        let fatal = Message::Reject { reason: "unknown id".into(), retryable: false };
        assert_eq!(roundtrip(&fatal), fatal);
    }

    #[test]
    fn result_tables_render_identically_after_the_wire() {
        let result = sample_result();
        let Message::Result { result: decoded, .. } =
            roundtrip(&Message::Result { job: 1, replayed: false, result: result.clone() })
        else {
            panic!("wrong message kind");
        };
        assert_eq!(decoded.tables[0].to_csv(), result.tables[0].to_csv());
        assert_eq!(decoded.tables[0].to_markdown(), result.tables[0].to_markdown());
        assert_eq!(decoded.results_markdown(), result.results_markdown());
    }

    #[test]
    fn truncated_frames_error_instead_of_panicking() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Message::Submit(sample_request())).unwrap();
        // Every possible truncation point: header, payload, mid-field.
        for cut in 0..buf.len() {
            let err = read_frame(&mut Cursor::new(&buf[..cut])).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn flipped_crc_byte_is_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Message::Accepted { job: 1, queued: 0 }).unwrap();
        buf[4] ^= 0xFF; // CRC field
        let err = read_frame(&mut Cursor::new(&buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("CRC"), "{err}");
        // A payload flip fails the same check.
        let mut buf2 = Vec::new();
        write_frame(&mut buf2, &Message::Accepted { job: 1, queued: 0 }).unwrap();
        let last = buf2.len() - 1;
        buf2[last] ^= 0x01;
        assert_eq!(
            read_frame(&mut Cursor::new(&buf2)).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let err = read_frame(&mut Cursor::new(&buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("length"), "{err}");
        // A zero-length frame is equally implausible (no tag byte).
        let mut zero = Vec::new();
        zero.extend_from_slice(&0u32.to_le_bytes());
        zero.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(
            read_frame(&mut Cursor::new(&zero)).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn unknown_message_tag_is_rejected() {
        let payload = [0xEEu8, 1, 2, 3];
        let mut buf = Vec::new();
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32_bytes(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        let err = read_frame(&mut Cursor::new(&buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("tag"), "{err}");
    }

    /// A CRC-valid frame whose *body* lies about its element counts
    /// must error (not panic, not over-allocate).
    #[test]
    fn corrupt_counts_inside_a_valid_frame_are_rejected() {
        let mut payload = vec![TAG_RESULT];
        payload.extend_from_slice(&1u64.to_le_bytes()); // job id
        payload.push(0); // replayed flag
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // "tables"
        let mut buf = Vec::new();
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32_bytes(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        let err = read_frame(&mut Cursor::new(&buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn protocol_tag_mismatch_is_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Message::Submit(sample_request())).unwrap();
        // The protocol string sits at a fixed offset: frame header (8),
        // tag (1), string length (4), then "nvpd/1". Flip the digit —
        // but then the CRC catches it, so recompute the CRC to emulate
        // a *well-formed* frame from a future protocol.
        let digit = 8 + 1 + 4 + PROTOCOL.len() - 1;
        buf[digit] = b'9';
        let crc = crc32_bytes(&buf[8..]);
        buf[4..8].copy_from_slice(&crc.to_le_bytes());
        let err = read_frame(&mut Cursor::new(&buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("protocol"), "{err}");
    }

    #[test]
    fn durable_value_codecs_round_trip_and_reject_trailing_bytes() {
        let req = sample_request();
        let bytes = encode_request_bytes(&req);
        assert_eq!(decode_request_bytes(&bytes).unwrap(), req);
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(decode_request_bytes(&trailing).unwrap_err().kind(), io::ErrorKind::InvalidData);

        let result = sample_result();
        let bytes = encode_result_bytes(&result);
        assert_eq!(decode_result_bytes(&bytes).unwrap(), result);
        assert_eq!(
            decode_result_bytes(&bytes[..bytes.len() - 1]).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn request_keys_are_content_addresses() {
        let a = sample_request();
        let mut b = sample_request();
        assert_eq!(request_key(&a), request_key(&a), "same request, same key");
        assert_eq!(request_key(&a), request_key(&b), "byte-identical clones collide");
        b.seed = Some(43);
        assert_ne!(request_key(&a), request_key(&b), "any field change moves the key");
        let digest = content_digest(b"abc");
        // Pinned FIPS vector: content_digest is plain SHA-256.
        assert_eq!(
            digest[..4],
            [0xba, 0x78, 0x16, 0xbf],
            "content digest must be the standard SHA-256"
        );
    }

    /// A peer that delivers half a frame and then stalls must trip the
    /// socket read timeout, not hang the reader forever — the failure
    /// mode behind the old `repro --connect` hang.
    #[test]
    fn stalled_peer_trips_the_read_timeout_instead_of_hanging() {
        use std::io::Write as _;
        use std::net::{TcpListener, TcpStream};
        use std::time::Duration;

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("bound address");
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            let mut buf = Vec::new();
            write_frame(&mut buf, &Message::Accepted { job: 1, queued: 0 }).unwrap();
            s.write_all(&buf[..buf.len() / 2]).expect("half a frame");
            s.flush().expect("flush");
            s // ... then stall, keeping the socket open
        });
        let (mut conn, _) = listener.accept().expect("accept");
        conn.set_read_timeout(Some(Duration::from_millis(200))).expect("read timeout");
        let err = read_frame(&mut conn).unwrap_err();
        assert!(
            matches!(err.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut),
            "expected a read timeout, got {err:?}"
        );
        drop(writer.join().expect("writer thread"));
    }

    /// A slow writer that dribbles the frame byte-by-byte (but does
    /// finish) must still parse cleanly: framing cannot assume whole
    /// frames arrive in one read.
    #[test]
    fn a_dribbled_frame_still_reads_whole() {
        use std::io::Write as _;
        use std::net::{TcpListener, TcpStream};
        use std::time::Duration;

        let msg = Message::Accepted { job: 42, queued: 7 };
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("bound address");
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.set_nodelay(true).expect("nodelay");
            for byte in buf {
                s.write_all(&[byte]).expect("dribble");
                s.flush().expect("flush");
            }
        });
        let (mut conn, _) = listener.accept().expect("accept");
        conn.set_read_timeout(Some(Duration::from_secs(10))).expect("read timeout");
        assert_eq!(read_frame(&mut conn).expect("reassembled frame"), msg);
        writer.join().expect("writer thread");
    }

    #[test]
    fn trailing_garbage_after_a_valid_body_is_rejected() {
        let mut payload = encode_payload(&Message::Accepted { job: 1, queued: 0 });
        payload.push(0xAA);
        let mut buf = Vec::new();
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32_bytes(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
        let err = read_frame(&mut Cursor::new(&buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("trailing"), "{err}");
    }
}
