//! End-to-end behavior of the persistent simulation cache through the
//! public API. Each integration-test binary is its own process, so this
//! file owns the process-global cache state and drives it through a
//! full cold-write → reload → warm-serve cycle, exactly what two
//! consecutive `repro` invocations sharing `<out_dir>/.simcache` do.

use std::path::PathBuf;

use nvp_experiments::{reset_sim_cache, run_all, set_cache_dir, sim_cache_stats, ExpConfig};

/// Serializes the tests in this binary: the cache directory, index,
/// and counters are process-global.
fn global_cache_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn unique_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("{tag}_{}_{n}", std::process::id()))
}

fn artifact_bytes(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            (e.file_name().into_string().unwrap(), std::fs::read(e.path()).unwrap())
        })
        .collect();
    out.sort();
    out
}

/// The cache state is process-global, so the whole lifecycle lives in
/// one sequenced test: cold run persists, reload serves from disk with
/// zero new simulations, artifacts stay byte-identical, and disabling
/// the store stops appends.
#[test]
fn persistent_cache_round_trips_a_full_campaign() {
    let _guard = global_cache_lock();
    let cfg = ExpConfig::quick();
    let cache_dir = unique_dir("nvp_persist_cache_dir");

    // Cold run: every unique simulation computed and persisted.
    let loaded = set_cache_dir(Some(&cache_dir)).unwrap();
    assert_eq!(loaded, 0, "fresh cache directory has no records");
    let cold_out = unique_dir("nvp_persist_cold_out");
    run_all(&cfg, &cold_out).unwrap();
    let cold = sim_cache_stats();
    assert!(cold.misses > 0, "cold run must compute simulations");
    assert_eq!(cold.disk_hits, 0, "nothing on disk to hit yet");
    // Two workers racing on one key both count a miss but only the
    // winning insert persists, so persisted can trail misses slightly.
    assert!(cold.persisted > 0, "cold run persisted nothing");
    assert!(cold.persisted <= cold.misses, "persisted more than was computed: {cold:?}");
    assert!(std::fs::read_dir(&cache_dir).unwrap().count() > 0, "cold run wrote no shard files");

    // Simulate a fresh process: drop the in-memory index, re-open the
    // same directory, and rerun. Everything is served from disk.
    reset_sim_cache();
    let reloaded = set_cache_dir(Some(&cache_dir)).unwrap();
    assert_eq!(reloaded, cold.persisted, "reload must recover every persisted record");
    let warm_out = unique_dir("nvp_persist_warm_out");
    run_all(&cfg, &warm_out).unwrap();
    let warm = sim_cache_stats();
    assert_eq!(warm.misses, 0, "warm-disk run must not resimulate anything");
    assert!(warm.disk_hits > 0, "warm-disk run must serve hits from loaded records");
    assert_eq!(warm.persisted, 0, "nothing new to persist on a warm run");

    // Byte-identical artifacts: the cache is invisible in the output.
    assert_eq!(
        artifact_bytes(&cold_out),
        artifact_bytes(&warm_out),
        "disk-served artifacts differ from computed ones"
    );

    // Disabled store: recomputes but appends nothing.
    reset_sim_cache();
    set_cache_dir(None).unwrap();
    let off_out = unique_dir("nvp_persist_off_out");
    run_all(&cfg, &off_out).unwrap();
    let off = sim_cache_stats();
    assert!(off.misses > 0, "memory-only rerun recomputes");
    assert_eq!(off.persisted, 0, "--no-cache mode must not write records");
    assert_eq!(off.disk_hits, 0);
    assert_eq!(artifact_bytes(&cold_out), artifact_bytes(&off_out), "memory-only artifacts differ");

    for d in [&cache_dir, &cold_out, &warm_out, &off_out] {
        let _ = std::fs::remove_dir_all(d);
    }
}

/// A second process appending to the same cache directory only adds
/// records; reloading after an overlapping double-write still recovers
/// a usable cache (duplicate keys are benign).
#[test]
fn reopening_and_reappending_does_not_corrupt() {
    let _guard = global_cache_lock();
    // Runs in the same process as the test above but with its own
    // cache directory; `set_cache_dir` re-resolution is the supported
    // way to repoint the store.
    let cache_dir = unique_dir("nvp_persist_reopen_dir");
    let out_a = unique_dir("nvp_persist_reopen_a");
    let out_b = unique_dir("nvp_persist_reopen_b");
    let mut cfg = ExpConfig::quick();
    cfg.profile_seeds = vec![5];

    reset_sim_cache();
    set_cache_dir(Some(&cache_dir)).unwrap();
    run_all(&cfg, &out_a).unwrap();
    let first = sim_cache_stats();

    // Re-open mid-life (second writer semantics) and run again: the
    // warm in-memory index means no new appends, and the reload merged
    // exactly the records the first pass persisted.
    let merged = set_cache_dir(Some(&cache_dir)).unwrap();
    assert_eq!(merged, 0, "in-memory entries already cover every disk record");
    run_all(&cfg, &out_b).unwrap();
    let second = sim_cache_stats();
    assert_eq!(second.persisted, first.persisted, "warm rerun appended records");
    assert_eq!(artifact_bytes(&out_a), artifact_bytes(&out_b));

    for d in [&cache_dir, &out_a, &out_b] {
        let _ = std::fs::remove_dir_all(d);
    }
}

/// Repointing the store at a different directory mid-process must not
/// leak records across directories in either direction: entries loaded
/// from the old directory stop being served (and are never copied into
/// the new one), and the old directory's shard files are not appended
/// to by runs that happen under the new one.
#[test]
fn switching_cache_directories_does_not_leak_records() {
    let _guard = global_cache_lock();
    let dir_a = unique_dir("nvp_persist_switch_a");
    let dir_b = unique_dir("nvp_persist_switch_b");
    let out_a = unique_dir("nvp_persist_switch_out_a");
    let out_b = unique_dir("nvp_persist_switch_out_b");
    let mut cfg = ExpConfig::quick();
    cfg.profile_seeds = vec![5];

    // Seed directory A with a cold run.
    reset_sim_cache();
    set_cache_dir(Some(&dir_a)).unwrap();
    run_all(&cfg, &out_a).unwrap();
    let a = sim_cache_stats();
    assert!(a.persisted > 0, "cold run must persist records into A");
    let a_bytes = |dir: &std::path::Path| -> u64 {
        std::fs::read_dir(dir).unwrap().map(|e| e.unwrap().metadata().unwrap().len()).sum()
    };
    let a_size = a_bytes(&dir_a);

    // Fresh index, load A (every entry disk-origin), then switch to B.
    // The switch must drop A's loaded records: the rerun recomputes
    // from scratch and persists into B, never serving A's entries.
    reset_sim_cache();
    let loaded = set_cache_dir(Some(&dir_a)).unwrap();
    assert_eq!(loaded, a.persisted, "reload recovers A's records");
    set_cache_dir(Some(&dir_b)).unwrap();
    run_all(&cfg, &out_b).unwrap();
    let b = sim_cache_stats();
    assert_eq!(b.disk_hits, 0, "A's loaded records must not be served under B");
    assert!(b.misses > 0, "the run under B recomputes everything");
    assert!(b.persisted > 0, "B receives its own records");
    assert_eq!(a_bytes(&dir_a), a_size, "the run under B must not append to A's shards");

    // B is self-contained: a fresh index reloads exactly what the B run
    // persisted — none of A's records were copied across.
    reset_sim_cache();
    let b_loaded = set_cache_dir(Some(&dir_b)).unwrap();
    assert_eq!(b_loaded, b.persisted, "B holds exactly the records persisted under B");

    // The cache indirection stays invisible in the artifacts.
    assert_eq!(artifact_bytes(&out_a), artifact_bytes(&out_b));

    reset_sim_cache();
    set_cache_dir(None).unwrap();
    for d in [&dir_a, &dir_b, &out_a, &out_b] {
        let _ = std::fs::remove_dir_all(d);
    }
}
