//! Interval abstract interpretation over the NV16 register file.
//!
//! Every register holds an inclusive `[lo, hi]` interval of possible
//! 16-bit values; `r0` is pinned to `[0, 0]`. The transfer function
//! mirrors the simulator's ALU bit-for-bit on singleton (constant)
//! operands and falls back to sound coarser bounds otherwise, so any
//! value the machine can compute is inside the static interval — the
//! over-approximation contract the differential harness checks.
//!
//! Convergence uses threshold widening: after a block has been
//! re-joined [`WIDEN_AFTER`] times, growing bounds jump outward to the
//! nearest *program constant* (any `li` immediate, symbol value, or
//! data-segment boundary) before giving up to `0`/`0xFFFF`. Loop
//! bounds in the shipped kernels are `li`-loaded constants, so pointer
//! induction variables usually stabilize at their true ranges.

use std::collections::BTreeSet;

use nvp_isa::{Inst, Program, Reg};

use crate::cfg::{Cfg, EdgeKind};

/// Join-count after which a block's input state is widened.
pub const WIDEN_AFTER: u32 = 8;

/// An inclusive interval of 16-bit words (`lo <= hi` always holds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Interval {
    /// Smallest possible value.
    pub lo: u16,
    /// Largest possible value.
    pub hi: u16,
}

/// The full 16-bit range.
pub const TOP: Interval = Interval { lo: 0, hi: u16::MAX };

impl Interval {
    /// The singleton interval `[v, v]`.
    #[must_use]
    pub const fn exact(v: u16) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// Interval from ordered bounds.
    #[must_use]
    pub fn new(lo: u16, hi: u16) -> Interval {
        debug_assert!(lo <= hi);
        Interval { lo, hi }
    }

    /// The constant this interval denotes, if it is a singleton.
    #[must_use]
    pub fn as_const(self) -> Option<u16> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// `true` if this is the full 16-bit range.
    #[must_use]
    pub fn is_top(self) -> bool {
        self.lo == 0 && self.hi == u16::MAX
    }

    /// `true` if `v` may be a value of this interval.
    #[must_use]
    pub fn contains(self, v: u16) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Least upper bound (interval hull).
    #[must_use]
    pub fn join(self, o: Interval) -> Interval {
        Interval { lo: self.lo.min(o.lo), hi: self.hi.max(o.hi) }
    }

    /// Greatest lower bound; `None` when the intervals are disjoint.
    #[must_use]
    pub fn intersect(self, o: Interval) -> Option<Interval> {
        let lo = self.lo.max(o.lo);
        let hi = self.hi.min(o.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Number of words covered.
    #[must_use]
    pub fn words(self) -> u64 {
        u64::from(self.hi - self.lo) + 1
    }

    /// Wrapping addition of a constant: both bounds shift together, so
    /// the result stays an interval unless the wrap splits it.
    #[must_use]
    pub fn add_const(self, k: u16) -> Interval {
        let lo = u32::from(self.lo) + u32::from(k);
        let hi = u32::from(self.hi) + u32::from(k);
        if (lo > 0xFFFF) == (hi > 0xFFFF) {
            Interval { lo: (lo & 0xFFFF) as u16, hi: (hi & 0xFFFF) as u16 }
        } else {
            TOP
        }
    }

    /// Wrapping interval addition.
    #[must_use]
    pub fn add_wrapping(self, o: Interval) -> Interval {
        if let Some(k) = o.as_const() {
            return self.add_const(k);
        }
        if let Some(k) = self.as_const() {
            return o.add_const(k);
        }
        let lo = u32::from(self.lo) + u32::from(o.lo);
        let hi = u32::from(self.hi) + u32::from(o.hi);
        if hi - lo <= 0xFFFF && (lo > 0xFFFF) == (hi > 0xFFFF) {
            Interval { lo: (lo & 0xFFFF) as u16, hi: (hi & 0xFFFF) as u16 }
        } else {
            TOP
        }
    }

    /// Wrapping interval subtraction.
    #[must_use]
    pub fn sub_wrapping(self, o: Interval) -> Interval {
        let lo = i32::from(self.lo) - i32::from(o.hi);
        let hi = i32::from(self.hi) - i32::from(o.lo);
        if hi - lo <= 0xFFFF && (lo < 0) == (hi < 0) {
            Interval { lo: (lo & 0xFFFF) as u16, hi: (hi & 0xFFFF) as u16 }
        } else {
            TOP
        }
    }
}

/// Abstract register file: one interval per register, `r0` pinned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegState {
    regs: [Interval; 16],
}

impl RegState {
    /// The machine's power-on state: every register is zero (the
    /// simulator zero-fills the register file at reset).
    #[must_use]
    pub fn zeroed() -> RegState {
        RegState { regs: [Interval::exact(0); 16] }
    }

    /// The interval held by `r`.
    #[must_use]
    pub fn get(&self, r: Reg) -> Interval {
        if r.is_zero() {
            Interval::exact(0)
        } else {
            self.regs[r.index()]
        }
    }

    /// Replaces the interval held by `r` (writes to `r0` are discarded,
    /// matching the hardware).
    pub fn set(&mut self, r: Reg, v: Interval) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// Pointwise interval hull.
    #[must_use]
    pub fn join(&self, o: &RegState) -> RegState {
        let mut out = self.clone();
        for i in 1..16 {
            out.regs[i] = out.regs[i].join(o.regs[i]);
        }
        out
    }

    /// Threshold widening of `self` (the established state) by `new`.
    #[must_use]
    pub fn widen(&self, new: &RegState, thresholds: &BTreeSet<u16>) -> RegState {
        let mut out = self.clone();
        for i in 1..16 {
            let old = self.regs[i];
            let grown = new.regs[i];
            let lo = if grown.lo >= old.lo {
                old.lo
            } else {
                thresholds.range(..=grown.lo).next_back().copied().unwrap_or(0)
            };
            let hi = if grown.hi <= old.hi {
                old.hi
            } else {
                thresholds.range(grown.hi..).next().copied().unwrap_or(u16::MAX)
            };
            out.regs[i] = Interval { lo, hi };
        }
        out
    }
}

/// Whether a memory access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A `lw` load.
    Read,
    /// A `sw` store.
    Write,
}

/// One statically derived data-memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Address of the `lw`/`sw` instruction.
    pub pc: u32,
    /// Load or store.
    pub kind: AccessKind,
    /// Every word address the access may touch.
    pub addr: Interval,
}

/// Result of the interval fixpoint.
#[derive(Debug, Clone)]
pub struct AbsInt {
    /// Abstract register state *before* each pc executes; `None` for
    /// statically unreachable instructions.
    pub before: Vec<Option<RegState>>,
    /// Every reachable load/store with its address interval, pc-sorted.
    pub accesses: Vec<MemAccess>,
}

impl AbsInt {
    /// The access made by the instruction at `pc`, if it is a reachable
    /// load or store.
    #[must_use]
    pub fn access_at(&self, pc: u32) -> Option<MemAccess> {
        self.accesses.binary_search_by_key(&pc, |a| a.pc).ok().map(|i| self.accesses[i])
    }
}

/// Collects the widening thresholds of a program: `li` immediates,
/// symbol values, data-segment boundaries.
#[must_use]
pub fn thresholds(program: &Program, insts: &[Inst]) -> BTreeSet<u16> {
    let mut t = BTreeSet::new();
    for inst in insts {
        if let Inst::Li { imm, .. } = inst {
            t.insert(*imm);
            t.insert(imm.wrapping_sub(1));
        }
    }
    for &v in program.symbols().values() {
        if v <= u32::from(u16::MAX) {
            t.insert(v as u16);
        }
    }
    for seg in program.data_segments() {
        t.insert(seg.addr);
        let end = seg.end().min(u32::from(u16::MAX));
        t.insert(end as u16);
    }
    t
}

/// The abstract ALU: mirrors [`nvp_sim`]'s concrete semantics exactly
/// on constants, otherwise returns sound bounds. Returns the interval
/// written to the destination register.
fn eval_alu(inst: Inst, st: &RegState, pc: u32) -> Option<(Reg, Interval)> {
    use Inst::*;
    // Exact constant folds replicate machine.rs bit-for-bit.
    let fold2 = |rs1: Reg, rs2: Reg, f: fn(u16, u16) -> u16| -> Option<Interval> {
        match (st.get(rs1).as_const(), st.get(rs2).as_const()) {
            (Some(a), Some(b)) => Some(Interval::exact(f(a, b))),
            _ => None,
        }
    };
    let fold1 = |rs1: Reg, f: &dyn Fn(u16) -> u16| -> Option<Interval> {
        st.get(rs1).as_const().map(|a| Interval::exact(f(a)))
    };
    Some(match inst {
        Add { rd, rs1, rs2 } => (rd, st.get(rs1).add_wrapping(st.get(rs2))),
        Sub { rd, rs1, rs2 } => (rd, st.get(rs1).sub_wrapping(st.get(rs2))),
        And { rd, rs1, rs2 } => {
            let v = fold2(rs1, rs2, |a, b| a & b).unwrap_or_else(|| {
                // x & y never exceeds either operand.
                Interval { lo: 0, hi: st.get(rs1).hi.min(st.get(rs2).hi) }
            });
            (rd, v)
        }
        Or { rd, rs1, rs2 } => {
            let v = fold2(rs1, rs2, |a, b| a | b).unwrap_or(TOP);
            (rd, v)
        }
        Xor { rd, rs1, rs2 } => (rd, fold2(rs1, rs2, |a, b| a ^ b).unwrap_or(TOP)),
        Sll { rd, rs1, rs2 } => (rd, fold2(rs1, rs2, |a, b| a << (b & 0xF)).unwrap_or(TOP)),
        Srl { rd, rs1, rs2 } => {
            let v = fold2(rs1, rs2, |a, b| a >> (b & 0xF))
                .unwrap_or(Interval { lo: 0, hi: st.get(rs1).hi });
            (rd, v)
        }
        Sra { rd, rs1, rs2 } => {
            (rd, fold2(rs1, rs2, |a, b| ((a as i16) >> (b & 0xF)) as u16).unwrap_or(TOP))
        }
        Mul { rd, rs1, rs2 } => {
            let v = fold2(rs1, rs2, |a, b| (i32::from(a as i16) * i32::from(b as i16)) as u16)
                .unwrap_or(TOP);
            (rd, v)
        }
        Mulh { rd, rs1, rs2 } => {
            let v =
                fold2(rs1, rs2, |a, b| ((i32::from(a as i16) * i32::from(b as i16)) >> 16) as u16)
                    .unwrap_or(TOP);
            (rd, v)
        }
        Slt { rd, rs1, rs2 } => {
            let v = fold2(rs1, rs2, |a, b| u16::from((a as i16) < (b as i16)))
                .unwrap_or(Interval { lo: 0, hi: 1 });
            (rd, v)
        }
        Sltu { rd, rs1, rs2 } => {
            let v = fold2(rs1, rs2, |a, b| u16::from(a < b)).unwrap_or(Interval { lo: 0, hi: 1 });
            (rd, v)
        }
        Divu { rd, rs1, rs2 } => {
            let v = fold2(rs1, rs2, |a, b| a.checked_div(b).unwrap_or(0xFFFF)).unwrap_or(TOP);
            (rd, v)
        }
        Remu { rd, rs1, rs2 } => {
            let v = fold2(rs1, rs2, |a, b| if b == 0 { a } else { a % b }).unwrap_or(TOP);
            (rd, v)
        }
        Addi { rd, rs1, imm } => (rd, st.get(rs1).add_const(imm as u16)),
        Andi { rd, rs1, imm } => {
            let v =
                fold1(rs1, &|a| a & imm).unwrap_or(Interval { lo: 0, hi: imm.min(st.get(rs1).hi) });
            (rd, v)
        }
        Ori { rd, rs1, imm } => {
            // x | imm sets at least imm's bits.
            let v = fold1(rs1, &|a| a | imm).unwrap_or(Interval { lo: imm, hi: u16::MAX });
            (rd, v)
        }
        Xori { rd, rs1, imm } => (rd, fold1(rs1, &|a| a ^ imm).unwrap_or(TOP)),
        Slli { rd, rs1, shamt } => {
            let src = st.get(rs1);
            let v = if let Some(a) = src.as_const() {
                Interval::exact(a << shamt)
            } else if u32::from(src.hi) << shamt <= 0xFFFF {
                // No bit falls off the top, so shifting is monotone.
                Interval { lo: src.lo << shamt, hi: src.hi << shamt }
            } else {
                TOP
            };
            (rd, v)
        }
        Srli { rd, rs1, shamt } => {
            let src = st.get(rs1);
            (rd, Interval { lo: src.lo >> shamt, hi: src.hi >> shamt })
        }
        Srai { rd, rs1, shamt } => {
            (rd, fold1(rs1, &|a| ((a as i16) >> shamt) as u16).unwrap_or(TOP))
        }
        Slti { rd, rs1, imm } => {
            let v =
                fold1(rs1, &|a| u16::from((a as i16) < imm)).unwrap_or(Interval { lo: 0, hi: 1 });
            (rd, v)
        }
        Li { rd, imm } => (rd, Interval::exact(imm)),
        Lw { rd, .. } | In { rd, .. } => (rd, TOP),
        // The link value (pc + 1) is truncated to 16 bits by the
        // register file; keep it exact when it fits.
        Jal { rd, .. } | Jalr { rd, .. } => (rd, Interval::exact((pc + 1) as u16)),
        Sw { .. }
        | Beq { .. }
        | Bne { .. }
        | Blt { .. }
        | Bge { .. }
        | Bltu { .. }
        | Bgeu { .. }
        | Nop
        | Halt
        | Ckpt
        | Out { .. } => return None,
    })
}

/// The address interval a `lw`/`sw` at `pc` may touch under `st`.
#[must_use]
pub fn mem_access(inst: Inst, st: &RegState, pc: u32) -> Option<MemAccess> {
    match inst {
        Inst::Lw { rs1, offset, .. } => Some(MemAccess {
            pc,
            kind: AccessKind::Read,
            addr: st.get(rs1).add_const(offset as u16),
        }),
        Inst::Sw { rs1, offset, .. } => Some(MemAccess {
            pc,
            kind: AccessKind::Write,
            addr: st.get(rs1).add_const(offset as u16),
        }),
        _ => None,
    }
}

/// Applies one instruction to the abstract state.
fn transfer(inst: Inst, st: &mut RegState, pc: u32) {
    if let Some((rd, v)) = eval_alu(inst, st, pc) {
        st.set(rd, v);
    }
}

/// Refines `st` along a conditional-branch edge. Returns `None` when
/// the edge is statically infeasible (the branch condition contradicts
/// the interval state). Signed comparisons are left unrefined — sound,
/// just less precise.
fn refine(st: &RegState, inst: Inst, taken: bool) -> Option<RegState> {
    use Inst::*;
    let mut out = st.clone();
    match (inst, taken) {
        // Equality holds: both registers collapse onto their overlap.
        (Beq { rs1, rs2, .. }, true) | (Bne { rs1, rs2, .. }, false) => {
            let both = st.get(rs1).intersect(st.get(rs2))?;
            out.set(rs1, both);
            out.set(rs2, both);
        }
        // Inequality holds: trim a matching endpoint off the other side.
        (Beq { rs1, rs2, .. }, false) | (Bne { rs1, rs2, .. }, true) => {
            let trim = |v: Interval, c: u16| -> Option<Interval> {
                if v.as_const() == Some(c) {
                    None
                } else if v.lo == c {
                    Some(Interval { lo: c + 1, hi: v.hi })
                } else if v.hi == c {
                    Some(Interval { lo: v.lo, hi: c - 1 })
                } else {
                    Some(v)
                }
            };
            if let Some(c) = st.get(rs2).as_const() {
                out.set(rs1, trim(st.get(rs1), c)?);
            } else if let Some(c) = st.get(rs1).as_const() {
                out.set(rs2, trim(st.get(rs2), c)?);
            }
        }
        // rs1 <u rs2 holds.
        (Bltu { rs1, rs2, .. }, true) | (Bgeu { rs1, rs2, .. }, false) => {
            let a = st.get(rs1);
            let b = st.get(rs2);
            if b.hi == 0 || a.lo == u16::MAX {
                return None;
            }
            out.set(rs1, a.intersect(Interval { lo: 0, hi: b.hi - 1 })?);
            out.set(rs2, b.intersect(Interval { lo: a.lo + 1, hi: u16::MAX })?);
        }
        // rs1 >=u rs2 holds.
        (Bltu { rs1, rs2, .. }, false) | (Bgeu { rs1, rs2, .. }, true) => {
            let a = st.get(rs1);
            let b = st.get(rs2);
            out.set(rs1, a.intersect(Interval { lo: b.lo, hi: u16::MAX })?);
            out.set(rs2, b.intersect(Interval { lo: 0, hi: a.hi })?);
        }
        _ => {}
    }
    Some(out)
}

/// Runs the interval fixpoint over `cfg` and returns per-pc states and
/// memory-access intervals.
#[must_use]
pub fn analyze(cfg: &Cfg, thresholds: &BTreeSet<u16>) -> AbsInt {
    let n = cfg.blocks().len();
    let insts = cfg.insts();
    let mut in_state: Vec<Option<RegState>> = vec![None; n];
    let mut joins = vec![0u32; n];
    in_state[cfg.entry_block()] = Some(RegState::zeroed());

    let mut work: Vec<usize> = vec![cfg.entry_block()];
    let mut queued = vec![false; n];
    queued[cfg.entry_block()] = true;

    while let Some(b) = work.pop() {
        queued[b] = false;
        let Some(mut st) = in_state[b].clone() else { continue };
        let block = cfg.blocks()[b];
        for pc in block.start..=block.end {
            transfer(insts[pc as usize], &mut st, pc);
        }
        let term = insts[block.end as usize];
        for edge in cfg.succs(b) {
            let out = match edge.kind {
                EdgeKind::Taken => refine(&st, term, true),
                EdgeKind::Fall if term.is_branch() => refine(&st, term, false),
                _ => Some(st.clone()),
            };
            let Some(out) = out else { continue };
            let (next, grew) = match &in_state[edge.to] {
                None => (out, true),
                Some(old) => {
                    let joined = old.join(&out);
                    if joined == *old {
                        (joined, false)
                    } else {
                        joins[edge.to] += 1;
                        if joins[edge.to] > WIDEN_AFTER {
                            (old.widen(&joined, thresholds), true)
                        } else {
                            (joined, true)
                        }
                    }
                }
            };
            if grew {
                in_state[edge.to] = Some(next);
                if !queued[edge.to] {
                    queued[edge.to] = true;
                    work.push(edge.to);
                }
            } else {
                in_state[edge.to] = Some(next);
            }
        }
    }

    // Final stable pass: per-pc states and access intervals.
    let mut before: Vec<Option<RegState>> = vec![None; insts.len()];
    let mut accesses = Vec::new();
    for (b, block) in cfg.blocks().iter().enumerate() {
        let Some(mut st) = in_state[b].clone() else { continue };
        for pc in block.start..=block.end {
            before[pc as usize] = Some(st.clone());
            if let Some(acc) = mem_access(insts[pc as usize], &st, pc) {
                accesses.push(acc);
            }
            transfer(insts[pc as usize], &mut st, pc);
        }
    }
    accesses.sort_by_key(|a| a.pc);
    AbsInt { before, accesses }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvp_isa::asm::assemble;

    fn absint_of(src: &str) -> (Cfg, AbsInt) {
        let p = assemble(src).expect("assembles");
        let cfg = Cfg::build(&p).expect("cfg");
        let t = thresholds(&p, cfg.insts());
        let a = analyze(&cfg, &t);
        (cfg, a)
    }

    #[test]
    fn constants_propagate_through_straight_line() {
        let (_, a) = absint_of("li r1, 10\naddi r2, r1, 5\nhalt");
        let st = a.before[2].as_ref().unwrap();
        assert_eq!(st.get(Reg::R2).as_const(), Some(15));
    }

    #[test]
    fn constant_address_load_is_exact() {
        let (_, a) = absint_of("li r1, 0x80\nlw r2, 2(r1)\nhalt");
        let acc = a.access_at(1).unwrap();
        assert_eq!(acc.kind, AccessKind::Read);
        assert_eq!(acc.addr, Interval::exact(0x82));
    }

    #[test]
    fn loop_pointer_stays_bounded_by_li_threshold() {
        // r3 walks 32..64; the bne bound 64 is a li constant, so
        // widening should stop at it instead of 0xFFFF.
        let src = "li r3, 32\nli r4, 64\nloop: sw r3, 0(r3)\naddi r3, r3, 1\n\
                   bne r3, r4, loop\nhalt";
        let (_, a) = absint_of(src);
        let acc = a.access_at(2).unwrap();
        assert_eq!(acc.kind, AccessKind::Write);
        assert!(acc.addr.lo >= 32, "lo = {}", acc.addr.lo);
        assert!(acc.addr.hi <= 64, "hi = {}", acc.addr.hi);
    }

    #[test]
    fn infeasible_equal_edge_is_pruned() {
        // r1 = 1 so `beq r1, r0` can never be taken; the target block
        // keeps r2's constant from the fall-through path only.
        let src = "li r1, 1\nli r2, 7\nbeq r1, r0, 1\nnop\nhalt";
        let (_, a) = absint_of(src);
        let st = a.before[4].as_ref().unwrap();
        assert_eq!(st.get(Reg::R2).as_const(), Some(7));
    }

    #[test]
    fn wrapping_add_collapses_to_top_only_on_split() {
        let i = Interval { lo: 0xFFFE, hi: 0xFFFF };
        assert_eq!(i.add_const(3), Interval { lo: 1, hi: 2 });
        let split = Interval { lo: 1, hi: 0xFFFF }.add_const(1);
        // hi wraps, lo does not: must give up.
        assert_eq!(split, TOP);
    }

    #[test]
    fn interval_words_counts_inclusive() {
        assert_eq!(Interval { lo: 4, hi: 7 }.words(), 4);
        assert_eq!(TOP.words(), 65536);
    }
}
