//! Intermittency-hazard rules and the backup-footprint table.
//!
//! A *backup region* is the code between two backup boundaries: the
//! program entry, every `ckpt` instruction, and `halt` (task commit).
//! After a torn backup the platform restores an **older** checkpoint
//! and replays the region against data memory the first attempt already
//! mutated (`crates/core/src/system.rs` fallback path) — so the rules
//! here ask: *is every region safe to re-execute?*
//!
//! | rule id | finding |
//! |---|---|
//! | `war-hazard` | a dmem word is read, then rewritten, inside one region (replay observes its own future) |
//! | `dead-store` | a store is overwritten before any possible read |
//! | `unreachable-block` | a block no path from entry reaches |
//! | `no-progress-loop` | a checkpoint-free loop whose cheapest iteration exceeds the storable energy |
//!
//! WAR detection is *must-alias*: only constant-propagated addresses
//! are paired, so a reported hazard is real (no false positives), while
//! pointer-arithmetic accesses with non-constant addresses are covered
//! by the over-approximating read/write interval sets rather than this
//! rule. The differential harness in `trace.rs` checks the containment
//! direction the footprint table relies on.

use std::collections::{BTreeMap, BTreeSet};

use nvp_core::{BackupModel, SystemConfig};
use nvp_isa::{Inst, Program};
use nvp_sim::{ArchState, CycleModel, EnergyModel, InstClass};

use crate::absint::{self, AbsInt, AccessKind, Interval};
use crate::cfg::{Cfg, CfgError};
use crate::dataflow;
use crate::waiver::Waivers;

/// Hard cap on interval-set representation size; beyond it the closest
/// pair is merged into its hull (coverage only grows — sound).
const MAX_INTERVALS: usize = 24;

/// A diagnostic rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Read-then-write of one dmem word inside a backup region.
    WarHazard,
    /// Store overwritten before any possible read.
    DeadStore,
    /// Basic block unreachable from the entry point.
    UnreachableBlock,
    /// Checkpoint-free loop that cannot finish an iteration on a full
    /// energy store.
    NoProgressLoop,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 4] =
        [Rule::WarHazard, Rule::DeadStore, Rule::UnreachableBlock, Rule::NoProgressLoop];

    /// The stable kebab-case id used in reports and waivers.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Rule::WarHazard => "war-hazard",
            Rule::DeadStore => "dead-store",
            Rule::UnreachableBlock => "unreachable-block",
            Rule::NoProgressLoop => "no-progress-loop",
        }
    }

    /// Parses a rule id (the inverse of [`Rule::id`]).
    #[must_use]
    pub fn parse(s: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == s)
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// An inclusive pc range a diagnostic refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First involved instruction address.
    pub lo: u32,
    /// Last involved instruction address.
    pub hi: u32,
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: Rule,
    /// The pc range involved.
    pub span: Span,
    /// Human-readable explanation with concrete addresses.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} @ pc {}..{}: {}", self.rule, self.span.lo, self.span.hi, self.message)
    }
}

/// Platform parameters the rules evaluate against.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Per-instruction cycle model (for loop energy).
    pub cycle_model: CycleModel,
    /// Per-instruction energy model (for loop energy).
    pub energy_model: EnergyModel,
    /// Maximum storable energy, joules (`½CV²` of the capacitor).
    pub max_stored_j: f64,
    /// Installed data memory, words (clamps dirty-word counts).
    pub dmem_words: usize,
    /// State bits of one full checkpoint, the footprint baseline.
    pub backup_state_bits: u64,
}

impl AnalysisConfig {
    /// Derives the analysis inputs from a platform configuration and
    /// its backup model.
    #[must_use]
    pub fn from_platform(sys: &SystemConfig, backup: &BackupModel) -> AnalysisConfig {
        AnalysisConfig {
            cycle_model: sys.cycle_model,
            energy_model: sys.energy_model,
            max_stored_j: 0.5 * sys.capacitance_f * sys.cap_voltage_v * sys.cap_voltage_v,
            dmem_words: sys.dmem_words,
            backup_state_bits: backup.state_bits,
        }
    }
}

impl Default for AnalysisConfig {
    /// The default platform (`SystemConfig::default()`) with an
    /// architectural-state-only checkpoint baseline.
    fn default() -> AnalysisConfig {
        let sys = SystemConfig::default();
        AnalysisConfig {
            cycle_model: sys.cycle_model,
            energy_model: sys.energy_model,
            max_stored_j: 0.5 * sys.capacitance_f * sys.cap_voltage_v * sys.cap_voltage_v,
            dmem_words: sys.dmem_words,
            backup_state_bits: u64::from(ArchState::BITS),
        }
    }
}

/// What triggers the backup a footprint row describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// A program-requested `ckpt` instruction.
    Ckpt,
    /// The worst demand backup the runtime could take anywhere.
    WorstCase,
}

/// One row of the per-backup-point footprint table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackupSite {
    /// Trigger kind.
    pub kind: SiteKind,
    /// The `ckpt` pc, or (for [`SiteKind::WorstCase`]) the pc at which
    /// the worst footprint occurs.
    pub pc: u32,
    /// Mask of registers statically live at resume.
    pub live_regs: u16,
    /// Words written since the previous backup boundary (an incremental
    /// controller must flush these), clamped to installed memory.
    pub dirty_words: u64,
    /// `live · 16 + 32 (pc) + dirty · 16` — the Freezer-style
    /// incremental backup size.
    pub footprint_bits: u64,
}

impl BackupSite {
    /// Number of live registers in the row.
    #[must_use]
    pub fn live_count(&self) -> u32 {
        u32::from(self.live_regs.count_ones() as u16)
    }

    /// The footprint as a percentage of a full checkpoint.
    #[must_use]
    pub fn percent_of_full(&self, state_bits: u64) -> f64 {
        if state_bits == 0 {
            0.0
        } else {
            self.footprint_bits as f64 * 100.0 / state_bits as f64
        }
    }
}

/// The complete result of analyzing one program.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Findings not covered by a waiver, rule-then-pc ordered.
    pub diagnostics: Vec<Diagnostic>,
    /// Findings acknowledged by waivers.
    pub waived: Vec<Diagnostic>,
    /// Every word address the program may read (normalized intervals).
    pub read_set: Vec<Interval>,
    /// Every word address the program may write (normalized intervals).
    pub write_set: Vec<Interval>,
    /// Per-pc live-in register masks (index = pc).
    pub live_in: Vec<u16>,
    /// Per-pc may-written-since-last-boundary interval sets.
    pub dirty_before: Vec<Vec<Interval>>,
    /// Footprint rows: one per reachable `ckpt`, then the worst case.
    pub sites: Vec<BackupSite>,
    /// Total basic blocks.
    pub block_count: usize,
    /// Blocks reachable from entry.
    pub reachable_count: usize,
    /// The configuration the analysis ran under.
    pub config: AnalysisConfig,
}

impl Analysis {
    /// `true` when no unwaived diagnostics remain.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The worst-case demand-backup row (always present).
    #[must_use]
    pub fn worst_case(&self) -> &BackupSite {
        self.sites.last().expect("worst-case row always emitted")
    }

    /// `true` if `addr` is inside the static may-read set.
    #[must_use]
    pub fn may_read(&self, addr: u16) -> bool {
        set_contains(&self.read_set, addr)
    }

    /// `true` if `addr` is inside the static may-write set.
    #[must_use]
    pub fn may_write(&self, addr: u16) -> bool {
        set_contains(&self.write_set, addr)
    }

    /// Renders the classic text report.
    #[must_use]
    pub fn to_text(&self, name: &str) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let verdict = if self.is_clean() { "clean" } else { "UNSAFE" };
        writeln!(
            out,
            "nvp-flow: {name}: {verdict} — {} block(s), {} reachable, {} diagnostic(s), {} waived",
            self.block_count,
            self.reachable_count,
            self.diagnostics.len(),
            self.waived.len()
        )
        .expect("write to String");
        for d in &self.diagnostics {
            writeln!(out, "  {d}").expect("write to String");
        }
        for d in &self.waived {
            writeln!(out, "  waived: {d}").expect("write to String");
        }
        writeln!(
            out,
            "  backup footprint (vs {} bit full checkpoint):",
            self.config.backup_state_bits
        )
        .expect("write to String");
        writeln!(
            out,
            "    {:<12} {:>6} {:>10} {:>12} {:>10} {:>10}",
            "site", "pc", "live-regs", "dirty-words", "bits", "% of full"
        )
        .expect("write to String");
        for s in &self.sites {
            let kind = match s.kind {
                SiteKind::Ckpt => "ckpt",
                SiteKind::WorstCase => "worst-case",
            };
            writeln!(
                out,
                "    {:<12} {:>6} {:>10} {:>12} {:>10} {:>9.1}%",
                kind,
                s.pc,
                s.live_count(),
                s.dirty_words,
                s.footprint_bits,
                s.percent_of_full(self.config.backup_state_bits)
            )
            .expect("write to String");
        }
        out
    }
}

// ---- interval-set helpers ------------------------------------------------

/// Sorts, merges overlapping/adjacent intervals, and caps the count by
/// hull-merging the closest pair (coverage never shrinks).
fn normalize(mut v: Vec<Interval>) -> Vec<Interval> {
    if v.is_empty() {
        return v;
    }
    v.sort();
    let mut out: Vec<Interval> = Vec::with_capacity(v.len());
    for iv in v {
        match out.last_mut() {
            Some(last) if u32::from(last.hi) + 1 >= u32::from(iv.lo) => {
                last.hi = last.hi.max(iv.hi);
            }
            _ => out.push(iv),
        }
    }
    while out.len() > MAX_INTERVALS {
        // Merge the pair with the smallest gap.
        let mut best = 0usize;
        let mut best_gap = u32::MAX;
        for i in 0..out.len() - 1 {
            let gap = u32::from(out[i + 1].lo) - u32::from(out[i].hi);
            if gap < best_gap {
                best_gap = gap;
                best = i;
            }
        }
        let merged = Interval { lo: out[best].lo, hi: out[best + 1].hi };
        out[best] = merged;
        out.remove(best + 1);
    }
    out
}

fn set_insert(set: &mut Vec<Interval>, iv: Interval) {
    set.push(iv);
    let taken = std::mem::take(set);
    *set = normalize(taken);
}

fn set_union(a: &[Interval], b: &[Interval]) -> Vec<Interval> {
    let mut v = a.to_vec();
    v.extend_from_slice(b);
    normalize(v)
}

/// `true` if `addr` lies inside any interval of the normalized set.
#[must_use]
pub fn set_contains(set: &[Interval], addr: u16) -> bool {
    set.iter().any(|iv| iv.contains(addr))
}

/// Total words covered by a normalized set.
#[must_use]
pub fn set_words(set: &[Interval]) -> u64 {
    set.iter().map(|iv| iv.words()).sum()
}

// ---- the analyzer --------------------------------------------------------

/// Runs every pass and rule over `program`.
///
/// # Errors
///
/// Returns [`CfgError`] if the image is empty or contains an
/// undecodable word.
pub fn analyze(
    program: &Program,
    config: &AnalysisConfig,
    waivers: &Waivers,
) -> Result<Analysis, CfgError> {
    let cfg = Cfg::build(program)?;
    let thresholds = absint::thresholds(program, cfg.insts());
    let abs = absint::analyze(&cfg, &thresholds);
    let live_in = dataflow::liveness(&cfg);
    let reachable = cfg.reachable();
    let reachable_count = reachable.iter().filter(|&&r| r).count();

    let mut findings: Vec<Diagnostic> = Vec::new();

    // Global read/write interval sets.
    let mut read_set: Vec<Interval> = Vec::new();
    let mut write_set: Vec<Interval> = Vec::new();
    for acc in &abs.accesses {
        match acc.kind {
            AccessKind::Read => set_insert(&mut read_set, acc.addr),
            AccessKind::Write => set_insert(&mut write_set, acc.addr),
        }
    }

    let dirty_before = dirty_pass(&cfg, &abs, &reachable);
    war_pass(&cfg, &abs, &reachable, &mut findings);
    dead_store_pass(&cfg, &abs, &reachable, &mut findings);
    unreachable_pass(&cfg, &reachable, &mut findings);
    no_progress_pass(&cfg, config, &mut findings);

    // Footprint rows: every reachable ckpt, then the worst-case demand
    // backup over all reachable pcs.
    let mut sites: Vec<BackupSite> = Vec::new();
    let clamp = config.dmem_words as u64;
    let row = |pc_resume: usize, dirty: &[Interval], kind: SiteKind, pc: u32| -> BackupSite {
        let live = live_in.get(pc_resume).copied().unwrap_or(0);
        let dirty_words = set_words(dirty).min(clamp);
        let bits = u64::from(live.count_ones()) * 16 + 32 + dirty_words * 16;
        BackupSite { kind, pc, live_regs: live, dirty_words, footprint_bits: bits }
    };
    for (pc, inst) in cfg.insts().iter().enumerate() {
        let in_reachable = cfg.block_of(pc as u32).is_some_and(|b| reachable[b]);
        if matches!(inst, Inst::Ckpt) && in_reachable {
            sites.push(row(pc + 1, &dirty_before[pc], SiteKind::Ckpt, pc as u32));
        }
    }
    let mut worst = row(
        program.entry() as usize,
        &dirty_before[program.entry() as usize],
        SiteKind::WorstCase,
        program.entry(),
    );
    for (pc, dirty) in dirty_before.iter().enumerate() {
        let in_reachable = cfg.block_of(pc as u32).is_some_and(|b| reachable[b]);
        if !in_reachable {
            continue;
        }
        let candidate = row(pc, dirty, SiteKind::WorstCase, pc as u32);
        if candidate.footprint_bits > worst.footprint_bits {
            worst = candidate;
        }
    }
    sites.push(worst);

    // Split findings into reported vs waived.
    findings.sort_by_key(|d| (d.rule, d.span.lo, d.span.hi));
    let (waived, diagnostics) = findings
        .into_iter()
        .partition(|d| waivers.allows(d.span.lo, d.rule) || waivers.allows(d.span.hi, d.rule));

    Ok(Analysis {
        diagnostics,
        waived,
        read_set,
        write_set,
        live_in,
        dirty_before,
        sites,
        block_count: cfg.blocks().len(),
        reachable_count,
        config: config.clone(),
    })
}

/// Is the edge out of `b` a backup boundary (`ckpt` terminator)?
fn clears_region(cfg: &Cfg, b: usize) -> bool {
    matches!(cfg.insts()[cfg.blocks()[b].end as usize], Inst::Ckpt)
}

/// Forward may-analysis: words written since the last backup boundary,
/// per pc. `ckpt` edges clear the set; entry starts clean.
fn dirty_pass(cfg: &Cfg, abs: &AbsInt, reachable: &[bool]) -> Vec<Vec<Interval>> {
    let n = cfg.blocks().len();
    let mut in_set: Vec<Option<Vec<Interval>>> = vec![None; n];
    in_set[cfg.entry_block()] = Some(Vec::new());
    let mut work = vec![cfg.entry_block()];
    while let Some(b) = work.pop() {
        let Some(mut set) = in_set[b].clone() else { continue };
        let block = cfg.blocks()[b];
        for pc in block.start..=block.end {
            if let Some(acc) = abs.access_at(pc) {
                if acc.kind == AccessKind::Write {
                    set_insert(&mut set, acc.addr);
                }
            }
        }
        let out = if clears_region(cfg, b) { Vec::new() } else { set };
        for e in cfg.succs(b) {
            let next = match &in_set[e.to] {
                None => out.clone(),
                Some(old) => set_union(old, &out),
            };
            if in_set[e.to].as_ref() != Some(&next) {
                in_set[e.to] = Some(next);
                work.push(e.to);
            }
        }
    }

    let mut per_pc: Vec<Vec<Interval>> = vec![Vec::new(); cfg.insts().len()];
    for (b, block) in cfg.blocks().iter().enumerate() {
        if !reachable[b] {
            continue;
        }
        let mut set = in_set[b].clone().unwrap_or_default();
        for pc in block.start..=block.end {
            per_pc[pc as usize] = set.clone();
            if let Some(acc) = abs.access_at(pc) {
                if acc.kind == AccessKind::Write {
                    set_insert(&mut set, acc.addr);
                }
            }
        }
    }
    per_pc
}

/// WAR idempotency rule: a constant-address word read while still
/// *clean* (unwritten since the boundary), then stored to, inside one
/// region. Replaying such a region after a torn backup feeds the store
/// its own earlier output.
fn war_pass(cfg: &Cfg, abs: &AbsInt, reachable: &[bool], findings: &mut Vec<Diagnostic>) {
    let n = cfg.blocks().len();
    // Pass 1 — forward must-written-since-boundary (const addrs only).
    let mut must_in: Vec<Option<BTreeSet<u16>>> = vec![None; n];
    must_in[cfg.entry_block()] = Some(BTreeSet::new());
    let mut work = vec![cfg.entry_block()];
    while let Some(b) = work.pop() {
        let Some(mut set) = must_in[b].clone() else { continue };
        let block = cfg.blocks()[b];
        for pc in block.start..=block.end {
            if let Some(acc) = abs.access_at(pc) {
                if acc.kind == AccessKind::Write {
                    if let Some(a) = acc.addr.as_const() {
                        set.insert(a);
                    }
                }
            }
        }
        let out = if clears_region(cfg, b) { BTreeSet::new() } else { set };
        for e in cfg.succs(b) {
            let next = match &must_in[e.to] {
                None => out.clone(),
                Some(old) => old.intersection(&out).copied().collect(),
            };
            if must_in[e.to].as_ref() != Some(&next) {
                must_in[e.to] = Some(next);
                work.push(e.to);
            }
        }
    }

    // Pass 2 — forward may "read while clean" (addr -> earliest read pc).
    // Gen: const load of an addr not yet must-written. Kill: any const
    // store to the addr (later reads see in-region data — idempotent).
    let mut clean_in: Vec<Option<BTreeMap<u16, u32>>> = vec![None; n];
    clean_in[cfg.entry_block()] = Some(BTreeMap::new());
    let mut work = vec![cfg.entry_block()];
    while let Some(b) = work.pop() {
        let Some(mut map) = clean_in[b].clone() else { continue };
        let mut must = must_in[b].clone().unwrap_or_default();
        let block = cfg.blocks()[b];
        for pc in block.start..=block.end {
            if let Some(acc) = abs.access_at(pc) {
                if let Some(a) = acc.addr.as_const() {
                    match acc.kind {
                        AccessKind::Read => {
                            if !must.contains(&a) {
                                let e = map.entry(a).or_insert(pc);
                                *e = (*e).min(pc);
                            }
                        }
                        AccessKind::Write => {
                            map.remove(&a);
                            must.insert(a);
                        }
                    }
                }
            }
        }
        let out = if clears_region(cfg, b) { BTreeMap::new() } else { map };
        for e in cfg.succs(b) {
            let next = match &clean_in[e.to] {
                None => out.clone(),
                Some(old) => {
                    let mut merged = old.clone();
                    for (&a, &pc) in &out {
                        let e2 = merged.entry(a).or_insert(pc);
                        *e2 = (*e2).min(pc);
                    }
                    merged
                }
            };
            if clean_in[e.to].as_ref() != Some(&next) {
                clean_in[e.to] = Some(next);
                work.push(e.to);
            }
        }
    }

    // Final stable pass: collect read-then-write pairs.
    let mut seen: BTreeSet<(u16, u32)> = BTreeSet::new();
    for (b, block) in cfg.blocks().iter().enumerate() {
        if !reachable[b] {
            continue;
        }
        let mut map = clean_in[b].clone().unwrap_or_default();
        let mut must = must_in[b].clone().unwrap_or_default();
        for pc in block.start..=block.end {
            if let Some(acc) = abs.access_at(pc) {
                if let Some(a) = acc.addr.as_const() {
                    match acc.kind {
                        AccessKind::Read => {
                            if !must.contains(&a) {
                                let e = map.entry(a).or_insert(pc);
                                *e = (*e).min(pc);
                            }
                        }
                        AccessKind::Write => {
                            if let Some(&read_pc) = map.get(&a) {
                                if seen.insert((a, pc)) {
                                    findings.push(Diagnostic {
                                        rule: Rule::WarHazard,
                                        span: Span { lo: read_pc.min(pc), hi: read_pc.max(pc) },
                                        message: format!(
                                            "dmem[{a:#06x}] is read at pc {read_pc} and \
                                             rewritten at pc {pc} inside one backup region; \
                                             replaying the region after a torn backup makes \
                                             the read observe the store's earlier output \
                                             (non-idempotent read-modify-write)"
                                        ),
                                    });
                                }
                            }
                            map.remove(&a);
                            must.insert(a);
                        }
                    }
                }
            }
        }
    }
}

/// Dead-store rule: backward must-overwritten-before-any-may-read.
/// `halt` commits outputs (all memory observable), so only stores
/// provably shadowed by a later store on *every* path are flagged.
fn dead_store_pass(cfg: &Cfg, abs: &AbsInt, reachable: &[bool], findings: &mut Vec<Diagnostic>) {
    let n = cfg.blocks().len();
    // start_state[b]: map addr -> overwriting pc, holding at block entry.
    let mut start_state: Vec<Option<BTreeMap<u16, u32>>> = vec![None; n];

    let transfer = |b: usize, out: &BTreeMap<u16, u32>| -> BTreeMap<u16, u32> {
        let mut map = out.clone();
        let block = cfg.blocks()[b];
        for pc in (block.start..=block.end).rev() {
            if let Some(acc) = abs.access_at(pc) {
                match (acc.kind, acc.addr.as_const()) {
                    (AccessKind::Write, Some(a)) => {
                        map.insert(a, pc);
                    }
                    (AccessKind::Write, None) => {}
                    (AccessKind::Read, Some(a)) => {
                        map.remove(&a);
                    }
                    (AccessKind::Read, None) => {
                        map.retain(|&a, _| !acc.addr.contains(a));
                    }
                }
            }
        }
        map
    };

    // Iterate to fixpoint (must-analysis: successor intersection).
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..n).rev() {
            if !reachable[b] {
                continue;
            }
            let mut out: Option<BTreeMap<u16, u32>> = None;
            if cfg.succs(b).is_empty() {
                out = Some(BTreeMap::new());
            } else {
                for e in cfg.succs(b) {
                    let Some(succ_in) = &start_state[e.to] else {
                        // Successor not computed yet: treat as top and
                        // let later rounds tighten it.
                        continue;
                    };
                    out = Some(match out {
                        None => succ_in.clone(),
                        Some(acc) => acc
                            .into_iter()
                            .filter(|(a, _)| succ_in.contains_key(a))
                            .map(|(a, pc)| (a, pc.min(succ_in[&a])))
                            .collect(),
                    });
                }
            }
            let Some(out) = out else { continue };
            let new_start = transfer(b, &out);
            if start_state[b].as_ref() != Some(&new_start) {
                start_state[b] = Some(new_start);
                changed = true;
            }
        }
    }

    // Final pass: a const store into a must-overwritten slot is dead.
    for (b, block) in cfg.blocks().iter().enumerate() {
        if !reachable[b] {
            continue;
        }
        let mut out: BTreeMap<u16, u32> = BTreeMap::new();
        if !cfg.succs(b).is_empty() {
            let mut acc: Option<BTreeMap<u16, u32>> = None;
            for e in cfg.succs(b) {
                let succ_in = start_state[e.to].clone().unwrap_or_default();
                acc = Some(match acc {
                    None => succ_in,
                    Some(prev) => prev
                        .into_iter()
                        .filter(|(a, _)| succ_in.contains_key(a))
                        .map(|(a, pc)| (a, pc.min(succ_in[&a])))
                        .collect(),
                });
            }
            out = acc.unwrap_or_default();
        }
        let mut map = out;
        for pc in (block.start..=block.end).rev() {
            if let Some(acc) = abs.access_at(pc) {
                match (acc.kind, acc.addr.as_const()) {
                    (AccessKind::Write, Some(a)) => {
                        if let Some(&over_pc) = map.get(&a) {
                            findings.push(Diagnostic {
                                rule: Rule::DeadStore,
                                span: Span { lo: pc, hi: pc },
                                message: format!(
                                    "store to dmem[{a:#06x}] at pc {pc} is overwritten at \
                                     pc {over_pc} before any possible read (dead store)"
                                ),
                            });
                        }
                        map.insert(a, pc);
                    }
                    (AccessKind::Write, None) => {}
                    (AccessKind::Read, Some(a)) => {
                        map.remove(&a);
                    }
                    (AccessKind::Read, None) => {
                        map.retain(|&a, _| !acc.addr.contains(a));
                    }
                }
            }
        }
    }
}

/// Unreachable-block rule.
fn unreachable_pass(cfg: &Cfg, reachable: &[bool], findings: &mut Vec<Diagnostic>) {
    for (b, block) in cfg.blocks().iter().enumerate() {
        if reachable[b] {
            continue;
        }
        findings.push(Diagnostic {
            rule: Rule::UnreachableBlock,
            span: Span { lo: block.start, hi: block.end },
            message: format!(
                "block at pc {}..{} is unreachable from the entry point (dead code)",
                block.start, block.end
            ),
        });
    }
}

/// Minimum energy to execute one instruction (branch counted not-taken,
/// the cheaper outcome — an underestimate, so a finding is definite).
fn min_inst_energy_j(inst: Inst, config: &AnalysisConfig) -> f64 {
    let class = InstClass::of(&inst);
    let cycles = config.cycle_model.cycles(class, false);
    config.energy_model.energy(class, cycles)
}

/// No-progress-loop rule: a checkpoint-free natural loop whose
/// *cheapest* full iteration costs more than the capacitor can store.
/// Such a program browns out mid-iteration every time and, with no
/// boundary inside the loop, replays forever.
fn no_progress_pass(cfg: &Cfg, config: &AnalysisConfig, findings: &mut Vec<Diagnostic>) {
    for lp in cfg.natural_loops() {
        let mut has_boundary = false;
        let mut block_cost: BTreeMap<usize, f64> = BTreeMap::new();
        for &b in &lp.body {
            let block = cfg.blocks()[b];
            let mut cost = 0.0f64;
            for pc in block.start..=block.end {
                let inst = cfg.insts()[pc as usize];
                if matches!(inst, Inst::Ckpt | Inst::Halt) {
                    has_boundary = true;
                }
                cost += min_inst_energy_j(inst, config);
            }
            block_cost.insert(b, cost);
        }
        if has_boundary {
            continue;
        }
        // Node-weighted shortest path head -> latch inside the body
        // (Bellman-Ford; |body| rounds suffice, costs are positive).
        let mut dist: BTreeMap<usize, f64> = BTreeMap::new();
        dist.insert(lp.head, block_cost[&lp.head]);
        for _ in 0..lp.body.len() {
            let mut updated = false;
            for &u in &lp.body {
                let Some(&du) = dist.get(&u) else { continue };
                if u != lp.head && u == lp.latch {
                    // Leaving the latch re-enters the header; the
                    // iteration is complete there.
                    continue;
                }
                for e in cfg.succs(u) {
                    if !lp.body.contains(&e.to) || e.to == lp.head {
                        continue;
                    }
                    let cand = du + block_cost[&e.to];
                    let better = match dist.get(&e.to) {
                        None => true,
                        Some(&dv) => cand < dv,
                    };
                    if better {
                        dist.insert(e.to, cand);
                        updated = true;
                    }
                }
            }
            if !updated {
                break;
            }
        }
        let Some(&min_iter) = dist.get(&lp.latch) else { continue };
        if min_iter > config.max_stored_j {
            let lo = lp.body.iter().map(|&b| cfg.blocks()[b].start).min().unwrap_or(0);
            let hi = lp.body.iter().map(|&b| cfg.blocks()[b].end).max().unwrap_or(0);
            findings.push(Diagnostic {
                rule: Rule::NoProgressLoop,
                span: Span { lo, hi },
                message: format!(
                    "checkpoint-free loop needs at least {min_iter:.3e} J per iteration but \
                     the storage capacitor holds at most {:.3e} J — the platform browns out \
                     mid-iteration and can never commit forward progress",
                    config.max_stored_j
                ),
            });
        }
    }
}
