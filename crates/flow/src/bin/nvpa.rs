//! `nvpa` — the NV16 intermittency-safety analyzer CLI.
//!
//! ```text
//! nvpa kernels [--deny warnings|RULE]...        analyze all registry kernels
//! nvpa <file.nv16> [--deny ...] [--dmem WORDS]  analyze one assembly file
//! ```
//!
//! Exit codes: `0` clean (or nothing denied), `1` at least one denied
//! diagnostic, `2` usage / IO / assembly / decode errors.

use std::process::ExitCode;

use nvp_flow::{analyze, AnalysisConfig, Rule, Waivers};
use nvp_isa::asm::assemble;
use nvp_workloads::{GrayImage, KernelKind};

/// What `--deny` escalates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Deny {
    /// `--deny warnings`: every rule.
    All,
    /// `--deny <rule-id>`: one rule.
    One(Rule),
}

struct Args {
    target: String,
    deny: Vec<Deny>,
    dmem: Option<usize>,
}

fn usage() -> String {
    let rules: Vec<&str> = Rule::ALL.iter().map(|r| r.id()).collect();
    format!(
        "usage: nvpa kernels [--deny warnings|RULE]...\n\
        \x20      nvpa <file.nv16> [--deny warnings|RULE]... [--dmem WORDS]\n\
        rules: {}",
        rules.join(", ")
    )
}

fn parse_args(mut argv: std::env::Args) -> Result<Args, String> {
    argv.next(); // program name
    let mut target: Option<String> = None;
    let mut deny = Vec::new();
    let mut dmem = None;
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--deny" => {
                let what = argv.next().ok_or("--deny needs an argument")?;
                if what == "warnings" {
                    deny.push(Deny::All);
                } else {
                    let rule =
                        Rule::parse(&what).ok_or_else(|| format!("unknown rule {what:?}"))?;
                    deny.push(Deny::One(rule));
                }
            }
            "--dmem" => {
                let words = argv.next().ok_or("--dmem needs an argument")?;
                dmem = Some(words.parse::<usize>().map_err(|e| format!("--dmem: {e}"))?);
            }
            "--help" | "-h" => return Err(String::new()),
            other if target.is_none() => target = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    Ok(Args { target: target.ok_or("missing target")?, deny, dmem })
}

fn denied(deny: &[Deny], rule: Rule) -> bool {
    deny.iter().any(|d| matches!(d, Deny::All) || *d == Deny::One(rule))
}

/// Analyzes one named program; returns whether any denied diagnostic
/// fired.
fn report(
    name: &str,
    program: &nvp_isa::Program,
    config: &AnalysisConfig,
    waivers: &Waivers,
    deny: &[Deny],
) -> Result<bool, String> {
    let analysis = analyze(program, config, waivers).map_err(|e| format!("{name}: {e}"))?;
    print!("{}", analysis.to_text(name));
    Ok(analysis.diagnostics.iter().any(|d| denied(deny, d.rule)))
}

fn run() -> Result<bool, String> {
    let args = parse_args(std::env::args())?;
    let mut any_denied = false;
    if args.target == "kernels" {
        let image = GrayImage::synthetic(1, 16, 16);
        for kind in KernelKind::ALL {
            let instance = kind.build(&image).map_err(|e| format!("{}: {e}", kind.name()))?;
            let config = AnalysisConfig {
                dmem_words: args.dmem.unwrap_or_else(|| instance.min_dmem_words()),
                ..AnalysisConfig::default()
            };
            any_denied |=
                report(kind.name(), instance.program(), &config, &Waivers::none(), &args.deny)?;
        }
    } else {
        let src =
            std::fs::read_to_string(&args.target).map_err(|e| format!("{}: {e}", args.target))?;
        let program = assemble(&src).map_err(|e| format!("{}: {e}", args.target))?;
        let waivers = Waivers::from_asm_source(&src);
        let mut config = AnalysisConfig::default();
        if let Some(d) = args.dmem {
            config.dmem_words = d;
        }
        any_denied |= report(&args.target, &program, &config, &waivers, &args.deny)?;
    }
    Ok(any_denied)
}

fn main() -> ExitCode {
    match run() {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => {
            eprintln!("nvpa: denied diagnostics present");
            ExitCode::from(1)
        }
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                ExitCode::SUCCESS
            } else {
                eprintln!("nvpa: {msg}");
                eprintln!("{}", usage());
                ExitCode::from(2)
            }
        }
    }
}
