//! Control-flow graph construction over NV16 basic blocks.
//!
//! Builds on the block partitioner in [`nvp_isa::blocks`]: the leader
//! bitmap carves the code image into maximal straight-line runs, and
//! this module adds the edges, predecessor lists, reachability,
//! dominators, and natural-loop detection the dataflow passes need.
//!
//! `jalr` has no static target; a program containing one gets an
//! *indirect* edge to every block, which keeps every forward analysis
//! sound (at the cost of precision). No shipped kernel uses `jalr`.

use std::collections::BTreeSet;

use nvp_isa::blocks::{branch_target, leaders};
use nvp_isa::{DecodeError, Inst, Program};

/// Why an edge exists between two blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Fall-through to the next block (includes the not-taken side of a
    /// conditional branch and the instruction after a `ckpt`).
    Fall,
    /// The taken side of a conditional branch.
    Taken,
    /// An unconditional `jal` jump.
    Jump,
    /// A conservative `jalr` edge (target unknown statically).
    Indirect,
}

/// One outgoing CFG edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Destination block index.
    pub to: usize,
    /// Edge provenance, used by branch refinement.
    pub kind: EdgeKind,
}

/// One basic block: the maximal straight-line run `[start, end]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// First instruction address of the block (its leader).
    pub start: u32,
    /// Last instruction address of the block (inclusive).
    pub end: u32,
}

impl Block {
    /// Number of instructions in the block.
    #[must_use]
    pub fn len(&self) -> usize {
        (self.end - self.start + 1) as usize
    }

    /// `true` if the block holds no instructions (never constructed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// A natural loop discovered from a dominator back edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// Block index of the loop header.
    pub head: usize,
    /// Block index of the back-edge source (the latch).
    pub latch: usize,
    /// All block indices in the loop body (header included).
    pub body: BTreeSet<usize>,
}

/// Error raised while decoding a program image for analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CfgError {
    /// Address of the undecodable word.
    pub pc: u32,
    /// The decode failure.
    pub source: DecodeError,
}

impl std::fmt::Display for CfgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "undecodable instruction at pc {}: {}", self.pc, self.source)
    }
}

impl std::error::Error for CfgError {}

/// Control-flow graph of an NV16 program.
#[derive(Debug, Clone)]
pub struct Cfg {
    insts: Vec<Inst>,
    blocks: Vec<Block>,
    succs: Vec<Vec<Edge>>,
    preds: Vec<Vec<usize>>,
    block_of: Vec<usize>,
    entry_block: usize,
    has_indirect: bool,
}

impl Cfg {
    /// Builds the CFG of `program`.
    ///
    /// # Errors
    ///
    /// Returns [`CfgError`] if the image contains an undecodable word
    /// (possible only for hand-built images) or is empty.
    pub fn build(program: &Program) -> Result<Cfg, CfgError> {
        let mut insts = Vec::with_capacity(program.code().len());
        for (pc, &word) in program.code().iter().enumerate() {
            let inst = Inst::decode(word).map_err(|source| CfgError { pc: pc as u32, source })?;
            insts.push(inst);
        }
        if insts.is_empty() {
            // An empty image has nothing to analyze; surface it as an
            // undecodable entry word.
            return Err(CfgError { pc: 0, source: Inst::decode(u32::MAX).unwrap_err() });
        }
        let entry = program.entry().min(insts.len() as u32 - 1);
        let is_leader = leaders(&insts, entry);

        // Carve blocks and build the pc -> block index map.
        let mut blocks: Vec<Block> = Vec::new();
        let mut block_of = vec![0usize; insts.len()];
        for pc in 0..insts.len() {
            if is_leader[pc] || blocks.is_empty() {
                blocks.push(Block { start: pc as u32, end: pc as u32 });
            }
            let last = blocks.len() - 1;
            blocks[last].end = pc as u32;
            block_of[pc] = last;
        }

        let has_indirect = insts.iter().any(|i| matches!(i, Inst::Jalr { .. }));
        let n = blocks.len();
        let mut succs: Vec<Vec<Edge>> = vec![Vec::new(); n];
        for (b, block) in blocks.iter().enumerate() {
            let end_pc = block.end;
            let term = insts[end_pc as usize];
            let fall = (end_pc as usize + 1 < insts.len()).then(|| block_of[end_pc as usize + 1]);
            match term {
                Inst::Halt => {}
                Inst::Jal { target, .. } => {
                    if (target as usize) < insts.len() {
                        succs[b].push(Edge { to: block_of[target as usize], kind: EdgeKind::Jump });
                    }
                }
                Inst::Jalr { .. } => {
                    // Unknown target: conservatively every block.
                    for to in 0..n {
                        succs[b].push(Edge { to, kind: EdgeKind::Indirect });
                    }
                }
                Inst::Beq { offset, .. }
                | Inst::Bne { offset, .. }
                | Inst::Blt { offset, .. }
                | Inst::Bge { offset, .. }
                | Inst::Bltu { offset, .. }
                | Inst::Bgeu { offset, .. } => {
                    let target = branch_target(end_pc, offset);
                    if (target as usize) < insts.len() {
                        succs[b]
                            .push(Edge { to: block_of[target as usize], kind: EdgeKind::Taken });
                    }
                    if let Some(to) = fall {
                        succs[b].push(Edge { to, kind: EdgeKind::Fall });
                    }
                }
                // `ckpt` is a terminator with plain fall-through; a
                // non-terminator last instruction means the block ends
                // at the code boundary (execution would fault past it).
                _ => {
                    if let Some(to) = fall {
                        succs[b].push(Edge { to, kind: EdgeKind::Fall });
                    }
                }
            }
        }
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (b, edges) in succs.iter().enumerate() {
            for e in edges {
                if !preds[e.to].contains(&b) {
                    preds[e.to].push(b);
                }
            }
        }
        let entry_block = block_of[entry as usize];
        Ok(Cfg { insts, blocks, succs, preds, block_of, entry_block, has_indirect })
    }

    /// The decoded instruction stream, indexed by pc.
    #[must_use]
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// All basic blocks in address order.
    #[must_use]
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Index of the block containing the entry point.
    #[must_use]
    pub fn entry_block(&self) -> usize {
        self.entry_block
    }

    /// Block index containing `pc`, if `pc` is inside the image.
    #[must_use]
    pub fn block_of(&self, pc: u32) -> Option<usize> {
        self.block_of.get(pc as usize).copied()
    }

    /// Outgoing edges of block `b`.
    #[must_use]
    pub fn succs(&self, b: usize) -> &[Edge] {
        &self.succs[b]
    }

    /// Predecessor block indices of block `b`.
    #[must_use]
    pub fn preds(&self, b: usize) -> &[usize] {
        &self.preds[b]
    }

    /// `true` if the program contains a `jalr` (indirect edges present).
    #[must_use]
    pub fn has_indirect(&self) -> bool {
        self.has_indirect
    }

    /// Per-block reachability from the entry block.
    #[must_use]
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![self.entry_block];
        seen[self.entry_block] = true;
        while let Some(b) = stack.pop() {
            for e in &self.succs[b] {
                if !seen[e.to] {
                    seen[e.to] = true;
                    stack.push(e.to);
                }
            }
        }
        seen
    }

    /// Iterative dominator sets: `dom[b]` holds every block that
    /// dominates `b` (including `b` itself). Unreachable blocks get the
    /// full set (the conventional lattice top).
    #[must_use]
    pub fn dominators(&self) -> Vec<BTreeSet<usize>> {
        let n = self.blocks.len();
        let all: BTreeSet<usize> = (0..n).collect();
        let reachable = self.reachable();
        let mut dom: Vec<BTreeSet<usize>> = vec![all.clone(); n];
        dom[self.entry_block] = BTreeSet::from([self.entry_block]);
        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..n {
                if b == self.entry_block || !reachable[b] {
                    continue;
                }
                let mut new: Option<BTreeSet<usize>> = None;
                for &p in &self.preds[b] {
                    if !reachable[p] {
                        continue;
                    }
                    new = Some(match new {
                        None => dom[p].clone(),
                        Some(acc) => acc.intersection(&dom[p]).copied().collect(),
                    });
                }
                let mut new = new.unwrap_or_default();
                new.insert(b);
                if new != dom[b] {
                    dom[b] = new;
                    changed = true;
                }
            }
        }
        dom
    }

    /// Natural loops: for every back edge `latch -> head` where `head`
    /// dominates `latch`, the body is `head` plus every block that can
    /// reach `latch` without passing through `head`. Loops sharing a
    /// header are merged.
    #[must_use]
    pub fn natural_loops(&self) -> Vec<NaturalLoop> {
        let dom = self.dominators();
        let reachable = self.reachable();
        let mut loops: Vec<NaturalLoop> = Vec::new();
        for (latch, edges) in self.succs.iter().enumerate() {
            if !reachable[latch] {
                continue;
            }
            for e in edges {
                let head = e.to;
                if !dom[latch].contains(&head) {
                    continue;
                }
                let mut body = BTreeSet::from([head, latch]);
                let mut stack = vec![latch];
                while let Some(b) = stack.pop() {
                    if b == head {
                        continue;
                    }
                    for &p in &self.preds[b] {
                        if reachable[p] && body.insert(p) {
                            stack.push(p);
                        }
                    }
                }
                if let Some(existing) = loops.iter_mut().find(|l| l.head == head) {
                    existing.body.extend(body);
                    existing.latch = existing.latch.max(latch);
                } else {
                    loops.push(NaturalLoop { head, latch, body });
                }
            }
        }
        loops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvp_isa::asm::assemble;

    fn cfg_of(src: &str) -> Cfg {
        Cfg::build(&assemble(src).expect("assembles")).expect("builds")
    }

    #[test]
    fn straight_line_is_one_block() {
        let c = cfg_of("nop\nnop\nhalt");
        assert_eq!(c.blocks().len(), 1);
        assert_eq!(c.succs(0), &[]);
        assert!(c.reachable()[0]);
    }

    #[test]
    fn branch_makes_diamond() {
        // 0: bne -> 2 | fall 1; 1: nop -> 2; 2: halt
        let c = cfg_of("bne r1, r0, 1\nnop\nhalt");
        assert_eq!(c.blocks().len(), 3);
        let kinds: Vec<EdgeKind> = c.succs(0).iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![EdgeKind::Taken, EdgeKind::Fall]);
        assert_eq!(c.preds(2), &[0, 1]);
    }

    #[test]
    fn loop_is_detected_with_dominating_head() {
        // 0: li; 1: addi; 2: bne -> 1
        let c = cfg_of("li r2, 3\nloop: addi r1, r1, 1\nbne r1, r2, loop\nhalt");
        let loops = c.natural_loops();
        assert_eq!(loops.len(), 1);
        let head_block = c.block_of(1).unwrap();
        assert_eq!(loops[0].head, head_block);
        assert!(loops[0].body.contains(&head_block));
    }

    #[test]
    fn unreachable_block_after_jump() {
        let c = cfg_of("j done\nnop\ndone: halt");
        let reach = c.reachable();
        let dead = c.block_of(1).unwrap();
        assert!(!reach[dead]);
    }

    #[test]
    fn ckpt_terminates_block_with_fallthrough() {
        let c = cfg_of("ckpt\nnop\nhalt");
        assert_eq!(c.blocks().len(), 2);
        assert_eq!(c.succs(0), &[Edge { to: 1, kind: EdgeKind::Fall }]);
    }
}
