//! Classic bit-vector dataflow: register liveness (backward) and
//! reaching definitions (forward), both at basic-block granularity with
//! per-pc expansion.
//!
//! Registers are tracked as 16-bit masks (bit *i* = `r<i>`); `r0` is
//! hardwired zero, never needs preserving, and is masked out of every
//! use/def set so it can never appear live.

use std::collections::BTreeSet;

use nvp_isa::{Inst, Reg};

use crate::cfg::Cfg;

/// Bit mask for one register; `r0` maps to no bits.
fn bit(r: Reg) -> u16 {
    if r.is_zero() {
        0
    } else {
        1 << r.index()
    }
}

/// Registers read by `inst`, as a mask (`r0` excluded).
#[must_use]
pub fn uses_mask(inst: Inst) -> u16 {
    use Inst::*;
    match inst {
        Add { rs1, rs2, .. }
        | Sub { rs1, rs2, .. }
        | And { rs1, rs2, .. }
        | Or { rs1, rs2, .. }
        | Xor { rs1, rs2, .. }
        | Sll { rs1, rs2, .. }
        | Srl { rs1, rs2, .. }
        | Sra { rs1, rs2, .. }
        | Mul { rs1, rs2, .. }
        | Mulh { rs1, rs2, .. }
        | Slt { rs1, rs2, .. }
        | Sltu { rs1, rs2, .. }
        | Divu { rs1, rs2, .. }
        | Remu { rs1, rs2, .. }
        | Sw { rs2, rs1, .. }
        | Beq { rs1, rs2, .. }
        | Bne { rs1, rs2, .. }
        | Blt { rs1, rs2, .. }
        | Bge { rs1, rs2, .. }
        | Bltu { rs1, rs2, .. }
        | Bgeu { rs1, rs2, .. } => bit(rs1) | bit(rs2),
        Addi { rs1, .. }
        | Andi { rs1, .. }
        | Ori { rs1, .. }
        | Xori { rs1, .. }
        | Slli { rs1, .. }
        | Srli { rs1, .. }
        | Srai { rs1, .. }
        | Slti { rs1, .. }
        | Lw { rs1, .. }
        | Jalr { rs1, .. }
        | Out { rs1, .. } => bit(rs1),
        Li { .. } | Jal { .. } | Nop | Halt | Ckpt | In { .. } => 0,
    }
}

/// The register written by `inst`, as a mask (`r0` writes excluded).
#[must_use]
pub fn def_mask(inst: Inst) -> u16 {
    use Inst::*;
    match inst {
        Add { rd, .. }
        | Sub { rd, .. }
        | And { rd, .. }
        | Or { rd, .. }
        | Xor { rd, .. }
        | Sll { rd, .. }
        | Srl { rd, .. }
        | Sra { rd, .. }
        | Mul { rd, .. }
        | Mulh { rd, .. }
        | Slt { rd, .. }
        | Sltu { rd, .. }
        | Divu { rd, .. }
        | Remu { rd, .. }
        | Addi { rd, .. }
        | Andi { rd, .. }
        | Ori { rd, .. }
        | Xori { rd, .. }
        | Slli { rd, .. }
        | Srli { rd, .. }
        | Srai { rd, .. }
        | Slti { rd, .. }
        | Li { rd, .. }
        | Lw { rd, .. }
        | Jal { rd, .. }
        | Jalr { rd, .. }
        | In { rd, .. } => bit(rd),
        Sw { .. }
        | Beq { .. }
        | Bne { .. }
        | Blt { .. }
        | Bge { .. }
        | Bltu { .. }
        | Bgeu { .. }
        | Nop
        | Halt
        | Ckpt
        | Out { .. } => 0,
    }
}

/// Per-pc live-in register masks. A register is live at `pc` if some
/// path from `pc` reads it before writing it; at a backup taken just
/// before `pc` executes, exactly these registers must be restored for
/// the resumed execution to behave identically.
#[must_use]
pub fn liveness(cfg: &Cfg) -> Vec<u16> {
    let insts = cfg.insts();
    let n = cfg.blocks().len();

    // Block summaries: `use_b` = read before any write inside the
    // block, `def_b` = written inside the block.
    let mut use_b = vec![0u16; n];
    let mut def_b = vec![0u16; n];
    for (b, block) in cfg.blocks().iter().enumerate() {
        for pc in block.start..=block.end {
            let i = insts[pc as usize];
            use_b[b] |= uses_mask(i) & !def_b[b];
            def_b[b] |= def_mask(i);
        }
    }

    let mut live_in = vec![0u16; n];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..n).rev() {
            let mut out = 0u16;
            for e in cfg.succs(b) {
                out |= live_in[e.to];
            }
            let new_in = use_b[b] | (out & !def_b[b]);
            if new_in != live_in[b] {
                live_in[b] = new_in;
                changed = true;
            }
        }
    }

    // Expand to per-pc masks by walking each block backward.
    let mut per_pc = vec![0u16; insts.len()];
    for (b, block) in cfg.blocks().iter().enumerate() {
        let mut live = 0u16;
        for e in cfg.succs(b) {
            live |= live_in[e.to];
        }
        for pc in (block.start..=block.end).rev() {
            let i = insts[pc as usize];
            live = uses_mask(i) | (live & !def_mask(i));
            per_pc[pc as usize] = live;
        }
    }
    per_pc
}

/// Reaching definitions: for each block, the set of definition sites
/// (pcs) per register that may reach its entry.
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    ins: Vec<[BTreeSet<u32>; 16]>,
}

impl ReachingDefs {
    /// Computes reaching definitions over `cfg`. The pseudo-definition
    /// pc `u32::MAX` stands for "uninitialized at entry" (the machine
    /// zero-fills registers at reset).
    #[must_use]
    pub fn compute(cfg: &Cfg) -> ReachingDefs {
        let insts = cfg.insts();
        let n = cfg.blocks().len();
        // Block summaries: last definition pc per register, if any.
        let mut last_def: Vec<[Option<u32>; 16]> = vec![[None; 16]; n];
        for (b, block) in cfg.blocks().iter().enumerate() {
            for pc in block.start..=block.end {
                let d = def_mask(insts[pc as usize]);
                for (r, slot) in last_def[b].iter_mut().enumerate().skip(1) {
                    if d & (1 << r) != 0 {
                        *slot = Some(pc);
                    }
                }
            }
        }

        let empty: [BTreeSet<u32>; 16] = Default::default();
        let mut ins: Vec<[BTreeSet<u32>; 16]> = vec![empty.clone(); n];
        for set in ins[cfg.entry_block()].iter_mut().skip(1) {
            set.insert(u32::MAX);
        }
        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..n {
                // out[b] per register: the block's own last def if it
                // defines the register, else whatever reached its entry.
                for e in cfg.succs(b).to_vec() {
                    for r in 1..16 {
                        match last_def[b][r] {
                            Some(pc) => {
                                if ins[e.to][r].insert(pc) {
                                    changed = true;
                                }
                            }
                            None => {
                                let incoming: Vec<u32> = ins[b][r].iter().copied().collect();
                                for pc in incoming {
                                    if ins[e.to][r].insert(pc) {
                                        changed = true;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        ReachingDefs { ins }
    }

    /// Definition sites of `reg` that may reach `pc` (walks the block
    /// prefix). `u32::MAX` denotes the zeroed reset value.
    #[must_use]
    pub fn reaching_at(&self, cfg: &Cfg, pc: u32, reg: Reg) -> BTreeSet<u32> {
        let Some(b) = cfg.block_of(pc) else { return BTreeSet::new() };
        let block = cfg.blocks()[b];
        let r = reg.index();
        if reg.is_zero() {
            return BTreeSet::new();
        }
        let mut defs = self.ins[b][r].clone();
        for p in block.start..pc {
            if def_mask(cfg.insts()[p as usize]) & (1 << r) != 0 {
                defs = BTreeSet::from([p]);
            }
        }
        defs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvp_isa::asm::assemble;

    fn cfg_of(src: &str) -> Cfg {
        Cfg::build(&assemble(src).expect("assembles")).expect("cfg")
    }

    #[test]
    fn live_in_tracks_reads_back_to_definitions() {
        // r1 defined at 0, read at 2: live at pc 1 and 2, dead after.
        let c = cfg_of("li r1, 4\nnop\nsw r1, 0(r2)\nhalt");
        let live = liveness(&c);
        assert_ne!(live[1] & (1 << 1), 0, "r1 live before its read");
        assert_eq!(live[3] & (1 << 1), 0, "r1 dead after last read");
        // r2 (the base address) is read at pc 2 and never written: live
        // from entry.
        assert_ne!(live[0] & (1 << 2), 0);
    }

    #[test]
    fn r0_is_never_live() {
        let c = cfg_of("sw r0, 0(r0)\nbeq r0, r0, -1\nhalt");
        for mask in liveness(&c) {
            assert_eq!(mask & 1, 0);
        }
    }

    #[test]
    fn loop_carried_register_stays_live_around_backedge() {
        let c = cfg_of("li r1, 8\nloop: addi r2, r2, 1\nbne r2, r1, loop\nhalt");
        let live = liveness(&c);
        // The loop bound r1 is live throughout the loop body.
        assert_ne!(live[1] & (1 << 1), 0);
        assert_ne!(live[2] & (1 << 1), 0);
    }

    #[test]
    fn reaching_defs_merge_at_join() {
        // Two defs of r1 (pc 1 and pc 3) both reach the final store.
        let src = "bne r2, r0, 2\nli r1, 1\nj store\nli r1, 2\nstore: sw r1, 0(r3)\nhalt";
        let c = cfg_of(src);
        let rd = ReachingDefs::compute(&c);
        let defs = rd.reaching_at(&c, 4, Reg::R1);
        assert!(defs.contains(&1), "defs = {defs:?}");
        assert!(defs.contains(&3), "defs = {defs:?}");
    }
}
