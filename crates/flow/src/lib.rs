//! `nvp-flow` — static CFG/dataflow intermittency-safety analysis for
//! NV16 program images.
//!
//! Intermittently-powered nonvolatile processors checkpoint volatile
//! state and replay code after power loss. Replay is only transparent
//! if every *backup region* (the code between two backup boundaries) is
//! idempotent with respect to nonvolatile data memory. This crate
//! answers that question statically, before a program ever runs on the
//! simulator:
//!
//! - [`cfg`](mod@cfg) builds a control-flow graph from the decoded image using
//!   the same leader analysis the simulator's block engine uses, plus
//!   dominators and natural-loop detection;
//! - [`absint`] runs an interval abstract interpretation over register
//!   values so memory accesses get constant or bounded addresses;
//! - [`dataflow`] provides register liveness and reaching definitions;
//! - [`analysis`] combines them into the four diagnostic rules
//!   (`war-hazard`, `dead-store`, `unreachable-block`,
//!   `no-progress-loop`) and the per-backup-point footprint table that
//!   an incremental backup controller consumes;
//! - [`waiver`] parses `nvp-flow: allow(...)` markers out of assembly
//!   comments so residual findings can be acknowledged per site;
//! - [`trace`] replays a program on the real [`nvp_sim::Machine`] while
//!   collecting dynamic read/write/backup events, the ground truth the
//!   differential soundness tests compare static sets against.
//!
//! The over-approximation contract: for every terminating execution,
//! the dynamic read set is contained in [`Analysis::read_set`], the
//! dynamic write set in [`Analysis::write_set`], the registers a resumed
//! execution actually consumes in the static live-in mask at the resume
//! pc, and the words dirtied since the previous backup in the static
//! dirty set at the backup point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absint;
pub mod analysis;
pub mod cfg;
pub mod dataflow;
pub mod trace;
pub mod waiver;

pub use absint::{AbsInt, AccessKind, Interval, MemAccess};
pub use analysis::{
    analyze, set_contains, set_words, Analysis, AnalysisConfig, BackupSite, Diagnostic, Rule,
    SiteKind, Span,
};
pub use cfg::{Cfg, CfgError, EdgeKind};
pub use trace::{record, BackupEvent, DynTrace};
pub use waiver::Waivers;
