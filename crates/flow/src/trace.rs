//! Dynamic trace observer: ground truth for the differential soundness
//! tests.
//!
//! [`record`] steps a real [`Machine`] instruction by instruction,
//! logging every data-memory read/write address and simulating backup
//! points: program `ckpt` instructions always open one, and a caller
//! supplied schedule injects *demand* backups at arbitrary pcs (the
//! simulator's energy-triggered backups can fire anywhere, so the
//! differential harness exercises pseudo-random schedules).
//!
//! Each backup event captures what the platform would actually need:
//! the registers the resumed execution reads before overwriting them
//! (dynamic live set) and the words written since the previous backup
//! (dynamic dirty set). The soundness tests assert these are contained
//! in the static live-in masks and dirty interval sets at the same pcs.

use std::collections::BTreeSet;

use nvp_isa::{Inst, Program};
use nvp_sim::{CycleModel, EnergyModel, Machine, SimError};

use crate::dataflow::{def_mask, uses_mask};

/// All non-`r0` register bits.
const ALL_REGS: u16 = 0xFFFE;

/// One observed backup point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackupEvent {
    /// Pc the backup is attributed to: the `ckpt` instruction itself,
    /// or the pc a demand backup fired in front of. Static dirty sets
    /// are indexed by this pc.
    pub backup_pc: u32,
    /// Pc execution resumes at after restore (`ckpt` resumes past the
    /// instruction). Static live-in masks are indexed by this pc.
    pub resume_pc: u32,
    /// Registers actually read before being overwritten after resume.
    pub live_seen: u16,
    /// Word addresses written since the previous backup event.
    pub dirty: BTreeSet<u16>,
}

/// The full dynamic trace of one run.
#[derive(Debug, Clone, Default)]
pub struct DynTrace {
    /// Every data word address the program read.
    pub reads: BTreeSet<u16>,
    /// Every data word address the program wrote.
    pub writes: BTreeSet<u16>,
    /// Backup events in program order.
    pub backups: Vec<BackupEvent>,
    /// Instructions executed.
    pub executed: u64,
    /// Whether the program reached `halt` within the budget.
    pub halted: bool,
}

/// A live-register observation window following one backup event.
struct Window {
    event: usize,
    seen: u16,
    written: u16,
}

/// Runs `program` to halt (or `max_insts`), recording memory traffic
/// and backup events. `backup_at(executed, pc)` is consulted before
/// every instruction; returning `true` injects a demand backup at that
/// point, exactly like an energy-triggered backup in the intermittent
/// runtime.
///
/// # Errors
///
/// Propagates any [`SimError`] from loading or stepping the machine
/// (undecodable image, data access beyond installed memory, pc out of
/// range).
pub fn record(
    program: &Program,
    dmem_words: usize,
    max_insts: u64,
    mut backup_at: impl FnMut(u64, u32) -> bool,
) -> Result<DynTrace, SimError> {
    let mut m =
        Machine::with_config(program, dmem_words, CycleModel::default(), EnergyModel::default())?;
    let insts: Vec<Inst> = {
        let mut v = Vec::with_capacity(program.code().len());
        for (pc, &word) in program.code().iter().enumerate() {
            v.push(
                Inst::decode(word).map_err(|source| SimError::Decode { pc: pc as u32, source })?,
            );
        }
        v
    };

    let mut trace = DynTrace::default();
    let mut windows: Vec<Window> = Vec::new();
    let mut cur_dirty: BTreeSet<u16> = BTreeSet::new();

    while !m.halted() && trace.executed < max_insts {
        let pc = m.pc();
        let inst = *insts.get(pc as usize).ok_or(SimError::PcOutOfRange { pc })?;

        // Demand backup fires *before* the instruction executes: the
        // restored execution resumes at this very pc.
        if backup_at(trace.executed, pc) {
            trace.backups.push(BackupEvent {
                backup_pc: pc,
                resume_pc: pc,
                live_seen: 0,
                dirty: std::mem::take(&mut cur_dirty),
            });
            windows.push(Window { event: trace.backups.len() - 1, seen: 0, written: 0 });
        }

        // Memory addresses, computed from the *current* register file
        // exactly as the machine will.
        match inst {
            Inst::Lw { rs1, offset, .. } => {
                let addr = m.reg(rs1).wrapping_add(offset as u16);
                trace.reads.insert(addr);
            }
            Inst::Sw { rs1, offset, .. } => {
                let addr = m.reg(rs1).wrapping_add(offset as u16);
                trace.writes.insert(addr);
                cur_dirty.insert(addr);
            }
            _ => {}
        }

        // Advance every open live-observation window.
        let uses = uses_mask(inst);
        let defs = def_mask(inst);
        for w in &mut windows {
            w.seen |= uses & !w.written;
            w.written |= defs;
            trace.backups[w.event].live_seen = w.seen;
        }
        windows.retain(|w| (w.seen | w.written) != ALL_REGS);

        let step = m.step()?;
        trace.executed += 1;

        if step.checkpoint {
            // `ckpt` commits a backup after executing; resume is pc+1,
            // which is where the machine now stands.
            trace.backups.push(BackupEvent {
                backup_pc: pc,
                resume_pc: m.pc(),
                live_seen: 0,
                dirty: std::mem::take(&mut cur_dirty),
            });
            windows.push(Window { event: trace.backups.len() - 1, seen: 0, written: 0 });
        }
        if step.halted {
            trace.halted = true;
        }
    }
    trace.halted = trace.halted || m.halted();
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvp_isa::asm::assemble;

    #[test]
    fn trace_records_reads_writes_and_halt() {
        let src = "li r1, 32\nlw r2, 0(r1)\nsw r2, 4(r1)\nhalt";
        let p = assemble(src).expect("assembles");
        let t = record(&p, 128, 100, |_, _| false).expect("runs");
        assert!(t.halted);
        assert!(t.reads.contains(&32));
        assert!(t.writes.contains(&36));
        assert_eq!(t.backups.len(), 0);
    }

    #[test]
    fn ckpt_event_resumes_past_the_instruction_and_resets_dirty() {
        let src = "li r1, 32\nsw r1, 0(r1)\nckpt\nsw r1, 1(r1)\nhalt";
        let p = assemble(src).expect("assembles");
        let t = record(&p, 128, 100, |_, _| false).expect("runs");
        assert_eq!(t.backups.len(), 1);
        let ev = &t.backups[0];
        assert_eq!(ev.backup_pc, 2);
        assert_eq!(ev.resume_pc, 3);
        assert!(ev.dirty.contains(&32), "pre-ckpt store is in the dirty set");
        assert!(!ev.dirty.contains(&33), "post-ckpt store is not");
    }

    #[test]
    fn demand_backup_sees_live_registers_read_after_resume() {
        // Backup right before the store: the resumed execution reads r1
        // (base) and r2 (value), so both must appear in live_seen.
        let src = "li r1, 32\nli r2, 7\nsw r2, 0(r1)\nhalt";
        let p = assemble(src).expect("assembles");
        let t = record(&p, 128, 100, |_, pc| pc == 2).expect("runs");
        assert_eq!(t.backups.len(), 1);
        let ev = &t.backups[0];
        assert_eq!(ev.resume_pc, 2);
        assert_ne!(ev.live_seen & (1 << 1), 0, "r1 observed");
        assert_ne!(ev.live_seen & (1 << 2), 0, "r2 observed");
    }
}
