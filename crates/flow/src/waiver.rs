//! Per-site diagnostic waivers.
//!
//! A waiver acknowledges a diagnostic at a specific pc without fixing
//! it — the analog of `nvp-lint`'s `allow(...)` comments, but for
//! program-level findings. In `.nv16` assembly source a waiver is a
//! comment marker:
//!
//! ```text
//! sw r2, 0(r1)    ; nvp-flow: allow(war-hazard) -- replayed store is idempotent here
//! ```
//!
//! The marker binds to the instruction on its own line, or — when the
//! line holds only the comment — to the next instruction below it.

use std::collections::{BTreeMap, BTreeSet};

use crate::analysis::Rule;

/// Marker scanned for inside assembly comments.
pub const MARKER: &str = "nvp-flow: allow(";

/// A set of per-pc (and optional global) rule waivers.
#[derive(Debug, Clone, Default)]
pub struct Waivers {
    sites: BTreeMap<u32, BTreeSet<Rule>>,
    global: BTreeSet<Rule>,
}

impl Waivers {
    /// No waivers: every diagnostic is reported.
    #[must_use]
    pub fn none() -> Waivers {
        Waivers::default()
    }

    /// Waives `rule` at instruction address `pc`.
    pub fn allow_at(&mut self, pc: u32, rule: Rule) {
        self.sites.entry(pc).or_default().insert(rule);
    }

    /// Waives `rule` everywhere in the program.
    pub fn allow_all(&mut self, rule: Rule) {
        self.global.insert(rule);
    }

    /// `true` if `rule` is waived at `pc`.
    #[must_use]
    pub fn allows(&self, pc: u32, rule: Rule) -> bool {
        self.global.contains(&rule)
            || self.sites.get(&pc).is_some_and(|rules| rules.contains(&rule))
    }

    /// Total number of waived sites (for reporting).
    #[must_use]
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Extracts waivers from `.nv16` assembly source by replaying the
    /// assembler's line-to-pc mapping: instruction-bearing lines count
    /// up the pc; `.data` /`.text` directives switch sections; comment
    /// markers bind to the instruction on their line or the next one.
    /// Unknown rule names inside a marker are ignored (forward
    /// compatibility with future rules).
    #[must_use]
    pub fn from_asm_source(src: &str) -> Waivers {
        let mut w = Waivers::none();
        let mut pc: u32 = 0;
        let mut in_text = true;
        let mut pending: Vec<Rule> = Vec::new();
        for raw in src.lines() {
            // Split the comment off first; the marker lives inside it.
            let (stmt, comment) = match raw.split_once(';') {
                Some((s, c)) => (s, Some(c)),
                None => (raw, None),
            };
            let mut line_rules: Vec<Rule> = Vec::new();
            if let Some(c) = comment {
                if let Some(idx) = c.find(MARKER) {
                    let rest = &c[idx + MARKER.len()..];
                    if let Some(close) = rest.find(')') {
                        for name in rest[..close].split(',') {
                            if let Some(rule) = Rule::parse(name.trim()) {
                                line_rules.push(rule);
                            }
                        }
                    }
                }
            }
            // Replicate the assembler's notion of "this line emits an
            // instruction": strip labels, skip directives and blanks.
            let mut body = stmt.trim();
            while let Some((head, rest)) = body.split_once(':') {
                if !head.is_empty()
                    && head.chars().all(|ch| ch.is_ascii_alphanumeric() || ch == '_' || ch == '.')
                {
                    body = rest.trim();
                } else {
                    break;
                }
            }
            if body.starts_with('.') {
                if body.starts_with(".data") {
                    in_text = false;
                } else if body.starts_with(".text") {
                    in_text = true;
                }
                continue;
            }
            let emits = in_text && !body.is_empty();
            if emits {
                for rule in line_rules.iter().chain(pending.iter()) {
                    w.allow_at(pc, *rule);
                }
                pending.clear();
                pc += 1;
            } else {
                // Comment-only line: the marker waits for the next
                // instruction.
                pending.extend(line_rules);
            }
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marker_on_instruction_line_binds_to_its_pc() {
        let src = "li r1, 128\nsw r2, 0(r1) ; nvp-flow: allow(war-hazard)\nhalt";
        let w = Waivers::from_asm_source(src);
        assert!(w.allows(1, Rule::WarHazard));
        assert!(!w.allows(0, Rule::WarHazard));
        assert!(!w.allows(1, Rule::DeadStore));
    }

    #[test]
    fn marker_on_comment_line_binds_to_next_instruction() {
        let src = "; nvp-flow: allow(dead-store) -- double store models a port write\n\
                   li r1, 5\nhalt";
        let w = Waivers::from_asm_source(src);
        assert!(w.allows(0, Rule::DeadStore));
    }

    #[test]
    fn labels_and_directives_do_not_advance_pc() {
        let src = ".equ OUT, 64\nstart:\n  nop\nloop: addi r1, r1, 1 ; nvp-flow: allow(no-progress-loop)\nhalt";
        let w = Waivers::from_asm_source(src);
        assert!(w.allows(1, Rule::NoProgressLoop));
    }

    #[test]
    fn data_section_lines_do_not_count() {
        let src = ".data 8\n.word 1, 2, 3\n.text\nnop ; nvp-flow: allow(unreachable-block)\nhalt";
        let w = Waivers::from_asm_source(src);
        assert!(w.allows(0, Rule::UnreachableBlock));
    }

    #[test]
    fn multiple_rules_in_one_marker() {
        let src = "sw r1, 0(r2) ; nvp-flow: allow(war-hazard, dead-store)\nhalt";
        let w = Waivers::from_asm_source(src);
        assert!(w.allows(0, Rule::WarHazard));
        assert!(w.allows(0, Rule::DeadStore));
    }
}
