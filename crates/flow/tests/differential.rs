//! Differential soundness harness: static sets must over-approximate
//! dynamic ground truth on every registry kernel.
//!
//! Each kernel runs to completion on the real simulator under a trace
//! observer ([`nvp_flow::record`]) with a pseudo-random demand-backup
//! schedule, at two image seeds. For every run the harness asserts the
//! over-approximation contract:
//!
//! - every dynamically read word address lies in the static read set;
//! - every dynamically written address lies in the static write set;
//! - at every backup event, the registers the resumed execution
//!   actually consumed are contained in the static live-in mask at the
//!   resume pc;
//! - the words dirtied since the previous backup are contained in the
//!   static dirty set at the backup pc;
//! - the static per-site footprint (and the worst-case table row) is at
//!   least the dynamic footprint.
//!
//! And, independently, that every shipped kernel analyzes clean.

use nvp_flow::{analyze, record, set_contains, set_words, AnalysisConfig, Waivers};
use nvp_workloads::{GrayImage, KernelKind};

/// Deterministic LCG for the demand-backup schedule.
fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 33
}

/// Roughly one demand backup every `PERIOD` instructions.
const PERIOD: u64 = 701;
const MAX_INSTS: u64 = 5_000_000;

fn check_kernel(kind: KernelKind, seed: u64) {
    let image = GrayImage::synthetic(seed, 16, 16);
    let instance = kind.build(&image).expect("kernel builds");
    let program = instance.program();
    let dmem = instance.min_dmem_words();

    let config = AnalysisConfig { dmem_words: dmem, ..AnalysisConfig::default() };
    let a = analyze(program, &config, &Waivers::none()).expect("analyzes");
    assert!(
        a.is_clean(),
        "{} (seed {seed}) must analyze clean, got: {:?}",
        kind.name(),
        a.diagnostics
    );
    assert!(!a.sites.is_empty(), "footprint table always has the worst-case row");

    let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let trace = record(program, dmem, MAX_INSTS, |_, _| lcg(&mut rng).is_multiple_of(PERIOD))
        .expect("kernel runs on the simulator");
    assert!(trace.halted, "{} (seed {seed}) must halt within budget", kind.name());
    assert!(!trace.backups.is_empty(), "schedule fired at least once");

    for &addr in &trace.reads {
        assert!(
            a.may_read(addr),
            "{} (seed {seed}): dynamic read of dmem[{addr:#06x}] outside static read set {:?}",
            kind.name(),
            a.read_set
        );
    }
    for &addr in &trace.writes {
        assert!(
            a.may_write(addr),
            "{} (seed {seed}): dynamic write of dmem[{addr:#06x}] outside static write set {:?}",
            kind.name(),
            a.write_set
        );
    }

    let worst = a.worst_case();
    for ev in &trace.backups {
        let live_static = a.live_in[ev.resume_pc as usize];
        assert_eq!(
            ev.live_seen & !live_static,
            0,
            "{} (seed {seed}): backup at pc {} resumed at pc {} and read registers \
             {:#06x} not in the static live-in mask {:#06x}",
            kind.name(),
            ev.backup_pc,
            ev.resume_pc,
            ev.live_seen,
            live_static
        );
        let dirty_static = &a.dirty_before[ev.backup_pc as usize];
        for &addr in &ev.dirty {
            assert!(
                set_contains(dirty_static, addr),
                "{} (seed {seed}): dmem[{addr:#06x}] dirtied before backup at pc {} \
                 is outside the static dirty set {dirty_static:?}",
                kind.name(),
                ev.backup_pc
            );
        }

        // Footprint direction: static row >= dynamic requirement.
        let dyn_bits = u64::from(ev.live_seen.count_ones()) * 16 + 32 + ev.dirty.len() as u64 * 16;
        let static_bits = u64::from(live_static.count_ones()) * 16
            + 32
            + set_words(dirty_static).min(dmem as u64) * 16;
        assert!(
            static_bits >= dyn_bits,
            "{} (seed {seed}): static footprint {static_bits} bits at pc {} is below the \
             dynamic requirement {dyn_bits} bits",
            kind.name(),
            ev.backup_pc
        );
        assert!(
            worst.footprint_bits >= dyn_bits,
            "{} (seed {seed}): worst-case table row ({} bits) is below a dynamic backup \
             ({dyn_bits} bits at pc {})",
            kind.name(),
            worst.footprint_bits,
            ev.backup_pc
        );
    }
}

macro_rules! differential {
    ($($name:ident => $kind:expr),+ $(,)?) => {
        $(
            #[test]
            fn $name() {
                check_kernel($kind, 1);
                check_kernel($kind, 2);
            }
        )+
    };
}

differential! {
    sobel_over_approximates => KernelKind::Sobel,
    median_over_approximates => KernelKind::Median,
    smooth_over_approximates => KernelKind::Smooth,
    edges_over_approximates => KernelKind::Edges,
    corners_over_approximates => KernelKind::Corners,
    integral_over_approximates => KernelKind::Integral,
    fft16_over_approximates => KernelKind::Fft16,
    dct8_over_approximates => KernelKind::Dct8,
    crc16_over_approximates => KernelKind::Crc16,
    strsearch_over_approximates => KernelKind::StrSearch,
    rle_over_approximates => KernelKind::Rle,
    matmul8_over_approximates => KernelKind::MatMul8,
    histogram_over_approximates => KernelKind::Histogram,
    fir8_over_approximates => KernelKind::Fir8,
    downsample_over_approximates => KernelKind::Downsample,
}

/// The registry is exactly the fifteen kernels covered above; a new
/// kernel must be added to this harness to ship.
#[test]
fn registry_is_fully_covered() {
    assert_eq!(KernelKind::ALL.len(), 15);
}
