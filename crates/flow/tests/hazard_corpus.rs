//! Seeded hazard corpus: one hand-written kernel per diagnostic class,
//! asserting the exact rule id and span the analyzer must produce —
//! and that waivers silence exactly the acknowledged finding.

use nvp_flow::{analyze, AnalysisConfig, Rule, Waivers};
use nvp_isa::asm::assemble;

/// A counter in nonvolatile memory is read, incremented, and stored
/// back inside one backup region: the canonical WAR idempotency
/// violation. Replay after a torn backup re-reads its own increment.
const WAR_SRC: &str = "\
.equ CTR, 64
    ckpt
    li r1, CTR
    lw r2, 0(r1)
    addi r2, r2, 1
    sw r2, 0(r1)
    halt
";

/// The first store is shadowed by the second on the only path.
const DEAD_STORE_SRC: &str = "\
.equ OUT, 32
    li r1, OUT
    li r2, 1
    sw r2, 0(r1)
    li r2, 2
    sw r2, 0(r1)
    halt
";

/// The instruction after the jump can never execute.
const UNREACHABLE_SRC: &str = "\
    j done
    addi r1, r1, 1
done:
    halt
";

/// A checkpoint-free loop of expensive instructions; under a tiny
/// storage capacitor no iteration can ever finish.
const NO_PROGRESS_SRC: &str = "\
loop:
    divu r4, r2, r3
    divu r4, r2, r3
    bne r1, r0, loop
    halt
";

fn run(src: &str, config: &AnalysisConfig) -> nvp_flow::Analysis {
    let program = assemble(src).expect("corpus program assembles");
    analyze(&program, config, &Waivers::from_asm_source(src)).expect("analyzes")
}

#[test]
fn war_kernel_is_flagged_with_exact_span() {
    let a = run(WAR_SRC, &AnalysisConfig::default());
    assert_eq!(a.diagnostics.len(), 1, "diagnostics: {:?}", a.diagnostics);
    let d = &a.diagnostics[0];
    assert_eq!(d.rule, Rule::WarHazard);
    assert_eq!(d.rule.id(), "war-hazard");
    // Read at pc 2 (lw), rewritten at pc 4 (sw).
    assert_eq!((d.span.lo, d.span.hi), (2, 4), "message: {}", d.message);
    assert!(d.message.contains("0x0040"), "names the address: {}", d.message);
}

#[test]
fn dead_store_is_flagged_at_the_shadowed_store() {
    let a = run(DEAD_STORE_SRC, &AnalysisConfig::default());
    assert_eq!(a.diagnostics.len(), 1, "diagnostics: {:?}", a.diagnostics);
    let d = &a.diagnostics[0];
    assert_eq!(d.rule, Rule::DeadStore);
    assert_eq!(d.rule.id(), "dead-store");
    // The first store (pc 2); the final store is live (halt commits).
    assert_eq!((d.span.lo, d.span.hi), (2, 2), "message: {}", d.message);
}

#[test]
fn unreachable_block_is_flagged() {
    let a = run(UNREACHABLE_SRC, &AnalysisConfig::default());
    assert_eq!(a.diagnostics.len(), 1, "diagnostics: {:?}", a.diagnostics);
    let d = &a.diagnostics[0];
    assert_eq!(d.rule, Rule::UnreachableBlock);
    assert_eq!(d.rule.id(), "unreachable-block");
    assert_eq!((d.span.lo, d.span.hi), (1, 1), "message: {}", d.message);
}

#[test]
fn no_progress_loop_is_flagged_under_a_tiny_capacitor() {
    let config = AnalysisConfig { max_stored_j: 1e-15, ..AnalysisConfig::default() };
    let a = run(NO_PROGRESS_SRC, &config);
    assert_eq!(a.diagnostics.len(), 1, "diagnostics: {:?}", a.diagnostics);
    let d = &a.diagnostics[0];
    assert_eq!(d.rule, Rule::NoProgressLoop);
    assert_eq!(d.rule.id(), "no-progress-loop");
    // The whole single-block loop body.
    assert_eq!((d.span.lo, d.span.hi), (0, 2), "message: {}", d.message);
}

#[test]
fn no_progress_loop_is_quiet_under_the_default_capacitor() {
    // Two divisions cost far less than the default ½CV² store.
    let a = run(NO_PROGRESS_SRC, &AnalysisConfig::default());
    assert!(a.is_clean(), "diagnostics: {:?}", a.diagnostics);
}

#[test]
fn waiver_marker_silences_exactly_the_acknowledged_finding() {
    // Same WAR kernel, with the store waived in a comment.
    let src = "\
.equ CTR, 64
    ckpt
    li r1, CTR
    lw r2, 0(r1)
    addi r2, r2, 1
    sw r2, 0(r1) ; nvp-flow: allow(war-hazard) -- replay tolerated in this test
    halt
";
    let program = assemble(src).expect("assembles");
    let waivers = Waivers::from_asm_source(src);
    let a = analyze(&program, &AnalysisConfig::default(), &waivers).expect("analyzes");
    assert!(a.is_clean(), "diagnostics: {:?}", a.diagnostics);
    assert_eq!(a.waived.len(), 1);
    assert_eq!(a.waived[0].rule, Rule::WarHazard);
}

#[test]
fn rule_ids_round_trip_through_parse() {
    for rule in Rule::ALL {
        assert_eq!(Rule::parse(rule.id()), Some(rule));
    }
    assert_eq!(Rule::parse("not-a-rule"), None);
}
