//! End-to-end proof that the `war-hazard` rule flags a *real* defect:
//! the seeded WAR kernel is caught statically AND demonstrably
//! diverges under fault-injected backup tearing, while its idempotent
//! twin — clean under the analyzer — survives the same fault plan
//! bit-exactly.
//!
//! The platform mechanism (PR 5's fault subsystem): a torn backup
//! exhausts its retry budget, the platform enters safe mode and powers
//! down, and the next restore falls back to an older checkpoint slot —
//! replaying a span of code against nonvolatile memory the first
//! attempt already mutated. A read-modify-write of one word inside a
//! backup region then re-reads its own output and double-counts.

use nvp_core::{BackupModel, BackupPolicy, FaultPlan, IntermittentSystem, SystemConfig};
use nvp_device::NvmTechnology;
use nvp_energy::PowerTrace;
use nvp_flow::{analyze, AnalysisConfig, Rule, Waivers};
use nvp_isa::asm::assemble;
use nvp_sim::ArchState;

/// Eight-iteration loop that increments a nonvolatile counter via
/// load-modify-store inside the `ckpt`-delimited region: WAR hazard.
const WAR_SRC: &str = "\
.equ CTR, 64
    li r1, CTR
    li r4, 8
loop:
    ckpt
    lw r2, 0(r1)
    addi r2, r2, 1
    sw r2, 0(r1)
    addi r3, r3, 1
    bne r3, r4, loop
    halt
";

/// The idempotent twin: the stored value is derived from the loop
/// index register (restored by every checkpoint), never read back from
/// memory — replaying any span rewrites identical values.
const TWIN_SRC: &str = "\
.equ CTR, 64
    li r1, CTR
    li r4, 8
loop:
    ckpt
    addi r2, r3, 1
    sw r2, 0(r1)
    addi r3, r3, 1
    bne r3, r4, loop
    halt
";

const CTR_ADDR: u16 = 64;
const ITERS: u16 = 8;

/// Runs a program on the faulted intermittent platform to task
/// completion; returns (final counter value, torn backups, safe-mode
/// entries).
fn run_faulted(src: &str, plan: FaultPlan) -> (u16, u64, u64) {
    let program = assemble(src).expect("kernel assembles");
    let sys = SystemConfig { restart_on_halt: false, ..SystemConfig::default() };
    let backup = BackupModel::distributed(NvmTechnology::Feram, u64::from(ArchState::BITS));
    let mut system =
        IntermittentSystem::with_faults(&program, sys, backup, BackupPolicy::demand(), plan)
            .expect("platform builds");
    let trace = PowerTrace::constant(1e-4, 2e-3, 1.0);
    let report = system.run(&trace).expect("run completes");
    assert!(report.tasks_completed >= 1, "kernel must reach halt, report: {report:?}");
    let ctr = system.machine().read_word(CTR_ADDR).expect("counter in installed dmem");
    (ctr, report.backups_torn, report.safe_mode_entries)
}

#[test]
fn war_kernel_is_flagged_statically_and_twin_is_clean() {
    let war = assemble(WAR_SRC).expect("assembles");
    let a = analyze(&war, &AnalysisConfig::default(), &Waivers::none()).expect("analyzes");
    assert_eq!(a.diagnostics.len(), 1, "diagnostics: {:?}", a.diagnostics);
    assert_eq!(a.diagnostics[0].rule, Rule::WarHazard);
    // lw at pc 3, sw at pc 5.
    assert_eq!((a.diagnostics[0].span.lo, a.diagnostics[0].span.hi), (3, 5));

    let twin = assemble(TWIN_SRC).expect("assembles");
    let b = analyze(&twin, &AnalysisConfig::default(), &Waivers::none()).expect("analyzes");
    assert!(b.is_clean(), "twin diagnostics: {:?}", b.diagnostics);
}

#[test]
fn fault_free_runs_are_exact() {
    let (ctr, torn, safe) = run_faulted(WAR_SRC, FaultPlan::none());
    assert_eq!((ctr, torn, safe), (ITERS, 0, 0));
    let (ctr, torn, safe) = run_faulted(TWIN_SRC, FaultPlan::none());
    assert_eq!((ctr, torn, safe), (ITERS, 0, 0));
}

#[test]
fn war_kernel_diverges_under_backup_tearing_and_twin_does_not() {
    let mut diverged = false;
    for seed in 1..=20u64 {
        let plan = FaultPlan::with_rates(seed, 0.5, 0.0);
        let (war_ctr, _, war_safe) = run_faulted(WAR_SRC, plan.clone());
        let (twin_ctr, _, _) = run_faulted(TWIN_SRC, plan);

        // The twin commits exactly one increment per loop index no
        // matter how often spans replay.
        assert_eq!(twin_ctr, ITERS, "seed {seed}: idempotent twin must stay exact");
        // The hazardous counter can only ever over-count.
        assert!(war_ctr >= ITERS, "seed {seed}: counter is monotone");
        // Without a fallback replay there is no divergence channel.
        if war_ctr > ITERS {
            assert!(war_safe > 0, "seed {seed}: divergence requires a fallback replay");
            diverged = true;
        }
    }
    assert!(
        diverged,
        "no seed in 1..=20 produced a divergent replay; fault plan too weak for the test"
    );
}
