//! Two-pass assembler for the NV16 text syntax.
//!
//! # Syntax overview
//!
//! ```text
//! ; comments run from `;` to end of line
//! .equ  WIDTH, 16          ; named constant (no forward references)
//! .entry main              ; entry point (defaults to address 0)
//!
//! main:                    ; labels bind to the current address
//!     li   r1, buf         ; symbols usable wherever immediates are
//!     lw   r2, 0(r1)       ; load word, signed offset
//!     addi r2, r2, WIDTH-1
//!     sw   r2, 1(r1)
//!     beq  r2, r0, done    ; branch targets are labels (or raw offsets)
//!     j    main            ; pseudo: jal r0, main
//! done:
//!     halt
//!
//! .data 0x100              ; switch to data mode at word address 0x100
//! buf:  .word 1, 2, 3      ; initialized words
//! tmp:  .space 8           ; 8 zero words
//! ```
//!
//! ## Pseudo-instructions
//!
//! | Pseudo | Expansion |
//! |--------|-----------|
//! | `j label` | `jal r0, label` |
//! | `call label` | `jal r14, label` |
//! | `ret` | `jalr r0, r14, 0` |
//! | `mov rd, rs` | `add rd, rs, r0` |
//! | `not rd, rs` | `xori rd, rs, 0xFFFF` |
//! | `neg rd, rs` | `sub rd, r0, rs` |
//! | `beqz rs, l` / `bnez rs, l` | `beq/bne rs, r0, l` |
//! | `bgt rs1, rs2, l` / `ble rs1, rs2, l` | `blt/bge rs2, rs1, l` |
//! | `bgtu` / `bleu` | unsigned variants of the above |
//!
//! Branch/jump operands that are plain integer literals are taken verbatim
//! (a raw signed offset for branches, an absolute address for jumps); any
//! operand containing a symbol is resolved as an absolute address, and for
//! branches converted to a relative offset automatically.

use std::collections::BTreeMap;
use std::fmt;

use crate::{DataSegment, Inst, Program, Reg};

/// Error produced by [`assemble`], carrying the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    line: usize,
    msg: String,
}

impl AsmError {
    fn new(line: usize, msg: impl Into<String>) -> Self {
        AsmError { line, msg: msg.into() }
    }

    /// 1-based line number of the offending source line.
    #[must_use]
    pub fn line(&self) -> usize {
        self.line
    }

    /// Human-readable description of the problem.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

type Result<T> = std::result::Result<T, AsmError>;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

/// A cleaned source line with its original number.
struct Line<'a> {
    num: usize,
    text: &'a str,
}

fn clean_lines(src: &str) -> Vec<Line<'_>> {
    src.lines()
        .enumerate()
        .filter_map(|(i, raw)| {
            let no_comment = match raw.find(';') {
                Some(pos) => &raw[..pos],
                None => raw,
            };
            let text = no_comment.trim();
            (!text.is_empty()).then_some(Line { num: i + 1, text })
        })
        .collect()
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

fn parse_number(s: &str) -> Option<i64> {
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else if let Some(bin) = body.strip_prefix("0b").or_else(|| body.strip_prefix("0B")) {
        i64::from_str_radix(bin, 2).ok()?
    } else {
        body.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

/// Returns `true` if the expression is a pure integer literal (no symbols).
fn is_literal(expr: &str) -> bool {
    parse_number(expr.trim()).is_some()
}

/// Evaluates `term (('+'|'-') term)*` where a term is a number or symbol.
fn eval_expr(expr: &str, symbols: &BTreeMap<String, u32>, line: usize) -> Result<i64> {
    let expr = expr.trim();
    if expr.is_empty() {
        return Err(AsmError::new(line, "empty expression"));
    }
    let mut total: i64 = 0;
    let mut sign: i64 = 1;
    let mut term = String::new();
    let flush = |term: &mut String, sign: i64, total: &mut i64| -> Result<()> {
        let t = term.trim();
        if t.is_empty() {
            return Err(AsmError::new(line, format!("malformed expression `{expr}`")));
        }
        let value = if let Some(n) = parse_number(t) {
            n
        } else if is_ident(t) {
            i64::from(*symbols.get(t).ok_or_else(|| {
                AsmError::new(line, format!("undefined symbol `{t}` in `{expr}`"))
            })?)
        } else {
            return Err(AsmError::new(line, format!("malformed term `{t}` in `{expr}`")));
        };
        *total += sign * value;
        term.clear();
        Ok(())
    };
    for (i, c) in expr.chars().enumerate() {
        match c {
            '+' | '-' if i > 0 && !term.trim().is_empty() => {
                flush(&mut term, sign, &mut total)?;
                sign = if c == '+' { 1 } else { -1 };
            }
            _ => term.push(c),
        }
    }
    flush(&mut term, sign, &mut total)?;
    Ok(total)
}

fn to_u16(value: i64, what: &str, line: usize) -> Result<u16> {
    if (-(1 << 15)..(1 << 16)).contains(&value) {
        Ok((value as i32 & 0xFFFF) as u16)
    } else {
        Err(AsmError::new(line, format!("{what} {value} does not fit in 16 bits")))
    }
}

fn to_i16(value: i64, what: &str, line: usize) -> Result<i16> {
    i16::try_from(value)
        .or_else(|_| {
            // Accept 0x8000..=0xFFFF written as unsigned.
            if (0x8000..0x1_0000).contains(&value) {
                Ok(value as u16 as i16)
            } else {
                Err(())
            }
        })
        .map_err(|()| AsmError::new(line, format!("{what} {value} does not fit in 16 bits")))
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg> {
    tok.trim().parse::<Reg>().map_err(|e| AsmError::new(line, e.to_string()))
}

/// Splits `offset(reg)` into its parts; the offset may be empty (= 0).
fn parse_mem_operand(s: &str, line: usize) -> Result<(String, Reg)> {
    let s = s.trim();
    let open = s
        .rfind('(')
        .ok_or_else(|| AsmError::new(line, format!("expected `offset(reg)`, found `{s}`")))?;
    let close = s
        .rfind(')')
        .filter(|&c| c > open)
        .ok_or_else(|| AsmError::new(line, format!("unbalanced parentheses in `{s}`")))?;
    let reg = parse_reg(&s[open + 1..close], line)?;
    let off = s[..open].trim();
    let off = if off.is_empty() { "0".to_owned() } else { off.to_owned() };
    Ok((off, reg))
}

struct Stmt<'a> {
    line: usize,
    mnemonic: String,
    operands: Vec<&'a str>,
}

fn parse_stmt<'a>(line_num: usize, text: &'a str) -> Stmt<'a> {
    let (mnemonic, rest) = match text.find(|c: char| c.is_whitespace()) {
        Some(pos) => (&text[..pos], text[pos..].trim()),
        None => (text, ""),
    };
    let operands: Vec<&str> =
        if rest.is_empty() { Vec::new() } else { rest.split(',').map(str::trim).collect() };
    Stmt { line: line_num, mnemonic: mnemonic.to_ascii_lowercase(), operands }
}

/// How many code words a statement occupies (all instructions are 1 word).
fn stmt_is_inst(mnemonic: &str) -> bool {
    !mnemonic.starts_with('.')
}

/// Assembles NV16 source text into an executable [`Program`].
///
/// # Errors
///
/// Returns [`AsmError`] (with a 1-based line number) on syntax errors,
/// undefined or duplicate symbols, out-of-range immediates or branch
/// displacements, and malformed directives.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = nvp_isa::asm::assemble("li r1, 7\nout 0, r1\nhalt")?;
/// assert_eq!(p.code().len(), 3);
/// # Ok(())
/// # }
/// ```
pub fn assemble(src: &str) -> Result<Program> {
    let lines = clean_lines(src);
    let mut symbols: BTreeMap<String, u32> = BTreeMap::new();

    // ---- Pass 1: addresses for every label; evaluate `.equ`. ----
    {
        let mut section = Section::Text;
        let mut code_addr: u32 = 0;
        let mut data_addr: u32 = 0;
        for line in &lines {
            let mut text = line.text;
            while let Some(colon) = find_label(text) {
                let name = text[..colon].trim();
                if !is_ident(name) {
                    return Err(AsmError::new(line.num, format!("invalid label `{name}`")));
                }
                let value = match section {
                    Section::Text => code_addr,
                    Section::Data => data_addr,
                };
                if symbols.insert(name.to_owned(), value).is_some() {
                    return Err(AsmError::new(line.num, format!("duplicate symbol `{name}`")));
                }
                text = text[colon + 1..].trim();
            }
            if text.is_empty() {
                continue;
            }
            let stmt = parse_stmt(line.num, text);
            match stmt.mnemonic.as_str() {
                ".equ" => {
                    if stmt.operands.len() != 2 {
                        return Err(AsmError::new(line.num, ".equ needs `name, value`"));
                    }
                    let name = stmt.operands[0];
                    if !is_ident(name) {
                        return Err(AsmError::new(line.num, format!("invalid name `{name}`")));
                    }
                    let value = eval_expr(stmt.operands[1], &symbols, line.num)?;
                    let value = u32::try_from(value).map_err(|_| {
                        AsmError::new(line.num, format!(".equ value {value} is negative"))
                    })?;
                    if symbols.insert(name.to_owned(), value).is_some() {
                        return Err(AsmError::new(line.num, format!("duplicate symbol `{name}`")));
                    }
                }
                ".entry" => {}
                ".text" => section = Section::Text,
                ".data" => {
                    section = Section::Data;
                    if let Some(addr) = stmt.operands.first() {
                        data_addr = u32::from(to_u16(
                            eval_expr(addr, &symbols, line.num)?,
                            ".data address",
                            line.num,
                        )?);
                    }
                }
                ".org" => {
                    let target = eval_expr(
                        stmt.operands
                            .first()
                            .ok_or_else(|| AsmError::new(line.num, ".org needs an address"))?,
                        &symbols,
                        line.num,
                    )?;
                    let target = u32::try_from(target)
                        .map_err(|_| AsmError::new(line.num, ".org address is negative"))?;
                    if target < code_addr {
                        return Err(AsmError::new(line.num, ".org cannot move backwards"));
                    }
                    code_addr = target;
                }
                ".word" => {
                    if section != Section::Data {
                        return Err(AsmError::new(line.num, ".word outside .data section"));
                    }
                    data_addr += stmt.operands.len() as u32;
                }
                ".space" => {
                    if section != Section::Data {
                        return Err(AsmError::new(line.num, ".space outside .data section"));
                    }
                    let n = eval_expr(
                        stmt.operands
                            .first()
                            .ok_or_else(|| AsmError::new(line.num, ".space needs a size"))?,
                        &symbols,
                        line.num,
                    )?;
                    let n = u32::try_from(n)
                        .map_err(|_| AsmError::new(line.num, ".space size is negative"))?;
                    data_addr += n;
                }
                m if m.starts_with('.') => {
                    return Err(AsmError::new(line.num, format!("unknown directive `{m}`")));
                }
                _ => {
                    if section != Section::Text {
                        return Err(AsmError::new(line.num, "instruction inside .data section"));
                    }
                    code_addr += 1;
                }
            }
        }
    }

    // ---- Pass 2: encode. ----
    let mut program = Program::new();
    let mut code: Vec<u32> = Vec::new();
    let mut segments: Vec<DataSegment> = Vec::new();
    let mut data_addr: u32 = 0;
    let mut entry: Option<u32> = None;

    for line in &lines {
        let mut text = line.text;
        while let Some(colon) = find_label(text) {
            text = text[colon + 1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let stmt = parse_stmt(line.num, text);
        match stmt.mnemonic.as_str() {
            ".equ" | ".text" => {}
            ".entry" => {
                let target = eval_expr(
                    stmt.operands
                        .first()
                        .ok_or_else(|| AsmError::new(line.num, ".entry needs a target"))?,
                    &symbols,
                    line.num,
                )?;
                entry = Some(
                    u32::try_from(target)
                        .map_err(|_| AsmError::new(line.num, ".entry target is negative"))?,
                );
            }
            ".data" => {
                if let Some(addr) = stmt.operands.first() {
                    data_addr = u32::from(to_u16(
                        eval_expr(addr, &symbols, line.num)?,
                        ".data address",
                        line.num,
                    )?);
                }
                segments.push(DataSegment::new(data_addr as u16, Vec::new()));
            }
            ".org" => {
                let target = eval_expr(
                    stmt.operands.first().expect("checked in pass 1"),
                    &symbols,
                    line.num,
                )?;
                while (code.len() as u32) < target as u32 {
                    code.push(Inst::Nop.encode());
                }
            }
            ".word" => {
                let seg = ensure_segment(&mut segments, data_addr);
                for operand in &stmt.operands {
                    let v =
                        to_u16(eval_expr(operand, &symbols, line.num)?, ".word value", line.num)?;
                    seg.words.push(v);
                    data_addr += 1;
                }
            }
            ".space" => {
                let n = eval_expr(
                    stmt.operands.first().expect("checked in pass 1"),
                    &symbols,
                    line.num,
                )?;
                let seg = ensure_segment(&mut segments, data_addr);
                seg.words.extend(std::iter::repeat_n(0u16, n as usize));
                data_addr += n as u32;
            }
            _ if stmt_is_inst(&stmt.mnemonic) => {
                let pc = code.len() as u32;
                let inst = encode_stmt(&stmt, pc, &symbols)?;
                code.push(inst.encode());
            }
            other => return Err(AsmError::new(line.num, format!("unknown directive `{other}`"))),
        }
    }

    for inst_word in code {
        // Reuse Program::push via decode to keep a single authoritative path.
        program.push(Inst::decode(inst_word).expect("assembler emits valid words"));
    }
    for seg in segments.into_iter().filter(|s| !s.words.is_empty()) {
        program.add_data(seg.addr, &seg.words);
    }
    for (name, value) in symbols {
        program.define_symbol(name, value);
    }
    if let Some(e) = entry {
        program.set_entry(e);
    }
    Ok(program)
}

/// Finds the colon terminating a leading label, if any.
///
/// Only treats `ident:` at the start of the line as a label (so `.equ`
/// operands etc. are never misparsed).
fn find_label(text: &str) -> Option<usize> {
    let colon = text.find(':')?;
    is_ident(text[..colon].trim()).then_some(colon)
}

fn ensure_segment(segments: &mut Vec<DataSegment>, addr: u32) -> &mut DataSegment {
    if segments.is_empty() {
        segments.push(DataSegment::new(addr as u16, Vec::new()));
    }
    segments.last_mut().expect("just ensured non-empty")
}

fn want_operands(stmt: &Stmt<'_>, n: usize) -> Result<()> {
    if stmt.operands.len() == n {
        Ok(())
    } else {
        Err(AsmError::new(
            stmt.line,
            format!("`{}` expects {} operand(s), found {}", stmt.mnemonic, n, stmt.operands.len()),
        ))
    }
}

/// Resolves a branch target: plain literals are raw offsets, symbolic
/// expressions are absolute addresses converted to `target - (pc + 1)`.
fn branch_offset(expr: &str, pc: u32, symbols: &BTreeMap<String, u32>, line: usize) -> Result<i16> {
    if is_literal(expr) {
        to_i16(eval_expr(expr, symbols, line)?, "branch offset", line)
    } else {
        let target = eval_expr(expr, symbols, line)?;
        let rel = target - i64::from(pc) - 1;
        i16::try_from(rel)
            .map_err(|_| AsmError::new(line, format!("branch displacement {rel} out of range")))
    }
}

fn jump_target(expr: &str, symbols: &BTreeMap<String, u32>, line: usize) -> Result<u32> {
    let target = eval_expr(expr, symbols, line)?;
    if (0..=i64::from(crate::inst::MAX_JAL_TARGET)).contains(&target) {
        Ok(target as u32)
    } else {
        Err(AsmError::new(line, format!("jump target {target} out of range")))
    }
}

fn encode_stmt(stmt: &Stmt<'_>, pc: u32, symbols: &BTreeMap<String, u32>) -> Result<Inst> {
    let line = stmt.line;
    let reg = |i: usize| parse_reg(stmt.operands[i], line);
    let imm_u16 = |i: usize| -> Result<u16> {
        to_u16(eval_expr(stmt.operands[i], symbols, line)?, "immediate", line)
    };
    let imm_i16 = |i: usize| -> Result<i16> {
        to_i16(eval_expr(stmt.operands[i], symbols, line)?, "immediate", line)
    };
    let shamt = |i: usize| -> Result<u8> {
        let v = eval_expr(stmt.operands[i], symbols, line)?;
        if (0..16).contains(&v) {
            Ok(v as u8)
        } else {
            Err(AsmError::new(line, format!("shift amount {v} must be in 0..16")))
        }
    };

    macro_rules! rrr {
        ($variant:ident) => {{
            want_operands(stmt, 3)?;
            Inst::$variant { rd: reg(0)?, rs1: reg(1)?, rs2: reg(2)? }
        }};
    }
    macro_rules! branch {
        ($variant:ident) => {{
            want_operands(stmt, 3)?;
            Inst::$variant {
                rs1: reg(0)?,
                rs2: reg(1)?,
                offset: branch_offset(stmt.operands[2], pc, symbols, line)?,
            }
        }};
    }
    macro_rules! branch_swapped {
        ($variant:ident) => {{
            want_operands(stmt, 3)?;
            Inst::$variant {
                rs1: reg(1)?,
                rs2: reg(0)?,
                offset: branch_offset(stmt.operands[2], pc, symbols, line)?,
            }
        }};
    }

    Ok(match stmt.mnemonic.as_str() {
        "add" => rrr!(Add),
        "sub" => rrr!(Sub),
        "and" => rrr!(And),
        "or" => rrr!(Or),
        "xor" => rrr!(Xor),
        "sll" => rrr!(Sll),
        "srl" => rrr!(Srl),
        "sra" => rrr!(Sra),
        "mul" => rrr!(Mul),
        "mulh" => rrr!(Mulh),
        "slt" => rrr!(Slt),
        "sltu" => rrr!(Sltu),
        "divu" => rrr!(Divu),
        "remu" => rrr!(Remu),
        "addi" => {
            want_operands(stmt, 3)?;
            Inst::Addi { rd: reg(0)?, rs1: reg(1)?, imm: imm_i16(2)? }
        }
        "andi" => {
            want_operands(stmt, 3)?;
            Inst::Andi { rd: reg(0)?, rs1: reg(1)?, imm: imm_u16(2)? }
        }
        "ori" => {
            want_operands(stmt, 3)?;
            Inst::Ori { rd: reg(0)?, rs1: reg(1)?, imm: imm_u16(2)? }
        }
        "xori" => {
            want_operands(stmt, 3)?;
            Inst::Xori { rd: reg(0)?, rs1: reg(1)?, imm: imm_u16(2)? }
        }
        "slli" => {
            want_operands(stmt, 3)?;
            Inst::Slli { rd: reg(0)?, rs1: reg(1)?, shamt: shamt(2)? }
        }
        "srli" => {
            want_operands(stmt, 3)?;
            Inst::Srli { rd: reg(0)?, rs1: reg(1)?, shamt: shamt(2)? }
        }
        "srai" => {
            want_operands(stmt, 3)?;
            Inst::Srai { rd: reg(0)?, rs1: reg(1)?, shamt: shamt(2)? }
        }
        "slti" => {
            want_operands(stmt, 3)?;
            Inst::Slti { rd: reg(0)?, rs1: reg(1)?, imm: imm_i16(2)? }
        }
        "li" => {
            want_operands(stmt, 2)?;
            Inst::Li { rd: reg(0)?, imm: imm_u16(1)? }
        }
        "lw" => {
            want_operands(stmt, 2)?;
            let (off, base) = parse_mem_operand(stmt.operands[1], line)?;
            Inst::Lw {
                rd: reg(0)?,
                rs1: base,
                offset: to_i16(eval_expr(&off, symbols, line)?, "load offset", line)?,
            }
        }
        "sw" => {
            want_operands(stmt, 2)?;
            let (off, base) = parse_mem_operand(stmt.operands[1], line)?;
            Inst::Sw {
                rs2: reg(0)?,
                rs1: base,
                offset: to_i16(eval_expr(&off, symbols, line)?, "store offset", line)?,
            }
        }
        "beq" => branch!(Beq),
        "bne" => branch!(Bne),
        "blt" => branch!(Blt),
        "bge" => branch!(Bge),
        "bltu" => branch!(Bltu),
        "bgeu" => branch!(Bgeu),
        "bgt" => branch_swapped!(Blt),
        "ble" => branch_swapped!(Bge),
        "bgtu" => branch_swapped!(Bltu),
        "bleu" => branch_swapped!(Bgeu),
        "beqz" => {
            want_operands(stmt, 2)?;
            Inst::Beq {
                rs1: reg(0)?,
                rs2: Reg::R0,
                offset: branch_offset(stmt.operands[1], pc, symbols, line)?,
            }
        }
        "bnez" => {
            want_operands(stmt, 2)?;
            Inst::Bne {
                rs1: reg(0)?,
                rs2: Reg::R0,
                offset: branch_offset(stmt.operands[1], pc, symbols, line)?,
            }
        }
        "jal" => {
            want_operands(stmt, 2)?;
            Inst::Jal { rd: reg(0)?, target: jump_target(stmt.operands[1], symbols, line)? }
        }
        "jalr" => {
            want_operands(stmt, 3)?;
            Inst::Jalr { rd: reg(0)?, rs1: reg(1)?, offset: imm_i16(2)? }
        }
        "j" => {
            want_operands(stmt, 1)?;
            Inst::Jal { rd: Reg::R0, target: jump_target(stmt.operands[0], symbols, line)? }
        }
        "call" => {
            want_operands(stmt, 1)?;
            Inst::Jal { rd: crate::LINK_REG, target: jump_target(stmt.operands[0], symbols, line)? }
        }
        "ret" => {
            want_operands(stmt, 0)?;
            Inst::Jalr { rd: Reg::R0, rs1: crate::LINK_REG, offset: 0 }
        }
        "mov" => {
            want_operands(stmt, 2)?;
            Inst::Add { rd: reg(0)?, rs1: reg(1)?, rs2: Reg::R0 }
        }
        "not" => {
            want_operands(stmt, 2)?;
            Inst::Xori { rd: reg(0)?, rs1: reg(1)?, imm: 0xFFFF }
        }
        "neg" => {
            want_operands(stmt, 2)?;
            Inst::Sub { rd: reg(0)?, rs1: Reg::R0, rs2: reg(1)? }
        }
        "nop" => {
            want_operands(stmt, 0)?;
            Inst::Nop
        }
        "halt" => {
            want_operands(stmt, 0)?;
            Inst::Halt
        }
        "ckpt" => {
            want_operands(stmt, 0)?;
            Inst::Ckpt
        }
        "out" => {
            want_operands(stmt, 2)?;
            let port = eval_expr(stmt.operands[0], symbols, line)?;
            if !(0..16).contains(&port) {
                return Err(AsmError::new(line, format!("port {port} must be in 0..16")));
            }
            Inst::Out { port: port as u8, rs1: reg(1)? }
        }
        "in" => {
            want_operands(stmt, 2)?;
            let port = eval_expr(stmt.operands[1], symbols, line)?;
            if !(0..16).contains(&port) {
                return Err(AsmError::new(line, format!("port {port} must be in 0..16")));
            }
            Inst::In { rd: reg(0)?, port: port as u8 }
        }
        other => return Err(AsmError::new(line, format!("unknown mnemonic `{other}`"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_program() {
        let p = assemble(
            r"
            li r1, 10
            li r2, 0
        loop:
            add r2, r2, r1
            addi r1, r1, -1
            bne r1, r0, loop
            halt
        ",
        )
        .unwrap();
        assert_eq!(p.code().len(), 6);
        assert_eq!(p.symbol("loop"), Some(2));
        let branch = Inst::decode(p.code()[4]).unwrap();
        assert_eq!(branch, Inst::Bne { rs1: Reg::R1, rs2: Reg::R0, offset: -3 });
    }

    #[test]
    fn data_section_and_symbols() {
        let p = assemble(
            r"
            li r1, buf
            lw r2, 1(r1)
            halt
        .data 0x40
        buf: .word 10, 20, 30
        tail: .word 0xFFFF
        ",
        )
        .unwrap();
        assert_eq!(p.symbol("buf"), Some(0x40));
        assert_eq!(p.symbol("tail"), Some(0x43));
        assert_eq!(p.data_segments().len(), 1);
        assert_eq!(p.data_segments()[0].addr, 0x40);
        assert_eq!(p.data_segments()[0].words, vec![10, 20, 30, 0xFFFF]);
        assert_eq!(Inst::decode(p.code()[0]).unwrap(), Inst::Li { rd: Reg::R1, imm: 0x40 });
    }

    #[test]
    fn equ_and_expressions() {
        let p = assemble(
            r"
            .equ SIZE, 8
            .equ BASE, 0x100
            li r1, BASE+SIZE-1
            halt
            .data BASE
            arr: .space SIZE
            .word SIZE
        ",
        )
        .unwrap();
        assert_eq!(Inst::decode(p.code()[0]).unwrap(), Inst::Li { rd: Reg::R1, imm: 0x107 });
        assert_eq!(p.data_segments()[0].words.len(), 9);
        assert_eq!(p.data_segments()[0].words[8], 8);
    }

    #[test]
    fn pseudo_instructions() {
        let p = assemble(
            r"
        main:
            call fn
            j main
        fn:
            mov r1, r2
            not r3, r4
            neg r5, r6
            beqz r1, main
            ret
        ",
        )
        .unwrap();
        let insts: Vec<Inst> = p.code().iter().map(|&w| Inst::decode(w).unwrap()).collect();
        assert_eq!(insts[0], Inst::Jal { rd: Reg::R14, target: 2 });
        assert_eq!(insts[1], Inst::Jal { rd: Reg::R0, target: 0 });
        assert_eq!(insts[2], Inst::Add { rd: Reg::R1, rs1: Reg::R2, rs2: Reg::R0 });
        assert_eq!(insts[3], Inst::Xori { rd: Reg::R3, rs1: Reg::R4, imm: 0xFFFF });
        assert_eq!(insts[4], Inst::Sub { rd: Reg::R5, rs1: Reg::R0, rs2: Reg::R6 });
        assert_eq!(insts[5], Inst::Beq { rs1: Reg::R1, rs2: Reg::R0, offset: -6 });
        assert_eq!(insts[6], Inst::Jalr { rd: Reg::R0, rs1: Reg::R14, offset: 0 });
    }

    #[test]
    fn swapped_branches() {
        let p = assemble("x: bgt r1, r2, x\n ble r3, r4, x\nhalt").unwrap();
        let insts: Vec<Inst> = p.code().iter().map(|&w| Inst::decode(w).unwrap()).collect();
        assert_eq!(insts[0], Inst::Blt { rs1: Reg::R2, rs2: Reg::R1, offset: -1 });
        assert_eq!(insts[1], Inst::Bge { rs1: Reg::R4, rs2: Reg::R3, offset: -2 });
    }

    #[test]
    fn entry_directive() {
        let p = assemble(".entry main\nnop\nmain: halt").unwrap();
        assert_eq!(p.entry(), 1);
    }

    #[test]
    fn org_pads_with_nops() {
        let p = assemble("nop\n.org 4\nhalt").unwrap();
        assert_eq!(p.code().len(), 5);
        assert_eq!(Inst::decode(p.code()[3]).unwrap(), Inst::Nop);
        assert_eq!(Inst::decode(p.code()[4]).unwrap(), Inst::Halt);
    }

    #[test]
    fn error_undefined_symbol() {
        let err = assemble("li r1, nothing\nhalt").unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.message().contains("nothing"));
    }

    #[test]
    fn error_duplicate_label() {
        let err = assemble("a: nop\na: halt").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn error_bad_register() {
        assert!(assemble("add r1, r2, r99").is_err());
    }

    #[test]
    fn error_branch_out_of_range() {
        // A branch to a label 40000 instructions away cannot encode.
        let mut src = String::from("far: nop\n.org 40000\n");
        src.push_str("beq r0, r0, far\nhalt");
        let err = assemble(&src).unwrap_err();
        assert!(err.message().contains("displacement"));
    }

    #[test]
    fn error_operand_count() {
        let err = assemble("add r1, r2").unwrap_err();
        assert!(err.message().contains("expects 3"));
    }

    #[test]
    fn error_instruction_in_data() {
        let err = assemble(".data 0\nadd r1, r2, r3").unwrap_err();
        assert!(err.message().contains(".data"));
    }

    #[test]
    fn error_word_in_text() {
        let err = assemble(".word 1").unwrap_err();
        assert!(err.message().contains(".data"));
    }

    #[test]
    fn negative_immediates_and_hex() {
        let p = assemble("addi r1, r0, -32768\nandi r2, r1, 0xFF00\nhalt").unwrap();
        let insts: Vec<Inst> = p.code().iter().map(|&w| Inst::decode(w).unwrap()).collect();
        assert_eq!(insts[0], Inst::Addi { rd: Reg::R1, rs1: Reg::R0, imm: -32768 });
        assert_eq!(insts[1], Inst::Andi { rd: Reg::R2, rs1: Reg::R1, imm: 0xFF00 });
    }

    #[test]
    fn unsigned_imm_as_signed_slot() {
        // 0xFFFF as an addi immediate should wrap to -1, not error.
        let p = assemble("addi r1, r0, 0xFFFF\nhalt").unwrap();
        assert_eq!(
            Inst::decode(p.code()[0]).unwrap(),
            Inst::Addi { rd: Reg::R1, rs1: Reg::R0, imm: -1 }
        );
    }

    #[test]
    fn mem_operand_variants() {
        let p = assemble(
            r"
            .equ OFS, 3
            lw r1, (r2)
            lw r1, -2(r2)
            sw r1, OFS(r2)
            halt",
        )
        .unwrap();
        let insts: Vec<Inst> = p.code().iter().map(|&w| Inst::decode(w).unwrap()).collect();
        assert_eq!(insts[0], Inst::Lw { rd: Reg::R1, rs1: Reg::R2, offset: 0 });
        assert_eq!(insts[1], Inst::Lw { rd: Reg::R1, rs1: Reg::R2, offset: -2 });
        assert_eq!(insts[2], Inst::Sw { rs2: Reg::R1, rs1: Reg::R2, offset: 3 });
    }

    #[test]
    fn comments_and_blank_lines() {
        let p = assemble("; leading comment\n\n   \nnop ; trailing\nhalt").unwrap();
        assert_eq!(p.code().len(), 2);
    }

    #[test]
    fn multiple_data_segments() {
        let p = assemble(".data 0\n.word 1\n.data 0x80\n.word 2, 3\nhalt");
        // `halt` after .data must fail (instruction in data section).
        assert!(p.is_err());
        let p = assemble(".text\nhalt\n.data 0\n.word 1\n.data 0x80\n.word 2, 3").unwrap();
        assert_eq!(p.data_segments().len(), 2);
        assert_eq!(p.data_segments()[1].addr, 0x80);
        assert_eq!(p.data_segments()[1].words, vec![2, 3]);
    }

    #[test]
    fn in_out_ports() {
        let p = assemble("in r1, 3\nout 15, r1\nhalt").unwrap();
        let insts: Vec<Inst> = p.code().iter().map(|&w| Inst::decode(w).unwrap()).collect();
        assert_eq!(insts[0], Inst::In { rd: Reg::R1, port: 3 });
        assert_eq!(insts[1], Inst::Out { port: 15, rs1: Reg::R1 });
        assert!(assemble("out 16, r1").is_err());
    }
}
