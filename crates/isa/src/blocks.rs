//! Basic-block boundary analysis over decoded instruction streams.
//!
//! A *basic block* is a maximal straight-line run of instructions with a
//! single entry (its **leader**) and a single exit (its **terminator** —
//! any control transfer, `halt`, or `ckpt` — or the fall-through edge
//! into the next leader). The `nvp-sim` block engine partitions a
//! program with [`leaders`] at load time and fuses each block's cost
//! accounting; the analysis lives here because block boundaries are a
//! property of the instruction set, not of any particular simulator.

use crate::Inst;

/// Target of a taken branch at `pc` with signed word `offset` (relative
/// to `pc + 1`, the NV16 branch convention).
///
/// A displacement below address 0 saturates to `u32::MAX`, an address no
/// real image can contain, so the following fetch faults instead of
/// silently wrapping.
#[inline]
#[must_use]
pub fn branch_target(pc: u32, offset: i16) -> u32 {
    let target = i64::from(pc) + 1 + i64::from(offset);
    u32::try_from(target).unwrap_or(u32::MAX)
}

impl Inst {
    /// Returns `true` if this instruction ends a basic block: every
    /// control transfer (conditional branches, `jal`, `jalr`), `halt`,
    /// and `ckpt`.
    ///
    /// `ckpt` terminates a block even though control falls through,
    /// because platforms must observe the checkpoint request before the
    /// next instruction executes.
    #[must_use]
    pub fn is_block_terminator(&self) -> bool {
        self.is_branch()
            | matches!(self, Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Halt | Inst::Ckpt)
    }

    /// The statically known target of a control transfer at `pc`: the
    /// taken-path target for conditional branches, the absolute target
    /// for `jal`. `None` for everything else (including `jalr`, whose
    /// target is only known at run time).
    #[must_use]
    pub fn static_target(&self, pc: u32) -> Option<u32> {
        match *self {
            Inst::Beq { offset, .. }
            | Inst::Bne { offset, .. }
            | Inst::Blt { offset, .. }
            | Inst::Bge { offset, .. }
            | Inst::Bltu { offset, .. }
            | Inst::Bgeu { offset, .. } => Some(branch_target(pc, offset)),
            Inst::Jal { target, .. } => Some(target),
            _ => None,
        }
    }
}

/// Marks the basic-block leaders of `code`: `leaders[pc]` is `true` iff
/// address `pc` starts a block. Leaders are the entry point, every
/// statically known control-transfer target (within the image), and the
/// instruction following any terminator.
///
/// Addresses reachable only dynamically (through `jalr`, or by restoring
/// a snapshot taken mid-block) are *not* leaders; an execution engine
/// must fall back to single-stepping from such an address until it
/// reaches a leader again.
#[must_use]
pub fn leaders(code: &[Inst], entry: u32) -> Vec<bool> {
    let mut is_leader = vec![false; code.len()];
    if let Some(slot) = is_leader.get_mut(entry as usize) {
        *slot = true;
    }
    for (pc, inst) in code.iter().enumerate() {
        if !inst.is_block_terminator() {
            continue;
        }
        if let Some(slot) = is_leader.get_mut(pc + 1) {
            *slot = true;
        }
        let target = inst.static_target(u32::try_from(pc).unwrap_or(u32::MAX));
        if let Some(slot) = target.and_then(|t| is_leader.get_mut(t as usize)) {
            *slot = true;
        }
    }
    is_leader
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn leaders_of(src: &str) -> Vec<bool> {
        let p = assemble(src).expect("assembles");
        let code: Vec<Inst> = p.code().iter().map(|&w| Inst::decode(w).expect("decodes")).collect();
        leaders(&code, p.entry())
    }

    #[test]
    fn straight_line_has_single_leader() {
        assert_eq!(leaders_of("nop\nnop\nnop\nhalt"), vec![true, false, false, false]);
    }

    #[test]
    fn branch_target_and_fallthrough_are_leaders() {
        // 0: li (entry)  1: bne -> 3  2: nop (fall-through leader)
        // 3: nop (target leader)  4: halt  (5 would follow halt; none)
        let l = leaders_of("li r1, 1\nbne r1, r0, 1\nnop\nnop\nhalt");
        assert_eq!(l, vec![true, false, true, true, false]);
    }

    #[test]
    fn backward_branch_marks_loop_head() {
        // 0: li (entry)  1: addi (loop head, branch target)
        // 2: bne -> 1    3: halt (fall-through leader)
        let l = leaders_of("li r1, 4\nx: addi r1, r1, -1\nbne r1, r0, x\nhalt");
        assert_eq!(l, vec![true, true, false, true]);
    }

    #[test]
    fn ckpt_and_jal_split_blocks() {
        // 0: ckpt  1: nop (post-ckpt leader)  2: jal -> 0  3: halt
        let l = leaders_of("ckpt\nnop\njal r0, 0\nhalt");
        assert_eq!(l, vec![true, true, false, true]);
    }

    #[test]
    fn out_of_range_targets_are_ignored() {
        // Branch below zero and past the end: no leader slots to mark.
        let l = leaders_of("beq r0, r0, -5\nbeq r0, r0, 100");
        assert_eq!(l, vec![true, true]);
    }

    #[test]
    fn terminator_classification() {
        assert!(Inst::Halt.is_block_terminator());
        assert!(Inst::Ckpt.is_block_terminator());
        assert!(
            Inst::Jalr { rd: crate::Reg::R0, rs1: crate::Reg::R1, offset: 0 }.is_block_terminator()
        );
        assert!(!Inst::Nop.is_block_terminator());
        assert!(
            !Inst::Lw { rd: crate::Reg::R1, rs1: crate::Reg::R0, offset: 0 }.is_block_terminator()
        );
    }

    #[test]
    fn static_targets() {
        assert_eq!(
            Inst::Beq { rs1: crate::Reg::R0, rs2: crate::Reg::R0, offset: 3 }.static_target(10),
            Some(14)
        );
        assert_eq!(Inst::Jal { rd: crate::Reg::R0, target: 7 }.static_target(10), Some(7));
        assert_eq!(
            Inst::Jalr { rd: crate::Reg::R0, rs1: crate::Reg::R1, offset: 0 }.static_target(10),
            None
        );
        assert_eq!(Inst::Nop.static_target(10), None);
    }

    #[test]
    fn branch_target_saturates_below_zero() {
        assert_eq!(branch_target(2, -5), u32::MAX);
        assert_eq!(branch_target(2, -3), 0);
        assert_eq!(branch_target(0, 4), 5);
    }
}
