//! Typed, label-aware program construction.
//!
//! [`ProgramBuilder`] is the programmatic alternative to the text
//! assembler: kernels generated from Rust code (parameterized unrolling,
//! computed constants) build instructions directly, with forward/backward
//! control flow expressed through [`Label`]s that are patched at
//! [`build`](ProgramBuilder::build) time.
//!
//! # Example
//!
//! ```
//! use nvp_isa::builder::ProgramBuilder;
//! use nvp_isa::Reg;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ProgramBuilder::new();
//! let top = b.new_label();
//! b.li(Reg::R1, 10);
//! b.bind(top)?;
//! b.addi(Reg::R1, Reg::R1, -1);
//! b.bnez(Reg::R1, top);
//! b.halt();
//! let program = b.build()?;
//! assert_eq!(program.code().len(), 4);
//! # Ok(())
//! # }
//! ```

use std::fmt;

use crate::{Inst, Program, Reg};

/// A control-flow label; create with [`ProgramBuilder::new_label`], place
/// with [`ProgramBuilder::bind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Errors raised while building a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A label was referenced but never bound.
    UnboundLabel {
        /// The offending label.
        label: Label,
    },
    /// A label was bound twice.
    Rebound {
        /// The offending label.
        label: Label,
    },
    /// A branch displacement does not fit in 16 bits.
    BranchTooFar {
        /// Instruction address of the branch.
        at: u32,
        /// Required displacement.
        displacement: i64,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnboundLabel { label } => write!(f, "label {label:?} was never bound"),
            BuildError::Rebound { label } => write!(f, "label {label:?} bound twice"),
            BuildError::BranchTooFar { at, displacement } => {
                write!(f, "branch at {at} needs displacement {displacement}, out of range")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Which branch instruction a pending fixup expands to.
#[derive(Debug, Clone, Copy)]
enum BranchKind {
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
}

#[derive(Debug, Clone, Copy)]
enum Slot {
    Done(Inst),
    Branch { kind: BranchKind, rs1: Reg, rs2: Reg, target: Label },
    Jal { rd: Reg, target: Label },
}

/// Builds NV16 programs instruction by instruction.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    slots: Vec<Slot>,
    labels: Vec<Option<u32>>,
    data: Vec<(u16, Vec<u16>)>,
    entry: Option<Label>,
}

macro_rules! rrr_method {
    ($(#[$doc:meta])* $name:ident, $variant:ident) => {
        $(#[$doc])*
        pub fn $name(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
            self.push(Inst::$variant { rd, rs1, rs2 })
        }
    };
}

macro_rules! branch_method {
    ($(#[$doc:meta])* $name:ident, $kind:ident) => {
        $(#[$doc])*
        pub fn $name(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
            self.slots.push(Slot::Branch { kind: BranchKind::$kind, rs1, rs2, target });
            self
        }
    };
}

impl ProgramBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current instruction address (where the next instruction lands).
    #[must_use]
    pub fn here(&self) -> u32 {
        self.slots.len() as u32
    }

    /// Allocates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current address.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Rebound`] if the label is already bound.
    pub fn bind(&mut self, label: Label) -> Result<&mut Self, BuildError> {
        let slot = &mut self.labels[label.0];
        if slot.is_some() {
            return Err(BuildError::Rebound { label });
        }
        *slot = Some(self.slots.len() as u32);
        Ok(self)
    }

    /// Appends a raw instruction.
    pub fn push(&mut self, inst: Inst) -> &mut Self {
        self.slots.push(Slot::Done(inst));
        self
    }

    rrr_method!(/// `rd = rs1 + rs2`.
        add, Add);
    rrr_method!(/// `rd = rs1 - rs2`.
        sub, Sub);
    rrr_method!(/// `rd = rs1 & rs2`.
        and, And);
    rrr_method!(/// `rd = rs1 | rs2`.
        or, Or);
    rrr_method!(/// `rd = rs1 ^ rs2`.
        xor, Xor);
    rrr_method!(/// `rd = rs1 * rs2` (low half).
        mul, Mul);
    rrr_method!(/// `rd = rs1 * rs2` (high half).
        mulh, Mulh);
    rrr_method!(/// Signed less-than.
        slt, Slt);
    rrr_method!(/// Unsigned less-than.
        sltu, Sltu);
    rrr_method!(/// Unsigned division.
        divu, Divu);
    rrr_method!(/// Unsigned remainder.
        remu, Remu);

    /// `rd = rs1 + imm`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i16) -> &mut Self {
        self.push(Inst::Addi { rd, rs1, imm })
    }

    /// `rd = imm`.
    pub fn li(&mut self, rd: Reg, imm: u16) -> &mut Self {
        self.push(Inst::Li { rd, imm })
    }

    /// `rd = rs1 << shamt`.
    pub fn slli(&mut self, rd: Reg, rs1: Reg, shamt: u8) -> &mut Self {
        self.push(Inst::Slli { rd, rs1, shamt })
    }

    /// `rd = rs1 >> shamt` (logical).
    pub fn srli(&mut self, rd: Reg, rs1: Reg, shamt: u8) -> &mut Self {
        self.push(Inst::Srli { rd, rs1, shamt })
    }

    /// `rd = rs1 >> shamt` (arithmetic).
    pub fn srai(&mut self, rd: Reg, rs1: Reg, shamt: u8) -> &mut Self {
        self.push(Inst::Srai { rd, rs1, shamt })
    }

    /// `rd = dmem[rs1 + offset]`.
    pub fn lw(&mut self, rd: Reg, rs1: Reg, offset: i16) -> &mut Self {
        self.push(Inst::Lw { rd, rs1, offset })
    }

    /// `dmem[rs1 + offset] = rs2`.
    pub fn sw(&mut self, rs2: Reg, rs1: Reg, offset: i16) -> &mut Self {
        self.push(Inst::Sw { rs2, rs1, offset })
    }

    branch_method!(/// Branch to `target` if `rs1 == rs2`.
        beq, Beq);
    branch_method!(/// Branch to `target` if `rs1 != rs2`.
        bne, Bne);
    branch_method!(/// Branch to `target` if `rs1 < rs2` (signed).
        blt, Blt);
    branch_method!(/// Branch to `target` if `rs1 >= rs2` (signed).
        bge, Bge);
    branch_method!(/// Branch to `target` if `rs1 < rs2` (unsigned).
        bltu, Bltu);
    branch_method!(/// Branch to `target` if `rs1 >= rs2` (unsigned).
        bgeu, Bgeu);

    /// Branch to `target` if `rs == 0`.
    pub fn beqz(&mut self, rs: Reg, target: Label) -> &mut Self {
        self.beq(rs, Reg::R0, target)
    }

    /// Branch to `target` if `rs != 0`.
    pub fn bnez(&mut self, rs: Reg, target: Label) -> &mut Self {
        self.bne(rs, Reg::R0, target)
    }

    /// Unconditional jump to `target`.
    pub fn jmp(&mut self, target: Label) -> &mut Self {
        self.slots.push(Slot::Jal { rd: Reg::R0, target });
        self
    }

    /// Call `target`, linking into `r14`.
    pub fn call(&mut self, target: Label) -> &mut Self {
        self.slots.push(Slot::Jal { rd: crate::LINK_REG, target });
        self
    }

    /// Return through `r14`.
    pub fn ret(&mut self) -> &mut Self {
        self.push(Inst::Jalr { rd: Reg::R0, rs1: crate::LINK_REG, offset: 0 })
    }

    /// Copy `rs` into `rd`.
    pub fn mov(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.push(Inst::Add { rd, rs1: rs, rs2: Reg::R0 })
    }

    /// Stop execution.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Inst::Halt)
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Inst::Nop)
    }

    /// Program-requested checkpoint hint.
    pub fn ckpt(&mut self) -> &mut Self {
        self.push(Inst::Ckpt)
    }

    /// Write `rs` to output `port`.
    pub fn out(&mut self, port: u8, rs: Reg) -> &mut Self {
        self.push(Inst::Out { port, rs1: rs })
    }

    /// Read input `port` into `rd`.
    pub fn inp(&mut self, rd: Reg, port: u8) -> &mut Self {
        self.push(Inst::In { rd, port })
    }

    /// Adds an initialized data segment.
    pub fn data(&mut self, addr: u16, words: &[u16]) -> &mut Self {
        self.data.push((addr, words.to_vec()));
        self
    }

    /// Sets the entry point to a label (defaults to address 0).
    pub fn entry(&mut self, label: Label) -> &mut Self {
        self.entry = Some(label);
        self
    }

    /// Resolves all labels and produces the program image.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] for unbound labels or out-of-range branch
    /// displacements.
    pub fn build(&self) -> Result<Program, BuildError> {
        let resolve = |label: Label| -> Result<u32, BuildError> {
            self.labels[label.0].ok_or(BuildError::UnboundLabel { label })
        };
        let mut program = Program::new();
        for (pc, slot) in self.slots.iter().enumerate() {
            let inst = match *slot {
                Slot::Done(inst) => inst,
                Slot::Jal { rd, target } => Inst::Jal { rd, target: resolve(target)? },
                Slot::Branch { kind, rs1, rs2, target } => {
                    let dest = resolve(target)?;
                    let displacement = i64::from(dest) - pc as i64 - 1;
                    let offset = i16::try_from(displacement)
                        .map_err(|_| BuildError::BranchTooFar { at: pc as u32, displacement })?;
                    match kind {
                        BranchKind::Beq => Inst::Beq { rs1, rs2, offset },
                        BranchKind::Bne => Inst::Bne { rs1, rs2, offset },
                        BranchKind::Blt => Inst::Blt { rs1, rs2, offset },
                        BranchKind::Bge => Inst::Bge { rs1, rs2, offset },
                        BranchKind::Bltu => Inst::Bltu { rs1, rs2, offset },
                        BranchKind::Bgeu => Inst::Bgeu { rs1, rs2, offset },
                    }
                }
            };
            program.push(inst);
        }
        for (addr, words) in &self.data {
            program.add_data(*addr, words);
        }
        if let Some(label) = self.entry {
            program.set_entry(resolve(label)?);
        }
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn builder_matches_assembler() {
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        let done = b.new_label();
        b.li(Reg::R1, 10);
        b.li(Reg::R2, 0);
        b.bind(top).unwrap();
        b.add(Reg::R2, Reg::R2, Reg::R1);
        b.addi(Reg::R1, Reg::R1, -1);
        b.beqz(Reg::R1, done);
        b.jmp(top);
        b.bind(done).unwrap();
        b.halt();
        let built = b.build().unwrap();

        let assembled = assemble(
            "li r1, 10\nli r2, 0\ntop:\nadd r2, r2, r1\naddi r1, r1, -1\n\
             beqz r1, done\nj top\ndone:\nhalt",
        )
        .unwrap();
        assert_eq!(built.code(), assembled.code());
    }

    #[test]
    fn forward_and_backward_branches() {
        let mut b = ProgramBuilder::new();
        let fwd = b.new_label();
        b.beq(Reg::R0, Reg::R0, fwd); // forward +1
        b.nop();
        b.bind(fwd).unwrap();
        let back = b.new_label();
        b.bind(back).unwrap();
        b.bne(Reg::R1, Reg::R0, back); // backward -1
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(
            p.decode_at(0).unwrap().unwrap(),
            Inst::Beq { rs1: Reg::R0, rs2: Reg::R0, offset: 1 }
        );
        assert_eq!(
            p.decode_at(2).unwrap().unwrap(),
            Inst::Bne { rs1: Reg::R1, rs2: Reg::R0, offset: -1 }
        );
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        let ghost = b.new_label();
        b.jmp(ghost);
        assert!(matches!(b.build(), Err(BuildError::UnboundLabel { .. })));
    }

    #[test]
    fn rebinding_is_an_error() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.bind(l).unwrap();
        assert!(matches!(b.bind(l), Err(BuildError::Rebound { .. })));
    }

    #[test]
    fn entry_and_data() {
        let mut b = ProgramBuilder::new();
        b.nop();
        let main = b.new_label();
        b.bind(main).unwrap();
        b.halt();
        b.entry(main);
        b.data(0x80, &[1, 2, 3]);
        let p = b.build().unwrap();
        assert_eq!(p.entry(), 1);
        assert_eq!(p.data_segments()[0].words, vec![1, 2, 3]);
    }

    #[test]
    fn built_program_runs() {
        // Smoke test through Program only (no simulator dependency here):
        // the image decodes cleanly end to end.
        let mut b = ProgramBuilder::new();
        let f = b.new_label();
        b.call(f);
        b.halt();
        b.bind(f).unwrap();
        b.li(Reg::R3, 99);
        b.ret();
        let p = b.build().unwrap();
        for addr in 0..p.code().len() as u32 {
            assert!(p.decode_at(addr).unwrap().is_ok());
        }
        assert_eq!(p.decode_at(0).unwrap().unwrap(), Inst::Jal { rd: crate::LINK_REG, target: 2 });
    }
}
