//! Instruction definitions and binary encoding.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Reg;

/// Maximum jump target representable by `jal` (20-bit absolute word address).
pub const MAX_JAL_TARGET: u32 = (1 << 20) - 1;

// Opcode bytes. Grouped by format; gaps left for future extension.
mod op {
    pub const ADD: u8 = 0x01;
    pub const SUB: u8 = 0x02;
    pub const AND: u8 = 0x03;
    pub const OR: u8 = 0x04;
    pub const XOR: u8 = 0x05;
    pub const SLL: u8 = 0x06;
    pub const SRL: u8 = 0x07;
    pub const SRA: u8 = 0x08;
    pub const MUL: u8 = 0x09;
    pub const MULH: u8 = 0x0A;
    pub const SLT: u8 = 0x0B;
    pub const SLTU: u8 = 0x0C;
    pub const DIVU: u8 = 0x0D;
    pub const REMU: u8 = 0x0E;

    pub const ADDI: u8 = 0x20;
    pub const ANDI: u8 = 0x21;
    pub const ORI: u8 = 0x22;
    pub const XORI: u8 = 0x23;
    pub const SLLI: u8 = 0x24;
    pub const SRLI: u8 = 0x25;
    pub const SRAI: u8 = 0x26;
    pub const SLTI: u8 = 0x27;
    pub const LI: u8 = 0x28;
    pub const LW: u8 = 0x29;
    pub const SW: u8 = 0x2A;

    pub const BEQ: u8 = 0x40;
    pub const BNE: u8 = 0x41;
    pub const BLT: u8 = 0x42;
    pub const BGE: u8 = 0x43;
    pub const BLTU: u8 = 0x44;
    pub const BGEU: u8 = 0x45;

    pub const JAL: u8 = 0x50;
    pub const JALR: u8 = 0x51;

    pub const NOP: u8 = 0x60;
    pub const HALT: u8 = 0x61;
    pub const CKPT: u8 = 0x62;
    pub const OUT: u8 = 0x63;
    pub const IN: u8 = 0x64;
}

/// One NV16 instruction.
///
/// Arithmetic is 16-bit two's-complement with wrapping semantics. Branch
/// offsets are signed word displacements relative to the *next* instruction
/// (`pc + 1`). `jal` takes an absolute 20-bit word target.
///
/// # Example
///
/// ```
/// use nvp_isa::{Inst, Reg};
///
/// let i = Inst::Addi { rd: Reg::R1, rs1: Reg::R1, imm: -1 };
/// let word = i.encode();
/// assert_eq!(Inst::decode(word).unwrap(), i);
/// assert_eq!(i.to_string(), "addi r1, r1, -1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Inst {
    /// `rd = rs1 + rs2` (wrapping).
    Add {
        /// Destination register.
        rd: Reg,
        /// First operand.
        rs1: Reg,
        /// Second operand.
        rs2: Reg,
    },
    /// `rd = rs1 - rs2` (wrapping).
    Sub {
        /// Destination register.
        rd: Reg,
        /// First operand.
        rs1: Reg,
        /// Second operand.
        rs2: Reg,
    },
    /// `rd = rs1 & rs2`.
    And {
        /// Destination register.
        rd: Reg,
        /// First operand.
        rs1: Reg,
        /// Second operand.
        rs2: Reg,
    },
    /// `rd = rs1 | rs2`.
    Or {
        /// Destination register.
        rd: Reg,
        /// First operand.
        rs1: Reg,
        /// Second operand.
        rs2: Reg,
    },
    /// `rd = rs1 ^ rs2`.
    Xor {
        /// Destination register.
        rd: Reg,
        /// First operand.
        rs1: Reg,
        /// Second operand.
        rs2: Reg,
    },
    /// `rd = rs1 << (rs2 & 0xF)`.
    Sll {
        /// Destination register.
        rd: Reg,
        /// Value to shift.
        rs1: Reg,
        /// Shift amount (low 4 bits used).
        rs2: Reg,
    },
    /// `rd = rs1 >> (rs2 & 0xF)` (logical).
    Srl {
        /// Destination register.
        rd: Reg,
        /// Value to shift.
        rs1: Reg,
        /// Shift amount (low 4 bits used).
        rs2: Reg,
    },
    /// `rd = rs1 >> (rs2 & 0xF)` (arithmetic).
    Sra {
        /// Destination register.
        rd: Reg,
        /// Value to shift.
        rs1: Reg,
        /// Shift amount (low 4 bits used).
        rs2: Reg,
    },
    /// `rd = (rs1 * rs2) & 0xFFFF` — low half of the signed product.
    Mul {
        /// Destination register.
        rd: Reg,
        /// First factor.
        rs1: Reg,
        /// Second factor.
        rs2: Reg,
    },
    /// `rd = (rs1 * rs2) >> 16` — high half of the signed 32-bit product.
    Mulh {
        /// Destination register.
        rd: Reg,
        /// First factor.
        rs1: Reg,
        /// Second factor.
        rs2: Reg,
    },
    /// `rd = (rs1 <ₛ rs2) ? 1 : 0` (signed compare).
    Slt {
        /// Destination register.
        rd: Reg,
        /// Left operand.
        rs1: Reg,
        /// Right operand.
        rs2: Reg,
    },
    /// `rd = (rs1 <ᵤ rs2) ? 1 : 0` (unsigned compare).
    Sltu {
        /// Destination register.
        rd: Reg,
        /// Left operand.
        rs1: Reg,
        /// Right operand.
        rs2: Reg,
    },
    /// `rd = rs1 / rs2` (unsigned); `0xFFFF` when `rs2 == 0`.
    Divu {
        /// Destination register.
        rd: Reg,
        /// Dividend.
        rs1: Reg,
        /// Divisor.
        rs2: Reg,
    },
    /// `rd = rs1 % rs2` (unsigned); `rs1` when `rs2 == 0`.
    Remu {
        /// Destination register.
        rd: Reg,
        /// Dividend.
        rs1: Reg,
        /// Divisor.
        rs2: Reg,
    },
    /// `rd = rs1 + imm` (wrapping).
    Addi {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Signed immediate.
        imm: i16,
    },
    /// `rd = rs1 & imm`.
    Andi {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Bit-mask immediate.
        imm: u16,
    },
    /// `rd = rs1 | imm`.
    Ori {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Bit-mask immediate.
        imm: u16,
    },
    /// `rd = rs1 ^ imm`.
    Xori {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Bit-mask immediate.
        imm: u16,
    },
    /// `rd = rs1 << shamt`.
    Slli {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Shift amount in `0..16`.
        shamt: u8,
    },
    /// `rd = rs1 >> shamt` (logical).
    Srli {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Shift amount in `0..16`.
        shamt: u8,
    },
    /// `rd = rs1 >> shamt` (arithmetic).
    Srai {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Shift amount in `0..16`.
        shamt: u8,
    },
    /// `rd = (rs1 <ₛ imm) ? 1 : 0`.
    Slti {
        /// Destination register.
        rd: Reg,
        /// Left operand.
        rs1: Reg,
        /// Signed immediate right operand.
        imm: i16,
    },
    /// `rd = imm` — load a 16-bit immediate.
    Li {
        /// Destination register.
        rd: Reg,
        /// Immediate value (raw 16 bits).
        imm: u16,
    },
    /// `rd = dmem[rs1 + offset]`.
    Lw {
        /// Destination register.
        rd: Reg,
        /// Base address register.
        rs1: Reg,
        /// Signed word offset.
        offset: i16,
    },
    /// `dmem[rs1 + offset] = rs2`.
    Sw {
        /// Register holding the value to store.
        rs2: Reg,
        /// Base address register.
        rs1: Reg,
        /// Signed word offset.
        offset: i16,
    },
    /// Branch if `rs1 == rs2`.
    Beq {
        /// Left operand.
        rs1: Reg,
        /// Right operand.
        rs2: Reg,
        /// Signed word offset from `pc + 1`.
        offset: i16,
    },
    /// Branch if `rs1 != rs2`.
    Bne {
        /// Left operand.
        rs1: Reg,
        /// Right operand.
        rs2: Reg,
        /// Signed word offset from `pc + 1`.
        offset: i16,
    },
    /// Branch if `rs1 <ₛ rs2` (signed).
    Blt {
        /// Left operand.
        rs1: Reg,
        /// Right operand.
        rs2: Reg,
        /// Signed word offset from `pc + 1`.
        offset: i16,
    },
    /// Branch if `rs1 ≥ₛ rs2` (signed).
    Bge {
        /// Left operand.
        rs1: Reg,
        /// Right operand.
        rs2: Reg,
        /// Signed word offset from `pc + 1`.
        offset: i16,
    },
    /// Branch if `rs1 <ᵤ rs2` (unsigned).
    Bltu {
        /// Left operand.
        rs1: Reg,
        /// Right operand.
        rs2: Reg,
        /// Signed word offset from `pc + 1`.
        offset: i16,
    },
    /// Branch if `rs1 ≥ᵤ rs2` (unsigned).
    Bgeu {
        /// Left operand.
        rs1: Reg,
        /// Right operand.
        rs2: Reg,
        /// Signed word offset from `pc + 1`.
        offset: i16,
    },
    /// `rd = pc + 1; pc = target` — jump-and-link to an absolute address.
    Jal {
        /// Link register (use `r0` to discard).
        rd: Reg,
        /// Absolute word target in `0..2^20`.
        target: u32,
    },
    /// `rd = pc + 1; pc = rs1 + offset` — indirect jump-and-link.
    Jalr {
        /// Link register (use `r0` to discard).
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Signed word offset.
        offset: i16,
    },
    /// No operation.
    Nop,
    /// Stop execution; the program is complete.
    Halt,
    /// Program-requested checkpoint hint for software-managed platforms.
    Ckpt,
    /// Write `rs1` to output port `port`.
    Out {
        /// Port index in `0..16`.
        port: u8,
        /// Register holding the value to emit.
        rs1: Reg,
    },
    /// Read input port `port` into `rd`.
    In {
        /// Destination register.
        rd: Reg,
        /// Port index in `0..16`.
        port: u8,
    },
}

/// Error returned when decoding an instruction word fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    word: u32,
}

impl DecodeError {
    /// The raw word that could not be decoded.
    #[must_use]
    pub fn word(&self) -> u32 {
        self.word
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

#[inline]
fn enc_r(opc: u8, rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
    (u32::from(opc) << 24) | (rd.field() << 20) | (rs1.field() << 16) | (rs2.field() << 12)
}

#[inline]
fn enc_i(opc: u8, rd: Reg, rs1: Reg, imm: u16) -> u32 {
    (u32::from(opc) << 24) | (rd.field() << 20) | (rs1.field() << 16) | u32::from(imm)
}

#[inline]
fn enc_j(opc: u8, rd: Reg, target: u32) -> u32 {
    debug_assert!(target <= MAX_JAL_TARGET);
    (u32::from(opc) << 24) | (rd.field() << 20) | (target & 0xF_FFFF)
}

impl Inst {
    /// Encodes the instruction into its 32-bit binary form.
    ///
    /// # Example
    ///
    /// ```
    /// use nvp_isa::Inst;
    /// assert_eq!(Inst::Nop.encode() >> 24, 0x60);
    /// ```
    #[must_use]
    pub fn encode(self) -> u32 {
        use Inst::*;
        match self {
            Add { rd, rs1, rs2 } => enc_r(op::ADD, rd, rs1, rs2),
            Sub { rd, rs1, rs2 } => enc_r(op::SUB, rd, rs1, rs2),
            And { rd, rs1, rs2 } => enc_r(op::AND, rd, rs1, rs2),
            Or { rd, rs1, rs2 } => enc_r(op::OR, rd, rs1, rs2),
            Xor { rd, rs1, rs2 } => enc_r(op::XOR, rd, rs1, rs2),
            Sll { rd, rs1, rs2 } => enc_r(op::SLL, rd, rs1, rs2),
            Srl { rd, rs1, rs2 } => enc_r(op::SRL, rd, rs1, rs2),
            Sra { rd, rs1, rs2 } => enc_r(op::SRA, rd, rs1, rs2),
            Mul { rd, rs1, rs2 } => enc_r(op::MUL, rd, rs1, rs2),
            Mulh { rd, rs1, rs2 } => enc_r(op::MULH, rd, rs1, rs2),
            Slt { rd, rs1, rs2 } => enc_r(op::SLT, rd, rs1, rs2),
            Sltu { rd, rs1, rs2 } => enc_r(op::SLTU, rd, rs1, rs2),
            Divu { rd, rs1, rs2 } => enc_r(op::DIVU, rd, rs1, rs2),
            Remu { rd, rs1, rs2 } => enc_r(op::REMU, rd, rs1, rs2),
            Addi { rd, rs1, imm } => enc_i(op::ADDI, rd, rs1, imm as u16),
            Andi { rd, rs1, imm } => enc_i(op::ANDI, rd, rs1, imm),
            Ori { rd, rs1, imm } => enc_i(op::ORI, rd, rs1, imm),
            Xori { rd, rs1, imm } => enc_i(op::XORI, rd, rs1, imm),
            Slli { rd, rs1, shamt } => enc_i(op::SLLI, rd, rs1, u16::from(shamt & 0xF)),
            Srli { rd, rs1, shamt } => enc_i(op::SRLI, rd, rs1, u16::from(shamt & 0xF)),
            Srai { rd, rs1, shamt } => enc_i(op::SRAI, rd, rs1, u16::from(shamt & 0xF)),
            Slti { rd, rs1, imm } => enc_i(op::SLTI, rd, rs1, imm as u16),
            Li { rd, imm } => enc_i(op::LI, rd, Reg::R0, imm),
            Lw { rd, rs1, offset } => enc_i(op::LW, rd, rs1, offset as u16),
            Sw { rs2, rs1, offset } => enc_i(op::SW, rs2, rs1, offset as u16),
            Beq { rs1, rs2, offset } => enc_i(op::BEQ, rs1, rs2, offset as u16),
            Bne { rs1, rs2, offset } => enc_i(op::BNE, rs1, rs2, offset as u16),
            Blt { rs1, rs2, offset } => enc_i(op::BLT, rs1, rs2, offset as u16),
            Bge { rs1, rs2, offset } => enc_i(op::BGE, rs1, rs2, offset as u16),
            Bltu { rs1, rs2, offset } => enc_i(op::BLTU, rs1, rs2, offset as u16),
            Bgeu { rs1, rs2, offset } => enc_i(op::BGEU, rs1, rs2, offset as u16),
            Jal { rd, target } => enc_j(op::JAL, rd, target),
            Jalr { rd, rs1, offset } => enc_i(op::JALR, rd, rs1, offset as u16),
            Nop => u32::from(op::NOP) << 24,
            Halt => u32::from(op::HALT) << 24,
            Ckpt => u32::from(op::CKPT) << 24,
            Out { port, rs1 } => {
                (u32::from(op::OUT) << 24) | (u32::from(port & 0xF) << 20) | (rs1.field() << 16)
            }
            In { rd, port } => {
                (u32::from(op::IN) << 24) | (rd.field() << 20) | (u32::from(port & 0xF) << 16)
            }
        }
    }

    /// Decodes a 32-bit instruction word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the opcode byte is not a defined NV16
    /// opcode. Operand fields are always in range by construction (4-bit
    /// register indices).
    pub fn decode(word: u32) -> Result<Inst, DecodeError> {
        use Inst::*;
        let opc = (word >> 24) as u8;
        let rd = Reg::from_field(word >> 20);
        let rs1 = Reg::from_field(word >> 16);
        let rs2 = Reg::from_field(word >> 12);
        let imm = (word & 0xFFFF) as u16;
        let simm = imm as i16;
        let shamt = (imm & 0xF) as u8;
        Ok(match opc {
            op::ADD => Add { rd, rs1, rs2 },
            op::SUB => Sub { rd, rs1, rs2 },
            op::AND => And { rd, rs1, rs2 },
            op::OR => Or { rd, rs1, rs2 },
            op::XOR => Xor { rd, rs1, rs2 },
            op::SLL => Sll { rd, rs1, rs2 },
            op::SRL => Srl { rd, rs1, rs2 },
            op::SRA => Sra { rd, rs1, rs2 },
            op::MUL => Mul { rd, rs1, rs2 },
            op::MULH => Mulh { rd, rs1, rs2 },
            op::SLT => Slt { rd, rs1, rs2 },
            op::SLTU => Sltu { rd, rs1, rs2 },
            op::DIVU => Divu { rd, rs1, rs2 },
            op::REMU => Remu { rd, rs1, rs2 },
            op::ADDI => Addi { rd, rs1, imm: simm },
            op::ANDI => Andi { rd, rs1, imm },
            op::ORI => Ori { rd, rs1, imm },
            op::XORI => Xori { rd, rs1, imm },
            op::SLLI => Slli { rd, rs1, shamt },
            op::SRLI => Srli { rd, rs1, shamt },
            op::SRAI => Srai { rd, rs1, shamt },
            op::SLTI => Slti { rd, rs1, imm: simm },
            op::LI => Li { rd, imm },
            op::LW => Lw { rd, rs1, offset: simm },
            op::SW => Sw { rs2: rd, rs1, offset: simm },
            op::BEQ => Beq { rs1: rd, rs2: rs1, offset: simm },
            op::BNE => Bne { rs1: rd, rs2: rs1, offset: simm },
            op::BLT => Blt { rs1: rd, rs2: rs1, offset: simm },
            op::BGE => Bge { rs1: rd, rs2: rs1, offset: simm },
            op::BLTU => Bltu { rs1: rd, rs2: rs1, offset: simm },
            op::BGEU => Bgeu { rs1: rd, rs2: rs1, offset: simm },
            op::JAL => Jal { rd, target: word & 0xF_FFFF },
            op::JALR => Jalr { rd, rs1, offset: simm },
            op::NOP => Nop,
            op::HALT => Halt,
            op::CKPT => Ckpt,
            op::OUT => Out { port: ((word >> 20) & 0xF) as u8, rs1 },
            op::IN => In { rd, port: ((word >> 16) & 0xF) as u8 },
            _ => return Err(DecodeError { word }),
        })
    }

    /// Returns `true` for conditional branches (`beq`..`bgeu`).
    #[must_use]
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Inst::Beq { .. }
                | Inst::Bne { .. }
                | Inst::Blt { .. }
                | Inst::Bge { .. }
                | Inst::Bltu { .. }
                | Inst::Bgeu { .. }
        )
    }

    /// Returns `true` for instructions that access data memory.
    #[must_use]
    pub fn is_mem(&self) -> bool {
        matches!(self, Inst::Lw { .. } | Inst::Sw { .. })
    }

    /// Returns the mnemonic of this instruction (e.g. `"addi"`).
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        use Inst::*;
        match self {
            Add { .. } => "add",
            Sub { .. } => "sub",
            And { .. } => "and",
            Or { .. } => "or",
            Xor { .. } => "xor",
            Sll { .. } => "sll",
            Srl { .. } => "srl",
            Sra { .. } => "sra",
            Mul { .. } => "mul",
            Mulh { .. } => "mulh",
            Slt { .. } => "slt",
            Sltu { .. } => "sltu",
            Divu { .. } => "divu",
            Remu { .. } => "remu",
            Addi { .. } => "addi",
            Andi { .. } => "andi",
            Ori { .. } => "ori",
            Xori { .. } => "xori",
            Slli { .. } => "slli",
            Srli { .. } => "srli",
            Srai { .. } => "srai",
            Slti { .. } => "slti",
            Li { .. } => "li",
            Lw { .. } => "lw",
            Sw { .. } => "sw",
            Beq { .. } => "beq",
            Bne { .. } => "bne",
            Blt { .. } => "blt",
            Bge { .. } => "bge",
            Bltu { .. } => "bltu",
            Bgeu { .. } => "bgeu",
            Jal { .. } => "jal",
            Jalr { .. } => "jalr",
            Nop => "nop",
            Halt => "halt",
            Ckpt => "ckpt",
            Out { .. } => "out",
            In { .. } => "in",
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Inst::*;
        let m = self.mnemonic();
        match *self {
            Add { rd, rs1, rs2 }
            | Sub { rd, rs1, rs2 }
            | And { rd, rs1, rs2 }
            | Or { rd, rs1, rs2 }
            | Xor { rd, rs1, rs2 }
            | Sll { rd, rs1, rs2 }
            | Srl { rd, rs1, rs2 }
            | Sra { rd, rs1, rs2 }
            | Mul { rd, rs1, rs2 }
            | Mulh { rd, rs1, rs2 }
            | Slt { rd, rs1, rs2 }
            | Sltu { rd, rs1, rs2 }
            | Divu { rd, rs1, rs2 }
            | Remu { rd, rs1, rs2 } => write!(f, "{m} {rd}, {rs1}, {rs2}"),
            Addi { rd, rs1, imm } | Slti { rd, rs1, imm } => write!(f, "{m} {rd}, {rs1}, {imm}"),
            Andi { rd, rs1, imm } | Ori { rd, rs1, imm } | Xori { rd, rs1, imm } => {
                write!(f, "{m} {rd}, {rs1}, {imm:#x}")
            }
            Slli { rd, rs1, shamt } | Srli { rd, rs1, shamt } | Srai { rd, rs1, shamt } => {
                write!(f, "{m} {rd}, {rs1}, {shamt}")
            }
            Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Lw { rd, rs1, offset } => write!(f, "lw {rd}, {offset}({rs1})"),
            Sw { rs2, rs1, offset } => write!(f, "sw {rs2}, {offset}({rs1})"),
            Beq { rs1, rs2, offset }
            | Bne { rs1, rs2, offset }
            | Blt { rs1, rs2, offset }
            | Bge { rs1, rs2, offset }
            | Bltu { rs1, rs2, offset }
            | Bgeu { rs1, rs2, offset } => write!(f, "{m} {rs1}, {rs2}, {offset}"),
            Jal { rd, target } => write!(f, "jal {rd}, {target}"),
            Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {rs1}, {offset}"),
            Nop | Halt | Ckpt => write!(f, "{m}"),
            Out { port, rs1 } => write!(f, "out {port}, {rs1}"),
            In { rd, port } => write!(f, "in {rd}, {port}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_insts() -> Vec<Inst> {
        use Inst::*;
        let (a, b, c) = (Reg::R1, Reg::R2, Reg::R3);
        vec![
            Add { rd: a, rs1: b, rs2: c },
            Sub { rd: a, rs1: b, rs2: c },
            And { rd: a, rs1: b, rs2: c },
            Or { rd: a, rs1: b, rs2: c },
            Xor { rd: a, rs1: b, rs2: c },
            Sll { rd: a, rs1: b, rs2: c },
            Srl { rd: a, rs1: b, rs2: c },
            Sra { rd: a, rs1: b, rs2: c },
            Mul { rd: a, rs1: b, rs2: c },
            Mulh { rd: a, rs1: b, rs2: c },
            Slt { rd: a, rs1: b, rs2: c },
            Sltu { rd: a, rs1: b, rs2: c },
            Divu { rd: a, rs1: b, rs2: c },
            Remu { rd: a, rs1: b, rs2: c },
            Addi { rd: a, rs1: b, imm: -7 },
            Andi { rd: a, rs1: b, imm: 0xFF00 },
            Ori { rd: a, rs1: b, imm: 0x00FF },
            Xori { rd: a, rs1: b, imm: 0xFFFF },
            Slli { rd: a, rs1: b, shamt: 15 },
            Srli { rd: a, rs1: b, shamt: 1 },
            Srai { rd: a, rs1: b, shamt: 8 },
            Slti { rd: a, rs1: b, imm: -1 },
            Li { rd: a, imm: 0xDEAD },
            Lw { rd: a, rs1: b, offset: -4 },
            Sw { rs2: a, rs1: b, offset: 12 },
            Beq { rs1: a, rs2: b, offset: -2 },
            Bne { rs1: a, rs2: b, offset: 2 },
            Blt { rs1: a, rs2: b, offset: 100 },
            Bge { rs1: a, rs2: b, offset: -100 },
            Bltu { rs1: a, rs2: b, offset: 0 },
            Bgeu { rs1: a, rs2: b, offset: 1 },
            Jal { rd: Reg::R14, target: 0xF_FFFF },
            Jalr { rd: Reg::R0, rs1: Reg::R14, offset: 0 },
            Nop,
            Halt,
            Ckpt,
            Out { port: 15, rs1: c },
            In { rd: a, port: 3 },
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        for inst in sample_insts() {
            let word = inst.encode();
            assert_eq!(Inst::decode(word).unwrap(), inst, "round trip for {inst}");
        }
    }

    #[test]
    fn decode_rejects_bad_opcode() {
        assert!(Inst::decode(0xFF00_0000).is_err());
        assert!(Inst::decode(0x0000_0000).is_err());
        let err = Inst::decode(0x7F12_3456).unwrap_err();
        assert_eq!(err.word(), 0x7F12_3456);
        assert!(err.to_string().contains("0x7f123456"));
    }

    #[test]
    fn mnemonics_are_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for inst in sample_insts() {
            assert!(seen.insert(inst.mnemonic()), "dup mnemonic {}", inst.mnemonic());
        }
    }

    #[test]
    fn classification() {
        assert!(Inst::Beq { rs1: Reg::R0, rs2: Reg::R0, offset: 0 }.is_branch());
        assert!(!Inst::Nop.is_branch());
        assert!(Inst::Lw { rd: Reg::R1, rs1: Reg::R0, offset: 0 }.is_mem());
        assert!(Inst::Sw { rs2: Reg::R1, rs1: Reg::R0, offset: 0 }.is_mem());
        assert!(!Inst::Add { rd: Reg::R1, rs1: Reg::R0, rs2: Reg::R0 }.is_mem());
    }

    #[test]
    fn jal_target_masked() {
        let i = Inst::Jal { rd: Reg::R0, target: MAX_JAL_TARGET };
        assert_eq!(Inst::decode(i.encode()).unwrap(), i);
    }
}
