//! # nvp-isa — the NV16 instruction set
//!
//! `NV16` is a small, deterministic 16-bit Harvard-architecture MCU
//! instruction set designed for nonvolatile-processor (NVP) research. It
//! stands in for the 8051/MSP430-class cores used by published NVP silicon:
//! small register file, word-addressed data memory, single-issue in-order
//! execution — exactly the state profile whose backup/restore cost an NVP
//! study needs to model.
//!
//! The crate provides:
//!
//! * [`Inst`] — the instruction enumeration with binary
//!   [`encode`](Inst::encode)/[`decode`](Inst::decode) (32-bit words),
//! * [`asm::assemble`] — a two-pass assembler for a compact text syntax
//!   (labels, `.data`/`.word`/`.equ` directives, pseudo-instructions),
//! * [`builder::ProgramBuilder`] — a typed, label-aware codegen API for
//!   programs generated from Rust,
//! * [`Program`] — an executable image (code + initialized data segments +
//!   symbol table) consumed by the `nvp-sim` simulator,
//! * a disassembler via [`Inst`]'s [`Display`](core::fmt::Display) impl.
//!
//! ## Architectural summary
//!
//! | Property | Value |
//! |----------|-------|
//! | General registers | `r0`–`r15`, 16-bit; `r0` reads as zero |
//! | Program counter | word index into instruction memory |
//! | Data memory | 16-bit words, 16-bit addresses |
//! | Instruction width | 32 bits |
//! | I/O | 16 output ports (`out`), 16 input ports (`in`) |
//! | NVP hook | `ckpt` marks a program-requested checkpoint |
//!
//! ## Example
//!
//! ```
//! use nvp_isa::asm::assemble;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble(
//!     r#"
//!     ; sum the words 1..=10 into r2
//!         li   r1, 10
//!         li   r2, 0
//!     loop:
//!         add  r2, r2, r1
//!         addi r1, r1, -1
//!         bne  r1, r0, loop
//!         halt
//!     "#,
//! )?;
//! assert_eq!(program.code().len(), 6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod blocks;
pub mod builder;
mod inst;
mod program;
mod reg;

pub use inst::{DecodeError, Inst};
pub use program::{DataSegment, Program};
pub use reg::{Reg, RegParseError};

/// Number of general-purpose registers in the NV16 architecture.
pub const NUM_REGS: usize = 16;

/// Register conventionally used as the link register by `call`/`ret`.
pub const LINK_REG: Reg = Reg::R14;

/// Number of distinct I/O ports addressable by `in`/`out`.
pub const NUM_PORTS: usize = 16;
