//! Executable program images.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{DecodeError, Inst};

/// A contiguous run of initialized data words.
///
/// Data segments model the ROM-initialized constants and input buffers that
/// the NVP framework loads into data memory before execution (the published
/// NVP RTL frameworks generate inputs as ROM arrays in the same way).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataSegment {
    /// First data-memory word address covered by this segment.
    pub addr: u16,
    /// The initialized words, starting at [`addr`](Self::addr).
    pub words: Vec<u16>,
}

impl DataSegment {
    /// Creates a segment from an address and its initial words.
    #[must_use]
    pub fn new(addr: u16, words: Vec<u16>) -> Self {
        DataSegment { addr, words }
    }

    /// The exclusive end address of this segment.
    #[must_use]
    pub fn end(&self) -> u32 {
        u32::from(self.addr) + self.words.len() as u32
    }
}

/// An executable NV16 program: code, initialized data, entry point, symbols.
///
/// Produced by the assembler ([`crate::asm::assemble`]) or built
/// programmatically; consumed by the `nvp-sim` machine.
///
/// # Example
///
/// ```
/// use nvp_isa::{Inst, Program, Reg};
///
/// let mut p = Program::from_insts(vec![
///     Inst::Li { rd: Reg::R1, imm: 42 },
///     Inst::Halt,
/// ]);
/// p.add_data(0x100, &[1, 2, 3]);
/// assert_eq!(p.code().len(), 2);
/// assert_eq!(p.data_segments().len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    code: Vec<u32>,
    data: Vec<DataSegment>,
    entry: u32,
    symbols: BTreeMap<String, u32>,
}

impl Program {
    /// Creates an empty program.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a program from a sequence of instructions, entry point 0.
    #[must_use]
    pub fn from_insts(insts: Vec<Inst>) -> Self {
        Program { code: insts.into_iter().map(Inst::encode).collect(), ..Self::default() }
    }

    /// The encoded instruction words.
    #[must_use]
    pub fn code(&self) -> &[u32] {
        &self.code
    }

    /// The initialized data segments.
    #[must_use]
    pub fn data_segments(&self) -> &[DataSegment] {
        &self.data
    }

    /// The entry-point word address.
    #[must_use]
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Sets the entry-point word address.
    pub fn set_entry(&mut self, entry: u32) {
        self.entry = entry;
    }

    /// Appends an encoded instruction, returning its word address.
    pub fn push(&mut self, inst: Inst) -> u32 {
        self.code.push(inst.encode());
        (self.code.len() - 1) as u32
    }

    /// Appends an initialized data segment.
    pub fn add_data(&mut self, addr: u16, words: &[u16]) {
        self.data.push(DataSegment::new(addr, words.to_vec()));
    }

    /// Records a symbol (label or `.equ` constant).
    pub fn define_symbol(&mut self, name: impl Into<String>, value: u32) {
        self.symbols.insert(name.into(), value);
    }

    /// Looks up a symbol defined by the assembler.
    ///
    /// # Example
    ///
    /// ```
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let p = nvp_isa::asm::assemble("start: halt\n.data 0x20\nbuf: .word 7")?;
    /// assert_eq!(p.symbol("start"), Some(0));
    /// assert_eq!(p.symbol("buf"), Some(0x20));
    /// assert_eq!(p.symbol("missing"), None);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// All symbols in name order.
    #[must_use]
    pub fn symbols(&self) -> &BTreeMap<String, u32> {
        &self.symbols
    }

    /// Decodes the instruction at `addr`, if in range.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the stored word is not a valid
    /// instruction (possible only for hand-built images).
    pub fn decode_at(&self, addr: u32) -> Option<Result<Inst, DecodeError>> {
        self.code.get(addr as usize).map(|&w| Inst::decode(w))
    }

    /// Disassembles the whole code section, one instruction per line.
    #[must_use]
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for (addr, &word) in self.code.iter().enumerate() {
            use fmt::Write;
            match Inst::decode(word) {
                Ok(inst) => writeln!(out, "{addr:5}: {inst}").expect("write to String"),
                Err(_) => writeln!(out, "{addr:5}: .word {word:#010x}").expect("write to String"),
            }
        }
        out
    }

    /// Total number of initialized data words across all segments.
    #[must_use]
    pub fn data_len(&self) -> usize {
        self.data.iter().map(|s| s.words.len()).sum()
    }

    /// Renders the whole image — symbols, entry point, code, and data
    /// segments — as assembly source that re-assembles to an identical
    /// [`Program`] (full structural equality, not just the code words).
    ///
    /// Symbols are emitted as `.equ` definitions (the symbol table does
    /// not distinguish labels from constants, and the assembler stores
    /// both the same way), instructions with raw numeric operands, and
    /// each non-empty data segment as its own `.data`/`.word` group so
    /// the segment list survives byte-for-byte. Empty data segments
    /// cannot be expressed in source and are skipped.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if any stored code word is not a valid
    /// instruction (possible only for hand-built images).
    pub fn render_asm(&self) -> Result<String, DecodeError> {
        use fmt::Write;
        let mut out = String::new();
        for (name, value) in &self.symbols {
            writeln!(out, ".equ {name}, {value}").expect("write to String");
        }
        writeln!(out, ".entry {}", self.entry).expect("write to String");
        for &word in &self.code {
            writeln!(out, "    {}", Inst::decode(word)?).expect("write to String");
        }
        for seg in self.data.iter().filter(|s| !s.words.is_empty()) {
            writeln!(out, ".data {}", seg.addr).expect("write to String");
            for chunk in seg.words.chunks(8) {
                let words: Vec<String> = chunk.iter().map(|w| w.to_string()).collect();
                writeln!(out, "    .word {}", words.join(", ")).expect("write to String");
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    #[test]
    fn push_and_decode() {
        let mut p = Program::new();
        let a0 = p.push(Inst::Nop);
        let a1 = p.push(Inst::Halt);
        assert_eq!((a0, a1), (0, 1));
        assert_eq!(p.decode_at(0).unwrap().unwrap(), Inst::Nop);
        assert_eq!(p.decode_at(1).unwrap().unwrap(), Inst::Halt);
        assert!(p.decode_at(2).is_none());
    }

    #[test]
    fn data_segment_end() {
        let s = DataSegment::new(0xFFFE, vec![1, 2, 3]);
        assert_eq!(s.end(), 0x10001);
    }

    #[test]
    fn disassemble_lists_all() {
        let p = Program::from_insts(vec![
            Inst::Li { rd: Reg::R1, imm: 5 },
            Inst::Out { port: 0, rs1: Reg::R1 },
            Inst::Halt,
        ]);
        let text = p.disassemble();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("li r1, 5"));
        assert!(text.contains("out 0, r1"));
    }

    #[test]
    fn render_asm_round_trips_exactly() {
        let mut p = Program::from_insts(vec![
            Inst::Li { rd: Reg::R1, imm: 0x80 },
            Inst::Lw { rd: Reg::R2, rs1: Reg::R1, offset: -1 },
            Inst::Beq { rs1: Reg::R2, rs2: Reg::R0, offset: 1 },
            Inst::Halt,
        ]);
        p.define_symbol("BUF", 0x80);
        p.add_data(0x80, &[1, 2, 3]);
        p.add_data(0x200, &[0xFFFF]);
        p.set_entry(0);
        let src = p.render_asm().expect("decodable image");
        let rebuilt = crate::asm::assemble(&src).expect("renders valid source");
        assert_eq!(rebuilt, p, "source:\n{src}");
    }

    #[test]
    fn symbols_and_data_len() {
        let mut p = Program::new();
        p.define_symbol("x", 9);
        p.add_data(0, &[1, 2]);
        p.add_data(10, &[3]);
        assert_eq!(p.symbol("x"), Some(9));
        assert_eq!(p.data_len(), 3);
    }
}
