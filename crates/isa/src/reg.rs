//! General-purpose register names.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// One of the sixteen NV16 general-purpose registers.
///
/// `Reg::R0` is hardwired to zero: reads return `0` and writes are
/// discarded by the simulator, RISC-style. `r14` is the conventional link
/// register (see [`crate::LINK_REG`]) and `r15` the conventional stack
/// pointer; neither convention is enforced by hardware.
///
/// # Example
///
/// ```
/// use nvp_isa::Reg;
///
/// let r: Reg = "r7".parse().unwrap();
/// assert_eq!(r, Reg::R7);
/// assert_eq!(r.index(), 7);
/// assert_eq!(r.to_string(), "r7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Reg {
    R0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
}

impl Reg {
    /// All registers in index order.
    pub const ALL: [Reg; 16] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// Returns the register's index in `0..16`.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Returns the register with the given index.
    ///
    /// Returns `None` if `index >= 16`.
    ///
    /// # Example
    ///
    /// ```
    /// use nvp_isa::Reg;
    /// assert_eq!(Reg::from_index(3), Some(Reg::R3));
    /// assert_eq!(Reg::from_index(16), None);
    /// ```
    #[must_use]
    pub fn from_index(index: usize) -> Option<Reg> {
        Reg::ALL.get(index).copied()
    }

    /// Returns `true` for `r0`, the hardwired-zero register.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self == Reg::R0
    }

    pub(crate) fn field(self) -> u32 {
        self as u32
    }

    pub(crate) fn from_field(field: u32) -> Reg {
        Reg::ALL[(field & 0xF) as usize]
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.index())
    }
}

/// Error returned when parsing a register name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegParseError {
    text: String,
}

impl RegParseError {
    /// The text that failed to parse.
    #[must_use]
    pub fn text(&self) -> &str {
        &self.text
    }
}

impl fmt::Display for RegParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid register name `{}`", self.text)
    }
}

impl std::error::Error for RegParseError {}

impl FromStr for Reg {
    type Err = RegParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.trim().to_ascii_lowercase();
        let err = || RegParseError { text: s.to_owned() };
        match lower.as_str() {
            "zero" => return Ok(Reg::R0),
            "ra" => return Ok(Reg::R14),
            "sp" => return Ok(Reg::R15),
            _ => {}
        }
        let digits = lower.strip_prefix('r').ok_or_else(err)?;
        let index: usize = digits.parse().map_err(|_| err())?;
        Reg::from_index(index).ok_or_else(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Reg::from_index(i), Some(*r));
        }
    }

    #[test]
    fn parse_aliases() {
        assert_eq!("zero".parse::<Reg>().unwrap(), Reg::R0);
        assert_eq!("ra".parse::<Reg>().unwrap(), Reg::R14);
        assert_eq!("sp".parse::<Reg>().unwrap(), Reg::R15);
        assert_eq!("R12".parse::<Reg>().unwrap(), Reg::R12);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("r16".parse::<Reg>().is_err());
        assert!("x1".parse::<Reg>().is_err());
        assert!("".parse::<Reg>().is_err());
        assert!("r".parse::<Reg>().is_err());
        assert!("r-1".parse::<Reg>().is_err());
    }

    #[test]
    fn display_matches_parse() {
        for r in Reg::ALL {
            assert_eq!(r.to_string().parse::<Reg>().unwrap(), r);
        }
    }

    #[test]
    fn zero_detection() {
        assert!(Reg::R0.is_zero());
        assert!(!Reg::R1.is_zero());
    }
}
