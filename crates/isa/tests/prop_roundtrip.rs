//! Property tests: encode/decode and assemble/disassemble round trips.

use nvp_isa::asm::assemble;
use nvp_isa::{Inst, Reg};
use proptest::prelude::*;

fn any_reg() -> impl Strategy<Value = Reg> {
    (0usize..16).prop_map(|i| Reg::from_index(i).unwrap())
}

fn any_inst() -> impl Strategy<Value = Inst> {
    let r = any_reg;
    prop_oneof![
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Inst::Add { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Inst::Sub { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Inst::Mul { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Inst::Mulh { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Inst::Slt { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Inst::Sltu { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Inst::Divu { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Inst::Remu { rd, rs1, rs2 }),
        (r(), r(), any::<i16>()).prop_map(|(rd, rs1, imm)| Inst::Addi { rd, rs1, imm }),
        (r(), r(), any::<u16>()).prop_map(|(rd, rs1, imm)| Inst::Andi { rd, rs1, imm }),
        (r(), r(), any::<u16>()).prop_map(|(rd, rs1, imm)| Inst::Ori { rd, rs1, imm }),
        (r(), r(), any::<u16>()).prop_map(|(rd, rs1, imm)| Inst::Xori { rd, rs1, imm }),
        (r(), r(), 0u8..16).prop_map(|(rd, rs1, shamt)| Inst::Slli { rd, rs1, shamt }),
        (r(), r(), 0u8..16).prop_map(|(rd, rs1, shamt)| Inst::Srli { rd, rs1, shamt }),
        (r(), r(), 0u8..16).prop_map(|(rd, rs1, shamt)| Inst::Srai { rd, rs1, shamt }),
        (r(), r(), any::<i16>()).prop_map(|(rd, rs1, imm)| Inst::Slti { rd, rs1, imm }),
        (r(), any::<u16>()).prop_map(|(rd, imm)| Inst::Li { rd, imm }),
        (r(), r(), any::<i16>()).prop_map(|(rd, rs1, offset)| Inst::Lw { rd, rs1, offset }),
        (r(), r(), any::<i16>()).prop_map(|(rs2, rs1, offset)| Inst::Sw { rs2, rs1, offset }),
        (r(), r(), any::<i16>()).prop_map(|(rs1, rs2, offset)| Inst::Beq { rs1, rs2, offset }),
        (r(), r(), any::<i16>()).prop_map(|(rs1, rs2, offset)| Inst::Bne { rs1, rs2, offset }),
        (r(), r(), any::<i16>()).prop_map(|(rs1, rs2, offset)| Inst::Blt { rs1, rs2, offset }),
        (r(), r(), any::<i16>()).prop_map(|(rs1, rs2, offset)| Inst::Bge { rs1, rs2, offset }),
        (r(), r(), any::<i16>()).prop_map(|(rs1, rs2, offset)| Inst::Bltu { rs1, rs2, offset }),
        (r(), r(), any::<i16>()).prop_map(|(rs1, rs2, offset)| Inst::Bgeu { rs1, rs2, offset }),
        (r(), 0u32..(1 << 20)).prop_map(|(rd, target)| Inst::Jal { rd, target }),
        (r(), r(), any::<i16>()).prop_map(|(rd, rs1, offset)| Inst::Jalr { rd, rs1, offset }),
        Just(Inst::Nop),
        Just(Inst::Halt),
        Just(Inst::Ckpt),
        (0u8..16, r()).prop_map(|(port, rs1)| Inst::Out { port, rs1 }),
        (r(), 0u8..16).prop_map(|(rd, port)| Inst::In { rd, port }),
    ]
}

proptest! {
    /// encode ∘ decode is the identity on every constructible instruction.
    #[test]
    fn encode_decode_identity(inst in any_inst()) {
        let word = inst.encode();
        prop_assert_eq!(Inst::decode(word).unwrap(), inst);
    }

    /// Disassembled text re-assembles to the identical encoding.
    ///
    /// Branch displacements printed by `Display` are raw offsets, which the
    /// assembler accepts verbatim for literal operands, so the round trip
    /// is exact at any address.
    #[test]
    fn disassemble_reassemble(insts in proptest::collection::vec(any_inst(), 1..40)) {
        let text: String = insts
            .iter()
            .map(|i| format!("{i}\n"))
            .collect();
        let program = assemble(&text).unwrap();
        let rebuilt: Vec<Inst> = program
            .code()
            .iter()
            .map(|&w| Inst::decode(w).unwrap())
            .collect();
        prop_assert_eq!(rebuilt, insts);
    }

    /// Decoding any 32-bit word either fails or re-encodes to a word that
    /// decodes to the same instruction (decode is a retraction of encode).
    #[test]
    fn decode_is_stable(word in any::<u32>()) {
        if let Ok(inst) = Inst::decode(word) {
            let canonical = inst.encode();
            prop_assert_eq!(Inst::decode(canonical).unwrap(), inst);
        }
    }
}
