//! Randomized property tests: encode/decode and assemble/disassemble
//! round trips. Deterministically seeded (no external proptest
//! dependency): each property is checked over a fixed-seed random sweep
//! plus hand-picked boundary values, so failures are always
//! reproducible.

use nvp_isa::asm::assemble;
use nvp_isa::{Inst, Reg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn any_reg(rng: &mut StdRng) -> Reg {
    Reg::from_index(rng.random::<u32>() as usize % 16).unwrap()
}

/// Uniformly picks one constructible instruction.
fn any_inst(rng: &mut StdRng) -> Inst {
    let rd = any_reg(rng);
    let rs1 = any_reg(rng);
    let rs2 = any_reg(rng);
    let imm_i: i16 = rng.random::<i16>();
    let imm_u: u16 = rng.random::<u16>();
    let shamt: u8 = (rng.random::<u32>() % 16) as u8;
    let port: u8 = (rng.random::<u32>() % 16) as u8;
    let target: u32 = rng.random::<u32>() % (1 << 20);
    match rng.random::<u32>() % 32 {
        0 => Inst::Add { rd, rs1, rs2 },
        1 => Inst::Sub { rd, rs1, rs2 },
        2 => Inst::Mul { rd, rs1, rs2 },
        3 => Inst::Mulh { rd, rs1, rs2 },
        4 => Inst::Slt { rd, rs1, rs2 },
        5 => Inst::Sltu { rd, rs1, rs2 },
        6 => Inst::Divu { rd, rs1, rs2 },
        7 => Inst::Remu { rd, rs1, rs2 },
        8 => Inst::And { rd, rs1, rs2 },
        9 => Inst::Or { rd, rs1, rs2 },
        10 => Inst::Xor { rd, rs1, rs2 },
        11 => Inst::Addi { rd, rs1, imm: imm_i },
        12 => Inst::Andi { rd, rs1, imm: imm_u },
        13 => Inst::Ori { rd, rs1, imm: imm_u },
        14 => Inst::Xori { rd, rs1, imm: imm_u },
        15 => Inst::Slli { rd, rs1, shamt },
        16 => Inst::Srli { rd, rs1, shamt },
        17 => Inst::Srai { rd, rs1, shamt },
        18 => Inst::Slti { rd, rs1, imm: imm_i },
        19 => Inst::Li { rd, imm: imm_u },
        20 => Inst::Lw { rd, rs1, offset: imm_i },
        21 => Inst::Sw { rs2: rd, rs1, offset: imm_i },
        22 => Inst::Beq { rs1, rs2, offset: imm_i },
        23 => Inst::Bne { rs1, rs2, offset: imm_i },
        24 => Inst::Blt { rs1, rs2, offset: imm_i },
        25 => Inst::Bge { rs1, rs2, offset: imm_i },
        26 => Inst::Bltu { rs1, rs2, offset: imm_i },
        27 => Inst::Bgeu { rs1, rs2, offset: imm_i },
        28 => Inst::Jal { rd, target },
        29 => Inst::Jalr { rd, rs1, offset: imm_i },
        30 => Inst::Out { port, rs1 },
        _ => Inst::In { rd, port },
    }
}

/// encode ∘ decode is the identity on every constructible instruction.
#[test]
fn encode_decode_identity() {
    let mut rng = StdRng::seed_from_u64(0x15a_001);
    for fixed in [Inst::Nop, Inst::Halt, Inst::Ckpt] {
        assert_eq!(Inst::decode(fixed.encode()).unwrap(), fixed);
    }
    for _ in 0..4000 {
        let inst = any_inst(&mut rng);
        let word = inst.encode();
        assert_eq!(Inst::decode(word).unwrap(), inst, "word {word:#010x}");
    }
}

/// Disassembled text re-assembles to the identical encoding.
///
/// Branch displacements printed by `Display` are raw offsets, which the
/// assembler accepts verbatim for literal operands, so the round trip
/// is exact at any address.
#[test]
fn disassemble_reassemble() {
    let mut rng = StdRng::seed_from_u64(0x15a_002);
    for _ in 0..120 {
        let n = 1 + rng.random::<u32>() as usize % 40;
        let insts: Vec<Inst> = (0..n).map(|_| any_inst(&mut rng)).collect();
        let text: String = insts.iter().map(|i| format!("{i}\n")).collect();
        let program = assemble(&text).unwrap();
        let rebuilt: Vec<Inst> = program.code().iter().map(|&w| Inst::decode(w).unwrap()).collect();
        assert_eq!(rebuilt, insts);
    }
}

/// Decoding any 32-bit word either fails or re-encodes to a word that
/// decodes to the same instruction (decode is a retraction of encode).
#[test]
fn decode_is_stable() {
    let mut rng = StdRng::seed_from_u64(0x15a_003);
    let check = |word: u32| {
        if let Ok(inst) = Inst::decode(word) {
            let canonical = inst.encode();
            assert_eq!(Inst::decode(canonical).unwrap(), inst, "word {word:#010x}");
        }
    };
    for word in 0..=0xFFFFu32 {
        check(word);
    }
    for _ in 0..200_000 {
        check(rng.random::<u32>());
    }
}
