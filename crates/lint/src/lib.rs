//! **nvp-lint** — the workspace static-analysis pass.
//!
//! The repo's credibility rests on bit-exact, reconstructible artifacts;
//! this crate enforces the determinism discipline *statically*, before
//! any simulation runs. It is dependency-free by design (the build
//! environment is offline): a lightweight in-tree Rust tokenizer feeds
//! five token-level rules:
//!
//! | rule | flags |
//! |------|-------|
//! | `nondet-iter` | `HashMap` / `HashSet` (iteration order is nondeterministic) |
//! | `wall-clock`  | `Instant` / `SystemTime` (wall-clock reads) |
//! | `float-eq`    | `==` / `!=` against a floating-point literal |
//! | `lossy-cast`  | truncating `as` casts of energy/power/time values to integers |
//! | `unsafe-block`| the `unsafe` keyword |
//!
//! Escape hatches, in order of preference:
//!
//! 1. Fix the code (use `BTreeMap`, compare with a tolerance, …).
//! 2. A per-site `// nvp-lint: allow(<rule>)` comment on the offending
//!    line or the line directly above it, which documents intent.
//! 3. The static [`EXEMPTIONS`] list for whole subtrees whose *job* is
//!    the flagged construct (benchmark timing code).
//!
//! Run as `cargo run -p nvp-lint -- check` from the workspace root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::path::{Path, PathBuf};

pub mod tokenizer;

use tokenizer::{tokenize, Token, TokenKind};

/// All rule ids, in diagnostic order.
pub const RULES: [&str; 5] =
    ["nondet-iter", "wall-clock", "float-eq", "lossy-cast", "unsafe-block"];

/// Path-prefix exemptions: `(prefix, rule)` pairs (workspace-relative,
/// `/`-separated). Benchmark harnesses *measure* wall-clock time — that
/// is their job, not a determinism hazard in artifact code. The
/// checkpoint CRC module quantizes torn-write prefixes and indexes its
/// lookup table with integer casts of fractional quantities — that
/// truncation is the modeled physics, so the whole file is exempt from
/// `lossy-cast` rather than sprinkled with per-site allows.
pub const EXEMPTIONS: [(&str, &str); 3] = [
    ("crates/bench", "wall-clock"),
    ("compat/criterion", "wall-clock"),
    ("crates/sim/src/checkpoint.rs", "lossy-cast"),
];

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-indexed line of the offending token.
    pub line: usize,
    /// Violated rule id.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.path, self.line, self.rule, self.message)
    }
}

/// Integer target types a truncating `as` cast can hit.
const INT_TYPES: [&str; 12] =
    ["u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize"];

/// `true` if `name` names an energy/power/time quantity by the
/// workspace's naming convention (`_j`, `_w`, `_s` suffixes and their
/// scaled variants, or an explicit `energy`/`power` stem).
fn is_quantity_name(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    if lower.contains("energy") || lower.contains("power") {
        return true;
    }
    ["_j", "_nj", "_uj", "_mj", "_w", "_nw", "_uw", "_mw"].iter().any(|s| lower.ends_with(s))
}

/// Runs every rule over one file's source text.
///
/// `path` is used only for diagnostics and exemption matching; pass a
/// workspace-relative, `/`-separated path.
#[must_use]
pub fn lint_source(path: &str, source: &str) -> Vec<Violation> {
    let tokens = tokenize(source);
    let mut out = Vec::new();
    let push = |out: &mut Vec<Violation>, line: usize, rule: &'static str, message: String| {
        out.push(Violation { path: path.to_owned(), line, rule, message });
    };

    for (i, tok) in tokens.iter().enumerate() {
        match tok.kind {
            TokenKind::Ident => match tok.text.as_str() {
                "HashMap" | "HashSet" => push(
                    &mut out,
                    tok.line,
                    "nondet-iter",
                    format!(
                        "`{}` iteration order is nondeterministic; use `BTreeMap`/`BTreeSet` \
                         so report and CSV paths stay byte-identical",
                        tok.text
                    ),
                ),
                "Instant" | "SystemTime" => push(
                    &mut out,
                    tok.line,
                    "wall-clock",
                    format!(
                        "`{}` reads the wall clock; simulation and artifact code must be a \
                         pure function of its inputs",
                        tok.text
                    ),
                ),
                "unsafe" => push(
                    &mut out,
                    tok.line,
                    "unsafe-block",
                    "`unsafe` is forbidden across the workspace".to_owned(),
                ),
                "as" => {
                    let target = tokens.get(i + 1);
                    let source_tok = i.checked_sub(1).and_then(|p| tokens.get(p));
                    if let (Some(src), Some(dst)) = (source_tok, target) {
                        let lossy = dst.kind == TokenKind::Ident
                            && INT_TYPES.contains(&dst.text.as_str())
                            && (src.kind == TokenKind::Float
                                || (src.kind == TokenKind::Ident && is_quantity_name(&src.text)));
                        if lossy {
                            push(
                                &mut out,
                                tok.line,
                                "lossy-cast",
                                format!(
                                    "`{} as {}` truncates a physical quantity; keep energy \
                                     accounting in f64 (or round explicitly and justify)",
                                    src.text, dst.text
                                ),
                            );
                        }
                    }
                }
                _ => {}
            },
            TokenKind::Punct if tok.text == "==" || tok.text == "!=" => {
                let neighbor_is_float =
                    |t: Option<&Token>| t.is_some_and(|t| t.kind == TokenKind::Float);
                if neighbor_is_float(i.checked_sub(1).and_then(|p| tokens.get(p)))
                    || neighbor_is_float(tokens.get(i + 1))
                {
                    push(
                        &mut out,
                        tok.line,
                        "float-eq",
                        format!(
                            "`{}` against a float literal is exact-equality on IEEE-754 \
                             values; compare with a tolerance or justify bit-exactness",
                            tok.text
                        ),
                    );
                }
            }
            _ => {}
        }
    }

    let lines: Vec<&str> = source.lines().collect();
    out.retain(|v| !is_allowed(&lines, v.line, v.rule) && !is_exempt(path, v.rule));
    out
}

/// `true` if line `line` (1-indexed) or the line above carries a
/// `// nvp-lint: allow(<rule>)` directive for `rule`.
fn is_allowed(lines: &[&str], line: usize, rule: &str) -> bool {
    let needle = format!("nvp-lint: allow({rule})");
    let covers = |idx: usize| lines.get(idx).is_some_and(|l| l.contains(&needle));
    covers(line.wrapping_sub(1)) || line >= 2 && covers(line - 2)
}

/// `true` if `path` falls under a static [`EXEMPTIONS`] prefix for `rule`.
fn is_exempt(path: &str, rule: &str) -> bool {
    EXEMPTIONS.iter().any(|(prefix, r)| *r == rule && path.starts_with(prefix))
}

/// Collects every `.rs` file under `root` in sorted (deterministic)
/// order, skipping `target`, `.git`, and other dot-directories.
///
/// # Errors
///
/// Returns the first I/O error encountered while walking.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> =
            std::fs::read_dir(&dir)?.map(|e| e.map(|e| e.path())).collect::<Result<_, _>>()?;
        entries.sort();
        for entry in entries {
            let name = entry.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if entry.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(entry);
            } else if name.ends_with(".rs") {
                out.push(entry);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lints every `.rs` file under `root`; violations come back sorted by
/// (path, line, rule).
///
/// # Errors
///
/// Returns the first I/O error encountered while reading sources.
pub fn check_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    for file in workspace_sources(root)? {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let source = std::fs::read_to_string(&file)?;
        out.extend(lint_source(&rel, &source));
    }
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(src: &str) -> Vec<&'static str> {
        lint_source("crates/demo/src/lib.rs", src).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn seeded_nondet_iter_is_detected() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n";
        let hits = rules_hit(src);
        assert!(hits.iter().all(|r| *r == "nondet-iter"), "{hits:?}");
        assert_eq!(hits.len(), 3);
        assert!(rules_hit("fn f() { let s = std::collections::HashSet::<u8>::new(); }")
            .contains(&"nondet-iter"));
    }

    #[test]
    fn seeded_wall_clock_is_detected() {
        assert_eq!(rules_hit("fn f() { let t = std::time::Instant::now(); }"), ["wall-clock"]);
        assert_eq!(rules_hit("fn f() { let t = std::time::SystemTime::now(); }"), ["wall-clock"]);
    }

    #[test]
    fn seeded_float_eq_is_detected() {
        assert_eq!(rules_hit("fn f(e: f64) -> bool { e == 0.0 }"), ["float-eq"]);
        assert_eq!(rules_hit("fn f(e: f64) -> bool { 1e-9 != e }"), ["float-eq"]);
        // Integer equality is fine.
        assert_eq!(rules_hit("fn f(n: u64) -> bool { n == 0 }"), [""; 0]);
        // Float comparisons with a tolerance are fine.
        assert_eq!(rules_hit("fn f(e: f64) -> bool { e.abs() < 1e-9 }"), [""; 0]);
    }

    #[test]
    fn seeded_lossy_cast_is_detected() {
        assert_eq!(
            rules_hit("fn f(backup_energy_j: f64) -> u64 { backup_energy_j as u64 }"),
            ["lossy-cast"]
        );
        assert_eq!(
            rules_hit("fn f(sleep_power_w: f64) -> u32 { sleep_power_w as u32 }"),
            ["lossy-cast"]
        );
        assert_eq!(rules_hit("fn f() -> u64 { 1.5 as u64 }"), ["lossy-cast"]);
        // Widening to f64 and unrelated integer casts are fine.
        assert_eq!(
            rules_hit("fn f(n: u32, energy_j: f64) -> f64 { n as f64 * energy_j }"),
            [""; 0]
        );
        assert_eq!(rules_hit("fn f(words: usize) -> u64 { words as u64 }"), [""; 0]);
    }

    #[test]
    fn seeded_unsafe_block_is_detected() {
        assert_eq!(rules_hit("fn f(p: *const u8) -> u8 { unsafe { *p } }"), ["unsafe-block"]);
        // `unsafe_code` (the lint name in attributes) is a different token.
        assert_eq!(rules_hit("#![forbid(unsafe_code)]\nfn f() {}"), [""; 0]);
    }

    #[test]
    fn allow_directive_suppresses_same_line_and_line_above() {
        let same = "fn f(e: f64) -> bool { e == 0.0 } // nvp-lint: allow(float-eq)\n";
        assert_eq!(rules_hit(same), [""; 0]);
        let above =
            "// exact sentinel: nvp-lint: allow(float-eq)\nfn f(e: f64) -> bool { e == 0.0 }\n";
        assert_eq!(rules_hit(above), [""; 0]);
        // The wrong rule name does not suppress.
        let wrong = "fn f(e: f64) -> bool { e == 0.0 } // nvp-lint: allow(wall-clock)\n";
        assert_eq!(rules_hit(wrong), ["float-eq"]);
        // Two lines above is out of range.
        let far = "// nvp-lint: allow(float-eq)\n\nfn f(e: f64) -> bool { e == 0.0 }\n";
        assert_eq!(rules_hit(far), ["float-eq"]);
    }

    #[test]
    fn comments_and_strings_do_not_trigger() {
        assert_eq!(rules_hit("// a HashMap would be nondeterministic here\nfn f() {}"), [""; 0]);
        assert_eq!(rules_hit("/* Instant::now() */ fn f() {}"), [""; 0]);
        assert_eq!(rules_hit("fn f() -> &'static str { \"HashMap unsafe == 0.0\" }"), [""; 0]);
        assert_eq!(rules_hit("//! HashSet in module docs\nfn f() {}"), [""; 0]);
    }

    #[test]
    fn bench_timing_is_exempt_from_wall_clock_only() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        assert_eq!(lint_source("crates/bench/benches/runner.rs", src), []);
        assert_eq!(lint_source("compat/criterion/src/lib.rs", src), []);
        // The exemption is rule-scoped: unsafe in bench still flags.
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }";
        assert_eq!(lint_source("crates/bench/src/lib.rs", bad).len(), 1);
    }

    #[test]
    fn checkpoint_crc_is_exempt_from_lossy_cast_only() {
        // A genuine lossy cast of a quantity: flagged anywhere else...
        let src = "fn f(backup_energy_fraction: f64) -> usize { backup_energy_fraction as usize }";
        assert_eq!(lint_source("crates/sim/src/machine.rs", src).len(), 1);
        // ... but exempt in the checkpoint CRC module, whose job is
        // quantizing fractional write progress into whole words.
        assert_eq!(lint_source("crates/sim/src/checkpoint.rs", src), []);
        // The exemption is rule-scoped: other rules still flag there.
        let clock = "fn f() { let t = std::time::Instant::now(); }";
        assert_eq!(lint_source("crates/sim/src/checkpoint.rs", clock).len(), 1);
    }

    #[test]
    fn violations_carry_path_line_and_render() {
        let src = "fn a() {}\nfn f() { let t = std::time::Instant::now(); }\n";
        let v = &lint_source("crates/demo/src/lib.rs", src)[0];
        assert_eq!((v.path.as_str(), v.line, v.rule), ("crates/demo/src/lib.rs", 2, "wall-clock"));
        let text = v.to_string();
        assert!(text.starts_with("crates/demo/src/lib.rs:2: wall-clock:"), "{text}");
    }

    /// The gate CI enforces: the workspace tree itself is lint-clean.
    #[test]
    fn workspace_tree_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let violations = check_workspace(&root).expect("workspace walk succeeds");
        assert!(
            violations.is_empty(),
            "workspace has lint violations:\n{}",
            violations.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
        );
    }

    #[test]
    fn workspace_walk_is_deterministic_and_skips_target() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let a = workspace_sources(&root).unwrap();
        let b = workspace_sources(&root).unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.iter().all(|p| !p.components().any(|c| c.as_os_str() == "target")));
        let mut sorted = a.clone();
        sorted.sort();
        assert_eq!(a, sorted, "source order is sorted");
    }
}
