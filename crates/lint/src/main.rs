//! The `nvp-lint` command-line front end.
//!
//! Usage: `cargo run -p nvp-lint -- check [root]`

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
Usage: nvp-lint <command> [root]

Commands:
  check [root]   lint every .rs file under root (default: the workspace
                 root containing this crate); exit 0 if clean, 1 if any
                 violation is found
  rules          list the lint rules and exit

Per-site escape hatch: a `// nvp-lint: allow(<rule>)` comment on the
offending line or the line directly above it.";

fn workspace_root() -> PathBuf {
    // crates/lint/ -> workspace root, both under cargo and when the
    // binary is invoked from elsewhere in the tree.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => {
            let root = args.get(1).map_or_else(workspace_root, PathBuf::from);
            match nvp_lint::check_workspace(&root) {
                Ok(violations) if violations.is_empty() => {
                    println!("nvp-lint: clean ({} rules)", nvp_lint::RULES.len());
                    ExitCode::SUCCESS
                }
                Ok(violations) => {
                    for v in &violations {
                        eprintln!("{v}");
                    }
                    eprintln!("nvp-lint: {} violation(s)", violations.len());
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("nvp-lint: error: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some("rules") => {
            for rule in nvp_lint::RULES {
                println!("{rule}");
            }
            ExitCode::SUCCESS
        }
        Some("--help" | "-h") | None => {
            println!("{USAGE}");
            if args.is_empty() {
                ExitCode::from(2)
            } else {
                ExitCode::SUCCESS
            }
        }
        Some(other) => {
            eprintln!("nvp-lint: unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
