//! A lightweight Rust tokenizer — just enough lexical structure for the
//! lint rules: comments, strings, char literals, and lifetimes are
//! stripped; identifiers, numeric literals, and punctuation survive
//! with 1-indexed line numbers.
//!
//! Deliberately not a full lexer: no token is ever *mis*-classified in
//! a way that matters to the rules (a rule only inspects identifiers,
//! float literals, and the `==`/`!=` operators), and the implementation
//! stays small enough to audit by eye.

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`energy_j`, `as`, `unsafe`, …).
    Ident,
    /// Floating-point literal (`0.5`, `1e-6`, `2.5_f64`).
    Float,
    /// Integer literal (`42`, `0x7f`, `1_000`).
    Int,
    /// Operator or punctuation; multi-char only for `==` and `!=`.
    Punct,
}

/// One surviving token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Source text of the token.
    pub text: String,
    /// 1-indexed source line.
    pub line: usize,
}

/// Tokenizes `source`, stripping comments, string/char literals, and
/// lifetimes.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn tokenize(source: &str) -> Vec<Token> {
    let chars: Vec<char> = source.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;
    let n = chars.len();

    let count_lines = |text: &[char]| text.iter().filter(|&&c| c == '\n').count();

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                let start = i;
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                line += count_lines(&chars[start..i.min(n)]);
            }
            '"' => {
                let start = i;
                i += 1;
                while i < n {
                    match chars[i] {
                        '\\' => i += 2,
                        '"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                line += count_lines(&chars[start..i.min(n)]);
            }
            'r' | 'b' if is_raw_string_start(&chars, i) => {
                let start = i;
                i = skip_raw_string(&chars, i);
                line += count_lines(&chars[start..i.min(n)]);
            }
            '\'' => {
                // Lifetime (`'a`) or char literal (`'x'`, `'\n'`)?
                let next = chars.get(i + 1).copied().unwrap_or('\0');
                let after = chars.get(i + 2).copied().unwrap_or('\0');
                if (next.is_alphanumeric() || next == '_') && after != '\'' {
                    // Lifetime: consume the tick and the identifier.
                    i += 1;
                    while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                } else {
                    // Char literal: consume to the closing quote.
                    i += 1;
                    while i < n {
                        match chars[i] {
                            '\\' => i += 2,
                            '\'' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                }
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                let hex = c == '0' && matches!(chars.get(i + 1), Some('x' | 'X' | 'o' | 'b'));
                i += 1;
                if hex {
                    i += 1;
                    while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                } else {
                    while i < n {
                        let d = chars[i];
                        if d.is_ascii_digit() || d == '_' {
                            i += 1;
                        } else if d == '.' {
                            // `1..10` is a range, not a float.
                            if chars.get(i + 1) == Some(&'.') {
                                break;
                            }
                            // `1.method()` is a call on an integer.
                            if chars.get(i + 1).is_some_and(|c| c.is_alphabetic() || *c == '_') {
                                break;
                            }
                            is_float = true;
                            i += 1;
                        } else if d == 'e' || d == 'E' {
                            let exp = chars.get(i + 1).copied().unwrap_or('\0');
                            let exp2 = chars.get(i + 2).copied().unwrap_or('\0');
                            if exp.is_ascii_digit()
                                || ((exp == '+' || exp == '-') && exp2.is_ascii_digit())
                            {
                                is_float = true;
                                i += 1; // the `e`
                                if !chars[i].is_ascii_digit() {
                                    i += 1; // the sign
                                }
                                while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
                                    i += 1;
                                }
                            } else {
                                break;
                            }
                        } else if d == 'f' && !hex {
                            // `1f64` / `2.5f32` suffix.
                            is_float = true;
                            while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                                i += 1;
                            }
                            break;
                        } else if d.is_ascii_alphabetic() || d == '_' {
                            // Integer suffix (`10u64`) or `_f64`.
                            let rest: String = chars[i..n.min(i + 4)].iter().collect();
                            if rest.starts_with("_f32") || rest.starts_with("_f64") {
                                is_float = true;
                            }
                            while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                                i += 1;
                            }
                            break;
                        } else {
                            break;
                        }
                    }
                }
                let text: String = chars[start..i].iter().collect();
                let kind = if is_float { TokenKind::Float } else { TokenKind::Int };
                out.push(Token { kind, text, line });
            }
            _ if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                out.push(Token { kind: TokenKind::Ident, text, line });
            }
            _ => {
                let two: String = chars[i..n.min(i + 2)].iter().collect();
                if two == "==" || two == "!=" {
                    out.push(Token { kind: TokenKind::Punct, text: two, line });
                    i += 2;
                } else {
                    out.push(Token { kind: TokenKind::Punct, text: c.to_string(), line });
                    i += 1;
                }
            }
        }
    }
    out
}

/// `true` if position `i` starts a raw/byte string (`r"`, `r#"`, `br"`,
/// `b"`, `b'`).
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    let c = chars[i];
    let next = chars.get(i + 1).copied().unwrap_or('\0');
    match c {
        'r' => next == '"' || next == '#',
        'b' => next == '"' || next == '\'' || next == 'r',
        _ => false,
    }
}

/// Skips a raw/byte string starting at `i`; returns the index after it.
fn skip_raw_string(chars: &[char], mut i: usize) -> usize {
    let n = chars.len();
    // Consume the prefix letters (`r`, `b`, `br`).
    while i < n && (chars[i] == 'r' || chars[i] == 'b') {
        i += 1;
    }
    let mut hashes = 0;
    while i < n && chars[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if chars.get(i) == Some(&'\'') {
        // Byte char literal `b'x'`.
        i += 1;
        while i < n {
            match chars[i] {
                '\\' => i += 2,
                '\'' => return i + 1,
                _ => i += 1,
            }
        }
        return i;
    }
    if chars.get(i) != Some(&'"') {
        return i; // Not actually a string (e.g. `r#raw_ident`); resume.
    }
    i += 1;
    while i < n {
        if chars[i] == '"' {
            let mut ok = true;
            for k in 0..hashes {
                if chars.get(i + 1 + k) != Some(&'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                return i + 1 + hashes;
            }
        }
        if hashes == 0 && chars[i] == '\\' {
            i += 1;
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        tokenize(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_numbers_and_punct_survive() {
        let toks = tokenize("let x_j = 1.5e-6 + 42;");
        let kinds: Vec<(TokenKind, &str)> =
            toks.iter().map(|t| (t.kind, t.text.as_str())).collect();
        assert_eq!(
            kinds,
            [
                (TokenKind::Ident, "let"),
                (TokenKind::Ident, "x_j"),
                (TokenKind::Punct, "="),
                (TokenKind::Float, "1.5e-6"),
                (TokenKind::Punct, "+"),
                (TokenKind::Int, "42"),
                (TokenKind::Punct, ";"),
            ]
        );
    }

    #[test]
    fn comments_are_stripped_and_lines_tracked() {
        let toks = tokenize("// line one\n/* block\nspanning */ x\ny");
        assert_eq!(toks.len(), 2);
        assert_eq!((toks[0].text.as_str(), toks[0].line), ("x", 3));
        assert_eq!((toks[1].text.as_str(), toks[1].line), ("y", 4));
    }

    #[test]
    fn nested_block_comments_are_stripped() {
        assert_eq!(texts("/* a /* nested */ still comment */ x"), ["x"]);
    }

    #[test]
    fn strings_and_chars_are_stripped() {
        assert_eq!(texts(r#"let s = "HashMap == 0.0 unsafe";"#), ["let", "s", "=", ";"]);
        assert_eq!(texts("let c = '=';"), ["let", "c", "=", ";"]);
        assert_eq!(texts(r"let c = '\n';"), ["let", "c", "=", ";"]);
        assert_eq!(texts("let e = \"a\\\"b\";"), ["let", "e", "=", ";"]);
    }

    #[test]
    fn raw_strings_are_stripped() {
        assert_eq!(texts(r##"let s = r#"Instant "quoted" inside"#;"##), ["let", "s", "=", ";"]);
        assert_eq!(texts(r#"let s = r"SystemTime";"#), ["let", "s", "=", ";"]);
        assert_eq!(texts(r#"let b = b"bytes";"#), ["let", "b", "=", ";"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        assert_eq!(
            texts("fn f<'a>(x: &'a str) {}"),
            ["fn", "f", "<", ">", "(", "x", ":", "&", "str", ")", "{", "}"]
        );
        // A char literal directly after a lifetime-looking tick.
        assert_eq!(texts("let c = 'x';"), ["let", "c", "=", ";"]);
    }

    #[test]
    fn float_classification() {
        assert_eq!(tokenize("0.5")[0].kind, TokenKind::Float);
        assert_eq!(tokenize("1e-6")[0].kind, TokenKind::Float);
        assert_eq!(tokenize("1E+9")[0].kind, TokenKind::Float);
        assert_eq!(tokenize("2.5f32")[0].kind, TokenKind::Float);
        assert_eq!(tokenize("0.5_f64")[0].kind, TokenKind::Float);
        assert_eq!(tokenize("42")[0].kind, TokenKind::Int);
        assert_eq!(tokenize("0x7f12")[0].kind, TokenKind::Int);
        assert_eq!(tokenize("1_000")[0].kind, TokenKind::Int);
        assert_eq!(tokenize("10u64")[0].kind, TokenKind::Int);
        // Ranges keep the integers intact.
        assert_eq!(texts("0..10"), ["0", ".", ".", "10"]);
        // Method calls on integers are not floats.
        assert_eq!(tokenize("1.max(2)")[0].kind, TokenKind::Int);
    }

    #[test]
    fn comparison_operators_are_single_tokens() {
        assert_eq!(texts("a == b"), ["a", "==", "b"]);
        assert_eq!(texts("a != b"), ["a", "!=", "b"]);
        assert_eq!(texts("a <= b"), ["a", "<", "=", "b"]);
    }
}
