//! Program admission: the static-safety gate for program-carrying
//! requests.
//!
//! Today's wire protocol ships [`nvp_experiments::CampaignRequest`]s
//! that name registry experiments, so no client-supplied program image
//! reaches the server yet. This module is the gate such requests will
//! pass through when they land (ROADMAP: remote kernel submission): a
//! submitted [`Program`] is admitted only if the `nvp-flow` analyzer
//! finds zero intermittency-safety diagnostics. The rejection is typed
//! — rule id plus pc — and rendered into the existing `Reject` frame's
//! reason string under a stable `nvp-flow/` prefix, so clients can
//! parse the verdict back out of the wire error without a protocol
//! bump.

use std::fmt;

use nvp_flow::{analyze, AnalysisConfig, Waivers};
use nvp_isa::Program;

/// Stable prefix identifying an analyzer rejection inside a `Reject`
/// frame's reason string.
pub const REASON_PREFIX: &str = "nvp-flow/";

/// A typed program rejection: which rule fired, where, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramRejection {
    /// Rule id (`war-hazard`, `dead-store`, ...).
    pub rule: String,
    /// First instruction address of the offending span.
    pub pc: u32,
    /// Human-readable detail from the analyzer.
    pub detail: String,
}

impl fmt::Display for ProgramRejection {
    /// Wire form: `nvp-flow/<rule>@<pc>: <detail>`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{REASON_PREFIX}{}@{}: {}", self.rule, self.pc, self.detail)
    }
}

impl std::error::Error for ProgramRejection {}

/// Parses a `Reject` reason back into a typed rejection, if it carries
/// the analyzer prefix. The inverse of [`ProgramRejection`]'s
/// `Display`.
#[must_use]
pub fn parse_reject_reason(reason: &str) -> Option<ProgramRejection> {
    let rest = reason.strip_prefix(REASON_PREFIX)?;
    let (head, detail) = rest.split_once(": ")?;
    let (rule, pc) = head.split_once('@')?;
    Some(ProgramRejection {
        rule: rule.to_string(),
        pc: pc.parse().ok()?,
        detail: detail.to_string(),
    })
}

/// Admits `program` only if the static analyzer reports zero
/// diagnostics under the default platform configuration and no
/// waivers (a server cannot trust client-side waivers).
///
/// # Errors
///
/// Returns the first (most severe by rule order) diagnostic as a
/// [`ProgramRejection`]; undecodable images are rejected under the
/// pseudo-rule `undecodable`.
pub fn admit_program(program: &Program) -> Result<(), ProgramRejection> {
    let analysis = analyze(program, &AnalysisConfig::default(), &Waivers::none()).map_err(|e| {
        ProgramRejection { rule: "undecodable".to_string(), pc: e.pc, detail: e.to_string() }
    })?;
    match analysis.diagnostics.first() {
        None => Ok(()),
        Some(d) => Err(ProgramRejection {
            rule: d.rule.id().to_string(),
            pc: d.span.lo,
            detail: d.message.clone(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvp_isa::asm::assemble;

    #[test]
    fn clean_program_is_admitted() {
        let p = assemble("li r1, 64\nli r2, 7\nsw r2, 0(r1)\nhalt").expect("assembles");
        assert_eq!(admit_program(&p), Ok(()));
    }

    #[test]
    fn war_program_is_rejected_with_typed_reason() {
        let src = "ckpt\nli r1, 64\nlw r2, 0(r1)\naddi r2, r2, 1\nsw r2, 0(r1)\nhalt";
        let p = assemble(src).expect("assembles");
        let err = admit_program(&p).expect_err("WAR program must be refused");
        assert_eq!(err.rule, "war-hazard");
        assert_eq!(err.pc, 2);
        // The wire round trip preserves the typed fields.
        let wire = err.to_string();
        assert!(wire.starts_with(REASON_PREFIX));
        assert_eq!(parse_reject_reason(&wire), Some(err));
    }

    #[test]
    fn non_analyzer_reasons_do_not_parse() {
        assert_eq!(parse_reject_reason("admission queue full; retry later"), None);
        assert_eq!(parse_reject_reason("nvp-flow/"), None);
    }
}
