//! Seeded service-layer fault injection.
//!
//! The simulated processor earns trust by surviving the faults
//! `nvp_core::FaultPlan` injects into its backups; this module holds
//! the service layer to the same standard. A [`ServiceFaultPlan`]
//! describes *where* the campaign server should misbehave:
//!
//! * **tear a journal append** — write only the first N bytes of the
//!   Nth write-ahead record, then abort the process, leaving exactly
//!   the torn-tail shape a power failure produces;
//! * **abort at a journal transition** — crash immediately *after* a
//!   chosen append completes, so the journal is intact but the work
//!   around it is not;
//! * **drop a connection mid-frame** — deliver only a prefix of the
//!   first `Result` frame, then sever the socket (one-shot, so the
//!   client's retry succeeds);
//! * **delay worker completion** — sleep before each job, widening the
//!   window an external test can `kill -9` into.
//!
//! Plans are carried as compact spec strings
//! (`crash-append=3,tear=16`) through `--fault-spec` or the
//! `NVPD_FAULT_SPEC` environment variable, so the crash-recovery suite
//! can steer a real child process deterministically. [`fn@derive`] maps a
//! bare seed onto a rotation of crash points — the same
//! seeded-plan discipline as the simulator's `FaultPlan`.
//!
//! Everything here is deterministic: no wall clock, no RNG state
//! beyond the seed. Injected aborts exit with [`CRASH_EXIT_CODE`] so
//! tests can tell an injected crash from a genuine failure.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Exit code of an injected process abort, distinct from genuine
/// failures so the crash-recovery suite can assert the crash it asked
/// for is the crash it got.
pub const CRASH_EXIT_CODE: i32 = 113;

/// Mutable per-process injection state, shared by every clone of a
/// plan (the journal and the workers see one append counter).
#[derive(Debug, Default)]
struct FaultState {
    /// Journal record appends observed so far.
    appends: AtomicU64,
    /// Whether the one-shot result-frame drop has fired.
    result_dropped: AtomicBool,
}

/// What a journal append should do, as decided by the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendAction {
    /// Write the whole record and carry on.
    Full,
    /// Write only this many bytes of the record, then abort the
    /// process (a torn append; `0` crashes before any byte lands).
    TearAndCrash(usize),
    /// Write the whole record, then abort the process (the journal is
    /// consistent; everything after the transition is lost).
    CrashAfter,
}

/// A seeded description of service-layer faults to inject.
#[derive(Debug, Clone, Default)]
pub struct ServiceFaultPlan {
    /// 1-based index of the journal append to attack, or `None` to
    /// leave the journal alone.
    crash_append: Option<u64>,
    /// With `crash_append`: how many bytes of that record to write
    /// before aborting. `None` writes the whole record first (crash
    /// *at* the transition rather than *inside* it).
    tear_bytes: Option<usize>,
    /// Deliver only this many bytes of the first `Result` frame, then
    /// sever the connection (one-shot).
    drop_result_after: Option<usize>,
    /// Sleep this long before running each job.
    delay_job_ms: Option<u64>,
    /// Shared mutable state (append counter, one-shot flags).
    state: Arc<FaultState>,
}

impl ServiceFaultPlan {
    /// The no-fault plan: every hook is a no-op.
    #[must_use]
    pub fn none() -> ServiceFaultPlan {
        ServiceFaultPlan::default()
    }

    /// Whether any fault is armed.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.crash_append.is_some()
            || self.drop_result_after.is_some()
            || self.delay_job_ms.is_some()
    }

    /// Parses a `key=value` comma list: `crash-append=N`, `tear=B`,
    /// `drop-result=B`, `delay-ms=N`. The empty string is
    /// [`ServiceFaultPlan::none`].
    ///
    /// # Errors
    ///
    /// A message naming the offending clause: unknown keys, missing or
    /// non-numeric values, or `tear=` without `crash-append=`.
    pub fn parse(spec: &str) -> Result<ServiceFaultPlan, String> {
        let mut plan = ServiceFaultPlan::none();
        for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause `{clause}` is not key=value"))?;
            let num = |v: &str| -> Result<u64, String> {
                v.trim()
                    .parse::<u64>()
                    .map_err(|_| format!("fault clause `{clause}`: `{v}` is not a number"))
            };
            match key.trim() {
                "crash-append" => plan.crash_append = Some(num(value)?.max(1)),
                "tear" => plan.tear_bytes = Some(num(value)? as usize),
                "drop-result" => plan.drop_result_after = Some(num(value)? as usize),
                "delay-ms" => plan.delay_job_ms = Some(num(value)?),
                other => return Err(format!("unknown fault key `{other}`")),
            }
        }
        if plan.tear_bytes.is_some() && plan.crash_append.is_none() {
            return Err("fault spec: `tear=` requires `crash-append=`".to_string());
        }
        Ok(plan)
    }

    /// Renders the plan back into the spec grammar [`Self::parse`] accepts
    /// (the transport between the test harness and a child server).
    #[must_use]
    pub fn format(&self) -> String {
        let mut parts = Vec::new();
        if let Some(n) = self.crash_append {
            parts.push(format!("crash-append={n}"));
        }
        if let Some(b) = self.tear_bytes {
            parts.push(format!("tear={b}"));
        }
        if let Some(b) = self.drop_result_after {
            parts.push(format!("drop-result={b}"));
        }
        if let Some(ms) = self.delay_job_ms {
            parts.push(format!("delay-ms={ms}"));
        }
        parts.join(",")
    }

    /// What the `n`th-from-now journal append should do. Advances the
    /// shared append counter.
    pub fn journal_append_action(&self, record_len: usize) -> AppendAction {
        let n = self.state.appends.fetch_add(1, Ordering::Relaxed) + 1;
        if self.crash_append == Some(n) {
            return match self.tear_bytes {
                Some(bytes) => AppendAction::TearAndCrash(bytes.min(record_len)),
                None => AppendAction::CrashAfter,
            };
        }
        AppendAction::Full
    }

    /// One-shot: how many bytes of this `Result` frame to deliver
    /// before severing the connection, or `None` to deliver it whole.
    pub fn result_frame_cut(&self, frame_len: usize) -> Option<usize> {
        let cut = self.drop_result_after?;
        if self.state.result_dropped.swap(true, Ordering::Relaxed) {
            return None; // already fired; let the retry through
        }
        Some(cut.min(frame_len.saturating_sub(1)))
    }

    /// Stalls the worker before a job, widening the kill window for
    /// external crash tests.
    pub fn delay_job(&self) {
        if let Some(ms) = self.delay_job_ms {
            std::thread::sleep(Duration::from_millis(ms));
        }
    }
}

/// Splitmix64-style mixer (the same shape the retrying client uses for
/// backoff jitter) — turns a seed into well-spread bits.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives a crash plan from a bare seed, rotating over the interesting
/// crash points: torn appends at varied byte offsets, clean aborts at
/// each of the three journal transitions of a one-job campaign
/// (`Admitted` → `Started` → `Completed`), and mid-frame result drops.
/// Deterministic: the same seed always yields the same plan.
#[must_use]
pub fn derive(seed: u64) -> ServiceFaultPlan {
    let r = mix64(seed);
    let mut plan = ServiceFaultPlan::none();
    // A one-job campaign appends three journal records; target each.
    let append = 1 + (r >> 8) % 3;
    match r % 4 {
        // Torn append: crash partway into the record bytes.
        0 => {
            plan.crash_append = Some(append);
            plan.tear_bytes = Some(1 + ((r >> 16) % 24) as usize);
        }
        // Crash before any byte of the record lands.
        1 => {
            plan.crash_append = Some(append);
            plan.tear_bytes = Some(0);
        }
        // Crash cleanly after the transition is durable.
        2 => plan.crash_append = Some(append),
        // Sever the connection mid-Result-frame (the server survives;
        // the client's retry must be deduplicated).
        _ => plan.drop_result_after = Some(8 + ((r >> 16) % 64) as usize),
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_format_round_trip() {
        for spec in
            ["", "crash-append=3", "crash-append=2,tear=16", "drop-result=12", "delay-ms=40"]
        {
            let plan = ServiceFaultPlan::parse(spec).unwrap();
            assert_eq!(plan.format(), spec, "spec {spec:?}");
            // format() output re-parses to the same plan.
            let again = ServiceFaultPlan::parse(&plan.format()).unwrap();
            assert_eq!(again.format(), plan.format());
        }
        assert!(!ServiceFaultPlan::none().enabled());
        assert!(ServiceFaultPlan::parse("crash-append=1").unwrap().enabled());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(ServiceFaultPlan::parse("tear=4").is_err(), "tear needs crash-append");
        assert!(ServiceFaultPlan::parse("bogus=1").is_err());
        assert!(ServiceFaultPlan::parse("crash-append").is_err());
        assert!(ServiceFaultPlan::parse("crash-append=lots").is_err());
    }

    #[test]
    fn append_actions_fire_exactly_once_at_the_chosen_index() {
        let plan = ServiceFaultPlan::parse("crash-append=3,tear=10").unwrap();
        assert_eq!(plan.journal_append_action(100), AppendAction::Full);
        assert_eq!(plan.journal_append_action(100), AppendAction::Full);
        assert_eq!(plan.journal_append_action(100), AppendAction::TearAndCrash(10));
        assert_eq!(plan.journal_append_action(100), AppendAction::Full);
        // The tear never exceeds the record.
        let plan = ServiceFaultPlan::parse("crash-append=1,tear=500").unwrap();
        assert_eq!(plan.journal_append_action(7), AppendAction::TearAndCrash(7));
        // Without tear=, the crash lands after the full write.
        let plan = ServiceFaultPlan::parse("crash-append=1").unwrap();
        assert_eq!(plan.journal_append_action(7), AppendAction::CrashAfter);
    }

    #[test]
    fn clones_share_one_append_counter() {
        let plan = ServiceFaultPlan::parse("crash-append=2").unwrap();
        let clone = plan.clone();
        assert_eq!(plan.journal_append_action(4), AppendAction::Full);
        assert_eq!(clone.journal_append_action(4), AppendAction::CrashAfter);
    }

    #[test]
    fn result_frame_cut_is_one_shot_and_never_whole() {
        let plan = ServiceFaultPlan::parse("drop-result=64").unwrap();
        assert_eq!(plan.result_frame_cut(32), Some(31), "cut below the frame length");
        assert_eq!(plan.result_frame_cut(32), None, "second frame passes untouched");
        assert_eq!(ServiceFaultPlan::none().result_frame_cut(32), None);
    }

    #[test]
    fn derived_plans_are_deterministic_and_varied() {
        for seed in 0..64u64 {
            assert_eq!(derive(seed).format(), derive(seed).format(), "seed {seed}");
        }
        let distinct: std::collections::BTreeSet<String> =
            (0..20u64).map(|s| derive(s).format()).collect();
        assert!(distinct.len() > 5, "rotation covers varied crash points: {distinct:?}");
        // Every derived plan actually arms something.
        for seed in 0..64u64 {
            assert!(derive(seed).enabled(), "seed {seed} derived a no-op plan");
        }
    }
}
